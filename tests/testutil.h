// Shared helpers for protocol-level tests: synthetic identities and a
// small fully-attached DHT swarm running on the simulator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "dht/dht_node.h"
#include "multiformats/multiaddr.h"
#include "multiformats/peerid.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ipfs::testutil {

// A deterministic PeerID without the cost of real key derivation. The
// format matches Ed25519 PeerIDs (identity multihash over the libp2p
// protobuf framing) so parsing and DHT hashing behave identically.
inline multiformats::PeerId synthetic_peer_id(std::uint64_t n) {
  std::uint8_t seed[8];
  for (int i = 0; i < 8; ++i) seed[i] = static_cast<std::uint8_t>(n >> (8 * i));
  const auto digest = crypto::sha256(std::span<const std::uint8_t>(seed, 8));
  crypto::Ed25519PublicKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return multiformats::PeerId::from_public_key(key);
}

inline multiformats::Multiaddr synthetic_address(std::uint32_t n) {
  const std::string ip = std::to_string(10 + (n >> 16)) + "." +
                         std::to_string((n >> 8) & 0xff) + "." +
                         std::to_string(n & 0xff) + ".1";
  return multiformats::make_tcp_multiaddr(ip, 4001);
}

// A fully-attached single-region DHT swarm. Nodes are servers by default
// with routing tables pre-seeded from a random peer sample, standing in
// for an already-converged network.
class TestSwarm {
 public:
  explicit TestSwarm(std::size_t size, std::uint64_t seed = 42,
                     double one_way_ms = 20.0)
      : latency_({{one_way_ms}}, 1.0, 1.0), network_(sim_, latency_, seed) {
    sim::Rng rng(seed);
    for (std::size_t i = 0; i < size; ++i) {
      const sim::NodeId node = network_.add_node({.region = 0});
      auto dht = std::make_unique<dht::DhtNode>(
          network_, node, synthetic_peer_id(i),
          std::vector<multiformats::Multiaddr>{
              synthetic_address(static_cast<std::uint32_t>(i))});
      dht->force_mode(dht::DhtNode::Mode::kServer);
      dht->attach_to_network();
      nodes_.push_back(std::move(dht));
      refs_.push_back(nodes_.back()->self());
    }
    // Seed routing tables with a random sample of the swarm.
    for (auto& node : nodes_) {
      const std::size_t sample = std::min<std::size_t>(size - 1, 40);
      for (std::size_t j = 0; j < sample; ++j) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        if (refs_[pick].id == node->self().id) continue;
        node->routing_table().upsert(refs_[pick]);
      }
    }
  }

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return network_; }
  dht::DhtNode& node(std::size_t i) { return *nodes_[i]; }
  const dht::PeerRef& ref(std::size_t i) const { return refs_[i]; }
  std::size_t size() const { return nodes_.size(); }

 private:
  sim::Simulator sim_;
  sim::LatencyModel latency_;
  sim::Network network_;
  std::vector<std::unique_ptr<dht::DhtNode>> nodes_;
  std::vector<dht::PeerRef> refs_;
};

}  // namespace ipfs::testutil
