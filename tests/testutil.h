// Shared helpers for protocol-level tests: synthetic identities and a
// small fully-attached DHT swarm, both thin veneers over
// scenario::ScenarioBuilder so tests exercise the same construction
// path as the benches.
#pragma once

#include <cstdint>

#include "dht/dht_node.h"
#include "multiformats/multiaddr.h"
#include "multiformats/peerid.h"
#include "scenario/scenario.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ipfs::testutil {

inline multiformats::PeerId synthetic_peer_id(std::uint64_t n) {
  return scenario::synthetic_peer_id(n);
}

inline multiformats::Multiaddr synthetic_address(std::uint32_t n) {
  return scenario::synthetic_address(n);
}

// A fully-attached single-region DHT swarm. Nodes are servers by default
// with routing tables pre-seeded from a random peer sample, standing in
// for an already-converged network.
class TestSwarm {
 public:
  explicit TestSwarm(std::size_t size, std::uint64_t seed = 42,
                     double one_way_ms = 20.0)
      : scenario_(scenario::ScenarioBuilder()
                      .peers(size)
                      .seed(seed)
                      .single_region(one_way_ms)
                      .dht_servers(true)
                      .build()) {}

  sim::Simulator& simulator() { return scenario_.simulator(); }
  sim::Network& network() { return scenario_.network(); }
  dht::DhtNode& node(std::size_t i) { return scenario_.dht(i); }
  const dht::PeerRef& ref(std::size_t i) const { return scenario_.ref(i); }
  std::size_t size() const { return scenario_.size(); }

 private:
  scenario::Scenario scenario_;
};

}  // namespace ipfs::testutil
