// DHT tests: keyspace, routing table, record stores, iterative lookups,
// publication/retrieval walks, AutoNAT and record lifecycle.
#include <gtest/gtest.h>

#include "dht/dht_node.h"
#include "dht/key.h"
#include "dht/record_store.h"
#include "dht/routing_table.h"
#include "testutil.h"
#include "transport/sim_transport.h"

namespace ipfs::dht {
namespace {

using testutil::synthetic_address;
using testutil::synthetic_peer_id;
using testutil::TestSwarm;

// --------------------------------------------------------------------------
// Key
// --------------------------------------------------------------------------

TEST(KeyTest, DistanceToSelfIsZero) {
  const Key key = Key::for_peer(synthetic_peer_id(1));
  const auto distance = key.distance_to(key);
  for (const auto byte : distance) EXPECT_EQ(byte, 0);
  EXPECT_EQ(key.common_prefix_len(key), 256);
}

TEST(KeyTest, DistanceIsSymmetric) {
  const Key a = Key::for_peer(synthetic_peer_id(1));
  const Key b = Key::for_peer(synthetic_peer_id(2));
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));
}

TEST(KeyTest, CidsAndPeersShareTheKeySpace) {
  // Section 2.3: CIDs and PeerIDs are indexed by SHA-256 of their binary
  // representations, placing both in one 256-bit key space.
  const std::vector<std::uint8_t> data = {1, 2, 3};
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, data);
  const Key cid_key = Key::for_cid(cid);
  const Key peer_key = Key::for_peer(synthetic_peer_id(7));
  EXPECT_NE(cid_key, peer_key);
  EXPECT_GE(cid_key.common_prefix_len(peer_key), 0);
}

TEST(KeyTest, CloserToOrdersByXor) {
  const Key target = Key::for_peer(synthetic_peer_id(0));
  const Key a = Key::for_peer(synthetic_peer_id(1));
  const Key b = Key::for_peer(synthetic_peer_id(2));
  // Exactly one of the two is closer (they differ).
  EXPECT_NE(a.closer_to(target, b), b.closer_to(target, a));
  // Triangle of self: target is closest to itself.
  EXPECT_TRUE(target.closer_to(target, a));
  EXPECT_FALSE(a.closer_to(target, target));
}

TEST(KeyTest, CommonPrefixLenMatchesDistance) {
  const Key a = Key::for_peer(synthetic_peer_id(3));
  const Key b = Key::for_peer(synthetic_peer_id(4));
  const int cpl = a.common_prefix_len(b);
  const auto distance = a.distance_to(b);
  // The first cpl bits of the distance are zero, bit cpl is one.
  const int byte = cpl / 8;
  const int bit = cpl % 8;
  ASSERT_LT(byte, 32);
  EXPECT_NE(distance[byte] & (0x80 >> bit), 0);
  for (int i = 0; i < byte; ++i) EXPECT_EQ(distance[i], 0);
}

// --------------------------------------------------------------------------
// RoutingTable
// --------------------------------------------------------------------------

PeerRef make_ref(std::uint64_t n) {
  return PeerRef{synthetic_peer_id(n), static_cast<sim::NodeId>(n),
                 {synthetic_address(static_cast<std::uint32_t>(n))}};
}

TEST(RoutingTableTest, InsertAndContains) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  EXPECT_TRUE(table.upsert(make_ref(1)));
  EXPECT_TRUE(table.contains(synthetic_peer_id(1)));
  EXPECT_FALSE(table.contains(synthetic_peer_id(2)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTableTest, RejectsSelf) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  EXPECT_FALSE(table.upsert(make_ref(0)));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTableTest, UpsertRefreshesExistingEntry) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  PeerRef ref = make_ref(1);
  table.upsert(ref);
  ref.node = 99;  // address change
  EXPECT_TRUE(table.upsert(ref));
  EXPECT_EQ(table.size(), 1u);
  const auto peers = table.all_peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].node, 99u);
}

TEST(RoutingTableTest, BucketsCapAtK) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  // Insert far more peers than one bucket holds; most land in the
  // shallow buckets (cpl 0,1,2...), which must each cap at 20.
  for (std::uint64_t i = 1; i <= 2000; ++i) table.upsert(make_ref(i));
  for (std::size_t b = 0; b < kBucketCount; ++b)
    EXPECT_LE(table.bucket_size(b), kBucketSize);
  EXPECT_LT(table.size(), 2000u);
  EXPECT_GT(table.size(), 50u);
}

TEST(RoutingTableTest, ClosestReturnsSortedByDistance) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  for (std::uint64_t i = 1; i <= 200; ++i) table.upsert(make_ref(i));
  const Key target = Key::for_peer(synthetic_peer_id(12345));
  const auto closest = table.closest(target, 20);
  ASSERT_EQ(closest.size(), 20u);
  for (std::size_t i = 1; i < closest.size(); ++i) {
    const Key prev = Key::for_peer(closest[i - 1].id);
    const Key cur = Key::for_peer(closest[i].id);
    EXPECT_TRUE(prev.distance_to(target) <= cur.distance_to(target));
  }
  // The first result must be the global argmin over the table.
  const Key best = Key::for_peer(closest[0].id);
  for (const auto& peer : table.all_peers()) {
    const Key key = Key::for_peer(peer.id);
    EXPECT_TRUE(best.distance_to(target) <= key.distance_to(target));
  }
}

TEST(RoutingTableTest, RemoveEvictsPeer) {
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)));
  table.upsert(make_ref(1));
  table.upsert(make_ref(2));
  table.remove(synthetic_peer_id(1));
  EXPECT_FALSE(table.contains(synthetic_peer_id(1)));
  EXPECT_TRUE(table.contains(synthetic_peer_id(2)));
  EXPECT_EQ(table.size(), 1u);
}

// --------------------------------------------------------------------------
// RoutingTable: per-bucket IP-diversity cap (docs/ADVERSARY.md)
// --------------------------------------------------------------------------

// First `count` indices in [lo, hi) whose keys share exactly `cpl` prefix
// bits with peer 0's key — same-bucket peers from peer 0's perspective.
// synthetic_address puts n < 256 in 10.0.0.0/16 and 256 <= n < 512 in
// 10.1.0.0/16, so the range also selects the diversity class.
std::vector<std::uint64_t> same_bucket_indices(int cpl, std::uint64_t lo,
                                               std::uint64_t hi,
                                               std::size_t count) {
  const Key self = Key::for_peer(synthetic_peer_id(0));
  std::vector<std::uint64_t> out;
  for (std::uint64_t n = lo; n < hi && out.size() < count; ++n) {
    if (n == 0) continue;
    if (self.common_prefix_len(Key::for_peer(synthetic_peer_id(n))) == cpl)
      out.push_back(n);
  }
  return out;
}

TEST(RoutingTableTest, DiversityCapZeroMatchesUncappedTable) {
  // cap = 0 must be bit-identical to the pre-cap tables: same accept/
  // reject decisions, same iteration order, zero rejections.
  RoutingTable uncapped(Key::for_peer(synthetic_peer_id(0)));
  RoutingTable capped(Key::for_peer(synthetic_peer_id(0)), 0);
  for (std::uint64_t i = 1; i <= 500; ++i) {
    EXPECT_EQ(uncapped.upsert(make_ref(i)), capped.upsert(make_ref(i)));
  }
  EXPECT_EQ(capped.size(), uncapped.size());
  EXPECT_EQ(capped.diversity_rejections(), 0u);
  const auto lhs = uncapped.all_peers();
  const auto rhs = capped.all_peers();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) EXPECT_EQ(lhs[i].id, rhs[i].id);
}

TEST(RoutingTableTest, DiversityCapRejectsSamePrefixOverflow) {
  const auto peers = same_bucket_indices(0, 1, 256, 3);
  ASSERT_EQ(peers.size(), 3u);  // all in 10.0/16, all in bucket cpl=0
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)), 2);
  EXPECT_TRUE(table.upsert(make_ref(peers[0])));
  EXPECT_TRUE(table.upsert(make_ref(peers[1])));
  EXPECT_FALSE(table.upsert(make_ref(peers[2])));  // third same-/16 entry
  EXPECT_FALSE(table.contains(synthetic_peer_id(peers[2])));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.diversity_rejections(), 1u);
}

TEST(RoutingTableTest, RefreshOfExistingEntryBypassesTheCap) {
  const auto peers = same_bucket_indices(0, 1, 256, 1);
  ASSERT_EQ(peers.size(), 1u);
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)), 1);
  PeerRef ref = make_ref(peers[0]);
  EXPECT_TRUE(table.upsert(ref));
  // The peer saturates its own class; refreshing it is not an insert and
  // must neither fail nor count as a rejection.
  ref.node = 77;
  EXPECT_TRUE(table.upsert(ref));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.diversity_rejections(), 0u);
  EXPECT_EQ(table.all_peers()[0].node, 77u);
}

TEST(RoutingTableTest, RemoveFreesTheDiversitySlot) {
  const auto peers = same_bucket_indices(0, 1, 256, 2);
  ASSERT_EQ(peers.size(), 2u);
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)), 1);
  EXPECT_TRUE(table.upsert(make_ref(peers[0])));
  EXPECT_FALSE(table.upsert(make_ref(peers[1])));
  table.remove(synthetic_peer_id(peers[0]));
  // The class slot is free again: the previously rejected peer enters.
  EXPECT_TRUE(table.upsert(make_ref(peers[1])));
  EXPECT_TRUE(table.contains(synthetic_peer_id(peers[1])));
}

TEST(RoutingTableTest, DistinctPrefixesDoNotShareTheCap) {
  // One peer from 10.0/16 and one from 10.1/16, same bucket: a cap of 1
  // admits both — the cap is per /16 class, not per bucket total.
  const auto first = same_bucket_indices(0, 1, 256, 1);
  const auto second = same_bucket_indices(0, 256, 512, 1);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)), 1);
  EXPECT_TRUE(table.upsert(make_ref(first[0])));
  EXPECT_TRUE(table.upsert(make_ref(second[0])));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.diversity_rejections(), 0u);
}

TEST(RoutingTableTest, AddressLessPeersAreExemptFromTheCap) {
  const auto peers = same_bucket_indices(0, 1, 256, 3);
  ASSERT_EQ(peers.size(), 3u);
  RoutingTable table(Key::for_peer(synthetic_peer_id(0)), 1);
  for (const auto n : peers) {
    PeerRef bare{synthetic_peer_id(n), static_cast<sim::NodeId>(n), {}};
    EXPECT_FALSE(RoutingTable::diversity_class(bare).has_value());
    EXPECT_TRUE(table.upsert(bare));  // unclassifiable: cap cannot apply
  }
  EXPECT_EQ(table.size(), peers.size());
  EXPECT_EQ(table.diversity_rejections(), 0u);
}

TEST(RoutingTableTest, DiversityClassIsTheFirstTwoOctets) {
  const auto cls = RoutingTable::diversity_class(make_ref(7));
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, (10u << 8) | 0u);  // synthetic_address(7) = 10.0.7.1
  const auto far_cls = RoutingTable::diversity_class(make_ref(256 + 7));
  ASSERT_TRUE(far_cls.has_value());
  EXPECT_EQ(*far_cls, (10u << 8) | 1u);  // 10.1.7.1
}

// --------------------------------------------------------------------------
// RecordStore
// --------------------------------------------------------------------------

TEST(RecordStoreTest, ProvidersExpireAfter24Hours) {
  RecordStore store;
  const Key key = Key::for_peer(synthetic_peer_id(50));
  store.add_provider(key, ProviderRecord{make_ref(1), sim::hours(0)});
  EXPECT_EQ(store.providers(key, sim::hours(23)).size(), 1u);
  EXPECT_EQ(store.providers(key, sim::hours(25)).size(), 0u);
  EXPECT_EQ(store.provider_key_count(), 0u);  // pruned
}

TEST(RecordStoreTest, RepublishRefreshesExpiry) {
  RecordStore store;
  const Key key = Key::for_peer(synthetic_peer_id(51));
  store.add_provider(key, ProviderRecord{make_ref(1), sim::hours(0)});
  // Republish at the 12 h mark (kRepublishInterval).
  store.add_provider(key, ProviderRecord{make_ref(1), sim::hours(12)});
  EXPECT_EQ(store.providers(key, sim::hours(30)).size(), 1u);
  EXPECT_EQ(store.providers(key, sim::hours(37)).size(), 0u);
}

TEST(RecordStoreTest, MultipleProvidersPerKey) {
  RecordStore store;
  const Key key = Key::for_peer(synthetic_peer_id(52));
  store.add_provider(key, ProviderRecord{make_ref(1), 0});
  store.add_provider(key, ProviderRecord{make_ref(2), 0});
  store.add_provider(key, ProviderRecord{make_ref(1), 0});  // duplicate
  EXPECT_EQ(store.providers(key, sim::hours(1)).size(), 2u);
}

TEST(RecordStoreTest, ExpirySweepDropsOldRecords) {
  RecordStore store;
  for (std::uint64_t i = 0; i < 10; ++i) {
    store.add_provider(Key::for_peer(synthetic_peer_id(100 + i)),
                       ProviderRecord{make_ref(i), sim::hours(i)});
  }
  // At t = 30 h, records born before 6 h are expired.
  const auto removed = store.expire_providers(sim::hours(30));
  EXPECT_EQ(removed, 6u);
  EXPECT_EQ(store.provider_key_count(), 4u);
}

TEST(RecordStoreTest, ValueRecordsKeepHighestSequence) {
  RecordStore store;
  const Key key = Key::for_peer(synthetic_peer_id(60));
  EXPECT_TRUE(store.put_value(key, ValueRecord{{1}, 5, 0}));
  EXPECT_FALSE(store.put_value(key, ValueRecord{{2}, 3, 0}));  // stale
  EXPECT_TRUE(store.put_value(key, ValueRecord{{3}, 9, 0}));
  const auto value = store.get_value(key);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->sequence, 9u);
  EXPECT_EQ(value->value, std::vector<std::uint8_t>{3});
}

// --------------------------------------------------------------------------
// DHT walks over a swarm
// --------------------------------------------------------------------------

TEST(DhtSwarmTest, ProvideStoresRecordsOnClosestPeers) {
  TestSwarm swarm(60);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{9, 9, 9});

  DhtNode::ProvideResult result;
  swarm.node(0).provide(key, [&](DhtNode::ProvideResult r) { result = r; });
  swarm.simulator().run();

  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.stores_sent, 10);
  EXPECT_GT(result.walk, 0);
  // The walk leaves connections to the closest peers open, so the
  // fire-and-forget batch can complete instantly at this layer (the full
  // node's connection manager changes that; see node tests).
  EXPECT_GE(result.rpc_batch, 0);
  EXPECT_EQ(result.total, result.walk + result.rpc_batch);

  // The record must be discoverable on peers close to the key.
  int holders = 0;
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    if (!swarm.node(i)
             .record_store()
             .providers(key, swarm.simulator().now())
             .empty())
      ++holders;
  }
  EXPECT_EQ(holders, result.stores_sent);
}

TEST(DhtSwarmTest, FindProvidersDiscoversPublishedContent) {
  TestSwarm swarm(60);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{1, 2, 3, 4});

  bool provided = false;
  swarm.node(3).provide(key,
                        [&](DhtNode::ProvideResult r) { provided = r.ok; });
  swarm.simulator().run();
  ASSERT_TRUE(provided);

  LookupResult lookup;
  swarm.node(42).find_providers(key, [&](LookupResult r) { lookup = r; });
  swarm.simulator().run();

  ASSERT_FALSE(lookup.providers.empty());
  EXPECT_EQ(lookup.providers[0].provider.id, swarm.ref(3).id);
  EXPECT_GT(lookup.elapsed, 0);
}

TEST(DhtSwarmTest, DuplicateProviderRecordsAreDroppedByPeerId) {
  // Replicated resolvers hand back overlapping provider sets; a response
  // repeating the same provider must collapse to one dial candidate.
  scenario::Scenario scenario = scenario::ScenarioBuilder()
                                    .peers(2)
                                    .seed(7)
                                    .single_region(10.0)
                                    .build();
  sim::Simulator& sim = scenario.simulator();
  sim::Network& net = scenario.network();
  const sim::NodeId requester = scenario.node(0);
  const sim::NodeId server = scenario.node(1);

  net.set_request_handler(
      server,
      [](sim::NodeId, const sim::MessagePtr& message, auto respond) {
        ASSERT_NE(dynamic_cast<const GetProvidersRequest*>(message.get()),
                  nullptr);
        auto response = std::make_shared<GetProvidersResponse>();
        response->providers.push_back(ProviderRecord{make_ref(10), 0});
        response->providers.push_back(ProviderRecord{make_ref(10), 0});
        response->providers.push_back(ProviderRecord{make_ref(11), 0});
        respond(std::move(response), 100);
      });

  transport::SimTransport requester_transport(net, requester);
  LookupHost host;
  host.transport = &requester_transport;
  host.self_ref = PeerRef{synthetic_peer_id(999), requester,
                          {synthetic_address(999)}};
  LookupResult result;
  const Key key = Key::hash_of(std::vector<std::uint8_t>{7, 7, 7});
  auto lookup = Lookup::start(
      host, LookupType::kGetProviders, key,
      {PeerRef{synthetic_peer_id(1), server, {synthetic_address(1)}}},
      [&](LookupResult r) { result = std::move(r); });
  sim.run();

  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.providers.size(), 2u);
  EXPECT_NE(result.providers[0].provider.id,
            result.providers[1].provider.id);
  EXPECT_EQ(
      net.metrics().counter_value("dht.lookup.duplicate_providers_dropped"),
      1u);
}

TEST(DhtSwarmTest, FindProvidersFailsForUnpublishedKey) {
  TestSwarm swarm(40);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0xde, 0xad});
  LookupResult lookup;
  lookup.providers.push_back({});  // sentinel: must be cleared by callback
  swarm.node(5).find_providers(key, [&](LookupResult r) { lookup = r; });
  swarm.simulator().run();
  EXPECT_TRUE(lookup.providers.empty());
  EXPECT_TRUE(lookup.completed);
}

TEST(DhtSwarmTest, FindPeerResolvesPeerAddress) {
  TestSwarm swarm(60);
  std::optional<PeerRef> found;
  swarm.node(7).find_peer(swarm.ref(33).id,
                          [&](std::optional<PeerRef> peer, LookupResult) {
                            found = peer;
                          });
  swarm.simulator().run();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id, swarm.ref(33).id);
  EXPECT_EQ(found->node, swarm.ref(33).node);
}

TEST(DhtSwarmTest, RetrievalWalkIsFasterThanPublicationWalk) {
  // Section 6.2: a retrieval walk terminates at the first record-holding
  // node, a publication walk must find all 20 closest peers.
  TestSwarm swarm(100);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{42});

  DhtNode::ProvideResult publish;
  swarm.node(0).provide(key, [&](DhtNode::ProvideResult r) { publish = r; });
  swarm.simulator().run();

  LookupResult retrieval;
  swarm.node(77).find_providers(key, [&](LookupResult r) { retrieval = r; });
  swarm.simulator().run();

  ASSERT_TRUE(publish.ok);
  ASSERT_FALSE(retrieval.providers.empty());
  EXPECT_LT(retrieval.elapsed, publish.walk);
}

TEST(DhtSwarmTest, LookupSurvivesOfflinePeers) {
  TestSwarm swarm(80, /*seed=*/7);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{7, 7});

  bool provided = false;
  swarm.node(1).provide(key, [&](DhtNode::ProvideResult r) { provided = r.ok; });
  swarm.simulator().run();
  ASSERT_TRUE(provided);

  // Take a third of the swarm offline (not the requester/provider).
  for (std::size_t i = 10; i < 36; ++i)
    swarm.network().set_online(static_cast<sim::NodeId>(i), false);

  LookupResult lookup;
  swarm.node(2).find_providers(key, [&](LookupResult r) { lookup = r; });
  swarm.simulator().run();
  EXPECT_FALSE(lookup.providers.empty());
  // Dials into the offline set show up as failures, not hangs.
  EXPECT_GE(lookup.dials_failed + lookup.rpcs_failed, 0);
}

TEST(DhtSwarmTest, FailedPeersAreEvictedFromRoutingTable) {
  TestSwarm swarm(30);
  // Node 0 knows node 1; node 1 goes offline; a lookup through node 1
  // must evict it.
  swarm.node(0).routing_table().upsert(swarm.ref(1));
  ASSERT_TRUE(swarm.node(0).routing_table().contains(swarm.ref(1).id));
  swarm.network().set_online(1, false);

  const Key key = Key::for_peer(swarm.ref(1).id);
  swarm.node(0).lookup_closest(key, [](LookupResult) {});
  swarm.simulator().run();
  EXPECT_FALSE(swarm.node(0).routing_table().contains(swarm.ref(1).id));
}

TEST(DhtSwarmTest, PutAndGetValueRoundTrip) {
  TestSwarm swarm(50);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x11});
  const ValueRecord record{{0xca, 0xfe}, 3, 0};

  bool stored = false;
  int replicas = 0;
  swarm.node(4).put_value(key, record, [&](bool ok, int count) {
    stored = ok;
    replicas = count;
  });
  swarm.simulator().run();
  ASSERT_TRUE(stored);
  EXPECT_GT(replicas, 10);

  std::optional<ValueRecord> fetched;
  swarm.node(30).get_value(key, [&](std::optional<ValueRecord> v) {
    fetched = std::move(v);
  });
  swarm.simulator().run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->value, record.value);
  EXPECT_EQ(fetched->sequence, 3u);
}

TEST(DhtSwarmTest, ProviderRecordsExpireWithoutRepublish) {
  TestSwarm swarm(50);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x22});
  swarm.node(0).provide(key, [](DhtNode::ProvideResult) {});
  swarm.simulator().run();

  // 25 h later (past the 24 h expiry), records must be gone.
  swarm.simulator().run_until(swarm.simulator().now() + sim::hours(25));
  swarm.simulator().run();

  LookupResult lookup;
  swarm.node(20).find_providers(key, [&](LookupResult r) { lookup = r; });
  swarm.simulator().run();
  EXPECT_TRUE(lookup.providers.empty());
}

TEST(DhtSwarmTest, RepublishKeepsRecordsAlive) {
  TestSwarm swarm(50);
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x33});
  swarm.node(0).provide(key, [](DhtNode::ProvideResult) {});
  swarm.node(0).start_reproviding(key);
  swarm.simulator().run();

  // 30 h later, with 12 h republishes, the record must still resolve.
  swarm.simulator().run_until(swarm.simulator().now() + sim::hours(30));

  LookupResult lookup;
  swarm.node(20).find_providers(key, [&](LookupResult r) { lookup = r; });
  swarm.simulator().run();
  EXPECT_FALSE(lookup.providers.empty());
  swarm.node(0).stop_reproviding(key);
}

// --------------------------------------------------------------------------
// Bootstrap and AutoNAT
// --------------------------------------------------------------------------

TEST(DhtBootstrapTest, DialablePeerUpgradesToServer) {
  TestSwarm swarm(40);
  const sim::NodeId node = swarm.network().add_node({.region = 0});
  DhtNode joiner(swarm.network(), node, synthetic_peer_id(1000),
                 {synthetic_address(1000)});
  joiner.attach_to_network();
  EXPECT_EQ(joiner.mode(), DhtNode::Mode::kClient);

  bool ok = false;
  std::vector<PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  joiner.bootstrap(seeds, [&](bool success) { ok = success; });
  swarm.simulator().run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(joiner.mode(), DhtNode::Mode::kServer);
  EXPECT_GT(joiner.routing_table().size(), 6u);
}

TEST(DhtBootstrapTest, NatPeerStaysClient) {
  TestSwarm swarm(40);
  const sim::NodeId node =
      swarm.network().add_node({.region = 0, .dialable = false});
  DhtNode joiner(swarm.network(), node, synthetic_peer_id(1001),
                 {synthetic_address(1001)});
  joiner.attach_to_network();

  bool ok = false;
  std::vector<PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  joiner.bootstrap(seeds, [&](bool success) { ok = success; });
  swarm.simulator().run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(joiner.mode(), DhtNode::Mode::kClient);
}

TEST(DhtBootstrapTest, AutonatThresholdIsMoreThanThree) {
  // Paper Section 2.3: "If more than three peers can connect to the
  // newly joining peer, then the new peer upgrades... to act as a
  // server node." Exactly three successful dial-backs must NOT suffice.
  TestSwarm swarm(40);
  const sim::NodeId node = swarm.network().add_node({.region = 0});
  DhtNode joiner(swarm.network(), node, synthetic_peer_id(1003),
                 {synthetic_address(1003)});
  joiner.attach_to_network();

  // Four seeds, one of which is stalled: its dial-back probe times out,
  // leaving exactly three positive answers.
  std::vector<PeerRef> seeds;
  for (int i = 0; i < 4; ++i) seeds.push_back(swarm.ref(i));
  swarm.network().set_responsive(swarm.ref(3).node, false);

  bool done = false;
  joiner.bootstrap(seeds, [&](bool) { done = true; });
  swarm.simulator().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(joiner.mode(), DhtNode::Mode::kClient);  // 3 is not > 3
  swarm.network().set_responsive(swarm.ref(3).node, true);

  // With a fourth confirming peer the same joiner upgrades.
  const sim::NodeId node2 = swarm.network().add_node({.region = 0});
  DhtNode joiner2(swarm.network(), node2, synthetic_peer_id(1004),
                  {synthetic_address(1004)});
  joiner2.attach_to_network();
  joiner2.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();
  EXPECT_EQ(joiner2.mode(), DhtNode::Mode::kServer);  // 4 > 3
}

TEST(DhtBootstrapTest, BootstrapFailsWithNoSeeds) {
  TestSwarm swarm(5);
  const sim::NodeId node = swarm.network().add_node({.region = 0});
  DhtNode joiner(swarm.network(), node, synthetic_peer_id(1002),
                 {synthetic_address(1002)});
  bool called = false, ok = true;
  joiner.bootstrap({}, [&](bool success) {
    called = true;
    ok = success;
  });
  swarm.simulator().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(DhtSwarmTest, LookupTerminatesWithMajorityUndialableClosestPeers) {
  // Paper Sections 5-6: most DHT routing entries point at unreachable
  // (NAT'ed) peers, and walks succeed anyway because failed dials are
  // bounded by the transport timeout, not retried forever. Make >50% of
  // the swarm undialable and check the walk still terminates, well under
  // the 3 min deadline and with a bounded query count.
  TestSwarm swarm(60, /*seed=*/19);
  for (std::size_t i = 10; i < 45; ++i)  // 35 of 60 peers NAT'ed
    swarm.network().set_dialable(static_cast<sim::NodeId>(i), false);

  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x5a});
  LookupResult result;
  bool done = false;
  const sim::Time start = swarm.simulator().now();
  swarm.node(0).lookup_closest(key, [&](LookupResult r) {
    result = std::move(r);
    done = true;
  });
  swarm.simulator().run();

  ASSERT_TRUE(done);
  const sim::Duration elapsed = swarm.simulator().now() - start;
  EXPECT_LT(elapsed, kLookupDeadline);
  EXPECT_FALSE(result.closest.empty());
  // The undialable majority showed up as dial failures...
  EXPECT_GT(result.dials_failed, 10);
  // ...but the walk stayed bounded: it can visit at most the whole swarm.
  EXPECT_LE(result.rpcs_sent + result.dials_failed, 60);
  // Every reported closest peer actually responded, hence is dialable.
  for (const auto& peer : result.closest)
    EXPECT_TRUE(swarm.network().config(peer.node).dialable);
}

TEST(DhtSwarmTest, CrashAbortsInFlightLookupsWithoutCallback) {
  TestSwarm swarm(40, /*seed=*/23);
  // Slow the walk down so the crash catches it mid-flight: every peer
  // except the requester's first hops is unresponsive, forcing 10 s RPC
  // timeouts.
  for (std::size_t i = 20; i < 40; ++i)
    swarm.network().set_responsive(static_cast<sim::NodeId>(i), false);

  bool fired = false;
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x77});
  swarm.node(0).lookup_closest(key, [&](LookupResult) { fired = true; });

  swarm.simulator().schedule_after(sim::seconds(2), [&] {
    swarm.network().set_online(swarm.ref(0).node, false);
    swarm.node(0).handle_crash();
  });
  swarm.simulator().run();

  // The crashed node's walk must not fire its callback — not even at the
  // 3 min lookup deadline (the deadline timer is lookup-owned, so the
  // network's epoch muting alone cannot stop it).
  EXPECT_FALSE(fired);
  EXPECT_GT(swarm.simulator().now(), sim::seconds(2));
  EXPECT_LT(swarm.simulator().now(), kLookupDeadline);
}

TEST(DhtClientTest, ClientsDoNotServeProviderQueries) {
  TestSwarm swarm(30);
  swarm.node(9).force_mode(DhtNode::Mode::kClient);
  // Push a record directly into the client's store; queries must not
  // surface it because clients ignore DHT requests.
  const Key key = Key::hash_of(std::vector<std::uint8_t>{0x44});
  swarm.node(9).record_store().add_provider(key,
                                            ProviderRecord{swarm.ref(9), 0});

  // Another node connects and asks directly.
  swarm.network().connect(swarm.ref(0).node, swarm.ref(9).node,
                          [](bool, sim::Duration) {});
  swarm.simulator().run();
  sim::RpcStatus status = sim::RpcStatus::kOk;
  auto request = std::make_shared<GetProvidersRequest>();
  request->key = key;
  swarm.network().request(swarm.ref(0).node, swarm.ref(9).node,
                          std::move(request), 64, sim::seconds(3),
                          [&](sim::RpcStatus s, sim::MessagePtr) {
                            status = s;
                          });
  swarm.simulator().run();
  EXPECT_EQ(status, sim::RpcStatus::kTimeout);
}

}  // namespace
}  // namespace ipfs::dht
