// Tests for the paper's future-work extensions implemented here:
// DCUtR hole punching, Hydra boosters, parallel Bitswap/DHT retrieval,
// capped replication, and gateway path resolution.
#include <gtest/gtest.h>

#include "gateway/gateway.h"
#include "merkledag/unixfs.h"
#include "node/ipfs_node.h"
#include "testutil.h"
#include "world/world.h"

namespace ipfs {
namespace {

using testutil::TestSwarm;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// --------------------------------------------------------------------------
// DCUtR (relayed dials to NAT'ed peers)
// --------------------------------------------------------------------------

TEST(DcutrTest, RelayedPeerBecomesDialable) {
  sim::Simulator simulator;
  const sim::LatencyModel latency({{20.0}}, 1.0, 1.0);
  sim::Network network(simulator, latency, 3);

  const sim::NodeId dialer = network.add_node({.region = 0});
  const sim::NodeId relay = network.add_node({.region = 0});
  sim::NodeConfig nat_config;
  nat_config.region = 0;
  nat_config.dialable = false;
  nat_config.relay = relay;
  nat_config.dcutr_success_prob = 1.0;
  const sim::NodeId natted = network.add_node(nat_config);

  bool ok = false;
  sim::Duration elapsed = 0;
  network.connect(dialer, natted, [&](bool success, sim::Duration d) {
    ok = success;
    elapsed = d;
  });
  simulator.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(network.connected(dialer, natted));
  // Slower than a direct dial (two legs + punch), far faster than the
  // 5 s timeout the same peer would cost without a relay.
  EXPECT_GT(elapsed, sim::milliseconds(80));
  EXPECT_LT(elapsed, sim::seconds(2));
}

TEST(DcutrTest, OfflineRelayMeansTimeout) {
  sim::Simulator simulator;
  const sim::LatencyModel latency({{20.0}}, 1.0, 1.0);
  sim::Network network(simulator, latency, 3);
  const sim::NodeId dialer = network.add_node({.region = 0});
  const sim::NodeId relay = network.add_node({.region = 0});
  sim::NodeConfig nat_config;
  nat_config.region = 0;
  nat_config.dialable = false;
  nat_config.relay = relay;
  const sim::NodeId natted = network.add_node(nat_config);
  network.set_online(relay, false);

  bool ok = true;
  sim::Duration elapsed = 0;
  network.connect(dialer, natted, [&](bool success, sim::Duration d) {
    ok = success;
    elapsed = d;
  });
  simulator.run();
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed, sim::seconds(5));
}

TEST(DcutrTest, WorldAdoptionRaisesDialableShare) {
  world::WorldConfig base;
  base.population.peer_count = 500;
  base.seed = 61;
  base.enable_churn = false;  // isolate the NAT effect

  world::World without(base);
  base.dcutr_share = 1.0;
  world::World with(base);

  auto count_dialable = [](world::World& world) {
    std::size_t reachable = 0;
    for (std::size_t i = 6; i < world.size(); ++i) {
      const auto& config = world.network().config(world.ref(i).node);
      if (config.dialable || config.relay != sim::kInvalidNode) ++reachable;
    }
    return reachable;
  };
  EXPECT_GT(count_dialable(with), count_dialable(without));
}

// --------------------------------------------------------------------------
// Hydra boosters
// --------------------------------------------------------------------------

TEST(HydraTest, HeadsShareOneRecordStore) {
  world::WorldConfig config;
  config.population.peer_count = 200;
  config.seed = 67;
  config.hydra_count = 1;
  config.hydra_heads = 5;
  world::World world(config);
  ASSERT_EQ(world.size(), 205u);

  // Store a record via one head; every other head serves it.
  const dht::Key key = dht::Key::hash_of(std::vector<std::uint8_t>{1});
  const std::size_t first_head = 200;
  world.dht(first_head).record_store().add_provider(
      key, dht::ProviderRecord{world.ref(0), 0});
  for (std::size_t head = 200; head < 205; ++head) {
    EXPECT_EQ(world.dht(head)
                  .record_store()
                  .providers(key, sim::hours(1))
                  .size(),
              1u);
  }
  // Regular peers are unaffected.
  EXPECT_TRUE(world.dht(3).record_store().providers(key, 0).empty());
}

TEST(HydraTest, HeadsAreRoutableViaDht) {
  world::WorldConfig config;
  config.population.peer_count = 300;
  config.seed = 71;
  config.hydra_count = 2;
  config.hydra_heads = 10;
  world::World world(config);

  // Heads appear in regular peers' routing tables after seeding.
  std::size_t sightings = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    for (const auto& peer : world.dht(i).routing_table().all_peers()) {
      for (std::size_t head = 300; head < world.size(); ++head) {
        if (peer.id == world.ref(head).id) ++sightings;
      }
    }
  }
  EXPECT_GT(sightings, 10u);
}

// --------------------------------------------------------------------------
// Parallel Bitswap/DHT retrieval
// --------------------------------------------------------------------------

TEST(ParallelRetrievalTest, FasterThanSerialOnDhtPath) {
  TestSwarm swarm(80, /*seed=*/73);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));

  node::IpfsNodeConfig publisher_config;
  publisher_config.net.region = 0;
  publisher_config.identity_seed = 1;
  node::IpfsNode publisher(swarm.network(), publisher_config);

  node::IpfsNodeConfig serial_config;
  serial_config.net.region = 0;
  serial_config.identity_seed = 2;
  node::IpfsNode serial(swarm.network(), serial_config);

  node::IpfsNodeConfig parallel_config;
  parallel_config.net.region = 0;
  parallel_config.identity_seed = 3;
  parallel_config.parallel_dht_lookup = true;
  node::IpfsNode parallel(swarm.network(), parallel_config);

  publisher.bootstrap(seeds, [](bool) {});
  serial.bootstrap(seeds, [](bool) {});
  parallel.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();

  node::PublishTrace publish_trace;
  publisher.publish(random_bytes(256 * 1024, 99),
                    [&](node::PublishTrace t) { publish_trace = t; });
  swarm.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  node::RetrievalTrace serial_trace, parallel_trace;
  serial.retrieve(publish_trace.cid,
                  [&](node::RetrievalTrace t) { serial_trace = t; });
  swarm.simulator().run();
  parallel.retrieve(publish_trace.cid,
                    [&](node::RetrievalTrace t) { parallel_trace = t; });
  swarm.simulator().run();

  ASSERT_TRUE(serial_trace.ok);
  ASSERT_TRUE(parallel_trace.ok);
  // Serial pays the full 1 s window before its walk; parallel overlaps it.
  EXPECT_GE(serial_trace.bitswap_discovery, sim::seconds(1));
  EXPECT_LT(parallel_trace.total, serial_trace.total);
}

TEST(ParallelRetrievalTest, FailsCleanlyWhenNothingIsFound) {
  TestSwarm swarm(40, /*seed=*/79);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  node::IpfsNodeConfig config;
  config.net.region = 0;
  config.identity_seed = 4;
  config.parallel_dht_lookup = true;
  node::IpfsNode node(swarm.network(), config);
  node.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();

  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(16, 5));
  bool called = false;
  node::RetrievalTrace trace;
  trace.ok = true;
  node.retrieve(cid, [&](node::RetrievalTrace t) {
    called = true;
    trace = t;
  });
  swarm.simulator().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(trace.ok);
}

// --------------------------------------------------------------------------
// Capped replication
// --------------------------------------------------------------------------

TEST(ReplicationCapTest, ProvideStoresAtMostMaxRecords) {
  TestSwarm swarm(60, /*seed=*/83);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  node::IpfsNodeConfig config;
  config.net.region = 0;
  config.identity_seed = 5;
  node::IpfsNode node(swarm.network(), config);
  node.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();

  const auto import = node.add(random_bytes(64 * 1024, 7));
  node::PublishTrace trace;
  node.provide(import.root, [&](node::PublishTrace t) { trace = t; }, 5);
  swarm.simulator().run();
  EXPECT_TRUE(trace.ok);
  EXPECT_LE(trace.provider_records_sent, 5);
  EXPECT_GE(trace.provider_records_sent, 1);
}

// --------------------------------------------------------------------------
// Gateway paths
// --------------------------------------------------------------------------

TEST(GatewayPathTest, ServesFileInsidePinnedTree) {
  TestSwarm swarm(50, /*seed=*/89);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  gateway::GatewayConfig config;
  config.node.net.region = 0;
  config.node.identity_seed = 6;
  gateway::Gateway gateway(swarm.network(), config);
  gateway.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();

  // Pin a site tree into the gateway node store.
  const std::vector<merkledag::TreeFile> site = {
      {"index.html", random_bytes(2000, 11)},
      {"assets/app.js", random_bytes(3000, 12)},
  };
  const auto root = merkledag::import_tree(gateway.node().store(), site);
  ASSERT_TRUE(root.has_value());
  gateway.node().store().pin(*root);

  gateway::GatewayResponse response;
  gateway.handle_get_path(*root, "assets/app.js",
                          [&](gateway::GatewayResponse r) { response = r; });
  swarm.simulator().run();
  EXPECT_EQ(response.source, gateway::ServedFrom::kNodeStore);
  EXPECT_EQ(response.bytes, 3000u);

  // Missing path fails.
  gateway::GatewayResponse missing;
  missing.source = gateway::ServedFrom::kNginxCache;
  gateway.handle_get_path(*root, "assets/missing.css",
                          [&](gateway::GatewayResponse r) { missing = r; });
  swarm.simulator().run();
  EXPECT_EQ(missing.source, gateway::ServedFrom::kFailed);
}

}  // namespace
}  // namespace ipfs
