// Bitswap tests: WANT_HAVE/WANT_BLOCK exchange, block verification,
// ledgers, DAG fetch, and the 1 s opportunistic-discovery window.
#include <gtest/gtest.h>

#include "bitswap/bitswap.h"
#include "merkledag/merkledag.h"
#include "scenario/scenario.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ipfs::bitswap {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class BitswapTest : public ::testing::Test {
 protected:
  BitswapTest()
      : scenario_(scenario::ScenarioBuilder()
                      .peers(2)
                      .seed(5)
                      .single_region(10.0)
                      .build()),
        sim_(scenario_.simulator()),
        network_(scenario_.network()) {
    node_a_ = scenario_.node(0);
    node_b_ = scenario_.node(1);
    bitswap_a_ = std::make_unique<Bitswap>(network_, node_a_, store_a_);
    bitswap_b_ = std::make_unique<Bitswap>(network_, node_b_, store_b_);
    attach(node_a_, *bitswap_a_);
    attach(node_b_, *bitswap_b_);
    network_.connect(node_a_, node_b_, [](bool, sim::Duration) {});
    sim_.run();
  }

  void attach(sim::NodeId node, Bitswap& bitswap) {
    network_.set_request_handler(
        node, [&bitswap](sim::NodeId from, const sim::MessagePtr& message,
                         auto respond) {
          bitswap.handle_request(from, message, respond);
        });
  }

  scenario::Scenario scenario_;
  sim::Simulator& sim_;
  sim::Network& network_;
  blockstore::BlockStore store_a_;
  blockstore::BlockStore store_b_;
  sim::NodeId node_a_ = 0;
  sim::NodeId node_b_ = 0;
  std::unique_ptr<Bitswap> bitswap_a_;
  std::unique_ptr<Bitswap> bitswap_b_;
};

TEST_F(BitswapTest, FetchBlockTransfersAndVerifies) {
  const auto block = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(1000, 1));
  store_b_.put(block);

  blockstore::BlockData fetched;
  bitswap_a_->fetch_block(node_b_, block.cid,
                          [&](BlockResult b) { fetched = std::move(b.data); });
  sim_.run();
  ASSERT_TRUE(fetched != nullptr);
  EXPECT_EQ(*fetched, block.data);
  EXPECT_TRUE(store_a_.has(block.cid));  // stored locally after fetch
}

TEST_F(BitswapTest, FetchMissingBlockReturnsNothing) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 2));
  bool called = false;
  blockstore::BlockData fetched;
  bitswap_a_->fetch_block(node_b_, cid, [&](BlockResult b) {
    called = true;
    fetched = std::move(b.data);
  });
  sim_.run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(fetched == nullptr);
}

TEST_F(BitswapTest, LedgersTrackExchangedBytes) {
  const auto block = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(2048, 3));
  store_b_.put(block);
  bitswap_a_->fetch_block(node_b_, block.cid, [](BlockResult) {});
  sim_.run();
  EXPECT_EQ(bitswap_a_->ledger_for(node_b_).bytes_received, 2048u);
  EXPECT_EQ(bitswap_a_->ledger_for(node_b_).blocks_received, 1u);
  EXPECT_EQ(bitswap_b_->ledger_for(node_a_).bytes_sent, 2048u);
}

TEST_F(BitswapTest, FetchDagReassemblesMultiChunkObject) {
  const auto data = random_bytes(700 * 1024, 4);  // 3 chunks
  const auto import = merkledag::import_bytes(store_b_, data);

  FetchStats stats;
  bitswap_a_->fetch_dag(node_b_, import.root,
                        [&](FetchStats s) { stats = s; });
  sim_.run();
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.blocks, 4u);
  EXPECT_EQ(merkledag::cat(store_a_, import.root), data);
}

TEST_F(BitswapTest, FetchDagFailsOnIncompleteRemote) {
  const auto data = random_bytes(700 * 1024, 5);
  const auto import = merkledag::import_bytes(store_b_, data);
  const auto cids = merkledag::enumerate(store_b_, import.root);
  store_b_.remove(cids->back());  // drop a leaf

  FetchStats stats;
  stats.ok = true;
  bitswap_a_->fetch_dag(node_b_, import.root,
                        [&](FetchStats s) { stats = s; });
  sim_.run();
  EXPECT_FALSE(stats.ok);
}

TEST_F(BitswapTest, DiscoveryFindsConnectedHolder) {
  const auto block = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(100, 6));
  store_b_.put(block);

  std::optional<sim::NodeId> holder;
  const sim::Time start = sim_.now();
  sim::Time end = 0;
  bitswap_a_->discover(block.cid, kDiscoveryTimeout,
                       [&](std::optional<sim::NodeId> h) {
                         holder = h;
                         end = sim_.now();
                       });
  sim_.run();
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, node_b_);
  EXPECT_LT(end - start, sim::seconds(1));  // HAVE arrives well before 1 s
  EXPECT_EQ(bitswap_a_->discovery_hits(), 1u);
}

TEST_F(BitswapTest, DiscoveryMissWaitsFullTimeout) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 7));
  const sim::Time start = sim_.now();
  sim::Time end = 0;
  bitswap_a_->discover(cid, kDiscoveryTimeout,
                       [&](std::optional<sim::NodeId> h) {
                         EXPECT_FALSE(h.has_value());
                         end = sim_.now();
                       });
  sim_.run();
  // go-ipfs pays the full 1 s window (paper footnote 4).
  EXPECT_EQ(end - start, kDiscoveryTimeout);
}

TEST_F(BitswapTest, DiscoveryMissWithEarlyExitReturnsSooner) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 8));
  const sim::Time start = sim_.now();
  sim::Time end = 0;
  bitswap_a_->discover(
      cid, kDiscoveryTimeout,
      [&](std::optional<sim::NodeId>) { end = sim_.now(); },
      /*early_exit=*/true);
  sim_.run();
  EXPECT_LT(end - start, kDiscoveryTimeout);
}

TEST_F(BitswapTest, DiscoveryWithNoConnectionsFailsImmediately) {
  network_.disconnect(node_a_, node_b_);
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 9));
  bool called = false;
  bitswap_a_->discover(cid, kDiscoveryTimeout,
                       [&](std::optional<sim::NodeId> h) {
                         called = true;
                         EXPECT_FALSE(h.has_value());
                       });
  EXPECT_TRUE(called);  // synchronous failure
}

TEST_F(BitswapTest, WantlistReflectsInFlightRequests) {
  const auto block = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(100, 10));
  store_b_.put(block);
  bitswap_a_->fetch_block(node_b_, block.cid, [](BlockResult) {});
  EXPECT_EQ(bitswap_a_->wantlist().size(), 1u);
  sim_.run();
  EXPECT_TRUE(bitswap_a_->wantlist().empty());
}

TEST_F(BitswapTest, FetchDagRequestsSharedLinkOnlyOnce) {
  // A DAG whose root links the same leaf twice (shared-link dedup).
  // Regression: both copies used to be dispatched before either landed,
  // double-fetching the block and double-counting blocks/bytes.
  const auto leaf = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(1024, 21));
  merkledag::DagNode root_node;
  root_node.links.push_back({leaf.cid, leaf.data.size()});
  root_node.links.push_back({leaf.cid, leaf.data.size()});
  const auto root = blockstore::Block::from_data(
      multiformats::Multicodec::kDagPb, root_node.encode());
  store_b_.put(leaf);
  store_b_.put(root);

  FetchStats stats;
  bitswap_a_->fetch_dag(node_b_, root.cid, [&](FetchStats s) { stats = s; });
  sim_.run();

  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.blocks, 2u);  // root + leaf, the leaf exactly once
  EXPECT_EQ(stats.bytes, root.data.size() + leaf.data.size());
  EXPECT_EQ(bitswap_b_->ledger_for(node_a_).blocks_sent, 2u);
  EXPECT_EQ(network_.metrics().counter_value(
                "bitswap.duplicate_wants_suppressed"),
            1u);
}

}  // namespace
}  // namespace ipfs::bitswap
