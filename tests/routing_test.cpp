// ContentRouter tests: the DHT baseline wrapper, the delegated indexer
// path with per-indexer timeout/failover, and the race composition —
// including the guarantee that a cancelled or out-raced DHT walk leaves
// no dangling foreground timers (the drain returns promptly instead of
// waiting out the 3 min lookup deadline).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "indexer/indexer.h"
#include "routing/router.h"
#include "scenario/scenario.h"
#include "testutil.h"

namespace ipfs::routing {
namespace {

dht::Key test_key(std::uint8_t tag) {
  return dht::Key::hash_of(std::vector<std::uint8_t>{tag, 0x5a});
}

// A converged DHT swarm with `indexers` delegated indexers riding along.
scenario::Scenario make_swarm(std::size_t peers, std::size_t indexers,
                              sim::Duration ingest_lag = sim::seconds(1),
                              std::uint64_t seed = 42) {
  return scenario::ScenarioBuilder()
      .peers(peers)
      .seed(seed)
      .single_region(10.0)
      .dht_servers(true)
      .indexers(indexers)
      .indexer_config(indexer::IndexerConfig().with_ingest_lag(ingest_lag))
      .routing(RoutingConfig::Mode::kRace)
      .build();
}

// Publishes `key` into the DHT from node 0 and drains.
void provide_via_dht(scenario::Scenario& s, const dht::Key& key) {
  bool ok = false;
  s.dht(0).provide(key, [&](dht::DhtNode::ProvideResult r) { ok = r.ok; });
  s.simulator().run();
  ASSERT_TRUE(ok);
}

// Advertises `key` to every indexer and waits out the ingest lag.
void advertise_and_ingest(scenario::Scenario& s, const dht::Key& key,
                          const dht::PeerRef& provider) {
  advertise_to_indexers(s.dht(0).transport(), s.routing_config(), key,
                        provider);
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));
}

TEST(DhtRouterTest, FindsProvidersThroughTheWalk) {
  scenario::Scenario s = make_swarm(40, 0);
  const dht::Key key = test_key(1);
  provide_via_dht(s, key);

  DhtRouter router(s.dht(9));
  std::optional<FindResult> result;
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->source, Source::kDht);
  ASSERT_FALSE(result->providers.empty());
  EXPECT_EQ(result->providers[0].provider.id, s.ref(0).id);
}

TEST(DhtRouterTest, CancelDropsTheCallbackAndDrainsClean) {
  scenario::Scenario s = make_swarm(40, 0);
  const dht::Key key = test_key(2);
  provide_via_dht(s, key);
  const sim::Time before = s.simulator().now();

  DhtRouter router(s.dht(9));
  bool fired = false;
  const auto id =
      router.find_providers(key, [&](FindResult) { fired = true; }, 0);
  router.cancel(id);
  s.simulator().run();

  EXPECT_FALSE(fired);
  // The abort cancelled the walk's deadline timer: nothing held the
  // drain open anywhere near the 3 min lookup deadline.
  EXPECT_LT(s.simulator().now() - before, dht::kLookupDeadline);
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);
  EXPECT_EQ(s.network().pending_request_count(), 0u);
}

TEST(IndexerRouterTest, ResolvesInOneRttFromAnIndexer) {
  scenario::Scenario s = make_swarm(2, 1);
  const dht::Key key = test_key(3);
  advertise_and_ingest(s, key, s.ref(0));

  IndexerRouter router(s.dht(1).transport(), s.routing_config());
  std::optional<FindResult> result;
  const sim::Time before = s.simulator().now();
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->source, Source::kIndexer);
  ASSERT_FALSE(result->providers.empty());
  EXPECT_EQ(result->providers[0].provider.id, s.ref(0).id);
  EXPECT_LT(s.simulator().now() - before, sim::milliseconds(500));
}

TEST(IndexerRouterTest, EmptyIndexerListFailsImmediately) {
  scenario::Scenario s = make_swarm(2, 0);
  IndexerRouter router(s.dht(1).transport(), RoutingConfig{});
  std::optional<FindResult> result;
  router.find_providers(test_key(4), [&](FindResult r) { result = r; }, 0);
  ASSERT_TRUE(result.has_value());  // settled synchronously
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->source, Source::kNone);
}

TEST(IndexerRouterTest, FailsOverPastACrashedIndexer) {
  scenario::Scenario s = make_swarm(2, 2);
  const dht::Key key = test_key(5);
  advertise_and_ingest(s, key, s.ref(0));

  // First indexer in the config order goes down; the router must carry
  // on to the second.
  s.network().set_online(s.indexer(0).node(), false);
  s.indexer(0).handle_crash();

  IndexerRouter router(s.dht(1).transport(), s.routing_config());
  std::optional<FindResult> result;
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->source, Source::kIndexer);
  EXPECT_GE(s.network().metrics().counter("routing.indexer.failover").value(),
            1u);
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);
  EXPECT_EQ(s.network().pending_request_count(), 0u);
}

TEST(IndexerRouterTest, UnresponsiveIndexerTimesOutThenFailsOver) {
  scenario::Scenario s = make_swarm(2, 2);
  const dht::Key key = test_key(6);
  advertise_and_ingest(s, key, s.ref(0));

  // Reachable but mute: the dial succeeds and the query must burn the
  // full per-indexer timeout before failing over.
  s.network().set_responsive(s.indexer(0).node(), false);

  RoutingConfig config = s.routing_config();
  config.indexer_timeout = sim::seconds(2);
  IndexerRouter router(s.dht(1).transport(), config);
  std::optional<FindResult> result;
  const sim::Time before = s.simulator().now();
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->source, Source::kIndexer);
  EXPECT_GE(s.simulator().now() - before, config.indexer_timeout);
}

TEST(IndexerRouterTest, ExhaustedListWithStaleIndexesFails) {
  // The advert never ingests (long lag), so every indexer answers empty
  // and the delegated path reports failure.
  scenario::Scenario s = make_swarm(2, 2, /*ingest_lag=*/sim::hours(1));
  const dht::Key key = test_key(7);
  advertise_to_indexers(s.dht(0).transport(), s.routing_config(), key,
                        s.ref(0));
  s.simulator().run();

  IndexerRouter router(s.dht(1).transport(), s.routing_config());
  std::optional<FindResult> result;
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->source, Source::kNone);
}

TEST(RaceRouterTest, IndexerWinsAndTheLosingWalkIsPutDown) {
  scenario::Scenario s = make_swarm(40, 1);
  const dht::Key key = test_key(8);
  provide_via_dht(s, key);
  advertise_and_ingest(s, key, s.ref(0));

  RaceRouter router(s.dht(9).transport(), s.dht(9), s.routing_config());
  std::optional<FindResult> result;
  const sim::Time before = s.simulator().now();
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  // One RTT to a same-region indexer beats the iterative walk.
  EXPECT_EQ(result->source, Source::kIndexer);
  // The losing walk was cancelled: its 3 min deadline timer is gone and
  // the drain owes nothing.
  EXPECT_LT(s.simulator().now() - before, dht::kLookupDeadline);
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);
  EXPECT_EQ(s.network().pending_request_count(), 0u);
}

TEST(RaceRouterTest, DegradesToTheDhtWhenEveryIndexerIsDown) {
  scenario::Scenario s = make_swarm(40, 2);
  const dht::Key key = test_key(9);
  provide_via_dht(s, key);
  advertise_and_ingest(s, key, s.ref(0));

  for (std::size_t i = 0; i < s.indexer_count(); ++i) {
    s.network().set_online(s.indexer(i).node(), false);
    s.indexer(i).handle_crash();
  }

  RaceRouter router(s.dht(9).transport(), s.dht(9), s.routing_config());
  std::optional<FindResult> result;
  router.find_providers(key, [&](FindResult r) { result = r; }, 0);
  s.simulator().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->source, Source::kDht);
  ASSERT_FALSE(result->providers.empty());
  EXPECT_EQ(result->providers[0].provider.id, s.ref(0).id);
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);
  EXPECT_EQ(s.network().pending_request_count(), 0u);
}

TEST(RaceRouterTest, CancelAbandonsBothArmsWithoutCallbacks) {
  scenario::Scenario s = make_swarm(40, 1);
  const dht::Key key = test_key(10);
  provide_via_dht(s, key);
  advertise_and_ingest(s, key, s.ref(0));
  const sim::Time before = s.simulator().now();

  RaceRouter router(s.dht(9).transport(), s.dht(9), s.routing_config());
  bool fired = false;
  const auto id =
      router.find_providers(key, [&](FindResult) { fired = true; }, 0);
  router.cancel(id);
  s.simulator().run();

  EXPECT_FALSE(fired);
  EXPECT_LT(s.simulator().now() - before, dht::kLookupDeadline);
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);
  EXPECT_EQ(s.network().pending_request_count(), 0u);
}

TEST(RoutingConfigTest, MakeRouterSelectsTheConfiguredMode) {
  scenario::Scenario s = make_swarm(2, 1);
  const auto dht_only =
      make_router(s.dht(1).transport(), s.dht(1),
                  RoutingConfig{}.with_mode(RoutingConfig::Mode::kDht));
  const auto indexer_only =
      make_router(s.dht(1).transport(), s.dht(1),
                  RoutingConfig{}.with_mode(RoutingConfig::Mode::kIndexer));
  const auto race =
      make_router(s.dht(1).transport(), s.dht(1),
                  RoutingConfig{}.with_mode(RoutingConfig::Mode::kRace));
  EXPECT_NE(dynamic_cast<DhtRouter*>(dht_only.get()), nullptr);
  EXPECT_NE(dynamic_cast<IndexerRouter*>(indexer_only.get()), nullptr);
  EXPECT_NE(dynamic_cast<RaceRouter*>(race.get()), nullptr);
}

}  // namespace
}  // namespace ipfs::routing
