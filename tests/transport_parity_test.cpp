// Backend parity (ISSUE 8 satellite): the same publish -> provide ->
// resolve -> fetch scenario, run once over SimTransport on the
// discrete-event fabric and once over SocketTransports exchanging real
// UDP datagrams on loopback, must produce the same provider records and
// the same block bytes. Timings are NOT compared — virtual time and wall
// time differ by construction; parity is about protocol outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bitswap/bitswap.h"
#include "blockstore/blockstore.h"
#include "dht/dht_node.h"
#include "dht/key.h"
#include "multiformats/cid.h"
#include "scenario/scenario.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "transport/sim_transport.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"

namespace ipfs {
namespace {

// One protocol endpoint: a DHT server plus Bitswap, multiplexed onto a
// transport exactly the way node::IpfsNode does it.
struct Rig {
  blockstore::BlockStore store;
  dht::DhtNode dht;
  bitswap::Bitswap bitswap;

  Rig(transport::Transport& transport, std::uint64_t identity)
      : dht(transport, scenario::synthetic_peer_id(identity),
            {scenario::synthetic_address(
                static_cast<std::uint32_t>(identity))}),
        bitswap(transport, store) {
    dht.force_mode(dht::DhtNode::Mode::kServer);
    transport.set_request_handler(
        [this](sim::NodeId from, const sim::MessagePtr& message,
               const std::function<void(sim::MessagePtr, std::size_t)>&
                   respond) {
          if (dht.handle_request(from, message, respond)) return;
          bitswap.handle_request(from, message, respond);
        });
    transport.set_message_handler(
        [this](sim::NodeId from, const sim::MessagePtr& message) {
          dht.handle_message(from, message);
        });
  }
};

struct ParityOutcome {
  bool provide_ok = false;
  int provider_stores = 0;
  bool lookup_done = false;
  std::vector<sim::NodeId> provider_nodes;  // sorted
  std::optional<std::vector<std::uint8_t>> block_data;
  // Provider-side transport counters (socket run only).
  std::uint64_t tx_messages = 0;
  std::uint64_t rx_messages = 0;
};

std::vector<std::uint8_t> test_payload() {
  return {'p', 'a', 'r', 'i', 't', 'y', '-', 'b', 'l', 'o', 'c', 'k'};
}

// Runs the scenario over three already-wired transports. `pump` advances
// the backend's event loop until the given condition holds (or its
// internal deadline passes). Node 0 is a plain server, node 1 the
// provider, node 2 the fetcher.
ParityOutcome run_scenario(
    const std::array<transport::Transport*, 3>& transports,
    const std::function<void(const std::function<bool()>&)>& pump) {
  std::array<std::unique_ptr<Rig>, 3> rigs;
  for (std::size_t i = 0; i < rigs.size(); ++i) {
    rigs[i] = std::make_unique<Rig>(*transports[i], 100 + i);
  }
  // Pre-seeded, already-converged routing tables (the scenario harness's
  // convention) so the walk outcome does not depend on bootstrap timing.
  for (auto& rig : rigs) {
    for (auto& other : rigs) {
      if (other == rig) continue;
      rig->dht.routing_table().upsert(other->dht.self());
    }
  }

  const auto payload = test_payload();
  const auto cid =
      multiformats::Cid::from_data(multiformats::Multicodec::kRaw, payload);
  rigs[1]->store.put(blockstore::Block{cid, payload});
  const dht::Key key = dht::Key::for_cid(cid);

  ParityOutcome outcome;
  rigs[1]->dht.provide(key, [&outcome](dht::DhtNode::ProvideResult result) {
    outcome.provide_ok = result.ok;
    outcome.provider_stores = result.stores_sent;
  });
  pump([&outcome] { return outcome.provide_ok; });

  rigs[2]->dht.find_providers(key, [&outcome](dht::LookupResult result) {
    outcome.lookup_done = true;
    for (const auto& record : result.providers) {
      outcome.provider_nodes.push_back(record.provider.node);
    }
    std::sort(outcome.provider_nodes.begin(), outcome.provider_nodes.end());
    outcome.provider_nodes.erase(
        std::unique(outcome.provider_nodes.begin(),
                    outcome.provider_nodes.end()),
        outcome.provider_nodes.end());
  });
  pump([&outcome] { return outcome.lookup_done; });

  bool fetch_done = false;
  transports[2]->connect(
      transports[1]->local(),
      [&](bool ok, sim::Duration) {
        if (!ok) {
          fetch_done = true;
          return;
        }
        rigs[2]->bitswap.fetch_block(
            transports[1]->local(), cid,
            [&](bitswap::BlockResult block) {
              if (block.data) outcome.block_data = *block.data;
              fetch_done = true;
            });
      });
  pump([&fetch_done] { return fetch_done; });
  return outcome;
}

ParityOutcome run_over_sim() {
  sim::Simulator simulator;
  const sim::LatencyModel latency(
      std::vector<std::vector<double>>{{20.0}});
  sim::Network network(simulator, latency, /*seed=*/7);
  std::array<std::unique_ptr<transport::SimTransport>, 3> transports;
  for (auto& t : transports) {
    t = std::make_unique<transport::SimTransport>(network, sim::NodeConfig{});
  }
  return run_scenario(
      {transports[0].get(), transports[1].get(), transports[2].get()},
      [&simulator](const std::function<bool()>& done) {
        simulator.run();
        EXPECT_TRUE(done());
      });
}

ParityOutcome run_over_sockets() {
  std::array<std::unique_ptr<transport::SocketTransport>, 3> transports;
  for (std::size_t i = 0; i < transports.size(); ++i) {
    transports[i] = std::make_unique<transport::SocketTransport>(
        static_cast<transport::PeerAddr>(i), "127.0.0.1", /*port=*/0);
  }
  // Full-mesh peer table over the ephemeral loopback ports.
  for (auto& t : transports) {
    for (std::size_t j = 0; j < transports.size(); ++j) {
      if (transports[j].get() == t.get()) continue;
      t->add_peer(static_cast<transport::PeerAddr>(j), "127.0.0.1",
                  transports[j]->port());
    }
  }
  ParityOutcome outcome = run_scenario(
      {transports[0].get(), transports[1].get(), transports[2].get()},
      [&transports](const std::function<bool()>& done) {
        const sim::Time deadline =
            transports[0]->now() + sim::seconds(30);
        while (!done() && transports[0]->now() < deadline) {
          for (auto& t : transports) t->poll_once(sim::milliseconds(1));
        }
        EXPECT_TRUE(done());
      });
  outcome.tx_messages =
      transports[1]->metrics().counter_value("transport.tx.messages");
  outcome.rx_messages =
      transports[1]->metrics().counter_value("transport.rx.messages");
  return outcome;
}

TEST(TransportParityTest, SimAndSocketBackendsAgree) {
  const ParityOutcome sim_outcome = run_over_sim();
  const ParityOutcome socket_outcome = run_over_sockets();

  // Both backends complete the whole pipeline...
  EXPECT_TRUE(sim_outcome.provide_ok);
  EXPECT_TRUE(socket_outcome.provide_ok);
  EXPECT_TRUE(sim_outcome.lookup_done);
  EXPECT_TRUE(socket_outcome.lookup_done);

  // ...store provider records on the same peers...
  EXPECT_GT(sim_outcome.provider_stores, 0);
  EXPECT_GT(socket_outcome.provider_stores, 0);
  EXPECT_EQ(sim_outcome.provider_nodes, socket_outcome.provider_nodes);
  ASSERT_FALSE(socket_outcome.provider_nodes.empty());
  EXPECT_EQ(socket_outcome.provider_nodes.front(),
            static_cast<sim::NodeId>(1));

  // ...and move the same block bytes.
  ASSERT_TRUE(sim_outcome.block_data.has_value());
  ASSERT_TRUE(socket_outcome.block_data.has_value());
  EXPECT_EQ(*sim_outcome.block_data, *socket_outcome.block_data);
  EXPECT_EQ(*socket_outcome.block_data, test_payload());
}

// The socket backend's transport counters move: the scenario above sends
// real datagrams, and both directions are visible in the per-process
// metrics registry (docs/OBSERVABILITY.md).
TEST(TransportParityTest, SocketCountersAdvance) {
  const ParityOutcome outcome = run_over_sockets();
  ASSERT_TRUE(outcome.block_data.has_value());
  EXPECT_GT(outcome.tx_messages, 0u);
  EXPECT_GT(outcome.rx_messages, 0u);
}

}  // namespace
}  // namespace ipfs
