// GossipSub engine tests: mesh formation within degree bounds, at-most-
// once delivery, fanout publishing, IHAVE/IWANT gossip recovery, and —
// the churn cases ISSUE 4 calls out — mesh repair after FaultPlan
// crash-restarts and after node removals.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "pubsub/pubsub.h"
#include "scenario/scenario.h"
#include "stats/jsonl.h"

namespace ipfs {
namespace {

using pubsub::MessageId;
using pubsub::PubsubMessage;

constexpr char kTopic[] = "test-topic";

scenario::Scenario pubsub_swarm(std::size_t peers, std::uint64_t seed = 42) {
  return scenario::ScenarioBuilder()
      .peers(peers)
      .seed(seed)
      .single_region(20.0)
      .pubsub(true)
      .build();
}

// Per-node delivery log: message id -> count.
using DeliveryLog = std::map<MessageId, int>;

void subscribe_all(scenario::Scenario& s, std::vector<DeliveryLog>& logs) {
  logs.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    s.pubsub(i).subscribe(
        kTopic, [&logs, i](const PubsubMessage& m) { ++logs[i][m.id]; });
  }
}

TEST(Pubsub, MeshFormsWithinDegreeBounds) {
  auto s = pubsub_swarm(30);
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(30));

  const auto& config = s.pubsub(0).config();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto mesh = s.pubsub(i).mesh_peers(kTopic);
    EXPECT_GE(mesh.size(), static_cast<std::size_t>(config.degree_lo))
        << "node " << i << " under-meshed";
    EXPECT_LE(mesh.size(), static_cast<std::size_t>(config.degree_hi))
        << "node " << i << " over-meshed";
    // Mesh members must be known topic peers.
    const auto peers = s.pubsub(i).topic_peers(kTopic);
    for (const auto member : mesh)
      EXPECT_NE(std::find(peers.begin(), peers.end(), member), peers.end());
  }
}

TEST(Pubsub, MeshEdgesAreSymmetric) {
  auto s = pubsub_swarm(20);
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(30));

  // After the swarm settles (no publishes, no faults), a grafted edge
  // must be acknowledged on both sides.
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (const auto member : s.pubsub(i).mesh_peers(kTopic)) {
      std::size_t j = 0;
      while (j < s.size() && s.node(j) != member) ++j;
      ASSERT_LT(j, s.size());
      const auto back = s.pubsub(j).mesh_peers(kTopic);
      EXPECT_NE(std::find(back.begin(), back.end(), s.node(i)), back.end())
          << "edge " << i << " -> " << j << " not reciprocated";
    }
  }
}

TEST(Pubsub, PublishReachesEverySubscriberExactlyOnce) {
  auto s = pubsub_swarm(30);
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(15));  // let meshes form

  std::vector<MessageId> published;
  for (std::size_t p = 0; p < 5; ++p) {
    published.push_back(
        s.pubsub(p).publish(kTopic, {static_cast<std::uint8_t>(p)}));
  }
  s.simulator().run_until(sim::seconds(45));

  for (std::size_t i = 0; i < s.size(); ++i) {
    for (const auto& id : published) {
      ASSERT_TRUE(logs[i].contains(id))
          << "node " << i << " missed message from origin " << id.origin;
      EXPECT_EQ(logs[i][id], 1)
          << "node " << i << " delivered a duplicate (at-most-once broken)";
    }
  }
}

TEST(Pubsub, FanoutDeliversFromNonSubscribedPublisher) {
  auto s = pubsub_swarm(20);
  std::vector<DeliveryLog> logs(s.size());
  // Node 0 publishes without subscribing; everyone else subscribes.
  for (std::size_t i = 1; i < s.size(); ++i) {
    s.pubsub(i).subscribe(
        kTopic, [&logs, i](const PubsubMessage& m) { ++logs[i][m.id]; });
  }
  s.simulator().run_until(sim::seconds(15));

  const auto id = s.pubsub(0).publish(kTopic, {0xab});
  s.simulator().run_until(sim::seconds(30));

  EXPECT_EQ(s.pubsub(0).delivered(), 0u);  // publisher never subscribed
  for (std::size_t i = 1; i < s.size(); ++i) {
    ASSERT_TRUE(logs[i].contains(id)) << "node " << i << " missed fanout";
    EXPECT_EQ(logs[i][id], 1);
  }
}

TEST(Pubsub, IhaveIwantRecoversMessageOutsideMesh) {
  // Degree 0 disables eager mesh push entirely, leaving IHAVE/IWANT
  // gossip as the only propagation path.
  pubsub::PubsubConfig config;
  config.with_degree(0, 0, 0);
  auto s = scenario::ScenarioBuilder()
               .peers(2)
               .seed(7)
               .single_region(20.0)
               .pubsub(true)
               .pubsub_config(config)
               .build();
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(5));

  ASSERT_TRUE(s.pubsub(0).mesh_peers(kTopic).empty());
  const auto id = s.pubsub(0).publish(kTopic, {0x01});
  s.simulator().run_until(sim::seconds(20));

  ASSERT_TRUE(logs[1].contains(id)) << "gossip never recovered the message";
  EXPECT_EQ(logs[1][id], 1);
  EXPECT_GE(
      s.network().metrics().counter_value("pubsub.gossip_recovered"), 1u);
}

TEST(Pubsub, UnsubscribeLeavesTheMesh) {
  auto s = pubsub_swarm(12);
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(20));

  s.pubsub(0).unsubscribe(kTopic);
  s.simulator().run_until(sim::seconds(30));

  EXPECT_FALSE(s.pubsub(0).subscribed(kTopic));
  EXPECT_TRUE(s.pubsub(0).mesh_peers(kTopic).empty());
  for (std::size_t i = 1; i < s.size(); ++i) {
    const auto mesh = s.pubsub(i).mesh_peers(kTopic);
    EXPECT_EQ(std::find(mesh.begin(), mesh.end(), s.node(0)), mesh.end())
        << "node " << i << " kept the unsubscribed node meshed";
  }

  const std::size_t before = logs[0].size();
  s.pubsub(3).publish(kTopic, {0x02});
  s.simulator().run_until(sim::seconds(40));
  EXPECT_EQ(logs[0].size(), before) << "unsubscribed node still delivering";
}

TEST(Pubsub, MeshRepairsAfterNodeRemoval) {
  auto s = pubsub_swarm(24);
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);
  s.simulator().run_until(sim::seconds(20));

  // Hard-remove a quarter of the swarm (ids are gone, not just offline).
  std::set<sim::NodeId> removed;
  for (std::size_t i = 0; i < 6; ++i) {
    removed.insert(s.node(i));
    s.network().remove_node(s.node(i));
  }
  s.simulator().run_until(sim::minutes(2));

  const auto& config = s.pubsub(6).config();
  for (std::size_t i = 6; i < s.size(); ++i) {
    const auto mesh = s.pubsub(i).mesh_peers(kTopic);
    for (const auto member : mesh)
      EXPECT_FALSE(removed.contains(member))
          << "node " << i << " still meshes a removed peer";
    EXPECT_GE(mesh.size(), static_cast<std::size_t>(config.degree_lo))
        << "node " << i << " did not re-mesh after removals";
    EXPECT_LE(mesh.size(), static_cast<std::size_t>(config.degree_hi));
  }

  // The repaired mesh still routes.
  const auto id = s.pubsub(6).publish(kTopic, {0x03});
  s.simulator().run_until(sim::minutes(2) + sim::seconds(30));
  for (std::size_t i = 6; i < s.size(); ++i) {
    ASSERT_TRUE(logs[i].contains(id))
        << "node " << i << " unreachable after mesh repair";
    EXPECT_EQ(logs[i][id], 1);
  }
}

TEST(Pubsub, MeshRepairsAfterFaultPlanCrashRestarts) {
  sim::FaultConfig fault_config;
  fault_config.crashes_per_hour_per_node = 30.0;  // ~every 2 min per node
  fault_config.min_downtime = sim::seconds(5);
  fault_config.max_downtime = sim::seconds(20);

  auto s = scenario::ScenarioBuilder()
               .peers(20)
               .seed(11)
               .single_region(20.0)
               .pubsub(true)
               .faults(fault_config)
               .build();
  std::vector<DeliveryLog> logs;
  subscribe_all(s, logs);

  // Crash semantics: the engine loses all soft state; the application
  // re-subscribes and re-seeds candidates on restart (like IpfsNode's
  // bootstrap path does).
  s.faults()->add_crash_listener([&s, &logs](sim::NodeId node, bool online) {
    std::size_t i = 0;
    while (i < s.size() && s.node(i) != node) ++i;
    if (i == s.size()) return;
    if (!online) {
      s.pubsub(i).handle_crash();
      return;
    }
    s.pubsub(i).handle_restart();
    for (std::size_t j = 0; j < s.size(); ++j)
      if (j != i) s.pubsub(i).add_candidate_peer(s.node(j));
    s.pubsub(i).subscribe(
        kTopic, [&logs, i](const PubsubMessage& m) { ++logs[i][m.id]; });
  });
  for (std::size_t i = 0; i < s.size(); ++i)
    s.faults()->manage_crashes(s.node(i));

  s.faults()->arm();
  s.simulator().run_until(sim::minutes(10));
  s.faults()->disarm();
  // Quiet period: every downed node has restarted; meshes re-converge.
  s.simulator().run_until(sim::minutes(12));

  ASSERT_GT(s.faults()->counters().crashes, 0u) << "fault plan never fired";

  const auto& config = s.pubsub(0).config();
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto mesh = s.pubsub(i).mesh_peers(kTopic);
    EXPECT_GE(mesh.size(), static_cast<std::size_t>(config.degree_lo))
        << "node " << i << " under-meshed after crash churn";
    EXPECT_LE(mesh.size(), static_cast<std::size_t>(config.degree_hi));
  }

  // At-most-once must have held throughout the churn.
  for (std::size_t i = 0; i < s.size(); ++i)
    for (const auto& [id, count] : logs[i])
      EXPECT_LE(count, 1) << "node " << i << " double-delivered during churn";

  // And the repaired overlay still floods edge to edge.
  const auto id = s.pubsub(0).publish(kTopic, {0x04});
  s.simulator().run_until(sim::minutes(13));
  for (std::size_t i = 0; i < s.size(); ++i) {
    ASSERT_TRUE(logs[i].contains(id))
        << "node " << i << " unreachable after crash churn";
    EXPECT_EQ(logs[i][id], 1);
  }
}

TEST(Pubsub, SchedulerBackendsProduceIdenticalTraces) {
  // The acceptance criterion's determinism probe at test scale: the same
  // pubsub scenario under wheel and heap schedulers must serialize a
  // byte-identical metrics registry (counters + trace stream).
  auto run = [](sim::SchedulerBackend backend) {
    auto s = scenario::ScenarioBuilder()
                 .peers(16)
                 .seed(99)
                 .single_region(20.0)
                 .scheduler(backend)
                 .pubsub(true)
                 .build();
    std::vector<DeliveryLog> logs;
    subscribe_all(s, logs);
    s.simulator().run_until(sim::seconds(10));
    for (std::size_t p = 0; p < 4; ++p)
      s.pubsub(p).publish(kTopic, {static_cast<std::uint8_t>(p)});
    s.simulator().run_until(sim::seconds(40));
    std::ostringstream out;
    stats::export_registry_jsonl(s.network().metrics(), out);
    return out.str();
  };

  const std::string wheel = run(sim::SchedulerBackend::kTimerWheel);
  const std::string heap = run(sim::SchedulerBackend::kBinaryHeap);
  ASSERT_FALSE(wheel.empty());
  EXPECT_EQ(wheel, heap);
}

}  // namespace
}  // namespace ipfs
