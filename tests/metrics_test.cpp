// Metrics-layer tests: registry instruments, span lifecycle, the bounded
// trace stream, JSONL round-trips, and consistency between the trace
// stream and the node-level PublishTrace/RetrievalTrace views derived
// from it.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/metrics.h"
#include "node/ipfs_node.h"
#include "stats/jsonl.h"
#include "testutil.h"

namespace ipfs {
namespace {

// A registry on a hand-cranked clock, so span durations are exact.
struct ClockedRegistry {
  sim::Time now = 0;
  metrics::Registry registry{[this] { return now; }};
};

TEST(MetricsRegistryTest, CountersGaugesAndHistograms) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;

  registry.counter("a").inc();
  registry.counter("a").inc(4);
  EXPECT_EQ(registry.counter_value("a"), 5u);
  EXPECT_EQ(registry.counter_value("never-touched"), 0u);

  registry.gauge("g").set(2.5);
  registry.gauge("g").add(-1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 1.5);

  registry.histogram("h").record(sim::seconds(2));
  registry.histogram("h").record(sim::seconds(4));
  EXPECT_EQ(registry.histogram("h").count(), 2u);
  EXPECT_EQ(registry.histogram("h").sum(), sim::seconds(6));
  EXPECT_DOUBLE_EQ(registry.histogram("h").samples_seconds()[1], 4.0);
}

TEST(MetricsRegistryTest, SpanLifecycleFeedsTraceAndHistogram) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;

  const auto parent = registry.begin_span("op.total", 3, "cid-1");
  clocked.now = 100;
  const auto child = registry.begin_span("op.phase", 3, "cid-1", parent, 9);
  EXPECT_EQ(registry.open_span_count(), 2u);

  clocked.now = 250;
  EXPECT_EQ(registry.end_span(child, true, 42), 150);
  clocked.now = 400;
  EXPECT_EQ(registry.end_span(parent, false), 400);
  EXPECT_EQ(registry.open_span_count(), 0u);

  // Same-named histogram fed by the span close.
  EXPECT_EQ(registry.histogram("op.phase").count(), 1u);
  EXPECT_EQ(registry.histogram("op.phase").sum(), 150);

  ASSERT_EQ(registry.events().size(), 4u);
  const auto& child_end = registry.events()[2];
  EXPECT_EQ(child_end.kind, metrics::EventKind::kSpanEnd);
  EXPECT_EQ(child_end.name, "op.phase");
  EXPECT_EQ(child_end.parent, parent);
  EXPECT_EQ(child_end.peer, 9u);
  EXPECT_EQ(child_end.value, 42u);
  EXPECT_EQ(child_end.duration, 150);
  EXPECT_TRUE(child_end.ok);
  const auto& parent_end = registry.events()[3];
  EXPECT_FALSE(parent_end.ok);
  EXPECT_EQ(parent_end.duration, 400);
}

TEST(MetricsRegistryTest, EndingUnknownOrClosedSpanIsANoOp) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;
  const auto span = registry.begin_span("op");
  EXPECT_EQ(registry.end_span(span), 0);
  EXPECT_EQ(registry.end_span(span), 0);          // already closed
  EXPECT_EQ(registry.end_span(span + 1000), 0);   // never existed
  EXPECT_EQ(registry.events().size(), 2u);        // one begin + one end
}

TEST(MetricsRegistryTest, TraceCapacityDropsEventsButNotInstruments) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;
  registry.set_trace_capacity(3);
  for (int i = 0; i < 5; ++i) {
    registry.instant("tick");
    registry.counter("ticks").inc();
  }
  EXPECT_EQ(registry.events().size(), 3u);
  EXPECT_EQ(registry.trace_dropped(), 2u);
  EXPECT_EQ(registry.counter_value("ticks"), 5u);

  // Span timing survives the full stream: histograms and end_span's
  // return value come from the open-span table, not the event buffer.
  const auto span = registry.begin_span("late.op");
  clocked.now = 70;
  EXPECT_EQ(registry.end_span(span), 70);
  EXPECT_EQ(registry.histogram("late.op").count(), 1u);
}

TEST(MetricsRegistryTest, TraceFilterGatesTheStreamOnly) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;
  registry.set_trace_filter([](const std::string& name) {
    return name.starts_with("keep.");
  });

  registry.instant("keep.this");
  const auto span = registry.begin_span("drop.that");
  clocked.now = 10;
  EXPECT_EQ(registry.end_span(span), 10);

  ASSERT_EQ(registry.events().size(), 1u);
  EXPECT_EQ(registry.events()[0].name, "keep.this");
  EXPECT_EQ(registry.trace_dropped(), 0u);  // filtered, not dropped
  EXPECT_EQ(registry.histogram("drop.that").count(), 1u);
}

TEST(MetricsJsonlTest, TraceRoundTripsThroughJsonl) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;

  const auto parent = registry.begin_span("publish.total", 2, "bafy-root");
  clocked.now = 1500;
  const auto child =
      registry.begin_span("publish.walk", 2, "bafy-root", parent, 17);
  clocked.now = 2750;
  registry.end_span(child, true, 123);
  registry.instant("gateway.served.p2p", 4, "bafy-\"quoted\"\n", 999, 5);
  clocked.now = 4000;
  registry.end_span(parent, false);

  std::stringstream jsonl;
  stats::export_trace_jsonl(registry, jsonl);
  const auto parsed = stats::parse_trace_jsonl(jsonl);

  const auto& events = registry.events();
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind) << "event " << i;
    EXPECT_EQ(parsed[i].span, events[i].span);
    EXPECT_EQ(parsed[i].parent, events[i].parent);
    EXPECT_EQ(parsed[i].name, events[i].name);
    EXPECT_EQ(parsed[i].time, events[i].time);
    EXPECT_EQ(parsed[i].node, events[i].node);
    EXPECT_EQ(parsed[i].peer, events[i].peer);
    EXPECT_EQ(parsed[i].cid, events[i].cid);
    EXPECT_EQ(parsed[i].ok, events[i].ok);
    EXPECT_EQ(parsed[i].value, events[i].value);
    EXPECT_EQ(parsed[i].duration, events[i].duration);
  }
}

TEST(MetricsJsonlTest, InstrumentExportCarriesCountersAndHistograms) {
  ClockedRegistry clocked;
  auto& registry = clocked.registry;
  registry.counter("net.dials_attempted").inc(7);
  registry.gauge("load").set(0.5);
  registry.histogram("net.dial").record(sim::milliseconds(250));

  std::stringstream jsonl;
  stats::export_metrics_jsonl(registry, jsonl);
  const std::string text = jsonl.str();
  EXPECT_NE(text.find(
                R"({"type":"counter","name":"net.dials_attempted","value":7})"),
            std::string::npos);
  EXPECT_NE(text.find(R"("name":"load")"), std::string::npos);
  EXPECT_NE(text.find(R"("sum_us":250000)"), std::string::npos);

  // Instrument lines are ignored by the trace parser.
  std::stringstream both;
  stats::export_registry_jsonl(registry, both);
  EXPECT_TRUE(stats::parse_trace_jsonl(both).empty());
}

// --- End-to-end: the pipeline's traces are views of the span stream -------

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class MetricsPipelineTest : public ::testing::Test {
 protected:
  MetricsPipelineTest() : swarm_(80, /*seed=*/23) {
    node::IpfsNodeConfig publisher_config;
    publisher_config.identity_seed = 71;
    publisher_ = std::make_unique<node::IpfsNode>(swarm_.network(),
                                                  publisher_config);
    node::IpfsNodeConfig retriever_config;
    retriever_config.identity_seed = 72;
    retriever_config.provide_after_fetch = false;
    retriever_ = std::make_unique<node::IpfsNode>(swarm_.network(),
                                                  retriever_config);
    std::vector<dht::PeerRef> seeds;
    for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
    publisher_->bootstrap(seeds, [](bool) {});
    retriever_->bootstrap(seeds, [](bool) {});
    swarm_.simulator().run();
  }

  const metrics::TraceEvent* find_span_end(const std::string& name) {
    for (const auto& event : swarm_.network().metrics().events())
      if (event.kind == metrics::EventKind::kSpanEnd && event.name == name)
        return &event;
    return nullptr;
  }

  testutil::TestSwarm swarm_;
  std::unique_ptr<node::IpfsNode> publisher_;
  std::unique_ptr<node::IpfsNode> retriever_;
};

TEST_F(MetricsPipelineTest, TracesAreDerivedViewsOfTheSpanStream) {
  const auto data = random_bytes(600 * 1024, 1);
  node::PublishTrace publish_trace;
  publisher_->publish(data, [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  node::RetrievalTrace trace;
  retriever_->retrieve(publish_trace.cid,
                       [&](node::RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(trace.ok);

  // Publication phases: the trace's fields ARE the span durations.
  const auto* publish_total = find_span_end("publish.total");
  ASSERT_NE(publish_total, nullptr);
  EXPECT_EQ(publish_total->duration, publish_trace.total);
  EXPECT_EQ(publish_total->node, publisher_->node());
  EXPECT_EQ(publish_total->cid, publish_trace.cid.to_string());
  const auto* walk = find_span_end("publish.walk");
  ASSERT_NE(walk, nullptr);
  EXPECT_EQ(walk->duration, publish_trace.walk);
  EXPECT_EQ(walk->parent, publish_total->span);
  const auto* batch = find_span_end("publish.rpc_batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->duration, publish_trace.rpc_batch);

  // Retrieval: byte counts and timings agree between the RetrievalTrace
  // and the trace stream (the acceptance-criteria consistency check).
  const auto* total = find_span_end("retrieve.total");
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(total->ok);
  EXPECT_EQ(total->node, retriever_->node());
  EXPECT_EQ(total->cid, trace.cid.to_string());
  EXPECT_EQ(total->value, trace.bytes);
  EXPECT_EQ(total->duration, trace.total);

  const auto* fetch = find_span_end("retrieve.fetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->value, trace.bytes);
  EXPECT_EQ(fetch->duration, trace.fetch);
  EXPECT_EQ(fetch->parent, total->span);

  const auto* discovery = find_span_end("retrieve.bitswap_discovery");
  ASSERT_NE(discovery, nullptr);
  EXPECT_EQ(discovery->duration, trace.bitswap_discovery);
  const auto* provider_walk = find_span_end("retrieve.provider_walk");
  ASSERT_NE(provider_walk, nullptr);
  EXPECT_EQ(provider_walk->duration, trace.provider_walk);
  const auto* dial = find_span_end("retrieve.dial");
  ASSERT_NE(dial, nullptr);
  EXPECT_EQ(dial->duration, trace.dial + trace.negotiate);

  // Fetched bytes also appear on the wire: the network counted at least
  // that much leaving the provider side.
  const auto& registry = swarm_.network().metrics();
  EXPECT_GE(registry.counter_value("net.bytes_sent"), trace.bytes);
  EXPECT_GE(registry.counter_value("bitswap.bytes_received"), trace.bytes);
  EXPECT_GT(registry.counter_value("net.dials_attempted"), 0u);
  EXPECT_GT(registry.counter_value("net.rpcs_sent"), 0u);

  // Every dial, RPC, lookup, and phase span closed by the drain.
  EXPECT_EQ(registry.open_span_count(), 0u);
}

}  // namespace
}  // namespace ipfs
