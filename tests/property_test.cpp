// Property-style invariant sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// round-trips, canonical encodings, ordering invariants and conservation
// laws across randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "dht/key.h"
#include "dht/routing_table.h"
#include "merkledag/merkledag.h"
#include "merkledag/unixfs.h"
#include "multiformats/cid.h"
#include "multiformats/multiaddr.h"
#include "multiformats/multibase.h"
#include "multiformats/varint.h"
#include "sim/rng.h"
#include "stats/stats.h"
#include "testutil.h"

namespace ipfs {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// --------------------------------------------------------------------------
// Multibase: decode(encode(x)) == x for every base, many random inputs
// --------------------------------------------------------------------------

using BaseAndSeed = std::tuple<multiformats::Multibase, std::uint64_t>;

class MultibaseProperty : public ::testing::TestWithParam<BaseAndSeed> {};

TEST_P(MultibaseProperty, RoundTripsRandomPayloads) {
  const auto [base, seed] = GetParam();
  sim::Rng rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    const auto length = static_cast<std::size_t>(rng.uniform_int(0, 200));
    const auto data = random_bytes(length, rng.next());
    const auto text = multiformats::multibase_encode(base, data);
    const auto back = multiformats::multibase_decode(text);
    ASSERT_TRUE(back.has_value()) << "len=" << length;
    EXPECT_EQ(*back, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBases, MultibaseProperty,
    ::testing::Combine(
        ::testing::Values(multiformats::Multibase::kBase16,
                          multiformats::Multibase::kBase32,
                          multiformats::Multibase::kBase58Btc,
                          multiformats::Multibase::kBase64,
                          multiformats::Multibase::kBase64Url),
        ::testing::Values(1ULL, 2ULL, 3ULL)));

// --------------------------------------------------------------------------
// Varint: round trip + length monotonicity across magnitudes
// --------------------------------------------------------------------------

class VarintProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintProperty, RoundTripsAndIsMinimal) {
  sim::Rng rng(GetParam());
  std::size_t previous_length = 1;
  for (int bits = 0; bits < 63; ++bits) {
    const std::uint64_t value =
        (1ULL << bits) | (rng.next() & ((1ULL << bits) - 1));
    const auto encoded = multiformats::varint_encode(value);
    const auto decoded = multiformats::varint_decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, value);
    EXPECT_EQ(decoded->consumed, encoded.size());
    // Length never decreases with magnitude and matches ceil(bits/7).
    EXPECT_GE(encoded.size(), previous_length);
    EXPECT_EQ(encoded.size(), static_cast<std::size_t>(bits / 7) + 1);
    previous_length = encoded.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL));

// --------------------------------------------------------------------------
// Ed25519: sign/verify over random seeds and message lengths
// --------------------------------------------------------------------------

class Ed25519Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ed25519Property, SignVerifyAcrossMessageLengths) {
  sim::Rng rng(GetParam());
  crypto::Ed25519Seed seed{};
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
  const auto keypair = crypto::ed25519_keypair(seed);

  for (const std::size_t length : {0u, 1u, 31u, 32u, 33u, 100u, 1000u}) {
    const auto message = random_bytes(length, rng.next());
    const auto signature = crypto::ed25519_sign(keypair, message);
    EXPECT_TRUE(crypto::ed25519_verify(keypair.public_key, message,
                                       signature));
    // Any single-bit flip in the message must invalidate the signature.
    if (!message.empty()) {
      auto tampered = message;
      tampered[tampered.size() / 2] ^= 0x01;
      EXPECT_FALSE(crypto::ed25519_verify(keypair.public_key, tampered,
                                          signature));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ed25519Property,
                         ::testing::Values(101ULL, 202ULL, 303ULL));

// --------------------------------------------------------------------------
// DHT keys: XOR-metric axioms on random key triples
// --------------------------------------------------------------------------

class KeyMetricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyMetricProperty, XorMetricAxioms) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const dht::Key a = dht::Key::hash_of(random_bytes(16, rng.next()));
    const dht::Key b = dht::Key::hash_of(random_bytes(16, rng.next()));
    const dht::Key c = dht::Key::hash_of(random_bytes(16, rng.next()));

    // Identity and symmetry.
    const auto zero = a.distance_to(a);
    EXPECT_TRUE(std::all_of(zero.begin(), zero.end(),
                            [](std::uint8_t byte) { return byte == 0; }));
    EXPECT_EQ(a.distance_to(b), b.distance_to(a));

    // XOR "triangle equality": d(a,c) == d(a,b) XOR d(b,c).
    const auto ab = a.distance_to(b);
    const auto bc = b.distance_to(c);
    const auto ac = a.distance_to(c);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(ac[i], ab[i] ^ bc[i]);

    // Unidirectionality: exactly one of a,b is closer to c (unless equal).
    if (a != b)
      EXPECT_NE(a.closer_to(c, b), b.closer_to(c, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyMetricProperty,
                         ::testing::Values(5ULL, 6ULL, 7ULL));

// --------------------------------------------------------------------------
// Routing table: closest() agrees with brute force on random tables
// --------------------------------------------------------------------------

class RoutingTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingTableProperty, ClosestMatchesBruteForce) {
  sim::Rng rng(GetParam());
  dht::RoutingTable table(
      dht::Key::for_peer(testutil::synthetic_peer_id(rng.next())));
  std::vector<dht::PeerRef> inserted;
  for (int i = 0; i < 300; ++i) {
    dht::PeerRef ref{testutil::synthetic_peer_id(rng.next()),
                     static_cast<sim::NodeId>(i),
                     {}};
    if (table.upsert(ref)) inserted.push_back(ref);
  }
  // Note: upsert may reject peers whose bucket is full; brute-force over
  // what the table actually holds.
  const auto held = table.all_peers();

  for (int trial = 0; trial < 10; ++trial) {
    const dht::Key target = dht::Key::hash_of(random_bytes(8, rng.next()));
    const auto closest = table.closest(target, 20);
    ASSERT_LE(closest.size(), 20u);

    // Brute force.
    auto expected = held;
    std::sort(expected.begin(), expected.end(),
              [&](const dht::PeerRef& x, const dht::PeerRef& y) {
                return dht::Key::for_peer(x.id).distance_to(target) <
                       dht::Key::for_peer(y.id).distance_to(target);
              });
    expected.resize(std::min<std::size_t>(20, expected.size()));
    ASSERT_EQ(closest.size(), expected.size());
    for (std::size_t i = 0; i < closest.size(); ++i)
      EXPECT_EQ(closest[i].id, expected[i].id) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTableProperty,
                         ::testing::Values(13ULL, 14ULL, 15ULL));

// --------------------------------------------------------------------------
// Merkle DAG: cat(import(x)) == x across sizes and chunk sizes, and
// block-count conservation
// --------------------------------------------------------------------------

using SizeAndChunk = std::tuple<std::size_t, std::size_t>;

class MerkleDagProperty : public ::testing::TestWithParam<SizeAndChunk> {};

TEST_P(MerkleDagProperty, ImportCatRoundTrip) {
  const auto [size, chunk_size] = GetParam();
  blockstore::BlockStore store;
  const auto data = random_bytes(size, size * 31 + chunk_size);
  const auto result = merkledag::import_bytes(store, data, chunk_size);
  EXPECT_EQ(merkledag::cat(store, result.root), data);

  // Chunk-count conservation.
  const std::size_t expected_chunks =
      data.empty() ? 1 : (data.size() + chunk_size - 1) / chunk_size;
  EXPECT_EQ(result.chunk_count, expected_chunks);

  // Every reachable block verifies against its CID.
  const auto cids = merkledag::enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  for (const auto& cid : *cids) {
    const auto block = store.get(cid);
    ASSERT_TRUE(block != nullptr);
    EXPECT_TRUE(cid.hash().verifies(*block));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndChunks, MerkleDagProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 255u, 256u, 257u, 4096u,
                                         100000u),
                       ::testing::Values(256u, 1024u)));

// --------------------------------------------------------------------------
// UnixFS trees: resolve(import(tree), path) finds every file
// --------------------------------------------------------------------------

class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, EveryImportedFileResolves) {
  sim::Rng rng(GetParam());
  blockstore::BlockStore store;
  std::vector<merkledag::TreeFile> files;
  const char* const names[] = {"a", "bb", "ccc", "d-4", "e_5"};
  for (int i = 0; i < 12; ++i) {
    std::string path = names[rng.uniform_int(0, 4)];
    const int depth = static_cast<int>(rng.uniform_int(0, 3));
    for (int d = 0; d < depth; ++d)
      path += std::string("/") + names[rng.uniform_int(0, 4)];
    path += "/file" + std::to_string(i);
    files.push_back({path, random_bytes(
                               static_cast<std::size_t>(
                                   rng.uniform_int(1, 5000)),
                               rng.next())});
  }
  const auto root = merkledag::import_tree(store, files);
  ASSERT_TRUE(root.has_value());
  for (const auto& file : files) {
    const auto cid = merkledag::resolve_path(store, *root, file.path);
    ASSERT_TRUE(cid.has_value()) << file.path;
    EXPECT_EQ(merkledag::cat(store, *cid), file.content) << file.path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Values(41ULL, 42ULL, 43ULL));

// --------------------------------------------------------------------------
// Stats: CDF/percentile consistency on random samples
// --------------------------------------------------------------------------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, CdfAndPercentilesAgree) {
  sim::Rng rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniform(0, 1000));
  const stats::Cdf cdf(samples);

  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double value = cdf.percentile(p);
    // at(percentile(p)) must bracket p/100 within one sample weight.
    const double fraction = cdf.at(value);
    EXPECT_GE(fraction, p / 100.0 - 0.01);
    EXPECT_LE(cdf.at(value - 1e-9), p / 100.0 + 0.01);
  }
  // Monotonicity of at().
  EXPECT_LE(cdf.at(100.0), cdf.at(500.0));
  EXPECT_LE(cdf.at(500.0), cdf.at(900.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(51ULL, 52ULL, 53ULL));

// --------------------------------------------------------------------------
// Multiaddr: parse(to_string(x)) == x over random well-formed addresses
// --------------------------------------------------------------------------

class MultiaddrProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiaddrProperty, TextAndBinaryRoundTrips) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const std::string ip = std::to_string(rng.uniform_int(1, 254)) + "." +
                           std::to_string(rng.uniform_int(0, 255)) + "." +
                           std::to_string(rng.uniform_int(0, 255)) + "." +
                           std::to_string(rng.uniform_int(1, 254));
    const auto port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const bool quic = rng.chance(0.5);
    const auto addr = quic ? multiformats::make_quic_multiaddr(ip, port)
                           : multiformats::make_tcp_multiaddr(ip, port);
    ASSERT_FALSE(addr.empty());

    const auto reparsed = multiformats::Multiaddr::parse(addr.to_string());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, addr);

    const auto decoded = multiformats::Multiaddr::decode(addr.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, addr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiaddrProperty,
                         ::testing::Values(61ULL, 62ULL, 63ULL));

}  // namespace
}  // namespace ipfs
