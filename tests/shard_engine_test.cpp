// Sharded parallel event core (src/sim/parallel): cross-shard merge
// order, lookahead windowing edge cases, cancellation/run semantics
// matching the sequential Simulator, per-shard metric conservation, and
// the network-level determinism contract (an N-shard fabric replays the
// 1-shard trace byte-identically).
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dht/dht_node.h"
#include "metrics/metrics.h"
#include "scenario/scenario.h"
#include "sim/network.h"
#include "sim/parallel/shard_engine.h"
#include "stats/jsonl.h"

namespace ipfs::sim::parallel {
namespace {

metrics::Registry* null_registry() { return nullptr; }

// --------------------------------------------------------------------------
// Merge order
// --------------------------------------------------------------------------

TEST(ShardEngineTest, MergesByTimestampThenOriginThenSequence) {
  ShardEngine engine(4, milliseconds(1), null_registry());
  std::vector<std::string> order;
  const auto post = [&](std::uint32_t origin, Time when,
                        const std::string& tag) {
    engine.post(origin, origin % 4, when, /*daemon=*/false,
                [&order, tag] { order.push_back(tag); });
  };
  // Insertion order deliberately scrambled: the merge must sort by
  // (when, origin, per-origin sequence), not by insertion.
  post(3, milliseconds(10), "t10-o3-a");
  post(1, milliseconds(10), "t10-o1");
  post(2, milliseconds(5), "t5-o2");
  post(3, milliseconds(10), "t10-o3-b");
  post(0, milliseconds(10), "t10-o0");
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"t5-o2", "t10-o0", "t10-o1",
                                             "t10-o3-a", "t10-o3-b"}));
  EXPECT_EQ(engine.now(), milliseconds(10));
}

TEST(ShardEngineTest, ExecutionOrderIsShardCountInvariant) {
  // One event program, replayed at 1/2/4 shards: callbacks fan out more
  // events across origins (so cross-shard staging and the fast path both
  // fire at N > 1), and the observed (time, tag) log must not change.
  const auto run_at = [](std::size_t shards) {
    ShardEngine engine(shards, milliseconds(5), null_registry());
    std::vector<std::pair<Time, std::string>> log;
    for (std::uint32_t origin = 0; origin < 6; ++origin) {
      engine.post(
          origin, origin % engine.shard_count(), milliseconds(1 + origin),
          false, [&, origin] {
            log.emplace_back(engine.now(), "root-" + std::to_string(origin));
            for (std::uint32_t peer = 0; peer < 6; ++peer) {
              const Duration delay =
                  peer == origin ? 0 : milliseconds(3 + (peer + origin) % 7);
              engine.post(origin, peer % engine.shard_count(),
                          engine.now() + delay, false, [&, origin, peer] {
                            log.emplace_back(
                                engine.now(),
                                std::to_string(origin) + "->" +
                                    std::to_string(peer));
                          });
            }
          });
    }
    engine.run();
    return log;
  };
  const auto baseline = run_at(1);
  EXPECT_EQ(baseline.size(), 42u);
  EXPECT_EQ(run_at(2), baseline);
  EXPECT_EQ(run_at(4), baseline);
}

// --------------------------------------------------------------------------
// Lookahead edge cases
// --------------------------------------------------------------------------

TEST(ShardEngineTest, ZeroDelaySelfSendRunsInsideTheCurrentWindow) {
  // A delay-0 continuation on the executing shard must run immediately
  // after its parent (same timestamp, later sequence) — it cannot wait
  // for a window barrier or the causal chain would stall.
  ShardEngine engine(4, milliseconds(1), null_registry());
  std::vector<std::string> order;
  engine.post(2, 2, milliseconds(4), false, [&] {
    order.push_back("parent");
    engine.post(2, 2, engine.now(), false,
                [&] { order.push_back("self-send"); });
    // A sibling on another shard at a later-but-in-window time still
    // sorts after the self-send.
  });
  engine.post(3, 3, milliseconds(4), false, [&] { order.push_back("peer"); });
  engine.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"parent", "self-send", "peer"}));
}

TEST(ShardEngineTest, ArrivalAtWindowBoundaryIsStagedAndStillOrdered) {
  // Lookahead L: a cross-shard event landing at exactly window_end is the
  // min-RTT boundary case — it must be staged in the destination inbox
  // (not inserted mid-window) and still execute in global order.
  ShardEngine engine(2, milliseconds(10), null_registry());
  std::vector<std::string> order;
  engine.post(0, 0, 0, false, [&] {
    order.push_back("t0");
    // Window is [0, 10ms). Exactly at the boundary: staged.
    engine.post(0, 1, milliseconds(10), false,
                [&] { order.push_back("boundary"); });
    // Below the boundary to the other shard: fast-path insert.
    engine.post(0, 1, milliseconds(9), false,
                [&] { order.push_back("in-window"); });
  });
  engine.post(1, 1, milliseconds(12), false, [&] { order.push_back("t12"); });
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"t0", "in-window", "boundary",
                                             "t12"}));
  EXPECT_EQ(engine.cross_shard_batched(), 1u);
  EXPECT_EQ(engine.cross_shard_fast(), 1u);
}

TEST(ShardEngineTest, SingleShardStagesNothing) {
  ShardEngine engine(1, milliseconds(10), null_registry());
  int fired = 0;
  engine.post(0, 0, 0, false, [&] {
    ++fired;
    engine.post(0, 0, seconds(5), false, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.cross_shard_batched(), 0u);
  EXPECT_EQ(engine.cross_shard_fast(), 0u);
}

// --------------------------------------------------------------------------
// Simulator-parity semantics
// --------------------------------------------------------------------------

TEST(ShardEngineTest, CancelledEventsDoNotFireAndRunReturns) {
  ShardEngine engine(2, milliseconds(1), null_registry());
  bool fired = false;
  Timer timer =
      engine.schedule(0, 0, seconds(1), false, [&] { fired = true; });
  EXPECT_TRUE(timer.active());
  timer.cancel();
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(engine.foreground_pending(), 0u);
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_FALSE(fired);
}

TEST(ShardEngineTest, RunUntilIsInclusiveAndAdvancesTheClock) {
  ShardEngine engine(2, milliseconds(1), null_registry());
  int count = 0;
  engine.post(0, 0, seconds(1), false, [&] { ++count; });
  engine.post(1, 1, seconds(5), false, [&] { ++count; });  // == deadline
  engine.post(0, 0, seconds(10), false, [&] { ++count; });
  EXPECT_EQ(engine.run_until(seconds(5)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(engine.now(), seconds(5));
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(ShardEngineTest, DaemonsDoNotKeepRunAlive) {
  ShardEngine engine(2, milliseconds(1), null_registry());
  int foreground = 0;
  int daemon = 0;
  engine.post(1, 1, seconds(2), true, [&] { ++daemon; });
  engine.post(0, 0, seconds(1), false, [&] { ++foreground; });
  engine.run();
  EXPECT_EQ(foreground, 1);
  EXPECT_EQ(daemon, 0);  // still pending, run() stopped at the drain
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run_until(seconds(3));
  EXPECT_EQ(daemon, 1);
}

TEST(ShardEngineTest, LargeCapturesFallBackToTheHeapPath) {
  // Closures above InlineTask::kInlineBytes take the heap fallback;
  // behaviour must be identical.
  ShardEngine engine(1, milliseconds(1), null_registry());
  std::array<std::uint64_t, 24> big{};  // 192 bytes of capture
  big[23] = 7;
  std::uint64_t seen = 0;
  engine.post(0, 0, seconds(1), false, [&seen, big] { seen = big[23]; });
  engine.run();
  EXPECT_EQ(seen, 7u);
}

// --------------------------------------------------------------------------
// Per-shard metrics conservation
// --------------------------------------------------------------------------

TEST(ShardEngineTest, PerShardEventCountersSumToAggregate) {
  metrics::Registry registry([] { return Time{0}; });
  ShardEngine engine(4, milliseconds(1), &registry);
  for (std::uint32_t origin = 0; origin < 32; ++origin)
    engine.post(origin, origin % 4, milliseconds(origin), false, [] {});
  engine.run();

  const std::uint64_t total = registry.counter("par.events").value();
  EXPECT_EQ(total, engine.events_executed());
  EXPECT_EQ(total, 32u);
  std::uint64_t per_shard_sum = 0;
  for (std::size_t i = 0; i < engine.shard_count(); ++i) {
    const std::uint64_t shard_total =
        registry.counter("par.shard" + std::to_string(i) + ".events").value();
    EXPECT_EQ(shard_total, engine.shard_events(i));
    EXPECT_GT(shard_total, 0u);
    per_shard_sum += shard_total;
  }
  EXPECT_EQ(per_shard_sum, total);
  EXPECT_GT(registry.counter("par.windows").value(), 0u);
}

// --------------------------------------------------------------------------
// Network integration
// --------------------------------------------------------------------------

TEST(ShardEngineTest, ZeroLatencyFloorFallsBackToOneShard) {
  // A zero-latency matrix admits no safe lookahead: enable_sharding must
  // degrade to the sequential single-shard configuration.
  Simulator simulator;
  LatencyModel latency({{0.0}}, 1.0, 1.0);
  Network network(simulator, latency, 42);
  network.enable_sharding(8);
  EXPECT_TRUE(network.sharded());
  EXPECT_EQ(network.shard_count(), 1u);
}

TEST(ShardEngineTest, NetworkMapsPeersToShardsById) {
  Simulator simulator;
  LatencyModel latency({{20.0, 60.0}, {60.0, 15.0}}, 0.95, 1.25);
  Network network(simulator, latency, 42);
  network.enable_sharding(4);
  EXPECT_EQ(network.shard_count(), 4u);
  EXPECT_EQ(network.shard_of(0), 0u);
  EXPECT_EQ(network.shard_of(5), 1u);
  EXPECT_EQ(network.shard_of(11), 3u);
  // Lookahead = floor(min one-way x jitter_low) = 15ms * 0.95.
  EXPECT_EQ(network.engine()->lookahead(), milliseconds(15.0 * 0.95));
}

// Strips the engine's own par.* records, which legitimately differ with
// the shard count (window counts, per-shard distributions).
std::string strip_par_lines(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("par.") == std::string::npos) out << line << '\n';
  return out.str();
}

// Full-fabric determinism gate: the same seeded swarm workload, run at 1
// vs 2 vs 4 shards, must export a byte-identical metrics/trace stream
// (par.* aside). This is the small-scale oracle check docs/SCALING.md
// promises: shard count changes the engine's internals, never the
// simulation.
std::string sharded_swarm_trace(std::size_t shards) {
  scenario::Scenario swarm = scenario::ScenarioBuilder()
                                 .peers(12)
                                 .seed(1234)
                                 .regions({{20.0, 60.0, 120.0},
                                           {60.0, 15.0, 90.0},
                                           {120.0, 90.0, 25.0}})
                                 .dht_servers(true)
                                 .shards(shards)
                                 .build();
  sim::Network& network = swarm.network();
  int done = 0;
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    swarm.dht(i).lookup_closest(
        dht::Key::for_peer(swarm.ref((i + 5) % swarm.size()).id),
        [&](dht::LookupResult) { ++done; });
  }
  network.run();
  network.run_until(network.now() + seconds(30));
  EXPECT_EQ(done, 12);
  std::ostringstream out;
  stats::export_registry_jsonl(network.metrics(), out);
  return out.str();
}

TEST(ShardEngineTest, ShardedSwarmTraceIsByteIdenticalToSingleShard) {
  const std::string oracle = strip_par_lines(sharded_swarm_trace(1));
  EXPECT_FALSE(oracle.empty());
  EXPECT_EQ(strip_par_lines(sharded_swarm_trace(2)), oracle);
  EXPECT_EQ(strip_par_lines(sharded_swarm_trace(4)), oracle);
}

}  // namespace
}  // namespace ipfs::sim::parallel
