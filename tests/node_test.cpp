// Full-node tests: address book, connection manager, and the end-to-end
// publication/retrieval pipelines with their timing decompositions.
#include <gtest/gtest.h>

#include "blockstore/persist/async_store.h"
#include "node/ipfs_node.h"
#include "transport/sim_transport.h"
#include "node/pinning_service.h"
#include "testutil.h"

namespace ipfs::node {
namespace {

using testutil::TestSwarm;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// --------------------------------------------------------------------------
// AddressBook
// --------------------------------------------------------------------------

dht::PeerRef ref_of(std::uint64_t n) {
  return dht::PeerRef{testutil::synthetic_peer_id(n),
                      static_cast<sim::NodeId>(n),
                      {testutil::synthetic_address(
                          static_cast<std::uint32_t>(n))}};
}

TEST(AddressBookTest, InsertAndFind) {
  AddressBook book;
  book.insert(ref_of(1));
  const auto found = book.find(testutil::synthetic_peer_id(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node, 1u);
  EXPECT_FALSE(book.find(testutil::synthetic_peer_id(2)).has_value());
  EXPECT_EQ(book.hits(), 1u);
  EXPECT_EQ(book.misses(), 1u);
}

TEST(AddressBookTest, CapacityEvictsLeastRecentlyUsed) {
  AddressBook book(3);
  book.insert(ref_of(1));
  book.insert(ref_of(2));
  book.insert(ref_of(3));
  book.find(testutil::synthetic_peer_id(1));  // refresh 1; LRU is now 2
  book.insert(ref_of(4));                     // evicts 2
  EXPECT_TRUE(book.find(testutil::synthetic_peer_id(1)).has_value());
  EXPECT_FALSE(book.find(testutil::synthetic_peer_id(2)).has_value());
  EXPECT_TRUE(book.find(testutil::synthetic_peer_id(4)).has_value());
  EXPECT_EQ(book.size(), 3u);
}

TEST(AddressBookTest, DefaultCapacityIs900) {
  // Paper Section 3.2: "an address book of up to 900 recently seen peers".
  AddressBook book;
  EXPECT_EQ(book.capacity(), 900u);
  for (std::uint64_t i = 0; i < 1000; ++i) book.insert(ref_of(i));
  EXPECT_EQ(book.size(), 900u);
}

TEST(AddressBookTest, InsertRefreshesAddresses) {
  AddressBook book;
  auto ref = ref_of(1);
  book.insert(ref);
  ref.node = 42;
  book.insert(ref);
  EXPECT_EQ(book.size(), 1u);
  EXPECT_EQ(book.find(testutil::synthetic_peer_id(1))->node, 42u);
}

// --------------------------------------------------------------------------
// ConnectionManager
// --------------------------------------------------------------------------

TEST(ConnectionManagerTest, TrimClosesDownToLowWater) {
  sim::Simulator sim;
  sim::LatencyModel latency({{5.0}}, 1.0, 1.0);
  sim::Network network(sim, latency, 9);
  const sim::NodeId self = network.add_node({.region = 0});
  std::vector<sim::NodeId> peers;
  for (int i = 0; i < 12; ++i) peers.push_back(network.add_node({.region = 0}));
  for (const auto peer : peers)
    network.connect(self, peer, [](bool, sim::Duration) {});
  sim.run();
  ASSERT_EQ(network.connections_of(self).size(), 12u);

  transport::SimTransport transport(network, self);
  ConnectionManager manager(transport, {.low_water = 4, .high_water = 8});
  EXPECT_EQ(manager.trim(), 8u);
  EXPECT_EQ(network.connections_of(self).size(), 4u);
  EXPECT_EQ(manager.trim(), 0u);  // below high water now
}

TEST(ConnectionManagerTest, ProtectedPeersSurviveTrimAndDisconnectAll) {
  sim::Simulator sim;
  sim::LatencyModel latency({{5.0}}, 1.0, 1.0);
  sim::Network network(sim, latency, 9);
  const sim::NodeId self = network.add_node({.region = 0});
  std::vector<sim::NodeId> peers;
  for (int i = 0; i < 6; ++i) peers.push_back(network.add_node({.region = 0}));
  for (const auto peer : peers)
    network.connect(self, peer, [](bool, sim::Duration) {});
  sim.run();

  transport::SimTransport transport(network, self);
  ConnectionManager manager(transport, {.low_water = 0, .high_water = 2});
  manager.protect(peers[0]);
  manager.trim();
  EXPECT_TRUE(network.connected(self, peers[0]));
  manager.disconnect_all();
  EXPECT_TRUE(network.connected(self, peers[0]));
  EXPECT_EQ(network.connections_of(self).size(), 1u);
}

// --------------------------------------------------------------------------
// End-to-end publish/retrieve over a swarm
// --------------------------------------------------------------------------

class IpfsNodeTest : public ::testing::Test {
 protected:
  IpfsNodeTest() : swarm_(80, /*seed=*/11) {
    IpfsNodeConfig config;
    config.net.region = 0;
    // Small watermarks so the connection manager is exercised even in an
    // 80-peer swarm.
    config.conn_manager = {.low_water = 8, .high_water = 16};
    config.identity_seed = 1;
    publisher_ = std::make_unique<IpfsNode>(swarm_.network(), config);
    config.identity_seed = 2;
    retriever_ = std::make_unique<IpfsNode>(swarm_.network(), config);

    std::vector<dht::PeerRef> seeds;
    for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
    bool ok_a = false, ok_b = false;
    publisher_->bootstrap(seeds, [&](bool ok) { ok_a = ok; });
    retriever_->bootstrap(seeds, [&](bool ok) { ok_b = ok; });
    swarm_.simulator().run();
    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_b);
  }

  TestSwarm swarm_;
  std::unique_ptr<IpfsNode> publisher_;
  std::unique_ptr<IpfsNode> retriever_;
};

TEST_F(IpfsNodeTest, AddImportsAndPins) {
  const auto data = random_bytes(512 * 1024, 21);
  const auto result = publisher_->add(data);
  EXPECT_EQ(result.chunk_count, 2u);
  EXPECT_TRUE(publisher_->store().pinned(result.root));
  EXPECT_EQ(merkledag::cat(publisher_->store(), result.root), data);
}

TEST_F(IpfsNodeTest, PublishProducesTimingDecomposition) {
  const auto data = random_bytes(512 * 1024, 22);
  PublishTrace trace;
  publisher_->publish(data, [&](PublishTrace t) { trace = t; });
  swarm_.simulator().run();

  EXPECT_TRUE(trace.ok);
  EXPECT_GT(trace.walk, 0);
  EXPECT_GT(trace.provider_records_sent, 5);
  EXPECT_EQ(trace.total, trace.walk + trace.rpc_batch);
  // The connection manager trims between walk and batch, so the batch
  // re-dials and takes non-zero time.
  EXPECT_GT(trace.rpc_batch, 0);
}

TEST_F(IpfsNodeTest, RetrieveFindsPublishedContentViaDht) {
  const auto data = random_bytes(512 * 1024, 23);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  // Make sure the retrieval cannot be resolved through Bitswap.
  retriever_->reset_for_next_measurement();

  RetrievalTrace trace;
  retriever_->retrieve(publish_trace.cid,
                       [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();

  EXPECT_TRUE(trace.ok);
  EXPECT_FALSE(trace.bitswap_hit);
  // Transferred bytes = content plus the interior DAG node overhead.
  EXPECT_GE(trace.bytes, data.size());
  EXPECT_LT(trace.bytes, data.size() + 1024);
  // The 1 s Bitswap window is always paid on the DHT path (footnote 4).
  EXPECT_GE(trace.bitswap_discovery, sim::seconds(1));
  EXPECT_GT(trace.provider_walk, 0);
  EXPECT_GT(trace.fetch, 0);
  EXPECT_GE(trace.total, trace.bitswap_discovery + trace.provider_walk +
                             trace.peer_walk + trace.fetch);
  EXPECT_EQ(merkledag::cat(retriever_->store(), trace.cid), data);
}

TEST_F(IpfsNodeTest, RetrievalStretchIsAboveOne) {
  const auto data = random_bytes(512 * 1024, 24);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  retriever_->reset_for_next_measurement();

  RetrievalTrace trace;
  retriever_->retrieve(publish_trace.cid,
                       [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(trace.ok);
  EXPECT_GT(trace.stretch(), 1.0);
  // Removing the Bitswap window can only shrink the stretch (Figure 10b).
  EXPECT_LE(trace.stretch_without_bitswap(), trace.stretch());
}

TEST_F(IpfsNodeTest, SecondRetrievalHitsLocalStore) {
  const auto data = random_bytes(256 * 1024, 25);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();

  RetrievalTrace first;
  retriever_->retrieve(publish_trace.cid, [&](RetrievalTrace t) { first = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(first.ok);

  RetrievalTrace second;
  retriever_->retrieve(publish_trace.cid,
                       [&](RetrievalTrace t) { second = t; });
  swarm_.simulator().run();
  EXPECT_TRUE(second.ok);
  EXPECT_TRUE(second.local_hit);
  EXPECT_EQ(second.total, 0);
}

TEST_F(IpfsNodeTest, BitswapResolvesWhenConnectedToProvider) {
  const auto data = random_bytes(256 * 1024, 26);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();

  // Connect retriever directly to the publisher: opportunistic Bitswap
  // should find the content without a DHT walk (step 4 of Figure 3).
  swarm_.network().connect(retriever_->node(), publisher_->node(),
                           [](bool, sim::Duration) {});
  swarm_.simulator().run();

  RetrievalTrace trace;
  retriever_->retrieve(publish_trace.cid,
                       [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  EXPECT_TRUE(trace.ok);
  EXPECT_TRUE(trace.bitswap_hit);
  EXPECT_EQ(trace.provider_walk, 0);
  EXPECT_LT(trace.bitswap_discovery, sim::seconds(1));
}

TEST_F(IpfsNodeTest, RetrieveOfUnknownCidFails) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 27));
  RetrievalTrace trace;
  trace.ok = true;
  retriever_->retrieve(cid, [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  EXPECT_FALSE(trace.ok);
  EXPECT_GT(trace.provider_walk, 0);  // it did try the DHT
}

TEST_F(IpfsNodeTest, ResetClearsConnectionsButKeepsBootstrap) {
  const auto data = random_bytes(128 * 1024, 28);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  RetrievalTrace trace;
  retriever_->retrieve(publish_trace.cid, [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(trace.ok);

  retriever_->reset_for_next_measurement();
  const auto connections =
      swarm_.network().connections_of(retriever_->node());
  // Only protected (bootstrap) connections remain.
  EXPECT_LE(connections.size(), 6u);
  EXPECT_EQ(retriever_->address_book().size(), 0u);
}


// --------------------------------------------------------------------------
// PinningService (paper Section 3.1: publishing on behalf of NAT'ed users)
// --------------------------------------------------------------------------

TEST_F(IpfsNodeTest, PinningServicePublishesForNatUsers) {
  // A NAT'ed end-user node: DHT client, cannot host content.
  IpfsNodeConfig nat_config;
  nat_config.net.region = 0;
  nat_config.net.dialable = false;
  nat_config.identity_seed = 77;
  IpfsNode nat_user(swarm_.network(), nat_config);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
  nat_user.bootstrap(seeds, [](bool) {});
  swarm_.simulator().run();
  ASSERT_EQ(nat_user.dht().mode(), dht::DhtNode::Mode::kClient);

  // The user uploads content to a pinning service running on a public
  // node (publisher_ here) instead of announcing it themselves.
  PinningService service(*publisher_);
  const auto data = random_bytes(256 * 1024, 60);
  PinningService::PinResult pin;
  service.pin_bytes(data, [&](PinningService::PinResult r) { pin = r; });
  swarm_.simulator().run();
  ASSERT_TRUE(pin.ok);
  EXPECT_GT(pin.provider_records, 5);
  EXPECT_EQ(service.pinned_count(), 1u);

  // Anyone (including the NAT'ed user) can now retrieve by CID.
  RetrievalTrace trace;
  nat_user.retrieve(pin.cid, [&](RetrievalTrace t) { trace = t; });
  swarm_.simulator().run();
  EXPECT_TRUE(trace.ok);
  EXPECT_EQ(merkledag::cat(nat_user.store(), pin.cid),
            std::optional(data));
}

TEST_F(IpfsNodeTest, PinningServicePinsExistingCid) {
  // Content published by one node gets re-pinned by a service running on
  // another, adding a second independent provider.
  const auto data = random_bytes(128 * 1024, 61);
  PublishTrace publish_trace;
  publisher_->publish(data, [&](PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  PinningService service(*retriever_);
  PinningService::PinResult pin;
  service.pin_cid(publish_trace.cid,
                  [&](PinningService::PinResult r) { pin = r; });
  swarm_.simulator().run();
  ASSERT_TRUE(pin.ok);
  EXPECT_TRUE(retriever_->store().pinned(publish_trace.cid));

  // The DHT now lists both providers.
  dht::LookupResult lookup;
  publisher_->dht().find_providers(dht::Key::for_cid(publish_trace.cid),
                                   [&](dht::LookupResult r) { lookup = r; });
  swarm_.simulator().run();
  EXPECT_GE(lookup.providers.size(), 1u);

  service.unpin(publish_trace.cid);
  EXPECT_FALSE(retriever_->store().pinned(publish_trace.cid));
  EXPECT_EQ(service.pinned_count(), 0u);
}

// --------------------------------------------------------------------------
// Write-behind flush daemon (StoreConfig::flush_interval_us)
// --------------------------------------------------------------------------

TEST(IpfsNodeStoreTest, FlushTimerDrainsWriteBehindQueueAcrossRestarts) {
  // flush_interval_us arms a daemon tick that drains the async store's
  // write-behind queue on a cadence, so queued blocks become durable even
  // when puts never reach the batch threshold. The daemon must die with a
  // crashed process and come back with the restart.
  testutil::TestSwarm swarm(20, /*seed=*/13);
  IpfsNodeConfig config;
  config.net.region = 0;
  config.identity_seed = 5;
  config.store.backend = blockstore::StoreConfig::Backend::kPersistentAsync;
  config.store.flush_batch_blocks = 1000;  // never drain by count
  config.store.flush_interval_us = 200'000;
  IpfsNode node(swarm.network(), config);
  auto& store =
      dynamic_cast<blockstore::persist::AsyncBlockStore&>(node.store());

  sim::Rng rng(3);
  const auto put_one = [&] {
    store.put(blockstore::Block::from_data(multiformats::Multicodec::kRaw,
                                           random_bytes(256, rng.next())));
  };
  for (int i = 0; i < 3; ++i) put_one();
  ASSERT_EQ(store.queued_blocks(), 3u);

  // One interval later the daemon tick has flushed (drain + fsync).
  swarm.network().run_until(swarm.network().now() +
                            sim::microseconds(250'000));
  EXPECT_EQ(store.queued_blocks(), 0u);
  EXPECT_EQ(store.base().block_count(), 3u);

  // A crashed process takes its flush daemon with it: nothing drains.
  node.handle_crash();
  put_one();
  swarm.network().run_until(swarm.network().now() +
                            sim::microseconds(600'000));
  EXPECT_EQ(store.queued_blocks(), 1u);

  // Restart re-arms the cadence.
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 4; ++i) seeds.push_back(swarm.ref(i));
  node.handle_restart(seeds, [](bool) {});
  swarm.network().run_until(swarm.network().now() +
                            sim::microseconds(250'000));
  EXPECT_EQ(store.queued_blocks(), 0u);
}

}  // namespace
}  // namespace ipfs::node
