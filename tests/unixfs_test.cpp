// UnixFS-style directory tests: canonical directory CIDs, path
// resolution, whole-tree import, and gateway URL parsing.
#include <gtest/gtest.h>

#include "gateway/gateway.h"
#include "merkledag/unixfs.h"

namespace ipfs::merkledag {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

DirectoryEntry file_entry(BlockStore& store, std::string name,
                          std::string_view content) {
  const auto import = import_bytes(store, bytes_of(content));
  return DirectoryEntry{std::move(name), import.root, import.content_bytes};
}

TEST(DirectoryTest, MakeAndReadRoundTrip) {
  BlockStore store;
  std::vector<DirectoryEntry> entries = {
      file_entry(store, "readme.md", "# Hello"),
      file_entry(store, "main.cpp", "int main() {}"),
  };
  const auto dir = make_directory(store, entries);
  ASSERT_TRUE(dir.has_value());

  const auto read = read_directory(store, *dir);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), 2u);
  // Entries come back sorted by name.
  EXPECT_EQ((*read)[0].name, "main.cpp");
  EXPECT_EQ((*read)[1].name, "readme.md");
  EXPECT_TRUE(is_directory(store, *dir));
}

TEST(DirectoryTest, EntryOrderDoesNotChangeTheCid) {
  BlockStore store;
  const auto a = file_entry(store, "a", "AAA");
  const auto b = file_entry(store, "b", "BBB");
  const auto dir1 = make_directory(store, {a, b});
  const auto dir2 = make_directory(store, {b, a});
  ASSERT_TRUE(dir1 && dir2);
  EXPECT_EQ(*dir1, *dir2);  // canonical ordering
}

TEST(DirectoryTest, RejectsBadNames) {
  BlockStore store;
  const auto file = file_entry(store, "ok", "x");
  EXPECT_FALSE(make_directory(store, {{"", file.cid, 1}}).has_value());
  EXPECT_FALSE(make_directory(store, {{"a/b", file.cid, 1}}).has_value());
  EXPECT_FALSE(
      make_directory(store, {{"dup", file.cid, 1}, {"dup", file.cid, 1}})
          .has_value());
}

TEST(DirectoryTest, FilesAreNotDirectories) {
  BlockStore store;
  const auto file = import_bytes(store, bytes_of("just a file"));
  EXPECT_FALSE(is_directory(store, file.root));
  EXPECT_FALSE(read_directory(store, file.root).has_value());
}

TEST(PathResolutionTest, ResolvesNestedPaths) {
  BlockStore store;
  const auto tree = import_tree(
      store, {
                 {"index.html", bytes_of("<html>home</html>")},
                 {"docs/guide.md", bytes_of("# Guide")},
                 {"docs/img/logo.png", bytes_of("PNGDATA")},
             });
  ASSERT_TRUE(tree.has_value());

  const auto index = resolve_path(store, *tree, "index.html");
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(cat(store, *index), bytes_of("<html>home</html>"));

  const auto logo = resolve_path(store, *tree, "docs/img/logo.png");
  ASSERT_TRUE(logo.has_value());
  EXPECT_EQ(cat(store, *logo), bytes_of("PNGDATA"));

  // Leading / trailing slashes are tolerated.
  EXPECT_EQ(resolve_path(store, *tree, "/docs/guide.md"),
            resolve_path(store, *tree, "docs/guide.md/"));
}

TEST(PathResolutionTest, EmptyPathIsTheRoot) {
  BlockStore store;
  const auto tree = import_tree(store, {{"a", bytes_of("x")}});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(resolve_path(store, *tree, ""), *tree);
  EXPECT_EQ(resolve_path(store, *tree, "/"), *tree);
}

TEST(PathResolutionTest, MissingSegmentsFail) {
  BlockStore store;
  const auto tree = import_tree(store, {{"docs/a.txt", bytes_of("A")}});
  ASSERT_TRUE(tree.has_value());
  EXPECT_FALSE(resolve_path(store, *tree, "nope").has_value());
  EXPECT_FALSE(resolve_path(store, *tree, "docs/missing").has_value());
  // Descending *into* a file fails.
  EXPECT_FALSE(resolve_path(store, *tree, "docs/a.txt/deeper").has_value());
}

TEST(ImportTreeTest, SubdirectoriesShareStructure) {
  BlockStore store;
  const auto tree = import_tree(
      store, {
                 {"a/common.txt", bytes_of("same bytes")},
                 {"b/common.txt", bytes_of("same bytes")},
             });
  ASSERT_TRUE(tree.has_value());
  const auto a = resolve_path(store, *tree, "a");
  const auto b = resolve_path(store, *tree, "b");
  ASSERT_TRUE(a && b);
  // Identical subtrees deduplicate to the same CID.
  EXPECT_EQ(*a, *b);
}

TEST(ImportTreeTest, TreeCidIsDeterministic) {
  BlockStore s1, s2;
  const std::vector<TreeFile> files = {
      {"x/1", bytes_of("one")},
      {"x/2", bytes_of("two")},
      {"y", bytes_of("why")},
  };
  EXPECT_EQ(import_tree(s1, files), import_tree(s2, files));
}

TEST(GatewayUrlTest, ParsesCidAndPath) {
  BlockStore store;
  const auto tree = import_tree(store, {{"site/page.html", bytes_of("hi")}});
  const std::string url = "/ipfs/" + tree->to_string() + "/site/page.html";
  const auto parsed = gateway::Gateway::parse_url_path(url);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, *tree);
  EXPECT_EQ(parsed->second, "site/page.html");

  const auto bare = gateway::Gateway::parse_url_path(
      "/ipfs/" + tree->to_string());
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->second, "");
}

TEST(GatewayUrlTest, RejectsMalformedUrls) {
  EXPECT_FALSE(gateway::Gateway::parse_url_path("/ipns/whatever").has_value());
  EXPECT_FALSE(gateway::Gateway::parse_url_path("/ipfs/not-a-cid").has_value());
  EXPECT_FALSE(gateway::Gateway::parse_url_path("").has_value());
}

}  // namespace
}  // namespace ipfs::merkledag
