// Multiformats tests: varint, multibase, multihash, CID and multiaddr
// behaviour, including the CID structure from Figure 1 and the
// multiaddress structure from Figure 2 of the paper.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "multiformats/cid.h"
#include "multiformats/multiaddr.h"
#include "multiformats/multibase.h"
#include "multiformats/multihash.h"
#include "multiformats/peerid.h"
#include "multiformats/varint.h"

namespace ipfs::multiformats {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// --------------------------------------------------------------------------
// varint
// --------------------------------------------------------------------------

TEST(VarintTest, EncodesKnownValues) {
  EXPECT_EQ(varint_encode(0), (std::vector<std::uint8_t>{0x00}));
  EXPECT_EQ(varint_encode(1), (std::vector<std::uint8_t>{0x01}));
  EXPECT_EQ(varint_encode(127), (std::vector<std::uint8_t>{0x7f}));
  EXPECT_EQ(varint_encode(128), (std::vector<std::uint8_t>{0x80, 0x01}));
  EXPECT_EQ(varint_encode(300), (std::vector<std::uint8_t>{0xac, 0x02}));
  EXPECT_EQ(varint_encode(16384),
            (std::vector<std::uint8_t>{0x80, 0x80, 0x01}));
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, DecodesItsOwnEncoding) {
  const auto encoded = varint_encode(GetParam());
  const auto decoded = varint_decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value, GetParam());
  EXPECT_EQ(decoded->consumed, encoded.size());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 255ULL,
                                           300ULL, 16383ULL, 16384ULL,
                                           0xffffffULL, 0xdeadbeefULL,
                                           (1ULL << 62) - 1));

TEST(VarintTest, RejectsTruncatedInput) {
  const std::vector<std::uint8_t> truncated = {0x80};
  EXPECT_FALSE(varint_decode(truncated).has_value());
  EXPECT_FALSE(varint_decode({}).has_value());
}

TEST(VarintTest, RejectsNonMinimalEncoding) {
  const std::vector<std::uint8_t> padded = {0x81, 0x00};  // 1 with padding
  EXPECT_FALSE(varint_decode(padded).has_value());
}

TEST(VarintTest, DecodeReportsConsumedPrefixOnly) {
  const std::vector<std::uint8_t> data = {0xac, 0x02, 0xff, 0xff};
  const auto decoded = varint_decode(data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value, 300u);
  EXPECT_EQ(decoded->consumed, 2u);
}

// --------------------------------------------------------------------------
// multibase
// --------------------------------------------------------------------------

TEST(MultibaseTest, Base32KnownValue) {
  // RFC 4648: "foobar" -> MZXW6YTBOI (lowercase, unpadded here).
  EXPECT_EQ(base32_encode(bytes_of("foobar")), "mzxw6ytboi");
  EXPECT_EQ(base32_decode("mzxw6ytboi").value(), bytes_of("foobar"));
}

TEST(MultibaseTest, Base58KnownValue) {
  // "Hello World!" from the draft-msporny-base58 test vectors.
  EXPECT_EQ(base58btc_encode(bytes_of("Hello World!")), "2NEpo7TZRRrLZSi2U");
  EXPECT_EQ(base58btc_decode("2NEpo7TZRRrLZSi2U").value(),
            bytes_of("Hello World!"));
}

TEST(MultibaseTest, Base58PreservesLeadingZeros) {
  const std::vector<std::uint8_t> data = {0x00, 0x00, 0x01, 0x02};
  const auto text = base58btc_encode(data);
  EXPECT_TRUE(text.starts_with("11"));
  EXPECT_EQ(base58btc_decode(text).value(), data);
}

TEST(MultibaseTest, Base64KnownValue) {
  EXPECT_EQ(base64_encode(bytes_of("foobar"), false), "Zm9vYmFy");
  EXPECT_EQ(base64_decode("Zm9vYmFy", false).value(), bytes_of("foobar"));
  EXPECT_EQ(base64_encode(bytes_of("fo"), false), "Zm8");
}

class MultibaseRoundTrip : public ::testing::TestWithParam<Multibase> {};

TEST_P(MultibaseRoundTrip, AllBasesRoundTrip) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  const auto text = multibase_encode(GetParam(), data);
  const auto back = multibase_decode(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Bases, MultibaseRoundTrip,
                         ::testing::Values(Multibase::kIdentity,
                                           Multibase::kBase16,
                                           Multibase::kBase32,
                                           Multibase::kBase58Btc,
                                           Multibase::kBase64,
                                           Multibase::kBase64Url));

TEST(MultibaseTest, RejectsUnknownPrefixAndBadPayload) {
  EXPECT_FALSE(multibase_decode("?abc").has_value());
  EXPECT_FALSE(multibase_decode("").has_value());
  EXPECT_FALSE(base32_decode("0189").has_value());   // '0','1' not in alphabet
  EXPECT_FALSE(base58btc_decode("0OIl").has_value());  // excluded chars
}

// --------------------------------------------------------------------------
// multihash
// --------------------------------------------------------------------------

TEST(MultihashTest, Sha256EncodingHasExpectedHeader) {
  const auto data = bytes_of("ipfs");
  const auto mh = Multihash::sha2_256(data);
  const auto encoded = mh.encode();
  ASSERT_EQ(encoded.size(), 34u);
  EXPECT_EQ(encoded[0], 0x12);  // sha2-256 code
  EXPECT_EQ(encoded[1], 0x20);  // 32-byte digest
  EXPECT_TRUE(mh.verifies(data));
  EXPECT_FALSE(mh.verifies(bytes_of("ipfs!")));
}

TEST(MultihashTest, DecodeRoundTrip) {
  const auto mh = Multihash::sha2_256(bytes_of("round trip"));
  std::size_t consumed = 0;
  const auto decoded = Multihash::decode(mh.encode(), &consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, mh);
  EXPECT_EQ(consumed, 34u);
}

TEST(MultihashTest, RejectsTruncatedDigest) {
  auto encoded = Multihash::sha2_256(bytes_of("x")).encode();
  encoded.resize(20);
  EXPECT_FALSE(Multihash::decode(encoded).has_value());
}

TEST(MultihashTest, IdentityHashVerifiesRawBytes) {
  const auto data = bytes_of("inline-key");
  const auto mh = Multihash::identity(data);
  EXPECT_TRUE(mh.verifies(data));
  EXPECT_EQ(mh.digest(), data);
}

// --------------------------------------------------------------------------
// CID (paper Figure 1)
// --------------------------------------------------------------------------

TEST(CidTest, V1StructureMatchesFigure1) {
  const auto data = bytes_of("hello ipfs");
  const auto cid = Cid::from_data(Multicodec::kRaw, data);
  const auto encoded = cid.encode();
  // <version=1><codec=raw 0x55><multihash sha2-256>
  ASSERT_GE(encoded.size(), 4u);
  EXPECT_EQ(encoded[0], 0x01);
  EXPECT_EQ(encoded[1], 0x55);
  EXPECT_EQ(encoded[2], 0x12);
  EXPECT_EQ(encoded[3], 0x20);
  // Textual form: multibase prefix 'b' for base32 (Figure 1).
  EXPECT_EQ(cid.to_string()[0], 'b');
}

TEST(CidTest, TextRoundTripBase32) {
  const auto cid = Cid::from_data(Multicodec::kDagPb, bytes_of("a block"));
  const auto parsed = Cid::parse(cid.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, cid);
}

TEST(CidTest, V0RoundTripBase58) {
  const auto mh = Multihash::sha2_256(bytes_of("v0 block"));
  const auto cid = Cid::v0(mh);
  const auto text = cid.to_string();
  EXPECT_TRUE(text.starts_with("Qm"));
  EXPECT_EQ(text.size(), 46u);
  const auto parsed = Cid::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version(), 0);
  EXPECT_EQ(*parsed, cid);
}

TEST(CidTest, V0UpgradesToV1) {
  const auto mh = Multihash::sha2_256(bytes_of("upgrade me"));
  const auto v1 = Cid::v0(mh).as_v1();
  EXPECT_EQ(v1.version(), 1);
  EXPECT_EQ(v1.content_codec(), Multicodec::kDagPb);
  EXPECT_EQ(v1.hash(), mh);
}

TEST(CidTest, SameContentSameCidDifferentContentDifferentCid) {
  const auto a1 = Cid::from_data(Multicodec::kRaw, bytes_of("content"));
  const auto a2 = Cid::from_data(Multicodec::kRaw, bytes_of("content"));
  const auto b = Cid::from_data(Multicodec::kRaw, bytes_of("Content"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(CidTest, RejectsGarbage) {
  EXPECT_FALSE(Cid::parse("not-a-cid").has_value());
  EXPECT_FALSE(Cid::parse("").has_value());
  const std::vector<std::uint8_t> garbage = {0x09, 0x01, 0x02};
  EXPECT_FALSE(Cid::decode(garbage).has_value());
}

// --------------------------------------------------------------------------
// Multiaddr (paper Figure 2)
// --------------------------------------------------------------------------

TEST(MultiaddrTest, ParsesFigure2Address) {
  // The paper's example: /ip4/1.2.3.4/tcp/3333/p2p/<PeerID>.
  const auto peer = PeerId::from_public_key(crypto::Ed25519PublicKey{});
  const auto text = "/ip4/1.2.3.4/tcp/3333/p2p/" + peer.to_base58();
  const auto addr = Multiaddr::parse(text);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->components().size(), 3u);
  EXPECT_EQ(addr->to_string(), text);
}

TEST(MultiaddrTest, BinaryRoundTrip) {
  const auto addr = Multiaddr::parse("/ip4/127.0.0.1/udp/4001/quic");
  ASSERT_TRUE(addr.has_value());
  const auto decoded = Multiaddr::decode(addr->encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, *addr);
  EXPECT_EQ(decoded->to_string(), "/ip4/127.0.0.1/udp/4001/quic");
}

TEST(MultiaddrTest, ParsesIp6) {
  const auto addr = Multiaddr::parse("/ip6/2001:db8::1/tcp/8080");
  ASSERT_TRUE(addr.has_value());
  const auto value = addr->value_for(MultiaddrProtocol::kIp6);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->size(), 16u);
  EXPECT_EQ((*value)[0], 0x20);
  EXPECT_EQ((*value)[1], 0x01);
  EXPECT_EQ((*value)[15], 0x01);
}

TEST(MultiaddrTest, ParsesDnsAndWebsocket) {
  const auto addr = Multiaddr::parse("/dns4/example.com/tcp/443/wss");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "/dns4/example.com/tcp/443/wss");
}

TEST(MultiaddrTest, RelayAddressesAreDetected) {
  const auto direct = Multiaddr::parse("/ip4/10.0.0.1/tcp/4001");
  const auto relayed = direct->with(MultiaddrProtocol::kP2pCircuit);
  EXPECT_FALSE(direct->is_relayed());
  EXPECT_TRUE(relayed.is_relayed());
}

TEST(MultiaddrTest, RejectsMalformedInput) {
  EXPECT_FALSE(Multiaddr::parse("").has_value());
  EXPECT_FALSE(Multiaddr::parse("ip4/1.2.3.4").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/999.2.3.4/tcp/80").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/tcp/99999").has_value());
  EXPECT_FALSE(Multiaddr::parse("/ip4/1.2.3.4/tcp").has_value());
  EXPECT_FALSE(Multiaddr::parse("/nosuchproto/1").has_value());
}

TEST(MultiaddrTest, ConvenienceConstructors) {
  EXPECT_EQ(make_tcp_multiaddr("192.168.1.5", 4001).to_string(),
            "/ip4/192.168.1.5/tcp/4001");
  EXPECT_EQ(make_quic_multiaddr("10.1.2.3", 4001).to_string(),
            "/ip4/10.1.2.3/udp/4001/quic");
}

// --------------------------------------------------------------------------
// PeerId (paper Section 2.2)
// --------------------------------------------------------------------------

TEST(PeerIdTest, DerivedFromPublicKeyAndRecoverable) {
  crypto::Ed25519Seed seed{};
  seed[0] = 42;
  const auto kp = crypto::ed25519_keypair(seed);
  const auto peer = PeerId::from_public_key(kp.public_key);
  // Ed25519 PeerIDs use the identity multihash and render as 12D3KooW...
  EXPECT_TRUE(peer.to_base58().starts_with("12D3KooW"));
  const auto recovered = peer.public_key();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, kp.public_key);
}

TEST(PeerIdTest, ParseRoundTrip) {
  crypto::Ed25519Seed seed{};
  seed[5] = 7;
  const auto kp = crypto::ed25519_keypair(seed);
  const auto peer = PeerId::from_public_key(kp.public_key);
  const auto parsed = PeerId::parse(peer.to_base58());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, peer);
}

TEST(PeerIdTest, DistinctKeysDistinctPeerIds) {
  crypto::Ed25519Seed s1{}, s2{};
  s1[0] = 1;
  s2[0] = 2;
  const auto p1 = PeerId::from_public_key(crypto::ed25519_keypair(s1).public_key);
  const auto p2 = PeerId::from_public_key(crypto::ed25519_keypair(s2).public_key);
  EXPECT_NE(p1, p2);
}

}  // namespace
}  // namespace ipfs::multiformats
