// Gateway fleet tests: consistent-hash ring movement bounds, bounded-load
// routing, and the fleet's two-tier (edge/origin) serving path.
#include <gtest/gtest.h>

#include "gateway/fleet.h"
#include "gateway/hash_ring.h"
#include "merkledag/merkledag.h"
#include "testutil.h"

namespace ipfs::gateway {
namespace {

using testutil::TestSwarm;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// splitmix64: well-spread sample keys for ring-movement measurements.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(HashRingTest, RemovalMovesOnlyTheRemovedReplicasKeys) {
  constexpr std::size_t kReplicas = 8;
  constexpr std::size_t kKeys = 10'000;
  HashRing ring;
  for (std::size_t i = 0; i < kReplicas; ++i) ring.add_replica(i);

  std::vector<std::size_t> before(kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) before[k] = *ring.owner(mix64(k));

  ring.remove_replica(3);
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::size_t after = *ring.owner(mix64(k));
    if (after == before[k]) continue;
    ++moved;
    // Only keys the removed replica owned may change hands.
    EXPECT_EQ(before[k], 3u) << "key " << k;
    EXPECT_NE(after, 3u);
  }
  // The removed replica owned ~1/N of the key space; allow 50% skew.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, kKeys * 3 / (2 * kReplicas));

  // Re-adding restores the exact original assignment: vnode points are a
  // pure function of (replica, vnode).
  ring.add_replica(3);
  for (std::size_t k = 0; k < kKeys; ++k)
    ASSERT_EQ(*ring.owner(mix64(k)), before[k]) << "key " << k;
}

TEST(HashRingTest, AdditionOnlyStealsKeysForTheNewReplica) {
  constexpr std::size_t kKeys = 10'000;
  HashRing ring;
  for (std::size_t i = 0; i < 7; ++i) ring.add_replica(i);
  std::vector<std::size_t> before(kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) before[k] = *ring.owner(mix64(k));

  ring.add_replica(7);
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::size_t after = *ring.owner(mix64(k));
    if (after == before[k]) continue;
    ++moved;
    EXPECT_EQ(after, 7u) << "key " << k;  // movement only toward the newcomer
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, kKeys * 3 / (2 * 8));
}

TEST(HashRingTest, BoundedLoadWalkSkipsSaturatedReplicas) {
  HashRing ring(HashRingConfig{16, 1.25});
  ring.add_replica(0);
  ring.add_replica(1);

  // Find a key replica 0 owns.
  std::uint64_t key = 0;
  while (*ring.owner(mix64(key)) != 0) ++key;
  const std::uint64_t hash = mix64(key);

  // Unloaded: the pick is the owner.
  const auto idle = [](std::size_t) -> std::uint64_t { return 0; };
  EXPECT_EQ(*ring.pick(hash, idle, 0), 0u);

  // Owner saturated: bound for total=10 is ceil(1.25*11/2)=7, replica 0
  // reports 10 -> the walk spills to replica 1.
  const auto loaded = [](std::size_t replica) -> std::uint64_t {
    return replica == 0 ? 10 : 0;
  };
  EXPECT_EQ(ring.load_bound(10), 7u);
  EXPECT_EQ(*ring.pick(hash, loaded, 10), 1u);

  // Everyone saturated: falls back to the owner rather than failing.
  const auto melted = [](std::size_t) -> std::uint64_t { return 100; };
  EXPECT_EQ(*ring.pick(hash, melted, 200), 0u);
}

TEST(HashRingTest, EmptyRingRoutesNowhere) {
  HashRing ring;
  EXPECT_EQ(ring.owner(123), std::nullopt);
  EXPECT_EQ(ring.pick(123, [](std::size_t) -> std::uint64_t { return 0; }, 0),
            std::nullopt);
  ring.add_replica(5);
  ring.remove_replica(5);
  EXPECT_EQ(ring.owner(123), std::nullopt);
}

class GatewayFleetTest : public ::testing::Test {
 protected:
  GatewayFleetTest() : swarm_(80, /*seed=*/37) {
    FleetConfig config;
    config.replicas = 3;
    config.replica.node.net.region = 0;
    config.replica.node.identity_seed = 500;
    config.replica.node.provide_after_fetch = false;
    config.replica.nginx_cache_bytes = 2 * 1024 * 1024;
    config.origin_cache_bytes = 32ull * 1024 * 1024;
    fleet_ = std::make_unique<GatewayFleet>(swarm_.network(), config);

    std::vector<dht::PeerRef> seeds;
    for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
    bool ok = false;
    fleet_->bootstrap(seeds, [&](bool all_ok) { ok = all_ok; });
    swarm_.simulator().run();
    EXPECT_TRUE(ok);
  }

  TestSwarm swarm_;
  std::unique_ptr<GatewayFleet> fleet_;
};

TEST_F(GatewayFleetTest, PinnedObjectIsServedByItsRingOwner) {
  const auto data = random_bytes(256 * 1024, 1);
  const Cid cid = fleet_->pin_object(data);
  const auto owner = fleet_->route(cid);
  ASSERT_TRUE(owner.has_value());

  GatewayResponse response;
  fleet_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kNodeStore);
  EXPECT_EQ(response.bytes, data.size());
  EXPECT_EQ(fleet_->replica(*owner).total_requests(), 1u);
  for (std::size_t r = 0; r < fleet_->replica_count(); ++r)
    if (r != *owner) EXPECT_EQ(fleet_->replica(r).total_requests(), 0u);
  EXPECT_EQ(fleet_->total_requests(), 1u);
  EXPECT_EQ(fleet_->routed_spills(), 0u);
  // The serve wrote through to the shared origin tier.
  EXPECT_TRUE(fleet_->origin().has(cid));
  EXPECT_DOUBLE_EQ(fleet_->fleet_absorbed_share(), 1.0);
}

TEST_F(GatewayFleetTest, RepeatHitsTheEdgeAndLabeledCountersAgree) {
  const auto data = random_bytes(128 * 1024, 2);
  const Cid cid = fleet_->pin_object(data);
  const std::size_t owner = *fleet_->route(cid);

  GatewayResponse second;
  fleet_->handle_get(cid, [](GatewayResponse) {});
  swarm_.simulator().run();
  fleet_->handle_get(cid, [&](GatewayResponse r) { second = r; });
  swarm_.simulator().run();

  EXPECT_EQ(second.source, ServedFrom::kNginxCache);
  const auto& registry = swarm_.network().metrics();
  const std::string label = "gateway.r" + std::to_string(owner);
  EXPECT_EQ(registry.counter_value(label + ".requests"), 2u);
  EXPECT_EQ(registry.counter_value(label + ".tier.nginx_cache.requests"), 1u);
  EXPECT_EQ(registry.counter_value(label + ".tier.node_store.requests"), 1u);
  // Labeled counters mirror the aggregate instruments exactly.
  EXPECT_EQ(registry.counter_value("gateway.requests"), 2u);
  EXPECT_EQ(registry.counter_value("gateway.fleet.requests"), 2u);
  EXPECT_EQ(registry.counter_value("gateway.tier.nginx_cache.requests"), 1u);
}

TEST_F(GatewayFleetTest, DrainedReplicaTrafficServesFromSharedOrigin) {
  const auto data = random_bytes(256 * 1024, 3);
  const Cid cid = fleet_->pin_object(data);
  const std::size_t owner = *fleet_->route(cid);
  fleet_->handle_get(cid, [](GatewayResponse) {});  // fills edge + origin
  swarm_.simulator().run();

  // Drain the owner (rolling restart): the key moves to a ring successor
  // whose edge is cold — but the shared origin already holds the object,
  // so the fleet still absorbs the request.
  fleet_->remove_replica(owner);
  const auto fallback = fleet_->route(cid);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_NE(*fallback, owner);

  GatewayResponse rerouted;
  fleet_->handle_get(cid, [&](GatewayResponse r) { rerouted = r; });
  swarm_.simulator().run();
  EXPECT_EQ(rerouted.source, ServedFrom::kOriginCache);
  EXPECT_EQ(rerouted.bytes, data.size());
  EXPECT_EQ(fleet_->replica(*fallback).total_requests(), 1u);

  // Re-adding the drained replica restores the original routing.
  fleet_->add_replica(owner);
  EXPECT_EQ(*fleet_->route(cid), owner);
}

TEST_F(GatewayFleetTest, EmptyRingFailsTyped) {
  const auto data = random_bytes(64 * 1024, 4);
  const Cid cid = fleet_->pin_object(data);
  for (std::size_t r = 0; r < fleet_->replica_count(); ++r)
    fleet_->remove_replica(r);

  GatewayResponse response;
  response.source = ServedFrom::kNginxCache;
  fleet_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();
  EXPECT_EQ(response.source, ServedFrom::kFailed);
}

}  // namespace
}  // namespace ipfs::gateway
