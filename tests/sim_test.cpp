// Simulator substrate tests: event ordering, cancellation, RNG streams,
// network dial/RPC semantics including transport timeouts, and churn.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/churn.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ipfs::sim {
namespace {

// --------------------------------------------------------------------------
// Simulator
// --------------------------------------------------------------------------

TEST(SimulatorTest, ExecutesEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_after(seconds(3), [&] { order.push_back(3); });
  simulator.schedule_after(seconds(1), [&] { order.push_back(1); });
  simulator.schedule_after(seconds(2), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), seconds(3));
}

TEST(SimulatorTest, EqualTimestampsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    simulator.schedule_after(seconds(1), [&order, i] { order.push_back(i); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CancelledEventsDoNotFire) {
  Simulator simulator;
  bool fired = false;
  Timer timer = simulator.schedule_after(seconds(1), [&] { fired = true; });
  timer.cancel();
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int count = 0;
  simulator.schedule_after(seconds(1), [&] { ++count; });
  simulator.schedule_after(seconds(10), [&] { ++count; });
  const auto executed = simulator.run_until(seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(simulator.now(), seconds(5));
  simulator.run();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) simulator.schedule_after(seconds(1), recurse);
  };
  simulator.schedule_after(seconds(1), recurse);
  simulator.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(simulator.now(), seconds(10));
}

// --------------------------------------------------------------------------
// Timer cancellation semantics (documented on sim::Timer): a cancel()
// before the fire time guarantees the callback never runs, under run(),
// run_until() and step() alike; cancelling after the fire is a no-op.
// --------------------------------------------------------------------------

TEST(SimulatorTest, CancelledEventDoesNotUnmaskLaterEventsInRunUntil) {
  // Regression: a cancelled event at t <= deadline used to satisfy the
  // deadline check, letting step() skip past it and execute a live event
  // *beyond* the deadline.
  Simulator simulator;
  bool late_fired = false;
  Timer cancelled = simulator.schedule_after(seconds(1), [] { FAIL(); });
  simulator.schedule_after(seconds(10), [&] { late_fired = true; });
  cancelled.cancel();
  const auto executed = simulator.run_until(seconds(5));
  EXPECT_EQ(executed, 0u);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(simulator.now(), seconds(5));
  simulator.run();
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, CancelAfterFireIsANoOp) {
  Simulator simulator;
  int fired = 0;
  Timer timer = simulator.schedule_after(seconds(1), [&] { ++fired; });
  EXPECT_TRUE(timer.active());
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.active());
  timer.cancel();  // must not crash or affect anything
  simulator.run();
  EXPECT_EQ(fired, 1);
  Timer defaulted;
  EXPECT_FALSE(defaulted.active());
  defaulted.cancel();  // default-constructed handle: also a no-op
}

TEST(SimulatorTest, CancelledDaemonEventsDoNotFireInRunUntil) {
  Simulator simulator;
  bool live_fired = false;
  Timer cancelled = simulator.schedule_daemon_after(seconds(1), [] { FAIL(); });
  simulator.schedule_daemon_after(seconds(2), [&] { live_fired = true; });
  cancelled.cancel();
  simulator.run_until(seconds(5));
  EXPECT_TRUE(live_fired);
  EXPECT_EQ(simulator.now(), seconds(5));
}

TEST(SimulatorTest, CancellingForegroundEventLetsRunReturn) {
  Simulator simulator;
  Timer foreground = simulator.schedule_after(seconds(1), [] { FAIL(); });
  bool daemon_fired = false;
  simulator.schedule_daemon_after(seconds(2), [&] { daemon_fired = true; });
  foreground.cancel();
  EXPECT_EQ(simulator.foreground_pending(), 0u);
  // Only a cancelled foreground and a daemon remain: run() returns
  // without executing either.
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_FALSE(daemon_fired);
}

// --------------------------------------------------------------------------
// Timer-wheel edge cases. The wheel must behave exactly like the
// reference binary heap at its seams: events at the current instant,
// events scheduled into the gap run_until() leaves between the clock and
// the wheel cursor, and events beyond the wheel horizon that live in the
// overflow heap.
// --------------------------------------------------------------------------

TEST(TimerWheelTest, ScheduleAtNowFiresImmediately) {
  Simulator simulator;
  simulator.schedule_after(seconds(2), [] {});
  simulator.run();
  ASSERT_EQ(simulator.now(), seconds(2));

  std::vector<int> order;
  simulator.schedule_at(simulator.now(), [&] { order.push_back(0); });
  simulator.schedule_after(Duration{0}, [&] { order.push_back(1); });
  simulator.schedule_after(seconds(1), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(simulator.now(), seconds(3));
}

TEST(TimerWheelTest, ScheduleIntoCursorGapFiresInOrder) {
  // run_until() can leave the wheel cursor ahead of the visible clock
  // (it advanced toward the next populated slot). Events scheduled into
  // that gap must still fire, in (when, sequence) order, before the
  // event the cursor had advanced toward.
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_after(seconds(10), [&] { order.push_back(10); });
  simulator.run_until(seconds(5));
  ASSERT_EQ(simulator.now(), seconds(5));

  simulator.schedule_after(seconds(3), [&] { order.push_back(8); });
  simulator.schedule_after(seconds(1), [&] { order.push_back(6); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{6, 8, 10}));
  EXPECT_EQ(simulator.now(), seconds(10));
}

TEST(TimerWheelTest, CancelInsideCursorGapDoesNotFire) {
  Simulator simulator;
  bool late_fired = false;
  simulator.schedule_after(seconds(10), [&] { late_fired = true; });
  simulator.run_until(seconds(5));
  Timer gap = simulator.schedule_after(seconds(1), [] { FAIL(); });
  gap.cancel();
  simulator.run();
  EXPECT_TRUE(late_fired);
}

TEST(TimerWheelTest, FarFutureEventsOverflowPastWheelHorizon) {
  // The wheel covers ~51 simulated days; anything beyond sits in the
  // overflow heap until the cursor approaches. Both sides of the horizon
  // must fire, in order, including an event exactly at the boundary.
  Simulator simulator;
  std::vector<int> order;
  const Time horizon = TimerWheel::kHorizon;
  simulator.schedule_at(horizon + hours(100), [&] { order.push_back(3); });
  simulator.schedule_at(horizon, [&] { order.push_back(2); });
  simulator.schedule_at(hours(1), [&] { order.push_back(1); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), horizon + hours(100));
}

TEST(TimerWheelTest, CancelledOverflowEventsDoNotFire) {
  Simulator simulator;
  bool near_fired = false;
  Timer far = simulator.schedule_at(TimerWheel::kHorizon + seconds(1),
                                    [] { FAIL(); });
  simulator.schedule_after(seconds(1), [&] { near_fired = true; });
  far.cancel();
  simulator.run();
  EXPECT_TRUE(near_fired);
  EXPECT_EQ(simulator.now(), seconds(1));
}

TEST(TimerWheelTest, BackendsExecuteIdenticalSeededSchedules) {
  // Drive both backends through the same randomized schedule — bursty
  // timestamps, ties, cancellations, re-entrant scheduling — and record
  // every firing as (time, id). The sequences must match exactly.
  const auto run_backend = [](SchedulerBackend backend) {
    Simulator simulator(backend);
    Rng rng(2024);
    std::vector<std::pair<Time, int>> fired;
    std::vector<Timer> timers;
    int next_id = 0;
    std::function<void(int)> fire = [&](int id) {
      fired.emplace_back(simulator.now(), id);
      // A third of firings reschedule follow-up work, like RPC chains.
      if (rng.uniform(0.0, 1.0) < 0.33 && next_id < 3000) {
        const int child = next_id++;
        simulator.schedule_after(
            microseconds(rng.uniform_int(0, 500'000)),
            [&fire, child] { fire(child); });
      }
    };
    for (int i = 0; i < 2000; ++i) {
      const int id = next_id++;
      // Cluster timestamps so slots collide and ties are common.
      const Duration when = microseconds(rng.uniform_int(0, 50) * 10'000);
      timers.push_back(
          simulator.schedule_after(when, [&fire, id] { fire(id); }));
    }
    for (std::size_t i = 0; i < timers.size(); i += 7) timers[i].cancel();
    simulator.run();
    return fired;
  };

  const auto wheel = run_backend(SchedulerBackend::kTimerWheel);
  const auto heap = run_backend(SchedulerBackend::kBinaryHeap);
  ASSERT_EQ(wheel.size(), heap.size());
  EXPECT_EQ(wheel, heap);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng fork_a = base.fork("alpha");
  Rng fork_b = base.fork("beta");
  Rng fork_a2 = base.fork("alpha");
  EXPECT_EQ(fork_a.next(), fork_a2.next());
  // Different names should diverge immediately (overwhelmingly likely).
  Rng x = base.fork("alpha");
  Rng y = base.fork("beta");
  EXPECT_NE(x.next(), y.next());
  (void)fork_b;
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialHasRoughlyCorrectMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, LognormalMedianIsRoughlyCorrect) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal_median(10.0, 1.0));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 10.0, 0.5);
}

TEST(RngTest, ZipfPrefersLowRanks) {
  Rng rng(17);
  std::uint64_t head = 0, tail = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto r = rng.zipf(1000, 1.0);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1000u);
    if (r <= 10) ++head;      // top 1 % of ranks
    if (r > 500) ++tail;      // bottom 50 % of ranks
  }
  // Under Zipf(1) the 10 most popular items draw far more requests than
  // the 500 least popular ones combined.
  EXPECT_GT(head, 2 * tail);
}

// --------------------------------------------------------------------------
// Network
// --------------------------------------------------------------------------

LatencyModel two_region_model() {
  // 10 ms intra-region, 100 ms cross-region one-way.
  return LatencyModel({{10.0, 100.0}, {100.0, 10.0}}, 1.0, 1.0);
}

struct Ping : Message {};
struct Pong : Message {};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : latency_(two_region_model()), net_(sim_, latency_, 1) {}

  Simulator sim_;
  LatencyModel latency_;
  Network net_;
};

TEST_F(NetworkTest, ConnectTakesHandshakeRoundTrips) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 1});
  bool done = false;
  Duration elapsed = 0;
  net_.connect(a, b, [&](bool ok, Duration d) {
    done = ok;
    elapsed = d;
  });
  sim_.run();
  ASSERT_TRUE(done);
  // TCP: 2 round trips of 200 ms RTT each.
  EXPECT_EQ(elapsed, milliseconds(400));
  EXPECT_TRUE(net_.connected(a, b));
  EXPECT_TRUE(net_.connected(b, a));
}

TEST_F(NetworkTest, ReconnectIsImmediate) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();
  Duration second = -1;
  net_.connect(a, b, [&](bool ok, Duration d) {
    EXPECT_TRUE(ok);
    second = d;
  });
  sim_.run();
  EXPECT_EQ(second, 0);
}

// --------------------------------------------------------------------------
// Node lifecycle: remove_node, id recycling, epoch muting. The dense
// SoA node store recycles freed ids, so a callback captured against a
// previous occupant of a slot must never reach the new occupant.
// --------------------------------------------------------------------------

TEST_F(NetworkTest, RemoveNodeRecyclesTheLowestFreedId) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  const NodeId c = net_.add_node({.region = 0});
  EXPECT_EQ(net_.node_count(), 3u);
  EXPECT_EQ(net_.slot_count(), 3u);

  net_.remove_node(b);
  net_.remove_node(a);
  EXPECT_EQ(net_.node_count(), 1u);
  EXPECT_EQ(net_.slot_count(), 3u);  // slots persist, contents freed
  EXPECT_FALSE(net_.in_use(a));
  EXPECT_FALSE(net_.in_use(b));
  EXPECT_TRUE(net_.in_use(c));

  // Lowest freed id first; the id space does not grow while holes exist.
  const NodeId reused_a = net_.add_node({.region = 1});
  const NodeId reused_b = net_.add_node({.region = 1});
  EXPECT_EQ(reused_a, std::min(a, b));
  EXPECT_EQ(reused_b, std::max(a, b));
  EXPECT_EQ(net_.slot_count(), 3u);
  EXPECT_EQ(net_.config(reused_a).region, 1);
}

TEST_F(NetworkTest, RemoveNodeTearsDownConnections) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();
  ASSERT_TRUE(net_.connected(a, b));

  net_.remove_node(b);
  EXPECT_FALSE(net_.connected(a, b));
  EXPECT_TRUE(net_.connections_of(a).empty());
}

TEST_F(NetworkTest, RecycledIdDoesNotInheritPredecessorsCallbacks) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId victim = net_.add_node({.region = 1});
  net_.connect(a, victim, [](bool, Duration) {});
  sim_.run();

  // In-flight request to the victim, which is removed mid-flight; its
  // slot is immediately recycled for an unrelated new node. The response
  // callback was captured under the victim's epoch and must stay muted —
  // it must neither fire against the new occupant nor leak.
  bool cb_fired = false;
  net_.request(a, victim, std::make_shared<Ping>(), 64, seconds(30),
               [&](RpcStatus, MessagePtr) { cb_fired = true; });
  net_.remove_node(a);  // requester gone: callback owned by a is muted
  const NodeId recycled = net_.add_node({.region = 0});
  EXPECT_EQ(recycled, a);

  sim_.run();
  EXPECT_FALSE(cb_fired);
  EXPECT_EQ(net_.pending_request_count(), 0u);
}

TEST_F(NetworkTest, RemovedResponderFailsInFlightRequests) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node(
      {.region = 0, .responsive = false});  // will never answer
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();

  RpcStatus status = RpcStatus::kOk;
  bool fired = false;
  net_.request(a, b, std::make_shared<Ping>(), 64, seconds(30),
               [&](RpcStatus s, MessagePtr) {
                 fired = true;
                 status = s;
               });
  net_.remove_node(b);
  sim_.run();
  EXPECT_TRUE(fired);
  EXPECT_NE(status, RpcStatus::kOk);
  EXPECT_EQ(net_.pending_request_count(), 0u);
}

TEST_F(NetworkTest, DialToNatPeerTimesOutAtTransportTimeout) {
  const NodeId a = net_.add_node({.region = 0});
  // NAT'ed targets always hang for the full transport timeout (plus a
  // little scheduler slack); offline-but-dialable hosts may fail fast.
  const NodeId b = net_.add_node(
      {.region = 0, .dialable = false, .transport = Transport::kTcp});
  bool ok = true;
  Duration elapsed = 0;
  net_.connect(a, b, [&](bool success, Duration d) {
    ok = success;
    elapsed = d;
  });
  sim_.run();
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed, seconds(5));
  EXPECT_LE(elapsed, seconds(5) + milliseconds(150));
}

TEST_F(NetworkTest, WebSocketDialTimeoutIs45Seconds) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node(
      {.region = 0, .dialable = false, .transport = Transport::kWebSocket});
  Duration elapsed = 0;
  net_.connect(a, b, [&](bool, Duration d) { elapsed = d; });
  sim_.run();
  EXPECT_GE(elapsed, seconds(45));
  EXPECT_LE(elapsed, seconds(45) + milliseconds(150));
}

TEST_F(NetworkTest, OfflinePeerDialsFailFastOrAtTimeout) {
  const NodeId a = net_.add_node({.region = 0});
  std::vector<NodeId> targets;
  for (int i = 0; i < 40; ++i) {
    const NodeId b = net_.add_node({.region = 0});
    net_.set_online(b, false);
    targets.push_back(b);
  }
  int fast = 0, slow = 0;
  for (const NodeId b : targets) {
    net_.connect(a, b, [&](bool ok, Duration d) {
      EXPECT_FALSE(ok);
      if (d < seconds(1))
        ++fast;  // RST after one round trip
      else
        ++slow;  // full transport timeout
    });
  }
  sim_.run();
  // kFastFailProbability = 0.7: both outcomes must appear.
  EXPECT_GT(fast, 10);
  EXPECT_GT(slow, 2);
}

TEST_F(NetworkTest, NatPeersCannotBeDialed) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0, .dialable = false});
  bool ok = true;
  net_.connect(a, b, [&](bool success, Duration) { ok = success; });
  sim_.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(net_.dials_failed(), 1u);
}

TEST_F(NetworkTest, RequestResponseRoundTrip) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 1});
  net_.set_request_handler(b, [](NodeId, const MessagePtr& req, auto respond) {
    EXPECT_NE(dynamic_cast<const Ping*>(req.get()), nullptr);
    respond(std::make_shared<Pong>(), 100);
  });
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();

  RpcStatus status = RpcStatus::kTimeout;
  MessagePtr response;
  const Time start = sim_.now();
  Time end = 0;
  net_.request(a, b, std::make_shared<Ping>(), 100, seconds(10),
               [&](RpcStatus s, MessagePtr r) {
                 status = s;
                 response = std::move(r);
                 end = sim_.now();
               });
  sim_.run();
  EXPECT_EQ(status, RpcStatus::kOk);
  EXPECT_NE(dynamic_cast<const Pong*>(response.get()), nullptr);
  // One RTT (200 ms) plus negligible transfer time.
  EXPECT_GE(end - start, milliseconds(200));
  EXPECT_LT(end - start, milliseconds(210));
}

TEST_F(NetworkTest, RequestToUnresponsivePeerTimesOut) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  net_.set_request_handler(b, [](NodeId, const MessagePtr&, auto respond) {
    respond(std::make_shared<Pong>(), 10);
  });
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();
  net_.set_responsive(b, false);

  RpcStatus status = RpcStatus::kOk;
  const Time start = sim_.now();
  Time end = 0;
  net_.request(a, b, std::make_shared<Ping>(), 10, seconds(2),
               [&](RpcStatus s, MessagePtr) {
                 status = s;
                 end = sim_.now();
               });
  sim_.run();
  EXPECT_EQ(status, RpcStatus::kTimeout);
  EXPECT_EQ(end - start, seconds(2));
}

TEST_F(NetworkTest, RequestWithoutConnectionIsUnreachable) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  RpcStatus status = RpcStatus::kOk;
  net_.request(a, b, std::make_shared<Ping>(), 10, seconds(1),
               [&](RpcStatus s, MessagePtr) { status = s; });
  sim_.run();
  EXPECT_EQ(status, RpcStatus::kUnreachable);
}

TEST_F(NetworkTest, GoingOfflineDropsConnections) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();
  ASSERT_TRUE(net_.connected(a, b));
  net_.set_online(b, false);
  EXPECT_FALSE(net_.connected(a, b));
  EXPECT_TRUE(net_.connections_of(a).empty());
}

TEST_F(NetworkTest, SendDeliversToConnectedPeer) {
  const NodeId a = net_.add_node({.region = 0});
  const NodeId b = net_.add_node({.region = 0});
  int received = 0;
  net_.set_message_handler(b, [&](NodeId from, const MessagePtr&) {
    EXPECT_EQ(from, a);
    ++received;
  });
  net_.connect(a, b, [](bool, Duration) {});
  sim_.run();
  net_.send(a, b, std::make_shared<Ping>(), 50);
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, UplinkSerializesConcurrentTransfers) {
  // Two large sends from one node share its uplink: the second is queued
  // behind the first instead of magically doubling the bandwidth.
  const NodeId src = net_.add_node(
      {.region = 0, .upload_bytes_per_sec = 1024.0 * 1024});
  const NodeId dst_a = net_.add_node({.region = 0});
  const NodeId dst_b = net_.add_node({.region = 0});
  net_.connect(src, dst_a, [](bool, Duration) {});
  net_.connect(src, dst_b, [](bool, Duration) {});
  sim_.run();

  Time first = 0, second = 0;
  net_.set_message_handler(dst_a, [&](NodeId, const MessagePtr&) {
    first = sim_.now();
  });
  net_.set_message_handler(dst_b, [&](NodeId, const MessagePtr&) {
    second = sim_.now();
  });
  const Time start = sim_.now();
  net_.send(src, dst_a, std::make_shared<Ping>(), 1024 * 1024);  // 1 s
  net_.send(src, dst_b, std::make_shared<Ping>(), 1024 * 1024);  // +1 s
  sim_.run();
  EXPECT_GE(first - start, seconds(1));
  EXPECT_LT(first - start, seconds(1.2));
  EXPECT_GE(second - start, seconds(2));  // queued behind the first
  EXPECT_LT(second - start, seconds(2.2));
}

TEST_F(NetworkTest, DistinctSendersDoNotQueueOnEachOther) {
  const NodeId src_a = net_.add_node(
      {.region = 0, .upload_bytes_per_sec = 1024.0 * 1024});
  const NodeId src_b = net_.add_node(
      {.region = 0, .upload_bytes_per_sec = 1024.0 * 1024});
  const NodeId dst = net_.add_node(
      {.region = 0, .download_bytes_per_sec = 100.0 * 1024 * 1024});
  net_.connect(src_a, dst, [](bool, Duration) {});
  net_.connect(src_b, dst, [](bool, Duration) {});
  sim_.run();

  int delivered = 0;
  Time last = 0;
  net_.set_message_handler(dst, [&](NodeId, const MessagePtr&) {
    ++delivered;
    last = sim_.now();
  });
  const Time start = sim_.now();
  net_.send(src_a, dst, std::make_shared<Ping>(), 1024 * 1024);
  net_.send(src_b, dst, std::make_shared<Ping>(), 1024 * 1024);
  sim_.run();
  EXPECT_EQ(delivered, 2);
  // Both arrive around 1 s: independent uplinks run in parallel.
  EXPECT_LT(last - start, seconds(1.3));
}

TEST_F(NetworkTest, LargeTransfersTakeBandwidthTime) {
  const NodeId a = net_.add_node(
      {.region = 0, .upload_bytes_per_sec = 1024.0 * 1024});
  const NodeId b = net_.add_node({.region = 0});
  // 1 MiB at 1 MiB/s upload = 1 s.
  EXPECT_EQ(net_.transfer_time(a, b, 1024 * 1024), seconds(1));
}

// --------------------------------------------------------------------------
// Churn
// --------------------------------------------------------------------------

TEST(ChurnTest, NodesCycleThroughSessions) {
  Simulator sim;
  const LatencyModel latency({{5.0}}, 1.0, 1.0);
  Network net(sim, latency, 3);
  ChurnProcess churn(sim, net, 3);

  const NodeId node = net.add_node({.region = 0});
  int online_events = 0, offline_events = 0;
  churn.add_listener([&](NodeId, bool online) {
    if (online)
      ++online_events;
    else
      ++offline_events;
  });
  churn.manage(
      node, [](Rng& rng) { return seconds(rng.uniform(50, 100)); },
      [](Rng& rng) { return seconds(rng.uniform(50, 100)); });

  sim.run_until(hours(1));
  EXPECT_GT(online_events, 5);
  EXPECT_GT(offline_events, 5);
  EXPECT_GT(churn.transitions(), 10u);
}

// --------------------------------------------------------------------------
// FaultPlan
// --------------------------------------------------------------------------

class FaultPlanTest : public ::testing::Test {
 protected:
  FaultPlanTest() : latency_({{10.0}}, 1.0, 1.0), net_(sim_, latency_, 5) {
    a_ = net_.add_node({.region = 0});
    b_ = net_.add_node({.region = 0});
    c_ = net_.add_node({.region = 0});
  }

  Simulator sim_;
  LatencyModel latency_;
  Network net_;
  NodeId a_ = kInvalidNode;
  NodeId b_ = kInvalidNode;
  NodeId c_ = kInvalidNode;
};

TEST_F(FaultPlanTest, MessageFaultDrawsAreDeterministicPerSeed) {
  FaultConfig config;
  config.drop_prob = 0.3;
  config.duplicate_prob = 0.2;
  config.reorder_prob = 0.25;
  FaultPlan first(net_, config, 99);
  FaultPlan second(net_, config, 99);
  FaultPlan other_seed(net_, config, 100);

  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const bool drop = first.drop_message(a_, b_);
    EXPECT_EQ(drop, second.drop_message(a_, b_));
    EXPECT_EQ(first.duplicate_message(a_, b_), second.duplicate_message(a_, b_));
    EXPECT_EQ(first.reorder_delay(a_, b_), second.reorder_delay(a_, b_));
    if (drop != other_seed.drop_message(a_, b_)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds drew identical fault sequences";
  EXPECT_EQ(first.counters().messages_dropped,
            second.counters().messages_dropped);
  EXPECT_GT(first.counters().messages_dropped, 0u);
}

TEST_F(FaultPlanTest, ZeroConfigInjectsNothing) {
  FaultPlan plan(net_, FaultConfig{}, 7);
  plan.arm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.drop_message(a_, b_));
    EXPECT_FALSE(plan.duplicate_message(a_, b_));
    EXPECT_EQ(plan.reorder_delay(a_, b_), 0);
    EXPECT_FALSE(plan.fail_dial(a_, b_));
    EXPECT_EQ(plan.latency_factor(a_, b_), 1.0);
  }
  sim_.run();
  EXPECT_EQ(plan.counters().total_injected(), 0u);
}

TEST_F(FaultPlanTest, InjectedDialFailureHangsUntilTransportTimeout) {
  FaultConfig config;
  config.dial_failure_prob = 1.0;
  FaultPlan plan(net_, config, 11);
  plan.arm();

  bool done = false;
  const Time start = sim_.now();
  net_.connect(a_, b_, [&](bool ok, Duration) {
    done = true;
    EXPECT_FALSE(ok);
    // The injected failure models a half-broken NAT mapping: the dial
    // hangs until the transport timeout (plus the fabric's 20-150 ms of
    // scheduler/teardown slack) rather than fast-failing.
    EXPECT_GE(sim_.now() - start, dial_timeout(Transport::kTcp));
    EXPECT_LE(sim_.now() - start,
              dial_timeout(Transport::kTcp) + milliseconds(150));
  });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_GT(plan.counters().dials_failed, 0u);
}

TEST_F(FaultPlanTest, ResetConnectionFailsInFlightRequestsWithReset) {
  net_.set_request_handler(b_, [](NodeId, const MessagePtr&, auto respond) {
    // Answer with one round-trip's worth of delay already paid; the reset
    // lands before the response does.
    respond(std::make_shared<Pong>(), 64);
  });
  net_.connect(a_, b_, [](bool, Duration) {});
  sim_.run();
  ASSERT_TRUE(net_.connected(a_, b_));

  RpcStatus observed = RpcStatus::kOk;
  bool done = false;
  net_.request(a_, b_, std::make_shared<Ping>(), 64, seconds(30),
               [&](RpcStatus status, const MessagePtr&) {
                 observed = status;
                 done = true;
               });
  // One-way latency is 10 ms: the request is still in flight at 5 ms.
  sim_.schedule_after(milliseconds(5), [&] { net_.reset_connection(a_, b_); });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(observed, RpcStatus::kReset);
  EXPECT_FALSE(net_.connected(a_, b_));
  EXPECT_EQ(net_.pending_request_count(), 0u);
}

TEST_F(FaultPlanTest, CrashRestartCyclesNotifyListenersAndRecover) {
  FaultConfig config;
  config.crashes_per_hour_per_node = 60.0;  // about one per minute
  config.min_downtime = seconds(5);
  config.max_downtime = seconds(20);
  FaultPlan plan(net_, config, 21);
  plan.manage_crashes(b_);

  int crash_events = 0, restart_events = 0;
  plan.add_crash_listener([&](NodeId node, bool online) {
    EXPECT_EQ(node, b_);
    if (online)
      ++restart_events;
    else
      ++crash_events;
  });

  plan.arm();
  sim_.run_until(minutes(30));
  EXPECT_GT(plan.counters().crashes, 5u);
  EXPECT_EQ(crash_events, static_cast<int>(plan.counters().crashes));
  EXPECT_EQ(restart_events, static_cast<int>(plan.counters().restarts));

  // disarm() revives anything still down so the world can drain.
  plan.disarm();
  EXPECT_EQ(plan.crashed_count(), 0u);
  EXPECT_TRUE(net_.online(b_));
  EXPECT_EQ(crash_events, restart_events);
}

TEST_F(FaultPlanTest, LatencySpikesAreCountedAndScaleTheLink) {
  FaultConfig config;
  config.latency_spikes_per_hour = 3600.0;  // about one per second
  config.latency_spike_factor = 8.0;
  config.latency_spike_duration = hours(10);  // effectively permanent
  FaultPlan plan(net_, config, 33);
  plan.arm();
  sim_.run_until(minutes(1));
  EXPECT_GT(plan.counters().latency_spikes, 10u);

  // With every node spiked and the spike still active, each link reports
  // the configured factor.
  EXPECT_EQ(plan.latency_factor(a_, b_), 8.0);
  EXPECT_EQ(plan.latency_factor(b_, c_), 8.0);
  plan.detach();
}

}  // namespace
}  // namespace ipfs::sim
