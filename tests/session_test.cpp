// Bitswap session tests: multi-path striping, failure retry, peer
// scoring, and degradation to single-path.
#include <gtest/gtest.h>

#include "bitswap/session.h"
#include "merkledag/merkledag.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ipfs::bitswap {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class SessionTest : public ::testing::Test {
 protected:
  static constexpr int kProviders = 3;

  SessionTest() : latency_({{15.0}}, 1.0, 1.0), network_(sim_, latency_, 7) {
    requester_node_ = network_.add_node(
        {.region = 0, .download_bytes_per_sec = 50.0 * 1024 * 1024});
    requester_ = std::make_unique<Bitswap>(network_, requester_node_,
                                           requester_store_);
    for (int i = 0; i < kProviders; ++i) {
      provider_nodes_[i] = network_.add_node(
          {.region = 0, .upload_bytes_per_sec = 2.0 * 1024 * 1024});
      providers_[i] = std::make_unique<Bitswap>(network_, provider_nodes_[i],
                                                provider_stores_[i]);
      Bitswap* bitswap = providers_[i].get();
      network_.set_request_handler(
          provider_nodes_[i],
          [bitswap](sim::NodeId from, const sim::MessagePtr& message,
                    auto respond) {
            bitswap->handle_request(from, message, respond);
          });
      network_.connect(requester_node_, provider_nodes_[i],
                       [](bool, sim::Duration) {});
    }
    sim_.run();
  }

  // Imports the object into `count` provider stores; returns the root.
  multiformats::Cid seed_providers(const std::vector<std::uint8_t>& data,
                                   int count) {
    multiformats::Cid root;
    for (int i = 0; i < count; ++i)
      root = merkledag::import_bytes(provider_stores_[i], data).root;
    return root;
  }

  sim::Simulator sim_;
  sim::LatencyModel latency_;
  sim::Network network_;
  blockstore::BlockStore requester_store_;
  blockstore::BlockStore provider_stores_[kProviders];
  sim::NodeId requester_node_ = 0;
  sim::NodeId provider_nodes_[kProviders] = {};
  std::unique_ptr<Bitswap> requester_;
  std::unique_ptr<Bitswap> providers_[kProviders];
};

TEST_F(SessionTest, StripesBlocksAcrossPeers) {
  const auto data = random_bytes(2 * 1024 * 1024, 1);  // 8 chunks
  const auto root = seed_providers(data, 3);

  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);
  EXPECT_EQ(session.peer_count(), 3u);

  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
  // At least two peers contributed blocks.
  int contributors = 0;
  for (const auto& [node, peer_stats] : stats.per_peer)
    if (peer_stats.blocks > 0) ++contributors;
  EXPECT_GE(contributors, 2);
}

TEST_F(SessionTest, MultiPathBeatsSinglePath) {
  const auto data = random_bytes(4 * 1024 * 1024, 2);  // 16 chunks
  const auto root = seed_providers(data, 3);

  // Single-path fetch.
  FetchStats single;
  blockstore::BlockStore single_store;
  Bitswap single_bitswap(network_, requester_node_, single_store);
  single_bitswap.fetch_dag(provider_nodes_[0], root,
                           [&](FetchStats s) { single = s; });
  sim_.run();
  ASSERT_TRUE(single.ok);

  // Session fetch over three providers (fresh store so nothing is local).
  blockstore::BlockStore session_store;
  Bitswap session_bitswap(network_, requester_node_, session_store);
  Session session(session_bitswap);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);
  SessionFetchStats multi;
  session.fetch_dag(root, [&](SessionFetchStats s) { multi = s; });
  sim_.run();
  ASSERT_TRUE(multi.ok);

  // Providers cap at 2 MiB/s upload each; three in parallel should be
  // clearly faster than one.
  EXPECT_LT(multi.elapsed, single.elapsed);
}

TEST_F(SessionTest, ReroutesWantsOffStaleProviderViaDontHave) {
  const auto data = random_bytes(1536 * 1024, 3);  // 6 chunks
  // Providers 0 and 1 have the content; provider 2 has NOTHING but is in
  // the session (a stale provider record).
  const auto root = seed_providers(data, 2);

  // Probes off: WANT_BLOCKs reach the empty peer, which answers with an
  // explicit DONT_HAVE (1.2.0) instead of leaving the want to time out.
  SessionConfig config;
  config.probe_want_have = false;
  Session session(*requester_, config);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);

  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
  // Wants landing on the empty peer were answered DONT_HAVE and rerouted
  // to the peers that have the content — an honest miss, not a transport
  // failure, so the peer is penalized in score but never marked dead.
  EXPECT_GT(stats.dont_have_reroutes, 0u);
  EXPECT_GT(stats.per_peer[provider_nodes_[2]].dont_haves, 0u);
  EXPECT_EQ(stats.per_peer[provider_nodes_[2]].failures, 0u);
  EXPECT_EQ(stats.per_peer[provider_nodes_[2]].blocks, 0u);
}

TEST_F(SessionTest, ProbePhaseAvoidsStaleProviderEntirely) {
  const auto data = random_bytes(1536 * 1024, 3);  // 6 chunks
  const auto root = seed_providers(data, 2);

  // Default config: WANT_HAVE probes run first. The empty peer answers
  // DONT_HAVE for the root and is demoted before any WANT_BLOCK reaches
  // it — no wants are wasted on a peer known not to have the content.
  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);

  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
  EXPECT_GT(stats.per_peer[provider_nodes_[2]].dont_haves, 0u);
  EXPECT_EQ(stats.per_peer[provider_nodes_[2]].wants_sent, 0u);
  EXPECT_EQ(stats.per_peer[provider_nodes_[2]].blocks, 0u);
}

TEST_F(SessionTest, FailsWhenNoPeerHasTheContent) {
  const auto data = random_bytes(100 * 1024, 4);
  blockstore::BlockStore elsewhere;
  const auto root = merkledag::import_bytes(elsewhere, data).root;

  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);
  SessionFetchStats stats;
  stats.ok = true;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();
  EXPECT_FALSE(stats.ok);
}

TEST_F(SessionTest, EmptySessionFailsImmediately) {
  Session session(*requester_);
  bool called = false;
  session.fetch_dag(multiformats::Cid::from_data(
                        multiformats::Multicodec::kRaw, random_bytes(8, 5)),
                    [&](SessionFetchStats s) {
                      called = true;
                      EXPECT_FALSE(s.ok);
                    });
  EXPECT_TRUE(called);
}

TEST_F(SessionTest, SurvivesConnectionResetMidTransfer) {
  const auto data = random_bytes(2 * 1024 * 1024, 7);  // 8 chunks
  const auto root = seed_providers(data, 3);

  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);

  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  // Providers cap at 2 MiB/s: the transfer takes about a second, so a
  // reset at 200 ms catches in-flight WANT_BLOCKs on provider 0.
  sim_.schedule_after(sim::milliseconds(200), [&] {
    network_.reset_connection(requester_node_, provider_nodes_[0]);
  });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
  // The reset surfaced as failures on provider 0 and the lost blocks were
  // retried on the surviving peers.
  EXPECT_GT(stats.per_peer[provider_nodes_[0]].failures, 0u);
  EXPECT_GT(stats.retried_blocks, 0u);
}

TEST_F(SessionTest, SurvivesPeerCrashMidTransfer) {
  const auto data = random_bytes(2 * 1024 * 1024, 8);
  const auto root = seed_providers(data, 3);

  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);

  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.schedule_after(sim::milliseconds(200), [&] {
    network_.set_online(provider_nodes_[0], false);
  });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
}

TEST_F(SessionTest, AllProvidersCrashingFailsWithTypedError) {
  // More blocks than the fetch window, so the session must issue new
  // WANT_BLOCKs after the crash (blocks already on the wire at crash time
  // still arrive — the crash mutes the providers, not in-flight bytes).
  const auto data = random_bytes(8 * 1024 * 1024, 9);  // 32 chunks
  const auto root = seed_providers(data, 3);

  Session session(*requester_);
  for (int i = 0; i < 3; ++i) session.add_peer(provider_nodes_[i]);

  int completions = 0;
  SessionFetchStats stats;
  stats.ok = true;
  session.fetch_dag(root, [&](SessionFetchStats s) {
    stats = s;
    ++completions;
  });
  sim_.schedule_after(sim::milliseconds(100), [&] {
    for (int i = 0; i < 3; ++i) network_.set_online(provider_nodes_[i], false);
  });
  sim_.run();

  // The fetch reports failure exactly once — a typed error, not a hang.
  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(stats.ok);
}

TEST_F(SessionTest, RestartedPeerKeepsBlockstoreAndServesAgain) {
  const auto data = random_bytes(1024 * 1024, 10);
  const auto root = seed_providers(data, 1);

  // Crash the only provider, then bring it back: the blockstore survives
  // a crash (it lives on disk), so a post-restart session succeeds.
  network_.set_online(provider_nodes_[0], false);
  providers_[0]->handle_crash();
  network_.set_online(provider_nodes_[0], true);
  network_.connect(requester_node_, provider_nodes_[0],
                   [](bool, sim::Duration) {});
  sim_.run();

  Session session(*requester_);
  session.add_peer(provider_nodes_[0]);
  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
  // And the ledger kept its pre-crash accounting semantics: the restarted
  // peer recorded the blocks it just served.
  EXPECT_GT(providers_[0]->ledger_for(requester_node_).blocks_sent, 0u);
}

TEST_F(SessionTest, SinglePeerSessionStillWorks) {
  const auto data = random_bytes(600 * 1024, 6);
  const auto root = seed_providers(data, 1);
  Session session(*requester_);
  session.add_peer(provider_nodes_[0]);
  SessionFetchStats stats;
  session.fetch_dag(root, [&](SessionFetchStats s) { stats = s; });
  sim_.run();
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(merkledag::cat(requester_store_, root), data);
}

TEST_F(SessionTest, SharedDagLinksAreFetchedExactlyOnce) {
  // Root links leaf A twice plus leaf B. Striping across three peers used
  // to dispatch both copies of A concurrently (neither had landed yet),
  // double-fetching the block and double-counting the session stats.
  const auto leaf_a = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(2048, 31));
  const auto leaf_b = blockstore::Block::from_data(
      multiformats::Multicodec::kRaw, random_bytes(1024, 32));
  merkledag::DagNode root_node;
  root_node.links.push_back({leaf_a.cid, leaf_a.data.size()});
  root_node.links.push_back({leaf_a.cid, leaf_a.data.size()});
  root_node.links.push_back({leaf_b.cid, leaf_b.data.size()});
  const auto root = blockstore::Block::from_data(
      multiformats::Multicodec::kDagPb, root_node.encode());
  for (int i = 0; i < kProviders; ++i) {
    provider_stores_[i].put(leaf_a);
    provider_stores_[i].put(leaf_b);
    provider_stores_[i].put(root);
  }

  Session session(*requester_);
  for (int i = 0; i < kProviders; ++i) session.add_peer(provider_nodes_[i]);
  SessionFetchStats stats;
  session.fetch_dag(root.cid, [&](SessionFetchStats s) { stats = s; });
  sim_.run();

  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.blocks, 3u);  // root + A + B, each exactly once
  EXPECT_EQ(stats.bytes,
            root.data.size() + leaf_a.data.size() + leaf_b.data.size());
  std::uint64_t sent = 0;
  for (int i = 0; i < kProviders; ++i)
    sent += providers_[i]->ledger_for(requester_node_).blocks_sent;
  EXPECT_EQ(sent, 3u);
  EXPECT_EQ(network_.metrics().counter_value(
                "bitswap.duplicate_wants_suppressed"),
            1u);
}

}  // namespace
}  // namespace ipfs::bitswap
