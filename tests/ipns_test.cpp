// IPNS tests: record signing/verification, encode/decode, sequence
// semantics, end-to-end publish/resolve over a DHT swarm (with quorum
// record selection), and the pubsub fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ipns/ipns.h"
#include "ipns/ipns_pubsub.h"
#include "scenario/scenario.h"
#include "testutil.h"

namespace ipfs::ipns {
namespace {

using testutil::TestSwarm;

crypto::Ed25519KeyPair keypair_of(std::uint8_t tag) {
  crypto::Ed25519Seed seed{};
  seed[0] = tag;
  return crypto::ed25519_keypair(seed);
}

multiformats::Cid cid_of(std::string_view text) {
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  return multiformats::Cid::from_data(multiformats::Multicodec::kRaw, data);
}

TEST(IpnsRecordTest, CreateVerifyRoundTrip) {
  const auto keypair = keypair_of(1);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("v1"), 1);
  EXPECT_TRUE(record.verify(name));
  EXPECT_EQ(record.target(), cid_of("v1"));
}

TEST(IpnsRecordTest, EncodeDecodeRoundTrip) {
  const auto keypair = keypair_of(2);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("data"), 7);
  const auto decoded = IpnsRecord::decode(record.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_TRUE(decoded->verify(name));
  EXPECT_EQ(decoded->target(), cid_of("data"));
}

TEST(IpnsRecordTest, RejectsWrongName) {
  const auto keypair = keypair_of(3);
  const auto other = keypair_of(4);
  const auto wrong_name =
      multiformats::PeerId::from_public_key(other.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("x"), 1);
  EXPECT_FALSE(record.verify(wrong_name));
}

TEST(IpnsRecordTest, RejectsTamperedValue) {
  const auto keypair = keypair_of(5);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  auto record = IpnsRecord::create(keypair, cid_of("original"), 1);
  record.value[8] ^= 1;
  EXPECT_FALSE(record.verify(name));
}

TEST(IpnsRecordTest, RejectsTamperedSequence) {
  const auto keypair = keypair_of(6);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  auto record = IpnsRecord::create(keypair, cid_of("content"), 1);
  record.sequence = 99;  // signature no longer covers this
  EXPECT_FALSE(record.verify(name));
}

TEST(IpnsRecordTest, DecodeRejectsTruncation) {
  const auto keypair = keypair_of(7);
  auto encoded = IpnsRecord::create(keypair, cid_of("t"), 1).encode();
  encoded.pop_back();
  EXPECT_FALSE(IpnsRecord::decode(encoded).has_value());
}

TEST(IpnsSwarmTest, PublishAndResolve) {
  TestSwarm swarm(50);
  const auto keypair = keypair_of(8);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto target = cid_of("my website v1");

  bool published = false;
  publish(swarm.node(3), keypair, target, 1,
          [&](bool ok, int) { published = ok; });
  swarm.simulator().run();
  ASSERT_TRUE(published);

  std::optional<multiformats::Cid> resolved;
  resolve(swarm.node(40), name,
          [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, target);
}

TEST(IpnsSwarmTest, UpdateSupersedesOldRecord) {
  TestSwarm swarm(50);
  const auto keypair = keypair_of(9);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  publish(swarm.node(3), keypair, cid_of("v1"), 1, [](bool, int) {});
  swarm.simulator().run();
  publish(swarm.node(3), keypair, cid_of("v2"), 2, [](bool, int) {});
  swarm.simulator().run();

  std::optional<multiformats::Cid> resolved;
  resolve(swarm.node(22), name,
          [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  // Mutable pointer, immutable content: the name now maps to v2.
  EXPECT_EQ(*resolved, cid_of("v2"));
}

TEST(IpnsSwarmTest, ResolveUnknownNameFails) {
  TestSwarm swarm(30);
  const auto keypair = keypair_of(10);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  bool called = false;
  std::optional<multiformats::Cid> resolved = cid_of("sentinel");
  resolve(swarm.node(5), name, [&](std::optional<multiformats::Cid> cid) {
    called = true;
    resolved = cid;
  });
  swarm.simulator().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(resolved.has_value());
}

TEST(IpnsSwarmTest, QuorumResolveIgnoresStaleReplicas) {
  // Divergent replicas: most record holders are stale (sequence 1), a
  // few have the update (sequence 2). First-record-wins would usually
  // return v1 here; the quorum walk must return v2.
  TestSwarm swarm(50);
  const auto keypair = keypair_of(11);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const dht::Key key = ipns_key(name);

  const auto stale = IpnsRecord::create(keypair, cid_of("v1"), 1);
  const auto fresh = IpnsRecord::create(keypair, cid_of("v2"), 2);
  // Plant records directly (skipping the walk) so the divergence is
  // total and deterministic: every node holds the stale copy, then two
  // of the nodes closest to the key get the update — like a republish
  // that only partially propagated through the replica set.
  std::vector<std::size_t> by_distance(swarm.size());
  for (std::size_t i = 0; i < swarm.size(); ++i) by_distance[i] = i;
  std::sort(by_distance.begin(), by_distance.end(),
            [&](std::size_t a, std::size_t b) {
              return dht::Key::for_peer(swarm.ref(a).id).distance_to(key) <
                     dht::Key::for_peer(swarm.ref(b).id).distance_to(key);
            });
  std::set<std::size_t> updated{by_distance[2], by_distance[5]};
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    dht::ValueRecord value;
    value.value = (updated.contains(i) ? fresh : stale).encode();
    value.sequence = updated.contains(i) ? 2 : 1;
    swarm.node(i).record_store().put_value(key, value);
  }

  std::optional<multiformats::Cid> resolved;
  resolve(swarm.node(5), name,
          [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, cid_of("v2"));
}

TEST(IpnsSwarmTest, QuorumRejectsForgedHighSequence) {
  // A forged record with a huge sequence must lose to a valid low one.
  std::vector<dht::ValueRecord> values;
  const auto keypair = keypair_of(12);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  dht::ValueRecord good;
  good.value = IpnsRecord::create(keypair, cid_of("real"), 3).encode();
  good.sequence = 3;
  values.push_back(good);

  auto forged = IpnsRecord::create(keypair, cid_of("fake"), 3);
  forged.sequence = 999;  // signature no longer covers this
  dht::ValueRecord bad;
  bad.value = forged.encode();
  bad.sequence = 999;
  values.push_back(bad);

  const auto best = select_record(name, values);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->sequence, 3u);
  EXPECT_EQ(best->target(), cid_of("real"));
}

// A swarm where every node runs a DHT server and a pubsub engine, with
// one PubsubResolver per node.
struct PubsubIpnsSwarm {
  explicit PubsubIpnsSwarm(std::size_t size, std::uint64_t seed = 42)
      : scenario(scenario::ScenarioBuilder()
                     .peers(size)
                     .seed(seed)
                     .single_region(20.0)
                     .dht_servers(true)
                     .pubsub(true)
                     .build()) {
    for (std::size_t i = 0; i < size; ++i)
      resolvers.push_back(std::make_unique<PubsubResolver>(
          scenario.dht(i), scenario.pubsub(i)));
  }

  scenario::Scenario scenario;
  std::vector<std::unique_ptr<PubsubResolver>> resolvers;
};

TEST(IpnsPubsubTest, FollowerResolvesFromBroadcastWithoutDht) {
  PubsubIpnsSwarm swarm(30);
  const auto keypair = keypair_of(13);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  for (std::size_t i = 1; i < 30; ++i) swarm.resolvers[i]->follow(name);
  swarm.scenario.simulator().run_until(sim::seconds(15));  // meshes form

  bool published = false;
  swarm.resolvers[0]->publish(keypair, cid_of("site v1"), 1,
                              [&](bool ok, int) { published = ok; });
  swarm.scenario.simulator().run_until(sim::minutes(5));
  ASSERT_TRUE(published);

  auto& metrics = swarm.scenario.network().metrics();
  const std::uint64_t rpcs_before =
      metrics.counter_value("dht.lookup.rpcs_sent");
  std::optional<multiformats::Cid> resolved;
  swarm.resolvers[20]->resolve(
      name, [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  // The cache answers synchronously: no simulator time may pass, and no
  // DHT traffic may be added.
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, cid_of("site v1"));
  EXPECT_GE(metrics.counter_value("ipns.pubsub.cache_hit"), 1u);
  EXPECT_EQ(metrics.counter_value("dht.lookup.rpcs_sent"), rpcs_before);
}

TEST(IpnsPubsubTest, NonFollowerFallsBackToDhtAndSeedsCache) {
  PubsubIpnsSwarm swarm(30);
  const auto keypair = keypair_of(14);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  bool published = false;
  swarm.resolvers[0]->publish(keypair, cid_of("fallback"), 1,
                              [&](bool ok, int) { published = ok; });
  swarm.scenario.simulator().run();
  ASSERT_TRUE(published);

  // Node 9 never followed the name: resolve must walk the DHT.
  std::optional<multiformats::Cid> resolved;
  swarm.resolvers[9]->resolve(
      name, [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.scenario.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, cid_of("fallback"));
  EXPECT_GE(swarm.scenario.network().metrics().counter_value(
                "ipns.pubsub.cache_miss"),
            1u);

  // The DHT result seeded the cache: the second resolve is local.
  std::optional<multiformats::Cid> again;
  swarm.resolvers[9]->resolve(
      name, [&](std::optional<multiformats::Cid> cid) { again = cid; });
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, cid_of("fallback"));
}

TEST(IpnsPubsubTest, StaleBroadcastCannotRegressCache) {
  PubsubIpnsSwarm swarm(20);
  const auto keypair = keypair_of(15);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  for (std::size_t i = 1; i < 20; ++i) swarm.resolvers[i]->follow(name);
  swarm.scenario.simulator().run_until(sim::seconds(15));

  swarm.resolvers[0]->publish(keypair, cid_of("v2"), 2, [](bool, int) {});
  swarm.scenario.simulator().run_until(sim::minutes(3));
  // Replay of an older record (e.g. a laggard rebroadcast).
  swarm.scenario.pubsub(0).publish(
      pubsub_topic(name), IpnsRecord::create(keypair, cid_of("v1"), 1).encode());
  swarm.scenario.simulator().run_until(sim::minutes(6));

  const auto cached = swarm.resolvers[11]->cached(name);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->sequence, 2u);
  EXPECT_EQ(cached->target(), cid_of("v2"));
  EXPECT_GE(swarm.scenario.network().metrics().counter_value(
                "ipns.pubsub.stale_ignored"),
            1u);
}

TEST(IpnsPubsubTest, ForgedBroadcastIsRejected) {
  PubsubIpnsSwarm swarm(20);
  const auto keypair = keypair_of(16);
  const auto attacker = keypair_of(17);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  for (std::size_t i = 1; i < 20; ++i) swarm.resolvers[i]->follow(name);
  swarm.scenario.simulator().run_until(sim::seconds(15));

  // The attacker signs with its own key: self-certification must reject.
  swarm.scenario.pubsub(5).publish(
      pubsub_topic(name),
      IpnsRecord::create(attacker, cid_of("evil"), 99).encode());
  swarm.scenario.simulator().run_until(sim::minutes(2));

  EXPECT_FALSE(swarm.resolvers[11]->cached(name).has_value());
  EXPECT_GE(swarm.scenario.network().metrics().counter_value(
                "ipns.pubsub.rejected"),
            1u);
}

TEST(IpnsPubsubTest, RestartResubscribesFollowedNames) {
  PubsubIpnsSwarm swarm(20);
  const auto keypair = keypair_of(18);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  for (std::size_t i = 1; i < 20; ++i) swarm.resolvers[i]->follow(name);
  swarm.scenario.simulator().run_until(sim::seconds(15));

  // Crash node 7: engine + resolver lose soft state, follow set persists.
  auto& net = swarm.scenario.network();
  net.set_online(swarm.scenario.node(7), false);
  swarm.scenario.pubsub(7).handle_crash();
  swarm.resolvers[7]->handle_crash();
  swarm.scenario.simulator().run_until(sim::seconds(30));

  net.set_online(swarm.scenario.node(7), true);
  swarm.scenario.pubsub(7).handle_restart();
  for (std::size_t j = 0; j < 20; ++j)
    if (j != 7)
      swarm.scenario.pubsub(7).add_candidate_peer(swarm.scenario.node(j));
  swarm.resolvers[7]->handle_restart();
  EXPECT_TRUE(swarm.resolvers[7]->following(name));
  EXPECT_FALSE(swarm.resolvers[7]->cached(name).has_value());
  swarm.scenario.simulator().run_until(sim::minutes(2));

  // A post-restart publish must reach the resubscribed node's cache.
  swarm.resolvers[0]->publish(keypair, cid_of("after restart"), 5,
                              [](bool, int) {});
  swarm.scenario.simulator().run_until(sim::minutes(6));
  const auto cached = swarm.resolvers[7]->cached(name);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->target(), cid_of("after restart"));
}

}  // namespace
}  // namespace ipfs::ipns
