// IPNS tests: record signing/verification, encode/decode, sequence
// semantics and end-to-end publish/resolve over a DHT swarm.
#include <gtest/gtest.h>

#include "ipns/ipns.h"
#include "testutil.h"

namespace ipfs::ipns {
namespace {

using testutil::TestSwarm;

crypto::Ed25519KeyPair keypair_of(std::uint8_t tag) {
  crypto::Ed25519Seed seed{};
  seed[0] = tag;
  return crypto::ed25519_keypair(seed);
}

multiformats::Cid cid_of(std::string_view text) {
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  return multiformats::Cid::from_data(multiformats::Multicodec::kRaw, data);
}

TEST(IpnsRecordTest, CreateVerifyRoundTrip) {
  const auto keypair = keypair_of(1);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("v1"), 1);
  EXPECT_TRUE(record.verify(name));
  EXPECT_EQ(record.target(), cid_of("v1"));
}

TEST(IpnsRecordTest, EncodeDecodeRoundTrip) {
  const auto keypair = keypair_of(2);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("data"), 7);
  const auto decoded = IpnsRecord::decode(record.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_TRUE(decoded->verify(name));
  EXPECT_EQ(decoded->target(), cid_of("data"));
}

TEST(IpnsRecordTest, RejectsWrongName) {
  const auto keypair = keypair_of(3);
  const auto other = keypair_of(4);
  const auto wrong_name =
      multiformats::PeerId::from_public_key(other.public_key);
  const auto record = IpnsRecord::create(keypair, cid_of("x"), 1);
  EXPECT_FALSE(record.verify(wrong_name));
}

TEST(IpnsRecordTest, RejectsTamperedValue) {
  const auto keypair = keypair_of(5);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  auto record = IpnsRecord::create(keypair, cid_of("original"), 1);
  record.value[8] ^= 1;
  EXPECT_FALSE(record.verify(name));
}

TEST(IpnsRecordTest, RejectsTamperedSequence) {
  const auto keypair = keypair_of(6);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  auto record = IpnsRecord::create(keypair, cid_of("content"), 1);
  record.sequence = 99;  // signature no longer covers this
  EXPECT_FALSE(record.verify(name));
}

TEST(IpnsRecordTest, DecodeRejectsTruncation) {
  const auto keypair = keypair_of(7);
  auto encoded = IpnsRecord::create(keypair, cid_of("t"), 1).encode();
  encoded.pop_back();
  EXPECT_FALSE(IpnsRecord::decode(encoded).has_value());
}

TEST(IpnsSwarmTest, PublishAndResolve) {
  TestSwarm swarm(50);
  const auto keypair = keypair_of(8);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const auto target = cid_of("my website v1");

  bool published = false;
  publish(swarm.node(3), keypair, target, 1,
          [&](bool ok, int) { published = ok; });
  swarm.simulator().run();
  ASSERT_TRUE(published);

  std::optional<multiformats::Cid> resolved;
  resolve(swarm.node(40), name,
          [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, target);
}

TEST(IpnsSwarmTest, UpdateSupersedesOldRecord) {
  TestSwarm swarm(50);
  const auto keypair = keypair_of(9);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);

  publish(swarm.node(3), keypair, cid_of("v1"), 1, [](bool, int) {});
  swarm.simulator().run();
  publish(swarm.node(3), keypair, cid_of("v2"), 2, [](bool, int) {});
  swarm.simulator().run();

  std::optional<multiformats::Cid> resolved;
  resolve(swarm.node(22), name,
          [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  swarm.simulator().run();
  ASSERT_TRUE(resolved.has_value());
  // Mutable pointer, immutable content: the name now maps to v2.
  EXPECT_EQ(*resolved, cid_of("v2"));
}

TEST(IpnsSwarmTest, ResolveUnknownNameFails) {
  TestSwarm swarm(30);
  const auto keypair = keypair_of(10);
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  bool called = false;
  std::optional<multiformats::Cid> resolved = cid_of("sentinel");
  resolve(swarm.node(5), name, [&](std::optional<multiformats::Cid> cid) {
    called = true;
    resolved = cid;
  });
  swarm.simulator().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(resolved.has_value());
}

}  // namespace
}  // namespace ipfs::ipns
