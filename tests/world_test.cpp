// World-model tests: population marginals, geo database, routing-table
// pre-convergence, churn dynamics and end-to-end lookups over the world.
#include <gtest/gtest.h>

#include "dht/dht_node.h"
#include "world/world.h"

namespace ipfs::world {
namespace {

WorldConfig small_config(std::size_t peers = 600, std::uint64_t seed = 7) {
  WorldConfig config;
  config.population.peer_count = peers;
  config.seed = seed;
  return config;
}

TEST(GeographyTest, CountrySharesSumToOne) {
  double total = 0.0;
  for (const auto& country : countries()) total += country.peer_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GeographyTest, LatencyMatrixIsSymmetricAndPositive) {
  const auto model = default_latency_model();
  EXPECT_EQ(model.regions(), kRegionCount);
  sim::Rng rng(1);
  for (int a = 0; a < kRegionCount; ++a) {
    for (int b = 0; b < kRegionCount; ++b) {
      const auto sample = model.sample(a, b, rng);
      EXPECT_GT(sample, 0);
      EXPECT_LT(sample, sim::milliseconds(300));
    }
  }
}

TEST(GeographyTest, AsCatalogHasPaperHeavyHitters) {
  const auto& ases = autonomous_systems();
  ASSERT_GE(ases.size(), 5u);
  EXPECT_EQ(ases[0].asn, 4134u);  // CHINANET (Table 2)
  EXPECT_EQ(ases[1].asn, 4837u);  // CHINA169
  EXPECT_GT(ases.size(), 500u);   // long tail exists
}

TEST(PopulationTest, MarginalsRoughlyMatchConfig) {
  PopulationConfig config;
  config.peer_count = 4000;
  const auto population = generate_population(config, sim::Rng(3));
  ASSERT_EQ(population.peers.size(), 4000u);

  std::size_t undialable = 0, multihomed = 0, stable = 0, us = 0;
  for (const auto& peer : population.peers) {
    if (!peer.dialable) ++undialable;
    if (peer.ips.size() > 1) ++multihomed;
    if (peer.stable) ++stable;
    if (countries()[peer.country].code == "US") ++us;
  }
  // Undialable share tracks the config default, multihoming ~8.8 %,
  // cloud ~2.3 %, US ~28.5 %.
  EXPECT_NEAR(static_cast<double>(undialable) / 4000.0,
              config.undialable_share, 0.05);
  EXPECT_NEAR(static_cast<double>(multihomed) / 4000.0, 0.088, 0.03);
  EXPECT_NEAR(static_cast<double>(stable) / 4000.0, 0.023, 0.015);
  EXPECT_NEAR(static_cast<double>(us) / 4000.0, 0.285, 0.06);
}

TEST(PopulationTest, GeoDatabaseCoversEveryIp) {
  PopulationConfig config;
  config.peer_count = 500;
  const auto population = generate_population(config, sim::Rng(4));
  for (const auto& peer : population.peers) {
    for (std::size_t i = 0; i < peer.ips.size(); ++i) {
      const auto* info = population.geodb.lookup(peer.ips[i]);
      ASSERT_NE(info, nullptr);
      EXPECT_EQ(info->country, peer.ip_countries[i]);
    }
  }
}

TEST(PopulationTest, SomeIpsHostManyPeers) {
  PopulationConfig config;
  config.peer_count = 3000;
  const auto population = generate_population(config, sim::Rng(5));
  std::map<std::string, int> per_ip;
  for (const auto& peer : population.peers) ++per_ip[peer.ips.front()];
  int max_count = 0;
  for (const auto& [ip, count] : per_ip) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 10);  // the farm tail of Figure 7c
}

TEST(WorldTest, BuildsRequestedPeerCount) {
  World world(small_config());
  EXPECT_EQ(world.size(), 600u);
  EXPECT_EQ(world.bootstrap_refs().size(), 6u);
}

TEST(WorldTest, RoutingTablesArePreConverged) {
  World world(small_config());
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < world.size(); ++i)
    total_entries += world.dht(i).routing_table().size();
  // Every peer knows a healthy sample of the swarm.
  EXPECT_GT(total_entries / world.size(), 40u);
}

TEST(WorldTest, BootstrapPeersAreStableAndDialable) {
  World world(small_config());
  for (const auto& ref : world.bootstrap_refs()) {
    EXPECT_TRUE(world.network().config(ref.node).dialable);
    EXPECT_TRUE(world.network().online(ref.node));
  }
  // Bootstrap peers are exempt from churn: still online much later.
  world.simulator().run_until(sim::hours(6));
  for (const auto& ref : world.bootstrap_refs())
    EXPECT_TRUE(world.network().online(ref.node));
}

TEST(WorldTest, ChurnKeepsOnlineFractionInSteadyState) {
  World world(small_config(800));
  world.simulator().run_until(sim::hours(2));
  const double online = world.online_fraction();
  // Dialable non-stable peers target 75 % availability; undialable peers
  // (~1/3 of the swarm) never go offline, so overall online share is high
  // but clearly below 1.
  EXPECT_GT(online, 0.6);
  EXPECT_LT(online, 0.98);
  EXPECT_GT(world.churn().transitions(), 100u);
}

TEST(WorldTest, LookupsWorkAcrossTheWorld) {
  World world(small_config(700, /*seed=*/13));
  const dht::Key key =
      dht::Key::hash_of(std::vector<std::uint8_t>{1, 2, 3, 4, 5});

  // A dialable world peer publishes; another finds the record.
  dht::DhtNode::ProvideResult provide;
  std::size_t publisher = 10;
  while (!world.profile(publisher).dialable) ++publisher;
  world.dht(publisher).provide(
      key, [&](dht::DhtNode::ProvideResult r) { provide = r; });
  world.simulator().run();
  ASSERT_TRUE(provide.ok);
  EXPECT_GT(provide.stores_sent, 8);

  std::size_t requester = publisher + 7;
  while (!world.profile(requester).dialable) ++requester;
  dht::LookupResult lookup;
  world.dht(requester).find_providers(
      key, [&](dht::LookupResult r) { lookup = r; });
  world.simulator().run();
  ASSERT_FALSE(lookup.providers.empty());
  EXPECT_EQ(lookup.providers.front().provider.id,
            world.ref(publisher).id);
}

TEST(WorldTest, DeterministicForSameSeed) {
  World a(small_config(300, 99));
  World b(small_config(300, 99));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ref(i).id, b.ref(i).id);
    EXPECT_EQ(a.profile(i).country, b.profile(i).country);
    EXPECT_EQ(a.profile(i).dialable, b.profile(i).dialable);
  }
}

}  // namespace
}  // namespace ipfs::world
