#include <gtest/gtest.h>

#include "blockstore/blockstore.h"

namespace ipfs::blockstore {
namespace {

using multiformats::Multicodec;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(BlockStoreTest, PutGetRoundTrip) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("data"));
  EXPECT_EQ(store.put(block), PutStatus::kStored);
  const auto fetched = store.get(block.cid);
  ASSERT_TRUE(fetched != nullptr);
  EXPECT_EQ(*fetched, bytes_of("data"));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 4u);
}

TEST(BlockStoreTest, DuplicatePutIsDeduplicated) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("same"));
  EXPECT_EQ(store.put(block), PutStatus::kStored);
  EXPECT_EQ(store.put(block), PutStatus::kAlreadyPresent);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 4u);
}

TEST(BlockStoreTest, RejectsCidMismatch) {
  BlockStore store;
  auto block = Block::from_data(Multicodec::kRaw, bytes_of("original"));
  block.data = bytes_of("tampered!");
  EXPECT_EQ(store.put(block), PutStatus::kCidMismatch);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(BlockStoreTest, RemoveRespectsPins) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("keep me"));
  store.put(block);
  store.pin(block.cid);
  EXPECT_FALSE(store.remove(block.cid));
  EXPECT_TRUE(store.has(block.cid));
  store.unpin(block.cid);
  EXPECT_TRUE(store.remove(block.cid));
  EXPECT_FALSE(store.has(block.cid));
}

TEST(BlockStoreTest, GarbageCollectionSparesPinnedBlocks) {
  BlockStore store;
  const auto pinned = Block::from_data(Multicodec::kRaw, bytes_of("pinned"));
  const auto loose1 = Block::from_data(Multicodec::kRaw, bytes_of("loose-1"));
  const auto loose2 = Block::from_data(Multicodec::kRaw, bytes_of("loose-22"));
  store.put(pinned);
  store.put(loose1);
  store.put(loose2);
  store.pin(pinned.cid);

  const auto reclaimed = store.collect_garbage();
  EXPECT_EQ(reclaimed, 7u + 8u);
  EXPECT_TRUE(store.has(pinned.cid));
  EXPECT_FALSE(store.has(loose1.cid));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 6u);
}

TEST(LruBlockStoreTest, EvictsLeastRecentlyUsed) {
  LruBlockStore cache(10);  // bytes
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  EXPECT_TRUE(cache.put(a));
  EXPECT_TRUE(cache.put(b));
  // Touch a so b becomes the LRU entry.
  EXPECT_NE(cache.get(a.cid), nullptr);
  EXPECT_TRUE(cache.put(c));  // 12 bytes > 10: evicts b
  EXPECT_TRUE(cache.has(a.cid));
  EXPECT_FALSE(cache.has(b.cid));
  EXPECT_TRUE(cache.has(c.cid));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.used_bytes(), 8u);
}

TEST(LruBlockStoreTest, RefusesOversizedBlocks) {
  LruBlockStore cache(4);
  const auto big = Block::from_data(Multicodec::kRaw, bytes_of("too big"));
  EXPECT_FALSE(cache.put(big));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruBlockStoreTest, ReinsertRefreshesRecency) {
  LruBlockStore cache(8);
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  cache.put(a);
  cache.put(b);
  cache.put(a);       // refresh a; b is now LRU
  cache.put(c);       // evicts b
  EXPECT_TRUE(cache.has(a.cid));
  EXPECT_FALSE(cache.has(b.cid));
  EXPECT_EQ(cache.block_count(), 2u);
}

TEST(LruBlockStoreTest, RePutKeepsUsedBytesExact) {
  // Regression: a re-put of a resident block must not double-count its
  // size (content is immutable, so the bytes are identical by CID).
  LruBlockStore cache(64);
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  cache.put(a);
  EXPECT_EQ(cache.used_bytes(), 4u);
  cache.put(a);
  EXPECT_EQ(cache.used_bytes(), 4u);
  // The shared-ownership overload is a refresh too.
  const auto alias =
      std::make_shared<const std::vector<std::uint8_t>>(bytes_of("aaaa"));
  EXPECT_TRUE(cache.put(a.cid, alias));
  EXPECT_EQ(cache.used_bytes(), 4u);
  EXPECT_EQ(cache.block_count(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruBlockStoreTest, GetReturnsSharedPayloadWithoutCopy) {
  // Regression: get() used to copy the whole object per tier-1 hit. It
  // now hands back the stored shared_ptr — every hit aliases the one
  // allocation made at insert time.
  LruBlockStore cache(1024);
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("payload"));
  const auto payload =
      std::make_shared<const std::vector<std::uint8_t>>(block.data);
  ASSERT_TRUE(cache.put(block.cid, payload));

  const BlockData first = cache.get(block.cid);
  const BlockData second = cache.get(block.cid);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), payload.get());   // no copy: same allocation
  EXPECT_EQ(second.get(), payload.get());  // ... on every hit
  EXPECT_EQ(*first, bytes_of("payload"));
}

TEST(LruBlockStoreTest, InterleavedGetPutEvictsScanTrafficFirst) {
  // Segmented LRU: entries hit since insertion live in the protected
  // segment; one-touch scan traffic in probation evicts first, even when
  // the protected entries are older.
  LruBlockStore cache(12);
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  const auto d = Block::from_data(Multicodec::kRaw, bytes_of("dddd"));
  const auto e = Block::from_data(Multicodec::kRaw, bytes_of("eeee"));
  cache.put(a);
  cache.put(b);
  cache.put(c);
  EXPECT_NE(cache.get(a.cid), nullptr);  // promote a
  EXPECT_NE(cache.get(c.cid), nullptr);  // promote c
  cache.put(d);  // full: evicts b — the only probationary entry
  EXPECT_FALSE(cache.has(b.cid));
  cache.put(e);  // evicts d (probation), not the older-but-hit a/c
  EXPECT_FALSE(cache.has(d.cid));
  EXPECT_TRUE(cache.has(a.cid));
  EXPECT_TRUE(cache.has(c.cid));
  EXPECT_TRUE(cache.has(e.cid));
  EXPECT_EQ(cache.protected_bytes(), 8u);
  EXPECT_EQ(cache.used_bytes(), 12u);
}

TEST(LruBlockStoreTest, ProtectedOverflowDemotesBackToProbation) {
  // protected_share 0.4 of 10 bytes = 4: one 4-byte entry fits. Promoting
  // a second hit entry demotes the first back to probation, where it is
  // eviction-eligible again.
  LruBlockStore cache(10, LruConfig{.protected_share = 0.4});
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  cache.put(a);
  cache.put(b);
  EXPECT_NE(cache.get(a.cid), nullptr);  // a -> protected
  EXPECT_NE(cache.get(b.cid), nullptr);  // b -> protected, a demoted
  EXPECT_EQ(cache.protected_bytes(), 4u);
  cache.put(c);  // needs room: evicts a from probation, b survives
  EXPECT_FALSE(cache.has(a.cid));
  EXPECT_TRUE(cache.has(b.cid));
  EXPECT_TRUE(cache.has(c.cid));
}

TEST(FrequencySketchTest, HalvingIsDeterministic) {
  // Two sketches fed the identical access stream agree on every counter,
  // through multiple halving cycles — the property the byte-identical
  // bench traces rely on.
  FrequencySketch left(64);
  FrequencySketch right(64);
  ASSERT_EQ(left.sample_period(), right.sample_period());
  const std::uint64_t accesses = 10 * left.sample_period();
  std::uint64_t key = 0x12345678u;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t hash = key >> 16;
    left.record(hash % 97);  // small key space: counters actually climb
    right.record(hash % 97);
  }
  EXPECT_GT(left.halvings(), 0u);
  EXPECT_EQ(left.halvings(), right.halvings());
  EXPECT_EQ(left.sample_count(), right.sample_count());
  for (std::uint64_t probe = 0; probe < 97; ++probe) {
    EXPECT_EQ(left.estimate(probe), right.estimate(probe)) << probe;
    EXPECT_LE(left.estimate(probe), 15u);  // 4-bit counters saturate
  }
}

TEST(FrequencySketchTest, HalvingAgesOldTraffic) {
  FrequencySketch sketch(64);
  for (int i = 0; i < 12; ++i) sketch.record(42);
  const std::uint32_t hot = sketch.estimate(42);
  EXPECT_GE(hot, 12u);
  // Drive enough cold traffic to force a halving; 42's estimate decays.
  const std::uint64_t before = sketch.halvings();
  std::uint64_t key = 7;
  while (sketch.halvings() == before) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    sketch.record(key);
  }
  EXPECT_LE(sketch.estimate(42), hot / 2 + 1);
}

TEST(LruBlockStoreTest, TinyLfuRefusesColdCandidates) {
  // A hot resident must not be flushed by a one-hit wonder: the sketch
  // estimate of the candidate is below the victim's, so the put is
  // refused and counted as an admission rejection.
  LruBlockStore cache(4, LruConfig{.tinylfu = true, .sketch_entries = 64});
  const auto hot = Block::from_data(Multicodec::kRaw, bytes_of("hot!"));
  const auto cold = Block::from_data(Multicodec::kRaw, bytes_of("cold"));
  ASSERT_TRUE(cache.put(hot));
  for (int i = 0; i < 4; ++i) EXPECT_NE(cache.get(hot.cid), nullptr);

  EXPECT_FALSE(cache.put(cold));  // would evict hot; cold is colder
  EXPECT_TRUE(cache.has(hot.cid));
  EXPECT_FALSE(cache.has(cold.cid));
  EXPECT_EQ(cache.admission_rejections(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Once the candidate has proven itself (repeated misses recorded in
  // the sketch), admission goes through and the old resident is evicted.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(cache.get(cold.cid), nullptr);
  EXPECT_TRUE(cache.put(cold));
  EXPECT_TRUE(cache.has(cold.cid));
  EXPECT_FALSE(cache.has(hot.cid));
  EXPECT_EQ(cache.evictions(), 1u);
}

}  // namespace
}  // namespace ipfs::blockstore
