#include <gtest/gtest.h>

#include "blockstore/blockstore.h"

namespace ipfs::blockstore {
namespace {

using multiformats::Multicodec;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(BlockStoreTest, PutGetRoundTrip) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("data"));
  EXPECT_EQ(store.put(block), PutStatus::kStored);
  const auto fetched = store.get(block.cid);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->data, bytes_of("data"));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 4u);
}

TEST(BlockStoreTest, DuplicatePutIsDeduplicated) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("same"));
  EXPECT_EQ(store.put(block), PutStatus::kStored);
  EXPECT_EQ(store.put(block), PutStatus::kAlreadyPresent);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 4u);
}

TEST(BlockStoreTest, RejectsCidMismatch) {
  BlockStore store;
  auto block = Block::from_data(Multicodec::kRaw, bytes_of("original"));
  block.data = bytes_of("tampered!");
  EXPECT_EQ(store.put(block), PutStatus::kCidMismatch);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(BlockStoreTest, RemoveRespectsPins) {
  BlockStore store;
  const auto block = Block::from_data(Multicodec::kRaw, bytes_of("keep me"));
  store.put(block);
  store.pin(block.cid);
  EXPECT_FALSE(store.remove(block.cid));
  EXPECT_TRUE(store.has(block.cid));
  store.unpin(block.cid);
  EXPECT_TRUE(store.remove(block.cid));
  EXPECT_FALSE(store.has(block.cid));
}

TEST(BlockStoreTest, GarbageCollectionSparesPinnedBlocks) {
  BlockStore store;
  const auto pinned = Block::from_data(Multicodec::kRaw, bytes_of("pinned"));
  const auto loose1 = Block::from_data(Multicodec::kRaw, bytes_of("loose-1"));
  const auto loose2 = Block::from_data(Multicodec::kRaw, bytes_of("loose-22"));
  store.put(pinned);
  store.put(loose1);
  store.put(loose2);
  store.pin(pinned.cid);

  const auto reclaimed = store.collect_garbage();
  EXPECT_EQ(reclaimed, 7u + 8u);
  EXPECT_TRUE(store.has(pinned.cid));
  EXPECT_FALSE(store.has(loose1.cid));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 6u);
}

TEST(LruBlockStoreTest, EvictsLeastRecentlyUsed) {
  LruBlockStore cache(10);  // bytes
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  EXPECT_TRUE(cache.put(a));
  EXPECT_TRUE(cache.put(b));
  // Touch a so b becomes the LRU entry.
  EXPECT_TRUE(cache.get(a.cid).has_value());
  EXPECT_TRUE(cache.put(c));  // 12 bytes > 10: evicts b
  EXPECT_TRUE(cache.has(a.cid));
  EXPECT_FALSE(cache.has(b.cid));
  EXPECT_TRUE(cache.has(c.cid));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.used_bytes(), 8u);
}

TEST(LruBlockStoreTest, RefusesOversizedBlocks) {
  LruBlockStore cache(4);
  const auto big = Block::from_data(Multicodec::kRaw, bytes_of("too big"));
  EXPECT_FALSE(cache.put(big));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruBlockStoreTest, ReinsertRefreshesRecency) {
  LruBlockStore cache(8);
  const auto a = Block::from_data(Multicodec::kRaw, bytes_of("aaaa"));
  const auto b = Block::from_data(Multicodec::kRaw, bytes_of("bbbb"));
  const auto c = Block::from_data(Multicodec::kRaw, bytes_of("cccc"));
  cache.put(a);
  cache.put(b);
  cache.put(a);       // refresh a; b is now LRU
  cache.put(c);       // evicts b
  EXPECT_TRUE(cache.has(a.cid));
  EXPECT_FALSE(cache.has(b.cid));
  EXPECT_EQ(cache.block_count(), 2u);
}

}  // namespace
}  // namespace ipfs::blockstore
