// Workload tests: the gateway traffic generator's distributions and the
// Section 4.3 performance-experiment driver.
#include <gtest/gtest.h>

#include "workload/gateway_workload.h"
#include "stats/stats.h"
#include "workload/perf_experiment.h"

namespace ipfs::workload {
namespace {

TEST(GatewayWorkloadTest, CatalogSizesFollowConfig) {
  GatewayWorkloadConfig config;
  config.catalog_size = 200;
  GatewayWorkload workload(config, sim::Rng(1));
  ASSERT_EQ(workload.catalog().size(), 200u);
  std::size_t pinned = 0;
  for (const auto& object : workload.catalog()) {
    EXPECT_GE(object.size, 1024u);
    EXPECT_LE(object.size, config.size_cap_bytes);
    if (object.pinned) ++pinned;
  }
  EXPECT_NEAR(static_cast<double>(pinned) / 200.0, config.pinned_share, 0.12);
}

TEST(GatewayWorkloadTest, ObjectBytesAreDeterministicAndSized) {
  GatewayWorkloadConfig config;
  config.catalog_size = 10;
  GatewayWorkload a(config, sim::Rng(2));
  GatewayWorkload b(config, sim::Rng(2));
  EXPECT_EQ(a.object_bytes(3), b.object_bytes(3));
  EXPECT_EQ(a.object_bytes(3).size(), a.catalog()[3].size);
  // Contents are rank-keyed: same prefix even across differently seeded
  // workloads (only the drawn sizes differ).
  GatewayWorkload c(config, sim::Rng(999));
  const auto bytes_a = a.object_bytes(3);
  const auto bytes_c = c.object_bytes(3);
  const std::size_t prefix = std::min<std::size_t>(
      512, std::min(bytes_a.size(), bytes_c.size()));
  EXPECT_TRUE(std::equal(bytes_a.begin(), bytes_a.begin() + prefix,
                         bytes_c.begin()));
}

TEST(GatewayWorkloadTest, DiurnalRateVariesOverTheDay) {
  GatewayWorkloadConfig config;
  GatewayWorkload workload(config, sim::Rng(3));
  double lo = 1e9, hi = 0;
  for (int hour = 0; hour < 24; ++hour) {
    const double rate = workload.rate_multiplier(sim::hours(hour));
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  EXPECT_GT(hi / lo, 1.5);  // Figure 4b's clear peak/trough swing
  EXPECT_GT(lo, 0.0);
}

TEST(PerfExperimentTest, RegionsMatchThePaper) {
  const auto& regions = aws_regions();
  ASSERT_EQ(regions.size(), 6u);
  EXPECT_EQ(regions[0].name, "af_south_1");
  EXPECT_EQ(regions[5].name, "us_west_1");
}

TEST(PerfExperimentTest, RunsCyclesAndCollectsTraces) {
  world::WorldConfig world_config;
  world_config.population.peer_count = 500;
  world_config.seed = 51;
  world::World world(world_config);

  PerfExperimentConfig config;
  config.cycles = 6;  // one publication per region
  PerfExperiment experiment(world, config);

  bool done = false;
  experiment.run([&] { done = true; });
  world.simulator().run();
  ASSERT_TRUE(done);

  const auto& results = experiment.results();
  EXPECT_EQ(results.publish_count(), 6u);
  EXPECT_EQ(results.retrieval_count(), 30u);  // 5 retrievals per cycle
  // Section 6.2 observes a 100 % retrieval success rate.
  EXPECT_EQ(results.retrieval_successes(), results.retrieval_count());

  for (const auto& [region, traces] : results.publishes) {
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_TRUE(traces[0].ok);
    EXPECT_GT(traces[0].walk, 0);
  }
  for (const auto& [region, traces] : results.retrievals) {
    for (const auto& trace : traces) {
      EXPECT_TRUE(trace.ok);
      // Every retrieval pays the full Bitswap window (footnote 4).
      EXPECT_GE(trace.bitswap_discovery, sim::seconds(1));
      EXPECT_GT(trace.total, sim::seconds(1));
    }
  }
}

TEST(PerfExperimentTest, PublicationIsSlowerThanRetrieval) {
  world::WorldConfig world_config;
  world_config.population.peer_count = 600;
  world_config.seed = 53;
  world::World world(world_config);

  PerfExperimentConfig config;
  config.cycles = 12;
  PerfExperiment experiment(world, config);
  bool done = false;
  experiment.run([&] { done = true; });
  world.simulator().run();
  ASSERT_TRUE(done);

  const auto publish = experiment.results().all_publish_totals_seconds();
  const auto retrieve = experiment.results().all_retrieval_totals_seconds();
  ASSERT_FALSE(publish.empty());
  ASSERT_FALSE(retrieve.empty());
  const double publish_median = stats::percentile(publish, 50);
  const double retrieve_median = stats::percentile(retrieve, 50);
  // Section 6: publication (median 33.8 s) is an order of magnitude
  // slower than retrieval (median 2.9 s).
  EXPECT_GT(publish_median, 2.0 * retrieve_median);
}

}  // namespace
}  // namespace ipfs::workload
