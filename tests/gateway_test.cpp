// Gateway tests: the three serving tiers (nginx cache / node store / P2P),
// cache behaviour and statistics (Section 3.4, Table 5).
#include <gtest/gtest.h>

#include "gateway/gateway.h"
#include "testutil.h"

namespace ipfs::gateway {
namespace {

using testutil::TestSwarm;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : swarm_(80, /*seed=*/31) {
    GatewayConfig config;
    config.node.net.region = 0;
    config.node.identity_seed = 99;
    config.node.provide_after_fetch = false;
    config.nginx_cache_bytes = 2 * 1024 * 1024;
    gateway_ = std::make_unique<Gateway>(swarm_.network(), config);

    node::IpfsNodeConfig publisher_config;
    publisher_config.net.region = 0;
    publisher_config.identity_seed = 77;
    publisher_ =
        std::make_unique<node::IpfsNode>(swarm_.network(), publisher_config);

    std::vector<dht::PeerRef> seeds;
    for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
    gateway_->bootstrap(seeds, [](bool) {});
    publisher_->bootstrap(seeds, [](bool) {});
    swarm_.simulator().run();
  }

  TestSwarm swarm_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<node::IpfsNode> publisher_;
};

TEST_F(GatewayTest, PinnedContentServesFromNodeStoreInMilliseconds) {
  const auto data = random_bytes(512 * 1024, 1);
  gateway_->pin_object(data);
  const auto cid = merkledag::import_bytes(publisher_->store(), data).root;

  GatewayResponse response;
  gateway_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kNodeStore);
  EXPECT_EQ(response.bytes, data.size());
  // Table 5: node-store hits land in single-digit milliseconds.
  EXPECT_LT(response.latency, sim::milliseconds(24));
  EXPECT_GT(response.latency, 0);
}

TEST_F(GatewayTest, SecondRequestHitsNginxCache) {
  const auto data = random_bytes(256 * 1024, 2);
  gateway_->pin_object(data);
  const auto cid = blockstore::Block::from_data(
                       multiformats::Multicodec::kRaw, data)
                       .cid;

  gateway_->handle_get(cid, [](GatewayResponse) {});
  swarm_.simulator().run();
  GatewayResponse second;
  gateway_->handle_get(cid, [&](GatewayResponse r) { second = r; });
  swarm_.simulator().run();

  EXPECT_EQ(second.source, ServedFrom::kNginxCache);
  EXPECT_LT(second.latency, sim::milliseconds(1));
  EXPECT_EQ(gateway_->stats(ServedFrom::kNginxCache).requests, 1u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kNodeStore).requests, 1u);
}

TEST_F(GatewayTest, UnpinnedContentFetchesFromP2pNetwork) {
  const auto data = random_bytes(512 * 1024, 3);
  node::PublishTrace publish_trace;
  publisher_->publish(data, [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  GatewayResponse response;
  gateway_->handle_get(publish_trace.cid,
                       [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kP2p);
  EXPECT_EQ(response.bytes, data.size());
  // Table 5: non-cached requests take seconds (Bitswap window + walks).
  EXPECT_GT(response.latency, sim::seconds(1));

  // The object is now in the nginx cache; a repeat is a cache hit, and
  // the node store was NOT polluted with the fetched blocks.
  GatewayResponse repeat;
  gateway_->handle_get(publish_trace.cid,
                       [&](GatewayResponse r) { repeat = r; });
  swarm_.simulator().run();
  EXPECT_EQ(repeat.source, ServedFrom::kNginxCache);
  EXPECT_FALSE(gateway_->node().store().has(publish_trace.cid));
}

TEST_F(GatewayTest, MissingContentFails) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 4));
  GatewayResponse response;
  response.source = ServedFrom::kNginxCache;
  gateway_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();
  EXPECT_EQ(response.source, ServedFrom::kFailed);
  EXPECT_EQ(gateway_->stats(ServedFrom::kFailed).requests, 1u);
}

TEST_F(GatewayTest, CacheEvictionFallsBackToNodeStore) {
  // Two objects that cannot both fit in the 2 MB nginx cache.
  const auto data_a = random_bytes(1536 * 1024, 5);
  const auto data_b = random_bytes(1536 * 1024, 6);
  gateway_->pin_object(data_a);
  gateway_->pin_object(data_b);
  const auto cid_a = merkledag::import_bytes(publisher_->store(), data_a).root;
  const auto cid_b = merkledag::import_bytes(publisher_->store(), data_b).root;

  gateway_->handle_get(cid_a, [](GatewayResponse) {});
  swarm_.simulator().run();
  gateway_->handle_get(cid_b, [](GatewayResponse) {});  // evicts A
  swarm_.simulator().run();

  GatewayResponse again_a;
  gateway_->handle_get(cid_a, [&](GatewayResponse r) { again_a = r; });
  swarm_.simulator().run();
  EXPECT_EQ(again_a.source, ServedFrom::kNodeStore);
  EXPECT_GT(gateway_->nginx_cache().evictions(), 0u);
}

TEST_F(GatewayTest, TierStatsAccumulateBytes) {
  const auto data = random_bytes(100 * 1024, 7);
  gateway_->pin_object(data);
  const auto cid = blockstore::Block::from_data(
                       multiformats::Multicodec::kRaw, data)
                       .cid;
  for (int i = 0; i < 3; ++i) {
    gateway_->handle_get(cid, [](GatewayResponse) {});
    swarm_.simulator().run();
  }
  EXPECT_EQ(gateway_->total_requests(), 3u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kNodeStore).bytes, data.size());
  EXPECT_EQ(gateway_->stats(ServedFrom::kNginxCache).bytes, 2 * data.size());
}

}  // namespace
}  // namespace ipfs::gateway
