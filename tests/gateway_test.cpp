// Gateway tests: the three serving tiers (nginx cache / node store / P2P),
// cache behaviour and statistics (Section 3.4, Table 5).
#include <gtest/gtest.h>

#include "gateway/gateway.h"
#include "merkledag/unixfs.h"
#include "testutil.h"

namespace ipfs::gateway {
namespace {

using testutil::TestSwarm;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : swarm_(80, /*seed=*/31) {
    GatewayConfig config;
    config.node.net.region = 0;
    config.node.identity_seed = 99;
    config.node.provide_after_fetch = false;
    config.nginx_cache_bytes = 2 * 1024 * 1024;
    gateway_ = std::make_unique<Gateway>(swarm_.network(), config);

    node::IpfsNodeConfig publisher_config;
    publisher_config.net.region = 0;
    publisher_config.identity_seed = 77;
    publisher_ =
        std::make_unique<node::IpfsNode>(swarm_.network(), publisher_config);

    std::vector<dht::PeerRef> seeds;
    for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
    gateway_->bootstrap(seeds, [](bool) {});
    publisher_->bootstrap(seeds, [](bool) {});
    swarm_.simulator().run();
  }

  TestSwarm swarm_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<node::IpfsNode> publisher_;
};

TEST_F(GatewayTest, PinnedContentServesFromNodeStoreInMilliseconds) {
  const auto data = random_bytes(512 * 1024, 1);
  gateway_->pin_object(data);
  const auto cid = merkledag::import_bytes(publisher_->store(), data).root;

  GatewayResponse response;
  gateway_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kNodeStore);
  EXPECT_EQ(response.bytes, data.size());
  // Table 5: node-store hits land in single-digit milliseconds.
  EXPECT_LT(response.latency, sim::milliseconds(24));
  EXPECT_GT(response.latency, 0);
}

TEST_F(GatewayTest, SecondRequestHitsNginxCache) {
  const auto data = random_bytes(256 * 1024, 2);
  gateway_->pin_object(data);
  const auto cid = blockstore::Block::from_data(
                       multiformats::Multicodec::kRaw, data)
                       .cid;

  gateway_->handle_get(cid, [](GatewayResponse) {});
  swarm_.simulator().run();
  GatewayResponse second;
  gateway_->handle_get(cid, [&](GatewayResponse r) { second = r; });
  swarm_.simulator().run();

  EXPECT_EQ(second.source, ServedFrom::kNginxCache);
  EXPECT_LT(second.latency, sim::milliseconds(1));
  EXPECT_EQ(gateway_->stats(ServedFrom::kNginxCache).requests, 1u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kNodeStore).requests, 1u);
}

TEST_F(GatewayTest, UnpinnedContentFetchesFromP2pNetwork) {
  const auto data = random_bytes(512 * 1024, 3);
  node::PublishTrace publish_trace;
  publisher_->publish(data, [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  GatewayResponse response;
  gateway_->handle_get(publish_trace.cid,
                       [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kP2p);
  EXPECT_EQ(response.bytes, data.size());
  // Table 5: non-cached requests take seconds (Bitswap window + walks).
  EXPECT_GT(response.latency, sim::seconds(1));

  // The object is now in the nginx cache; a repeat is a cache hit, and
  // the node store was NOT polluted with the fetched blocks.
  GatewayResponse repeat;
  gateway_->handle_get(publish_trace.cid,
                       [&](GatewayResponse r) { repeat = r; });
  swarm_.simulator().run();
  EXPECT_EQ(repeat.source, ServedFrom::kNginxCache);
  EXPECT_FALSE(gateway_->node().store().has(publish_trace.cid));
}

TEST_F(GatewayTest, MissingContentFails) {
  const auto cid = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 4));
  GatewayResponse response;
  response.source = ServedFrom::kNginxCache;
  gateway_->handle_get(cid, [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();
  EXPECT_EQ(response.source, ServedFrom::kFailed);
  EXPECT_EQ(gateway_->stats(ServedFrom::kFailed).requests, 1u);
}

TEST_F(GatewayTest, CacheEvictionFallsBackToNodeStore) {
  // Two objects that cannot both fit in the 2 MB nginx cache.
  const auto data_a = random_bytes(1536 * 1024, 5);
  const auto data_b = random_bytes(1536 * 1024, 6);
  gateway_->pin_object(data_a);
  gateway_->pin_object(data_b);
  const auto cid_a = merkledag::import_bytes(publisher_->store(), data_a).root;
  const auto cid_b = merkledag::import_bytes(publisher_->store(), data_b).root;

  gateway_->handle_get(cid_a, [](GatewayResponse) {});
  swarm_.simulator().run();
  gateway_->handle_get(cid_b, [](GatewayResponse) {});  // evicts A
  swarm_.simulator().run();

  GatewayResponse again_a;
  gateway_->handle_get(cid_a, [&](GatewayResponse r) { again_a = r; });
  swarm_.simulator().run();
  EXPECT_EQ(again_a.source, ServedFrom::kNodeStore);
  EXPECT_GT(gateway_->nginx_cache().evictions(), 0u);
}

TEST_F(GatewayTest, TierStatsAccumulateBytes) {
  const auto data = random_bytes(100 * 1024, 7);
  gateway_->pin_object(data);
  const auto cid = blockstore::Block::from_data(
                       multiformats::Multicodec::kRaw, data)
                       .cid;
  for (int i = 0; i < 3; ++i) {
    gateway_->handle_get(cid, [](GatewayResponse) {});
    swarm_.simulator().run();
  }
  EXPECT_EQ(gateway_->total_requests(), 3u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kNodeStore).bytes, data.size());
  EXPECT_EQ(gateway_->stats(ServedFrom::kNginxCache).bytes, 2 * data.size());
}

// Sum over every tier, including failures. Each request must land in
// exactly one tier, so this always equals total_requests().
std::uint64_t tier_request_sum(const Gateway& gateway) {
  return gateway.stats(ServedFrom::kNginxCache).requests +
         gateway.stats(ServedFrom::kNodeStore).requests +
         gateway.stats(ServedFrom::kP2p).requests +
         gateway.stats(ServedFrom::kFailed).requests;
}

TEST_F(GatewayTest, PathRequestOverNetworkAccountsAsSingleP2pRequest) {
  // The tree lives only on the publisher; serving /ipfs/{root}/docs/readme
  // pays the full P2P pipeline. Regression: the nested serve step used to
  // count the request a second time under the node-store tier even though
  // the response was rewritten to kP2p.
  const merkledag::TreeFile file{"docs/readme.md", random_bytes(64 * 1024, 8)};
  const auto root = merkledag::import_tree(publisher_->store(), {file});
  ASSERT_TRUE(root.has_value());
  node::PublishTrace publish_trace;
  publisher_->provide(*root, [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  GatewayResponse response;
  gateway_->handle_get_path(*root, "docs/readme.md",
                            [&](GatewayResponse r) { response = r; });
  swarm_.simulator().run();

  EXPECT_EQ(response.source, ServedFrom::kP2p);
  EXPECT_EQ(response.bytes, file.content.size());
  EXPECT_EQ(gateway_->total_requests(), 1u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kP2p).requests, 1u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kNodeStore).requests, 0u);
  EXPECT_EQ(tier_request_sum(*gateway_), gateway_->total_requests());

  // The metrics registry sees the same single attribution.
  const auto& registry = swarm_.network().metrics();
  EXPECT_EQ(registry.counter_value("gateway.requests"), 1u);
  EXPECT_EQ(registry.counter_value("gateway.tier.p2p.requests"), 1u);
  EXPECT_EQ(registry.counter_value("gateway.tier.node_store.requests"), 0u);
}

TEST_F(GatewayTest, FailedPathRequestsAccountOnceInTheFailedTier) {
  // Unresolvable root: the retrieval fails. Regression: the old
  // total_requests_ juggling double-counted this path.
  const auto missing = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(16, 9));
  GatewayResponse network_miss;
  gateway_->handle_get_path(missing, "a/b",
                            [&](GatewayResponse r) { network_miss = r; });
  swarm_.simulator().run();
  EXPECT_EQ(network_miss.source, ServedFrom::kFailed);

  // Resolvable root, bogus sub-path: fetched, then 404.
  const merkledag::TreeFile file{"a.txt", random_bytes(4 * 1024, 10)};
  const auto root = merkledag::import_tree(publisher_->store(), {file});
  ASSERT_TRUE(root.has_value());
  node::PublishTrace publish_trace;
  publisher_->provide(*root, [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);
  GatewayResponse bad_path;
  gateway_->handle_get_path(*root, "no/such/file",
                            [&](GatewayResponse r) { bad_path = r; });
  swarm_.simulator().run();
  EXPECT_EQ(bad_path.source, ServedFrom::kFailed);

  EXPECT_EQ(gateway_->total_requests(), 2u);
  EXPECT_EQ(gateway_->stats(ServedFrom::kFailed).requests, 2u);
  EXPECT_EQ(tier_request_sum(*gateway_), gateway_->total_requests());
}

TEST_F(GatewayTest, TierRequestsConserveAcrossMixedTraffic) {
  // One request through every tier: P2P miss, node-store hit, nginx hit,
  // a failure, and a path request over the network.
  const auto pinned = random_bytes(128 * 1024, 11);
  gateway_->pin_object(pinned);
  const auto pinned_cid =
      merkledag::import_bytes(publisher_->store(), pinned).root;

  const auto published = random_bytes(256 * 1024, 12);
  node::PublishTrace publish_trace;
  publisher_->publish(published,
                      [&](node::PublishTrace t) { publish_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  const merkledag::TreeFile file{"f.bin", random_bytes(32 * 1024, 13)};
  const auto tree_root = merkledag::import_tree(publisher_->store(), {file});
  ASSERT_TRUE(tree_root.has_value());
  node::PublishTrace tree_trace;
  publisher_->provide(*tree_root,
                      [&](node::PublishTrace t) { tree_trace = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(tree_trace.ok);

  gateway_->handle_get(publish_trace.cid, [](GatewayResponse) {});  // P2P
  swarm_.simulator().run();
  gateway_->handle_get(pinned_cid, [](GatewayResponse) {});  // node store
  swarm_.simulator().run();
  gateway_->handle_get(publish_trace.cid, [](GatewayResponse) {});  // nginx
  swarm_.simulator().run();
  gateway_->handle_get(multiformats::Cid::from_data(
                           multiformats::Multicodec::kRaw,
                           random_bytes(8, 14)),
                       [](GatewayResponse) {});  // failed
  swarm_.simulator().run();
  gateway_->handle_get_path(*tree_root, "f.bin",
                            [](GatewayResponse) {});  // path over network
  swarm_.simulator().run();

  EXPECT_EQ(gateway_->total_requests(), 5u);
  EXPECT_EQ(tier_request_sum(*gateway_), gateway_->total_requests());
  // And the registry agrees with the legacy tier stats.
  const auto& registry = swarm_.network().metrics();
  EXPECT_EQ(registry.counter_value("gateway.requests"),
            gateway_->total_requests());
  EXPECT_EQ(registry.counter_value("gateway.tier.nginx_cache.requests"),
            gateway_->stats(ServedFrom::kNginxCache).requests);
  EXPECT_EQ(registry.counter_value("gateway.tier.node_store.requests"),
            gateway_->stats(ServedFrom::kNodeStore).requests);
  EXPECT_EQ(registry.counter_value("gateway.tier.p2p.requests"),
            gateway_->stats(ServedFrom::kP2p).requests);
  EXPECT_EQ(registry.counter_value("gateway.tier.failed.requests"),
            gateway_->stats(ServedFrom::kFailed).requests);
}

TEST_F(GatewayTest, NegativeCacheShieldsRepeatedDeadCidCrowds) {
  const auto dead = multiformats::Cid::from_data(
      multiformats::Multicodec::kRaw, random_bytes(10, 20));

  // First crowd: five concurrent requests coalesce behind one
  // singleflight leader; every waiter fails, one pipeline is paid.
  int failures = 0;
  for (int i = 0; i < 5; ++i) {
    gateway_->handle_get(dead, [&](GatewayResponse r) {
      if (r.source == ServedFrom::kFailed) ++failures;
    });
  }
  swarm_.simulator().run();
  EXPECT_EQ(failures, 5);
  EXPECT_EQ(gateway_->negative_hits(), 0u);

  // Second crowd, inside the negative TTL: answered from the negative
  // cache at edge-hit latency — no routing walk, no Bitswap timeout.
  GatewayResponse shielded;
  gateway_->handle_get(dead, [&](GatewayResponse r) { shielded = r; });
  swarm_.simulator().run();
  EXPECT_EQ(shielded.source, ServedFrom::kFailed);
  EXPECT_LT(shielded.latency, sim::milliseconds(1));
  EXPECT_EQ(gateway_->negative_hits(), 1u);

  const auto& registry = swarm_.network().metrics();
  EXPECT_EQ(registry.counter_value("gateway.negative.hits"), 1u);
  EXPECT_EQ(registry.counter_value("gateway.negative.stores"), 1u);

  // Past the TTL the entry expires and the pipeline is paid again (the
  // content may have been published in the meantime).
  auto& simulator = swarm_.simulator();
  simulator.run_until(simulator.now() + gateway_->config().negative_ttl +
                      sim::seconds(1));
  GatewayResponse expired;
  gateway_->handle_get(dead, [&](GatewayResponse r) { expired = r; });
  swarm_.simulator().run();
  EXPECT_EQ(expired.source, ServedFrom::kFailed);
  EXPECT_GT(expired.latency, sim::seconds(1));
  EXPECT_EQ(gateway_->negative_hits(), 1u);
  EXPECT_EQ(registry.counter_value("gateway.negative.stores"), 2u);
}

TEST_F(GatewayTest, EvictedEdgeEntriesServeFromSharedOrigin) {
  // A gateway with an origin tier behind its 2 MB edge cache: objects
  // evicted from the edge are re-served from origin (and refill the
  // edge) instead of re-paying the P2P pipeline.
  GatewayConfig config;
  config.node.net.region = 0;
  config.node.identity_seed = 123;
  config.node.provide_after_fetch = false;
  config.nginx_cache_bytes = 2 * 1024 * 1024;
  config.origin =
      std::make_shared<blockstore::LruBlockStore>(64ull * 1024 * 1024);
  Gateway gateway(swarm_.network(), config);
  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm_.ref(i));
  gateway.bootstrap(seeds, [](bool) {});
  swarm_.simulator().run();

  const auto data_a = random_bytes(1536 * 1024, 21);
  const auto data_b = random_bytes(1536 * 1024, 22);
  node::PublishTrace trace_a, trace_b;
  publisher_->publish(data_a, [&](node::PublishTrace t) { trace_a = t; });
  publisher_->publish(data_b, [&](node::PublishTrace t) { trace_b = t; });
  swarm_.simulator().run();
  ASSERT_TRUE(trace_a.ok);
  ASSERT_TRUE(trace_b.ok);

  gateway.handle_get(trace_a.cid, [](GatewayResponse) {});  // P2P, fills both
  swarm_.simulator().run();
  gateway.handle_get(trace_b.cid, [](GatewayResponse) {});  // evicts A's edge
  swarm_.simulator().run();

  GatewayResponse again;
  gateway.handle_get(trace_a.cid, [&](GatewayResponse r) { again = r; });
  swarm_.simulator().run();
  EXPECT_EQ(again.source, ServedFrom::kOriginCache);
  EXPECT_EQ(again.bytes, data_a.size());
  EXPECT_LT(again.latency, sim::milliseconds(10));
  EXPECT_EQ(gateway.stats(ServedFrom::kOriginCache).requests, 1u);
  EXPECT_GT(config.origin->used_bytes(), 0u);

  // Origin hits refill the edge: the follow-up is an edge hit.
  GatewayResponse third;
  gateway.handle_get(trace_a.cid, [&](GatewayResponse r) { third = r; });
  swarm_.simulator().run();
  EXPECT_EQ(third.source, ServedFrom::kNginxCache);
}

}  // namespace
}  // namespace ipfs::gateway
