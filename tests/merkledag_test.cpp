#include <gtest/gtest.h>

#include "merkledag/merkledag.h"
#include "sim/rng.h"

namespace ipfs::merkledag {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(ChunkerTest, SplitsAtChunkBoundaries) {
  const auto data = random_bytes(1000, 1);
  const auto chunks = chunk(data, 256);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].size(), 256u);
  EXPECT_EQ(chunks[3].size(), 232u);
}

TEST(ChunkerTest, ExactMultipleHasNoRemainder) {
  const auto data = random_bytes(512, 2);
  const auto chunks = chunk(data, 256);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].size(), 256u);
}

TEST(ChunkerTest, EmptyInputYieldsOneEmptyChunk) {
  const auto chunks = chunk({}, 256);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].empty());
}

TEST(DagNodeTest, EncodeDecodeRoundTrip) {
  DagNode node;
  node.data = {1, 2, 3};
  node.links.push_back(
      {Cid::from_data(multiformats::Multicodec::kRaw, node.data), 3});
  node.links.push_back(
      {Cid::from_data(multiformats::Multicodec::kDagPb, node.data), 7});
  const auto decoded = DagNode::decode(node.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->data, node.data);
  ASSERT_EQ(decoded->links.size(), 2u);
  EXPECT_EQ(decoded->links[0].cid, node.links[0].cid);
  EXPECT_EQ(decoded->links[1].content_size, 7u);
}

TEST(DagNodeTest, DecodeRejectsTruncation) {
  DagNode node;
  node.data = random_bytes(50, 3);
  auto encoded = node.encode();
  encoded.pop_back();
  EXPECT_FALSE(DagNode::decode(encoded).has_value());
}

TEST(ImportTest, SingleChunkBecomesRawBlock) {
  BlockStore store;
  const auto data = random_bytes(1024, 4);
  const auto result = import_bytes(store, data, kDefaultChunkSize);
  EXPECT_EQ(result.chunk_count, 1u);
  EXPECT_EQ(result.new_blocks, 1u);
  EXPECT_EQ(result.root.content_codec(), multiformats::Multicodec::kRaw);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, MultiChunkBuildsDag) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 5);  // 3 chunks at 256 kB
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 3u);
  EXPECT_EQ(result.new_blocks, 4u);  // 3 leaves + 1 root
  EXPECT_EQ(result.root.content_codec(), multiformats::Multicodec::kDagPb);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, PaperObjectSizeHasTwoChunks) {
  // The paper's performance experiments use 0.5 MB objects (Section 4.3).
  BlockStore store;
  const auto data = random_bytes(512 * 1024, 6);
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 2u);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, IdenticalChunksDeduplicate) {
  BlockStore store;
  // Two chunk-sized repetitions of identical bytes.
  std::vector<std::uint8_t> data(2 * kDefaultChunkSize, 0xab);
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 2u);
  EXPECT_EQ(result.deduplicated_blocks, 1u);
  EXPECT_EQ(result.new_blocks, 2u);  // one unique leaf + root
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, SameContentYieldsSameRootAcrossStores) {
  BlockStore store_a, store_b;
  const auto data = random_bytes(600 * 1024, 7);
  EXPECT_EQ(import_bytes(store_a, data).root, import_bytes(store_b, data).root);
}

TEST(ImportTest, DifferentContentYieldsDifferentRoot) {
  BlockStore store;
  auto data = random_bytes(600 * 1024, 8);
  const auto root_a = import_bytes(store, data).root;
  data[0] ^= 1;
  const auto root_b = import_bytes(store, data).root;
  EXPECT_NE(root_a, root_b);
}

TEST(ImportTest, WideDagGetsMultipleLevels) {
  BlockStore store;
  // More chunks than kMaxLinkDegree forces a two-level interior.
  const std::size_t chunk_size = 64;
  const auto data = random_bytes(chunk_size * (kMaxLinkDegree + 10), 9);
  const auto result = import_bytes(store, data, chunk_size);
  EXPECT_EQ(result.chunk_count, kMaxLinkDegree + 10);
  EXPECT_EQ(cat(store, result.root), data);

  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  // root + 2 interior nodes + leaves
  EXPECT_EQ(cids->size(), 1 + 2 + kMaxLinkDegree + 10);
}

TEST(CatTest, FailsOnMissingBlocks) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 10);
  const auto result = import_bytes(store, data);
  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  // Remove one leaf; cat must fail rather than return partial data.
  store.remove(cids->back());
  EXPECT_FALSE(cat(store, result.root).has_value());
  EXPECT_FALSE(enumerate(store, result.root).has_value());
}

TEST(EnumerateTest, RootFirstOrder) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 11);
  const auto result = import_bytes(store, data);
  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  EXPECT_EQ(cids->front(), result.root);
}

}  // namespace
}  // namespace ipfs::merkledag
