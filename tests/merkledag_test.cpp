#include <gtest/gtest.h>

#include "merkledag/merkledag.h"
#include "sim/rng.h"

namespace ipfs::merkledag {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(ChunkerTest, SplitsAtChunkBoundaries) {
  const auto data = random_bytes(1000, 1);
  const auto chunks = chunk(data, 256);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].size(), 256u);
  EXPECT_EQ(chunks[3].size(), 232u);
}

TEST(ChunkerTest, ExactMultipleHasNoRemainder) {
  const auto data = random_bytes(512, 2);
  const auto chunks = chunk(data, 256);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].size(), 256u);
}

TEST(ChunkerTest, EmptyInputYieldsOneEmptyChunk) {
  const auto chunks = chunk({}, 256);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].empty());
}

TEST(DagNodeTest, EncodeDecodeRoundTrip) {
  DagNode node;
  node.data = {1, 2, 3};
  node.links.push_back(
      {Cid::from_data(multiformats::Multicodec::kRaw, node.data), 3});
  node.links.push_back(
      {Cid::from_data(multiformats::Multicodec::kDagPb, node.data), 7});
  const auto decoded = DagNode::decode(node.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->data, node.data);
  ASSERT_EQ(decoded->links.size(), 2u);
  EXPECT_EQ(decoded->links[0].cid, node.links[0].cid);
  EXPECT_EQ(decoded->links[1].content_size, 7u);
}

TEST(DagNodeTest, DecodeRejectsTruncation) {
  DagNode node;
  node.data = random_bytes(50, 3);
  auto encoded = node.encode();
  encoded.pop_back();
  EXPECT_FALSE(DagNode::decode(encoded).has_value());
}

TEST(ImportTest, SingleChunkBecomesRawBlock) {
  BlockStore store;
  const auto data = random_bytes(1024, 4);
  const auto result = import_bytes(store, data, kDefaultChunkSize);
  EXPECT_EQ(result.chunk_count, 1u);
  EXPECT_EQ(result.new_blocks, 1u);
  EXPECT_EQ(result.root.content_codec(), multiformats::Multicodec::kRaw);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, MultiChunkBuildsDag) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 5);  // 3 chunks at 256 kB
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 3u);
  EXPECT_EQ(result.new_blocks, 4u);  // 3 leaves + 1 root
  EXPECT_EQ(result.root.content_codec(), multiformats::Multicodec::kDagPb);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, PaperObjectSizeHasTwoChunks) {
  // The paper's performance experiments use 0.5 MB objects (Section 4.3).
  BlockStore store;
  const auto data = random_bytes(512 * 1024, 6);
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 2u);
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, IdenticalChunksDeduplicate) {
  BlockStore store;
  // Two chunk-sized repetitions of identical bytes.
  std::vector<std::uint8_t> data(2 * kDefaultChunkSize, 0xab);
  const auto result = import_bytes(store, data);
  EXPECT_EQ(result.chunk_count, 2u);
  EXPECT_EQ(result.deduplicated_blocks, 1u);
  EXPECT_EQ(result.new_blocks, 2u);  // one unique leaf + root
  EXPECT_EQ(cat(store, result.root), data);
}

TEST(ImportTest, SameContentYieldsSameRootAcrossStores) {
  BlockStore store_a, store_b;
  const auto data = random_bytes(600 * 1024, 7);
  EXPECT_EQ(import_bytes(store_a, data).root, import_bytes(store_b, data).root);
}

TEST(ImportTest, DifferentContentYieldsDifferentRoot) {
  BlockStore store;
  auto data = random_bytes(600 * 1024, 8);
  const auto root_a = import_bytes(store, data).root;
  data[0] ^= 1;
  const auto root_b = import_bytes(store, data).root;
  EXPECT_NE(root_a, root_b);
}

TEST(ImportTest, WideDagGetsMultipleLevels) {
  BlockStore store;
  // More chunks than kMaxLinkDegree forces a two-level interior.
  const std::size_t chunk_size = 64;
  const auto data = random_bytes(chunk_size * (kMaxLinkDegree + 10), 9);
  const auto result = import_bytes(store, data, chunk_size);
  EXPECT_EQ(result.chunk_count, kMaxLinkDegree + 10);
  EXPECT_EQ(cat(store, result.root), data);

  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  // root + 2 interior nodes + leaves
  EXPECT_EQ(cids->size(), 1 + 2 + kMaxLinkDegree + 10);
}

TEST(CatTest, FailsOnMissingBlocks) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 10);
  const auto result = import_bytes(store, data);
  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  // Remove one leaf; cat must fail rather than return partial data.
  store.remove(cids->back());
  EXPECT_FALSE(cat(store, result.root).has_value());
  EXPECT_FALSE(enumerate(store, result.root).has_value());
}

TEST(EnumerateTest, RootFirstOrder) {
  BlockStore store;
  const auto data = random_bytes(700 * 1024, 11);
  const auto result = import_bytes(store, data);
  const auto cids = enumerate(store, result.root);
  ASSERT_TRUE(cids.has_value());
  EXPECT_EQ(cids->front(), result.root);
}


// ---- StreamingImporter equivalence ---------------------------------------
// The streaming builder must produce the byte-identical DAG (same root,
// same block set) as the one-shot import, for any write() segmentation.

TEST(StreamingTest, MatchesBatchAcrossPieceSizes) {
  const std::size_t chunk_size = 1024;
  for (const std::size_t total :
       {std::size_t{0}, std::size_t{1}, std::size_t{1023}, std::size_t{1024},
        std::size_t{1025}, std::size_t{10 * 1024 + 13},
        std::size_t{300 * 1024}}) {
    const auto data = random_bytes(total, 40 + total);
    BlockStore batch_store;
    const auto batch = import_bytes(batch_store, data, chunk_size);

    for (const std::size_t piece :
         {std::size_t{1}, std::size_t{7}, std::size_t{1024},
          std::size_t{4096 + 1}, total + 1}) {
      BlockStore stream_store;
      StreamingImporter importer(stream_store, chunk_size);
      for (std::size_t off = 0; off < data.size(); off += piece)
        importer.write(std::span(data).subspan(
            off, std::min(piece, data.size() - off)));
      const auto streamed = importer.finish();
      EXPECT_EQ(streamed.root, batch.root)
          << "total=" << total << " piece=" << piece;
      EXPECT_EQ(streamed.chunk_count, batch.chunk_count);
      EXPECT_EQ(streamed.content_bytes, batch.content_bytes);
      EXPECT_EQ(stream_store.block_count(), batch_store.block_count());
      EXPECT_EQ(cat(stream_store, streamed.root), data);
    }
  }
}

TEST(StreamingTest, MatchesBatchAtLinkDegreeBoundaries) {
  // 174 leaves fill exactly one internal node; 175 force a second level
  // whose remainder handling is the subtle case the cascade must match.
  const std::size_t chunk_size = 256;
  for (const std::size_t leaves :
       {kMaxLinkDegree - 1, kMaxLinkDegree, kMaxLinkDegree + 1,
        2 * kMaxLinkDegree, 2 * kMaxLinkDegree + 1}) {
    const auto data = random_bytes(leaves * chunk_size, 50 + leaves);
    BlockStore batch_store;
    const auto batch = import_bytes(batch_store, data, chunk_size);

    BlockStore stream_store;
    StreamingImporter importer(stream_store, chunk_size);
    // Deliberately misaligned pieces.
    const std::size_t piece = chunk_size * 3 + 17;
    for (std::size_t off = 0; off < data.size(); off += piece)
      importer.write(std::span(data).subspan(
          off, std::min(piece, data.size() - off)));
    const auto streamed = importer.finish();
    EXPECT_EQ(streamed.root, batch.root) << "leaves=" << leaves;
    EXPECT_EQ(stream_store.block_count(), batch_store.block_count());
    EXPECT_EQ(cat(stream_store, streamed.root), data);
  }
}

TEST(StreamingTest, DeduplicatesLikeBatch) {
  // Repeating chunks dedupe identically in both builders.
  const std::size_t chunk_size = 512;
  std::vector<std::uint8_t> data;
  const auto unit = random_bytes(chunk_size, 60);
  for (int i = 0; i < 8; ++i) data.insert(data.end(), unit.begin(), unit.end());

  BlockStore batch_store;
  const auto batch = import_bytes(batch_store, data, chunk_size);
  BlockStore stream_store;
  StreamingImporter importer(stream_store, chunk_size);
  importer.write(data);
  const auto streamed = importer.finish();
  EXPECT_EQ(streamed.root, batch.root);
  EXPECT_EQ(streamed.deduplicated_blocks, batch.deduplicated_blocks);
  EXPECT_EQ(streamed.new_blocks, batch.new_blocks);
}

}  // namespace
}  // namespace ipfs::merkledag
