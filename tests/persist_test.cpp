// Persistent block store tests (docs/BLOCKSTORE.md): log-structured
// segments, pin-aware GC, torn-tail recovery, and the async write-behind
// front's acked-put durability contract — including the >=300-seed
// crash-during-flush sweep the data-plane PR gates on.
#include <gtest/gtest.h>

#include <set>

#include "blockstore/persist/async_store.h"
#include "blockstore/persist/persistent_store.h"
#include "blockstore/store_config.h"
#include "sim/rng.h"

namespace ipfs::blockstore::persist {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, sim::Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

Block make_block(std::size_t n, sim::Rng& rng) {
  return Block::from_data(multiformats::Multicodec::kRaw,
                          random_bytes(n, rng));
}

std::unique_ptr<PersistentBlockStore> make_persistent(
    PersistConfig config = {}) {
  return std::make_unique<PersistentBlockStore>(
      std::make_unique<MemStorage>(), config);
}

TEST(PersistentStore, PutGetRoundTripAndReopen) {
  auto store = make_persistent();
  sim::Rng rng(1);
  std::vector<Block> blocks;
  for (int i = 0; i < 20; ++i) blocks.push_back(make_block(100 + i * 37, rng));
  for (const auto& block : blocks)
    EXPECT_EQ(store->put(block), PutStatus::kStored);
  EXPECT_EQ(store->block_count(), blocks.size());
  store->flush();

  // Everything was fsynced, so a crash loses nothing: the reopened index
  // serves every block byte-identically.
  store->handle_crash();
  EXPECT_EQ(store->block_count(), blocks.size());
  for (const auto& block : blocks) {
    const auto data = store->get(block.cid);
    ASSERT_TRUE(data != nullptr);
    EXPECT_EQ(*data, block.data);
  }
  EXPECT_EQ(store->recovered_truncated_bytes(), 0u);
}

TEST(PersistentStore, RejectsCidMismatch) {
  auto store = make_persistent();
  sim::Rng rng(2);
  const auto block = make_block(64, rng);
  const auto other = make_block(64, rng);
  EXPECT_EQ(store->put(block.cid,
                       std::make_shared<const std::vector<std::uint8_t>>(
                           other.data)),
            PutStatus::kCidMismatch);
  EXPECT_FALSE(store->has(block.cid));
}

TEST(PersistentStore, RemoveTombstoneSurvivesReopen) {
  auto store = make_persistent();
  sim::Rng rng(3);
  const auto keep = make_block(128, rng);
  const auto drop = make_block(256, rng);
  store->put(keep);
  store->put(drop);
  EXPECT_TRUE(store->remove(drop.cid));
  store->flush();

  store->handle_crash();
  EXPECT_TRUE(store->has(keep.cid));
  EXPECT_FALSE(store->has(drop.cid));  // the tombstone replayed
}

TEST(PersistentStore, PinnedBlocksSurviveCompaction) {
  PersistConfig config;
  config.segment_bytes = 4 * 1024;  // force several segments
  auto store = make_persistent(config);
  sim::Rng rng(4);

  std::vector<Block> pinned, unpinned;
  std::uint64_t unpinned_bytes = 0;
  for (int i = 0; i < 30; ++i) {
    const auto block = make_block(300 + i * 11, rng);
    store->put(block);
    if (i % 3 == 0) {
      store->pin(block.cid);
      pinned.push_back(block);
    } else {
      unpinned_bytes += block.data.size();
      unpinned.push_back(block);
    }
  }
  ASSERT_GT(store->segment_count(), 1u);

  // GC reclaims exactly the unpinned payload bytes, nothing else.
  EXPECT_EQ(store->collect_garbage(), unpinned_bytes);
  for (const auto& block : pinned) {
    const auto data = store->get(block.cid);
    ASSERT_TRUE(data != nullptr);
    EXPECT_EQ(*data, block.data);
    EXPECT_TRUE(store->pinned(block.cid));
  }
  for (const auto& block : unpinned) EXPECT_FALSE(store->has(block.cid));

  // The compaction physically rewrote the log: survivors and pins
  // replay from the fresh segments after a crash.
  store->handle_crash();
  EXPECT_EQ(store->block_count(), pinned.size());
  for (const auto& block : pinned) {
    EXPECT_TRUE(store->has(block.cid));
    EXPECT_TRUE(store->pinned(block.cid));
  }
}

TEST(PersistentStore, GcOnEmptyAndAllPinnedReclaimsNothing) {
  auto store = make_persistent();
  EXPECT_EQ(store->collect_garbage(), 0u);
  sim::Rng rng(5);
  const auto block = make_block(512, rng);
  store->put(block);
  store->pin(block.cid);
  EXPECT_EQ(store->collect_garbage(), 0u);
  EXPECT_TRUE(store->has(block.cid));
}

TEST(PersistentStore, TornFinalRecordIsTruncatedNotFatal) {
  auto store = make_persistent();
  sim::Rng rng(6);
  std::vector<Block> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(make_block(200, rng));
  for (const auto& block : blocks) store->put(block);
  store->flush();

  // Simulate a torn final record: garbage appended to the live segment
  // and made "durable" (synced), so recovery must cut it by CRC/shape,
  // not by the sync watermark.
  const auto garbage = random_bytes(37, rng);
  const std::string segment = "seg-00000000.log";
  ASSERT_GT(store->storage().size(segment), 0u);
  store->storage().append(segment, garbage);
  store->storage().sync(segment);

  store->handle_crash();
  EXPECT_EQ(store->recovered_truncated_bytes(), garbage.size());
  EXPECT_EQ(store->block_count(), blocks.size());
  for (const auto& block : blocks) EXPECT_TRUE(store->has(block.cid));

  // And the truncated store keeps working: new puts append cleanly.
  const auto fresh = make_block(64, rng);
  EXPECT_EQ(store->put(fresh), PutStatus::kStored);
  EXPECT_TRUE(store->has(fresh.cid));
}

TEST(PersistentStore, CrashCutsUnsyncedTailOnly) {
  PersistConfig config;
  config.crash_seed = 99;
  auto store = make_persistent(config);
  sim::Rng rng(7);
  const auto durable = make_block(400, rng);
  store->put(durable);
  store->flush();
  const auto at_risk = make_block(400, rng);
  store->put(at_risk);  // appended but never fsynced

  store->handle_crash();
  // The durable block survives unconditionally; the unsynced one may or
  // may not (the seeded cut can fall anywhere in its record) — but the
  // store must be consistent either way.
  const auto data = store->get(durable.cid);
  ASSERT_TRUE(data != nullptr);
  EXPECT_EQ(*data, durable.data);
  if (store->has(at_risk.cid)) {
    const auto survived = store->get(at_risk.cid);
    ASSERT_TRUE(survived != nullptr);
    EXPECT_EQ(*survived, at_risk.data);
  }
}

TEST(AsyncStore, QueuesThenDrainsAtBatchSize) {
  AsyncConfig config;
  config.flush_batch_blocks = 4;
  AsyncBlockStore store(make_persistent(), config);
  sim::Rng rng(8);
  std::vector<Block> blocks;
  for (int i = 0; i < 3; ++i) blocks.push_back(make_block(100, rng));
  for (const auto& block : blocks) store.put(block);
  // Below the batch threshold: everything still queued, yet readable.
  EXPECT_EQ(store.queued_blocks(), 3u);
  EXPECT_EQ(store.base().block_count(), 0u);
  for (const auto& block : blocks) EXPECT_TRUE(store.has(block.cid));

  store.put(make_block(100, rng));  // 4th put trips the batch drain
  EXPECT_EQ(store.queued_blocks(), 0u);
  EXPECT_EQ(store.base().block_count(), 4u);
}

TEST(AsyncStore, BackpressureBoundsQueueBytes) {
  AsyncConfig config;
  config.flush_batch_blocks = 1000;     // never drain by count
  config.queue_limit_bytes = 4 * 1024;  // drain by bytes instead
  AsyncBlockStore store(make_persistent(), config);
  sim::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    store.put(make_block(1024, rng));
    EXPECT_LE(store.queued_bytes(), config.queue_limit_bytes);
  }
  EXPECT_EQ(store.block_count(), 20u);
}

TEST(AsyncStore, RemoveReachesQueuedAndDrainedBlocks) {
  AsyncConfig config;
  config.flush_batch_blocks = 1000;
  AsyncBlockStore store(make_persistent(), config);
  sim::Rng rng(10);
  const auto queued = make_block(100, rng);
  const auto drained = make_block(100, rng);
  store.put(drained);
  store.flush();
  store.put(queued);
  EXPECT_TRUE(store.remove(queued.cid));
  EXPECT_TRUE(store.remove(drained.cid));
  EXPECT_FALSE(store.has(queued.cid));
  EXPECT_FALSE(store.has(drained.cid));
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(AsyncStore, PinnedQueuedBlockSurvivesGc) {
  AsyncConfig config;
  config.flush_batch_blocks = 1000;
  AsyncBlockStore store(make_persistent(), config);
  sim::Rng rng(11);
  const auto keep = make_block(100, rng);
  const auto drop = make_block(100, rng);
  store.put(keep);
  store.put(drop);
  store.pin(keep.cid);
  // GC drains the queue first, so the pinned-but-queued block is judged
  // by the base store and survives.
  EXPECT_EQ(store.collect_garbage(), drop.data.size());
  EXPECT_TRUE(store.has(keep.cid));
  EXPECT_FALSE(store.has(drop.cid));
}

// The crash-during-flush sweep (invariant the async front is built for):
// across 300 seeded schedules of interleaved puts/flushes/crashes, every
// block whose put was followed by a completed flush — acked — must be
// readable after every subsequent restart. Unacked blocks may survive or
// vanish; either way the store must stay consistent.
TEST(AsyncStore, AckedPutsSurviveCrashAcrossThreeHundredSeeds) {
  constexpr int kSeeds = 300;
  for (int seed = 0; seed < kSeeds; ++seed) {
    sim::Rng rng(0xACED0000 + static_cast<std::uint64_t>(seed));
    PersistConfig persist_config;
    persist_config.segment_bytes = 8 * 1024;
    persist_config.crash_seed = rng.next();
    AsyncConfig async_config;
    async_config.flush_batch_blocks =
        static_cast<std::size_t>(rng.uniform_int(1, 16));
    AsyncBlockStore store(
        std::make_unique<PersistentBlockStore>(
            std::make_unique<MemStorage>(), persist_config),
        async_config);

    std::vector<Block> all;
    std::set<std::size_t> acked;       // indices durable as of last flush
    std::set<std::size_t> unflushed;   // put but not yet flushed
    const int ops = static_cast<int>(rng.uniform_int(20, 60));
    for (int op = 0; op < ops; ++op) {
      const auto draw = rng.uniform_int(0, 9);
      if (draw < 6) {
        const auto block = make_block(
            static_cast<std::size_t>(rng.uniform_int(1, 2048)), rng);
        if (store.put(block) == PutStatus::kStored) {
          unflushed.insert(all.size());
          all.push_back(block);
        }
      } else if (draw < 8) {
        store.flush();
        acked.insert(unflushed.begin(), unflushed.end());
        unflushed.clear();
      } else {
        store.handle_crash();
        unflushed.clear();  // the crash may have taken them
        for (const std::size_t i : acked) {
          const auto data = store.get(all[i].cid);
          ASSERT_TRUE(data != nullptr)
              << "seed " << seed << ": acked block " << i
              << " lost after crash at op " << op;
          EXPECT_EQ(*data, all[i].data) << "seed " << seed;
        }
      }
    }
    store.handle_crash();
    for (const std::size_t i : acked) {
      const auto data = store.get(all[i].cid);
      ASSERT_TRUE(data != nullptr)
          << "seed " << seed << ": acked block " << i << " lost at the end";
      EXPECT_EQ(*data, all[i].data) << "seed " << seed;
    }
  }
}

TEST(StoreConfigFactory, BuildsEveryBackend) {
  sim::Rng rng(12);
  const auto block = make_block(100, rng);
  for (const auto backend : {StoreConfig::Backend::kMemory,
                             StoreConfig::Backend::kPersistentSync,
                             StoreConfig::Backend::kPersistentAsync}) {
    StoreConfig config;
    config.backend = backend;
    const auto store = make_store(config, nullptr);
    ASSERT_TRUE(store != nullptr);
    EXPECT_EQ(store->put(block.cid,
                         std::make_shared<const std::vector<std::uint8_t>>(
                             block.data)),
              PutStatus::kStored);
    store->flush();
    const auto data = store->get(block.cid);
    ASSERT_TRUE(data != nullptr);
    EXPECT_EQ(*data, block.data);
    store->handle_crash();
    EXPECT_TRUE(store->has(block.cid));
  }
}

}  // namespace
}  // namespace ipfs::blockstore::persist
