// Seeded round-trip fuzz for the transport wire codec (ISSUE 8
// satellite): every protocol message type survives encode -> decode ->
// encode byte-identically, and truncated / mutated / garbage buffers are
// rejected without UB (the fuzz-smoke-asan CI job runs this binary under
// AddressSanitizer).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "bitswap/bitswap.h"
#include "dht/key.h"
#include "dht/messages.h"
#include "indexer/messages.h"
#include "multiformats/cid.h"
#include "pubsub/pubsub.h"
#include "scenario/scenario.h"
#include "transport/codec.h"

namespace ipfs {
namespace {

using transport::decode_message;
using transport::encode_message;

class Fuzz {
 public:
  explicit Fuzz(std::uint64_t seed) : rng_(seed) {}

  std::uint64_t u64() { return rng_(); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(rng_()); }
  bool boolean() { return (rng_() & 1) != 0; }
  std::size_t index(std::size_t bound) { return rng_() % bound; }

  std::vector<std::uint8_t> bytes(std::size_t max_len) {
    std::vector<std::uint8_t> out(index(max_len + 1));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng_());
    return out;
  }

  dht::Key key() {
    std::array<std::uint8_t, 32> raw{};
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng_());
    return dht::Key(raw);
  }

  multiformats::Cid cid() {
    const auto data = bytes(64);
    return multiformats::Cid::from_data(multiformats::Multicodec::kRaw, data);
  }

  dht::PeerRef peer_ref() {
    dht::PeerRef ref;
    const std::uint32_t n = u32() % 100000;
    ref.id = scenario::synthetic_peer_id(n);
    ref.node = static_cast<sim::NodeId>(n);
    const std::size_t addresses = index(3);
    for (std::size_t i = 0; i < addresses; ++i) {
      ref.addresses.push_back(scenario::synthetic_address(u32() % 100000));
    }
    return ref;
  }

  std::vector<dht::PeerRef> peer_refs(std::size_t max) {
    std::vector<dht::PeerRef> out(index(max + 1));
    for (auto& ref : out) ref = peer_ref();
    return out;
  }

  dht::ProviderRecord provider_record() {
    dht::ProviderRecord record;
    record.provider = peer_ref();
    record.received_at = static_cast<sim::Time>(u64() % (1ull << 50));
    return record;
  }

  dht::ValueRecord value_record() {
    dht::ValueRecord record;
    record.value = bytes(128);
    record.sequence = u64();
    record.received_at = static_cast<sim::Time>(u64() % (1ull << 50));
    return record;
  }

  pubsub::MessageId message_id() {
    return pubsub::MessageId{static_cast<sim::NodeId>(u32() % 100000), u64()};
  }

 private:
  std::mt19937_64 rng_;
};

// One randomized instance of every wire message type, cycled by `pick`.
sim::MessagePtr make_message(Fuzz& fuzz, std::size_t pick) {
  switch (pick % 20) {
    case 0: {
      auto m = std::make_shared<dht::FindNodeRequest>();
      m->requester = fuzz.peer_ref();
      m->requester_is_server = fuzz.boolean();
      m->target = fuzz.key();
      return m;
    }
    case 1: {
      auto m = std::make_shared<dht::FindNodeResponse>();
      m->closer = fuzz.peer_refs(20);
      return m;
    }
    case 2: {
      auto m = std::make_shared<dht::GetProvidersRequest>();
      m->requester = fuzz.peer_ref();
      m->requester_is_server = fuzz.boolean();
      m->key = fuzz.key();
      return m;
    }
    case 3: {
      auto m = std::make_shared<dht::GetProvidersResponse>();
      const std::size_t providers = fuzz.index(6);
      for (std::size_t i = 0; i < providers; ++i) {
        m->providers.push_back(fuzz.provider_record());
      }
      m->closer = fuzz.peer_refs(20);
      return m;
    }
    case 4: {
      auto m = std::make_shared<dht::AddProviderRequest>();
      m->key = fuzz.key();
      m->provider = fuzz.peer_ref();
      return m;
    }
    case 5: {
      auto m = std::make_shared<dht::PutValueRequest>();
      m->key = fuzz.key();
      m->record = fuzz.value_record();
      return m;
    }
    case 6: {
      auto m = std::make_shared<dht::GetValueRequest>();
      m->requester = fuzz.peer_ref();
      m->requester_is_server = fuzz.boolean();
      m->key = fuzz.key();
      return m;
    }
    case 7: {
      auto m = std::make_shared<dht::GetValueResponse>();
      if (fuzz.boolean()) m->record = fuzz.value_record();
      m->closer = fuzz.peer_refs(20);
      return m;
    }
    case 8:
      return std::make_shared<dht::ListBucketsRequest>();
    case 9: {
      auto m = std::make_shared<dht::ListBucketsResponse>();
      m->peers = fuzz.peer_refs(40);
      return m;
    }
    case 10:
      return std::make_shared<dht::DialBackRequest>();
    case 11: {
      auto m = std::make_shared<dht::DialBackResponse>();
      m->reachable = fuzz.boolean();
      return m;
    }
    case 12: {
      auto m = std::make_shared<bitswap::WantHaveRequest>();
      m->cid = fuzz.cid();
      return m;
    }
    case 13: {
      auto m = std::make_shared<bitswap::HaveResponse>();
      m->have = fuzz.boolean();
      return m;
    }
    case 14: {
      auto m = std::make_shared<bitswap::WantBlockRequest>();
      m->cid = fuzz.cid();
      m->send_dont_have = fuzz.boolean();
      return m;
    }
    case 15: {
      auto m = std::make_shared<bitswap::BlockResponse>();
      m->cid = fuzz.cid();
      if (fuzz.boolean()) {
        auto data = fuzz.bytes(512);
        m->cid = multiformats::Cid::from_data(
            multiformats::Multicodec::kRaw, data);
        m->data = std::make_shared<const std::vector<std::uint8_t>>(
            std::move(data));
      } else {
        m->dont_have = fuzz.boolean();
      }
      return m;
    }
    case 16: {
      auto m = std::make_shared<pubsub::GossipRpc>();
      const std::size_t subs = fuzz.index(3);
      for (std::size_t i = 0; i < subs; ++i) {
        m->subscriptions.push_back(
            pubsub::SubOpts{"topic-" + std::to_string(fuzz.index(5)),
                            fuzz.boolean()});
      }
      m->announce_reply = fuzz.boolean();
      const std::size_t publish = fuzz.index(3);
      for (std::size_t i = 0; i < publish; ++i) {
        pubsub::PubsubMessage message;
        message.id = fuzz.message_id();
        message.topic = "topic-" + std::to_string(fuzz.index(5));
        message.data = fuzz.bytes(256);
        m->publish.push_back(std::move(message));
      }
      if (fuzz.boolean()) {
        pubsub::ControlIHave ihave;
        ihave.topic = "t";
        const std::size_t ids = fuzz.index(6);
        for (std::size_t i = 0; i < ids; ++i) {
          ihave.ids.push_back(fuzz.message_id());
        }
        m->ihave.push_back(std::move(ihave));
      }
      if (fuzz.boolean()) {
        pubsub::ControlIWant iwant;
        const std::size_t ids = fuzz.index(6);
        for (std::size_t i = 0; i < ids; ++i) {
          iwant.ids.push_back(fuzz.message_id());
        }
        m->iwant.push_back(std::move(iwant));
      }
      if (fuzz.boolean()) {
        m->graft.push_back(pubsub::ControlGraft{"t"});
      }
      if (fuzz.boolean()) {
        pubsub::ControlPrune prune;
        prune.topic = "t";
        const std::size_t px = fuzz.index(6);
        for (std::size_t i = 0; i < px; ++i) {
          prune.px.push_back(static_cast<sim::NodeId>(fuzz.u32() % 100000));
        }
        m->prune.push_back(std::move(prune));
      }
      return m;
    }
    case 17: {
      auto m = std::make_shared<indexer::AdvertiseMessage>();
      m->key = fuzz.key();
      m->provider = fuzz.peer_ref();
      return m;
    }
    case 18: {
      auto m = std::make_shared<indexer::QueryRequest>();
      m->key = fuzz.key();
      return m;
    }
    default: {
      auto m = std::make_shared<indexer::QueryResponse>();
      const std::size_t providers = fuzz.index(6);
      for (std::size_t i = 0; i < providers; ++i) {
        m->providers.push_back(fuzz.provider_record());
      }
      return m;
    }
  }
}

// encode -> decode -> encode is the identity on bytes for every type.
// (Byte-level comparison of the re-encoding checks every field without
// needing operator== on the message structs.)
TEST(CodecFuzzTest, RoundTripIsByteIdentity) {
  Fuzz fuzz(20260809);
  for (std::size_t i = 0; i < 400; ++i) {
    const sim::MessagePtr message = make_message(fuzz, i);
    const auto encoded = encode_message(*message);
    ASSERT_TRUE(encoded.has_value()) << "type " << i % 20;
    const sim::MessagePtr decoded = decode_message(*encoded);
    ASSERT_NE(decoded, nullptr) << "type " << i % 20;
    const auto re_encoded = encode_message(*decoded);
    ASSERT_TRUE(re_encoded.has_value()) << "type " << i % 20;
    EXPECT_EQ(*encoded, *re_encoded) << "type " << i % 20;
  }
}

// Spot-check decoded field values (byte identity alone would also pass
// for a codec that scrambled fields symmetrically).
TEST(CodecFuzzTest, DecodedFieldsMatch) {
  Fuzz fuzz(7);
  auto request = std::make_shared<dht::GetProvidersRequest>();
  request->requester = fuzz.peer_ref();
  request->requester_is_server = true;
  request->key = fuzz.key();
  const auto encoded = encode_message(*request);
  ASSERT_TRUE(encoded.has_value());
  const auto decoded = std::dynamic_pointer_cast<const dht::GetProvidersRequest>(
      decode_message(*encoded));
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->key.bytes(), request->key.bytes());
  EXPECT_TRUE(decoded->requester_is_server);
  EXPECT_EQ(decoded->requester.id, request->requester.id);
  EXPECT_EQ(decoded->requester.node, request->requester.node);
  EXPECT_EQ(decoded->requester.addresses.size(),
            request->requester.addresses.size());

  auto response = std::make_shared<bitswap::BlockResponse>();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  response->cid =
      multiformats::Cid::from_data(multiformats::Multicodec::kRaw, payload);
  response->data =
      std::make_shared<const std::vector<std::uint8_t>>(payload);
  const auto encoded_block = encode_message(*response);
  ASSERT_TRUE(encoded_block.has_value());
  const auto decoded_block =
      std::dynamic_pointer_cast<const bitswap::BlockResponse>(
          decode_message(*encoded_block));
  ASSERT_NE(decoded_block, nullptr);
  ASSERT_TRUE(decoded_block->data != nullptr);
  EXPECT_EQ(*decoded_block->data, payload);
  EXPECT_EQ(decoded_block->cid.encode(), response->cid.encode());
  EXPECT_FALSE(decoded_block->dont_have);
}

// A message type the codec does not know is reported, not mis-encoded.
TEST(CodecFuzzTest, UnknownTypeIsRejected) {
  struct LocalMessage : sim::Message {};
  EXPECT_FALSE(encode_message(LocalMessage{}).has_value());
}

// Every strict prefix of a valid encoding is rejected: all fields are
// fixed-width or length-prefixed, so truncation always leaves a declared
// length unsatisfied.
TEST(CodecFuzzTest, TruncationIsRejected) {
  Fuzz fuzz(99);
  for (std::size_t i = 0; i < 60; ++i) {
    const sim::MessagePtr message = make_message(fuzz, i);
    const auto encoded = encode_message(*message);
    ASSERT_TRUE(encoded.has_value());
    for (std::size_t len = 0; len < encoded->size(); ++len) {
      const std::span<const std::uint8_t> prefix(encoded->data(), len);
      EXPECT_EQ(decode_message(prefix), nullptr)
          << "type " << i % 20 << " prefix " << len << "/" << encoded->size();
    }
  }
}

// Appending trailing bytes to a valid encoding is rejected (decode must
// consume the payload exactly).
TEST(CodecFuzzTest, TrailingGarbageIsRejected) {
  Fuzz fuzz(123);
  for (std::size_t i = 0; i < 60; ++i) {
    const sim::MessagePtr message = make_message(fuzz, i);
    auto encoded = encode_message(*message);
    ASSERT_TRUE(encoded.has_value());
    encoded->push_back(0);
    EXPECT_EQ(decode_message(*encoded), nullptr) << "type " << i % 20;
  }
}

// Random byte soup and bit-flipped encodings never crash the decoder
// (ASan keeps this honest); anything it does accept must re-encode.
TEST(CodecFuzzTest, GarbageAndMutationsAreSafe) {
  Fuzz fuzz(31337);
  for (std::size_t i = 0; i < 500; ++i) {
    const auto garbage = fuzz.bytes(512);
    const sim::MessagePtr decoded = decode_message(garbage);
    if (decoded != nullptr) {
      EXPECT_TRUE(encode_message(*decoded).has_value());
    }
  }
  for (std::size_t i = 0; i < 500; ++i) {
    const sim::MessagePtr message = make_message(fuzz, i);
    auto encoded = encode_message(*message);
    ASSERT_TRUE(encoded.has_value());
    if (encoded->empty()) continue;
    (*encoded)[fuzz.index(encoded->size())] ^=
        static_cast<std::uint8_t>(1u << fuzz.index(8));
    const sim::MessagePtr decoded = decode_message(*encoded);
    if (decoded != nullptr) {
      EXPECT_TRUE(encode_message(*decoded).has_value());
    }
  }
}

}  // namespace
}  // namespace ipfs
