// ScenarioBuilder tests: the fluent experiment API must hand back fully
// wired simulations (fabric + DHT swarm), honor every knob it exposes,
// and stay deterministic — two builds from the same description are the
// same experiment.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "world/world.h"

namespace ipfs::scenario {
namespace {

TEST(ScenarioBuilderTest, BuildsAWiredSwarm) {
  Scenario scenario = ScenarioBuilder()
                          .peers(8)
                          .seed(21)
                          .single_region(10.0)
                          .dht_servers(true)
                          .build();
  EXPECT_EQ(scenario.size(), 8u);
  EXPECT_EQ(scenario.network().node_count(), 8u);
  ASSERT_EQ(scenario.refs().size(), 8u);
  // Every node got a DHT server with a pre-sampled routing table.
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    EXPECT_EQ(scenario.ref(i).node, scenario.node(i));
    EXPECT_GT(scenario.dht(i).routing_table().size(), 0u);
  }
}

TEST(ScenarioBuilderTest, FabricOnlyBuildHasNoDhtNodes) {
  Scenario scenario = ScenarioBuilder().peers(3).seed(4).build();
  EXPECT_EQ(scenario.network().node_count(), 3u);
  EXPECT_TRUE(scenario.refs().empty());
}

TEST(ScenarioBuilderTest, SameSeedSameScenario) {
  const auto fingerprint = [](Scenario& scenario) {
    // Sampled latencies consume the fabric rng stream in build order, so
    // equal sequences mean equal wiring and equal rng state.
    std::vector<sim::Duration> samples;
    for (std::size_t i = 1; i < scenario.size(); ++i)
      samples.push_back(
          scenario.network().sample_latency(scenario.node(0),
                                            scenario.node(i)));
    return samples;
  };
  Scenario a = ScenarioBuilder().peers(6).seed(9).dht_servers(true).build();
  Scenario b = ScenarioBuilder().peers(6).seed(9).dht_servers(true).build();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.ref(i).id.encode(), b.ref(i).id.encode());
}

TEST(ScenarioBuilderTest, UndialableFractionMarksNodes) {
  Scenario scenario = ScenarioBuilder()
                          .peers(200)
                          .seed(33)
                          .undialable_fraction(0.4)
                          .build();
  std::size_t undialable = 0;
  for (std::size_t i = 0; i < scenario.size(); ++i)
    if (!scenario.network().config(scenario.node(i)).dialable) ++undialable;
  // Bernoulli draws around 40%: allow a generous band.
  EXPECT_GT(undialable, 50u);
  EXPECT_LT(undialable, 120u);
}

TEST(ScenarioBuilderTest, SchedulerKnobSelectsBackend) {
  Scenario wheel = ScenarioBuilder()
                       .peers(2)
                       .scheduler(sim::SchedulerBackend::kTimerWheel)
                       .build();
  Scenario heap = ScenarioBuilder()
                      .peers(2)
                      .scheduler(sim::SchedulerBackend::kBinaryHeap)
                      .build();
  EXPECT_EQ(wheel.simulator().backend(), sim::SchedulerBackend::kTimerWheel);
  EXPECT_EQ(heap.simulator().backend(), sim::SchedulerBackend::kBinaryHeap);
}

TEST(ScenarioBuilderTest, WorldConfigMapsEveryKnob) {
  const world::WorldConfig config = ScenarioBuilder()
                                        .peers(500)
                                        .seed(77)
                                        .scheduler(
                                            sim::SchedulerBackend::kBinaryHeap)
                                        .churn(false)
                                        .bootstrap_count(4)
                                        .max_routing_entries(64)
                                        .dcutr_share(0.25)
                                        .hydra(3, 15)
                                        .indexers(2)
                                        .indexer_config(
                                            indexer::IndexerConfig()
                                                .with_ingest_lag(
                                                    sim::seconds(7)))
                                        .world_config();
  EXPECT_EQ(config.population.peer_count, 500u);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.scheduler, sim::SchedulerBackend::kBinaryHeap);
  EXPECT_FALSE(config.enable_churn);
  EXPECT_EQ(config.bootstrap_count, 4u);
  EXPECT_EQ(config.max_routing_entries, 64u);
  EXPECT_DOUBLE_EQ(config.dcutr_share, 0.25);
  EXPECT_EQ(config.hydra_count, 3u);
  EXPECT_EQ(config.hydra_heads, 15u);
  EXPECT_EQ(config.indexer_count, 2u);
  EXPECT_EQ(config.indexer.ingest_lag, sim::seconds(7));
}

TEST(ScenarioBuilderTest, IndexerKnobAppendsIndexersAfterPeers) {
  Scenario scenario = ScenarioBuilder()
                          .peers(3)
                          .seed(12)
                          .indexers(2)
                          .routing(routing::RoutingConfig::Mode::kRace)
                          .build();
  EXPECT_EQ(scenario.network().node_count(), 5u);
  ASSERT_EQ(scenario.indexer_count(), 2u);
  // Appended after every peer node, so peer ids are untouched.
  EXPECT_EQ(scenario.indexer(0).node(), 3u);
  EXPECT_EQ(scenario.indexer(1).node(), 4u);
  const routing::RoutingConfig& routing = scenario.routing_config();
  EXPECT_EQ(routing.mode, routing::RoutingConfig::Mode::kRace);
  ASSERT_EQ(routing.indexers.size(), 2u);
  EXPECT_EQ(routing.indexers[0], scenario.indexer(0).node());
  EXPECT_EQ(routing.indexers[1], scenario.indexer(1).node());
}

TEST(ScenarioBuilderTest, IndexerKnobLeavesPeerIdentitiesBitIdentical) {
  Scenario plain =
      ScenarioBuilder().peers(6).seed(9).dht_servers(true).build();
  Scenario with_indexers = ScenarioBuilder()
                               .peers(6)
                               .seed(9)
                               .dht_servers(true)
                               .indexers(2)
                               .build();
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain.node(i), with_indexers.node(i));
    EXPECT_EQ(plain.ref(i).id.encode(), with_indexers.ref(i).id.encode());
  }
}

TEST(ScenarioBuilderTest, BuildWorldHonorsPeerCount) {
  const auto world =
      ScenarioBuilder().peers(60).seed(5).churn(false).build_world();
  EXPECT_EQ(world->size(), 60u);
}

TEST(ScenarioBuilderTest, SyntheticIdsAreStableAndDistinct) {
  EXPECT_EQ(synthetic_peer_id(7).encode(), synthetic_peer_id(7).encode());
  EXPECT_NE(synthetic_peer_id(7).encode(), synthetic_peer_id(8).encode());
  const std::string addr = synthetic_address(3).to_string();
  EXPECT_NE(addr.find("/tcp/"), std::string::npos);
}

}  // namespace
}  // namespace ipfs::scenario
