// Measurement-tooling tests: the k-bucket crawler, the adaptive uptime
// prober and the census aggregations behind Section 5's figures.
#include <gtest/gtest.h>

#include "crawler/census.h"
#include "crawler/crawler.h"
#include "crawler/uptime_prober.h"
#include "world/world.h"

namespace ipfs::crawler {
namespace {

world::WorldConfig crawl_config(std::size_t peers = 600,
                                std::uint64_t seed = 17) {
  world::WorldConfig config;
  config.population.peer_count = peers;
  config.seed = seed;
  return config;
}

sim::NodeId add_crawler_node(world::World& world) {
  // The crawler machine: well connected, reliable (Section 4.1 runs it
  // from a server in Germany).
  sim::NodeConfig config;
  config.region = world::kEuCentral;
  config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  return world.network().add_node(config);
}

TEST(CrawlerTest, DiscoversMostOfTheSwarm) {
  world::World world(crawl_config());
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());

  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  // The crawl reaches every peer present in some k-bucket — nearly the
  // whole swarm with pre-converged tables.
  EXPECT_GT(result.total(), world.size() * 9 / 10);
  EXPECT_GT(result.finished_at, result.started_at);
  EXPECT_GT(result.multiaddress_count(), result.total());  // multihoming
}

TEST(CrawlerTest, ReportsDialableAndUndialableSplit) {
  world::World world(crawl_config(800, 19));
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());

  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  const double dialable_share =
      static_cast<double>(result.dialable()) /
      static_cast<double>(result.total());
  // Undialable servers (~35 %) plus churned-out peers push the dialable
  // share well below 1 (Section 5.1 measures 54.5 %).
  EXPECT_LT(dialable_share, 0.8);
  EXPECT_GT(dialable_share, 0.3);
}

TEST(CrawlerTest, ExtractsIpsFromMultiaddrs) {
  dht::PeerRef peer;
  peer.addresses.push_back(multiformats::make_tcp_multiaddr("1.2.3.4", 4001));
  peer.addresses.push_back(
      multiformats::make_quic_multiaddr("5.6.7.8", 4001));
  const auto ips = extract_ips(peer);
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_EQ(ips[0], "1.2.3.4");
  EXPECT_EQ(ips[1], "5.6.7.8");
}

TEST(CensusTest, CountryDistributionRecoversPopulationShares) {
  world::World world(crawl_config(1500, 23));
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());
  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  const auto shares = country_distribution(result, world.geodb());
  ASSERT_FALSE(shares.empty());
  // US and CN must dominate, in that order of magnitude (Figure 5).
  double us = 0, cn = 0;
  for (const auto& share : shares) {
    if (share.code == "US") us = share.share;
    if (share.code == "CN") cn = share.share;
  }
  EXPECT_NEAR(us, 0.285, 0.08);
  EXPECT_NEAR(cn, 0.242, 0.08);
}

TEST(CensusTest, AsDistributionIsHeavyTailed) {
  world::World world(crawl_config(1500, 29));
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());
  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  const auto ases = as_distribution(result, world.geodb());
  ASSERT_GT(ases.size(), 50u);
  double top10 = 0.0;
  for (std::size_t i = 0; i < 10 && i < ases.size(); ++i)
    top10 += ases[i].share;
  // Table 2 / Section 5.2: the top-10 ASes hold roughly 2/3 of the IPs.
  EXPECT_GT(top10, 0.4);
  // CHINANET should be the single heaviest AS.
  EXPECT_EQ(ases[0].asn, 4134u);
}

TEST(CensusTest, CloudShareIsSmall) {
  world::World world(crawl_config(1500, 31));
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());
  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  const auto clouds = cloud_distribution(result, world.geodb());
  double cloud_total = 0.0;
  for (const auto& share : clouds)
    if (share.provider != "Non-Cloud") cloud_total += share.share;
  // Table 3: under ~2.3 % of nodes run on cloud infrastructure.
  EXPECT_LT(cloud_total, 0.06);
  EXPECT_GT(cloud_total, 0.002);
}

TEST(CensusTest, PeersPerIpHasHeavyTail) {
  world::World world(crawl_config(1500, 37));
  const auto self = add_crawler_node(world);
  Crawler crawler(world.network(), self, world.bootstrap_refs());
  CrawlResult result;
  crawler.crawl([&](CrawlResult r) { result = std::move(r); });
  world.simulator().run();

  const auto counts = peers_per_ip(result);
  ASSERT_FALSE(counts.empty());
  EXPECT_GT(counts.front(), 5u);  // a farm IP
  // The vast majority of IPs host exactly one PeerID (Figure 7c: 92.3 %).
  std::size_t singles = 0;
  for (const auto count : counts)
    if (count == 1) ++singles;
  EXPECT_GT(static_cast<double>(singles) / counts.size(), 0.75);
}

TEST(UptimeProberTest, RecordsSessions) {
  world::World world(crawl_config(400, 41));
  const auto self = add_crawler_node(world);

  UptimeProber prober(world.network(), self);
  for (std::size_t i = 6; i < world.size(); ++i) {
    if (world.profile(i).dialable) prober.track(world.ref(i));
  }
  world.simulator().run_until(sim::hours(4));
  prober.finish();

  EXPECT_GT(prober.probes_sent(), 1000u);
  EXPECT_GT(prober.sessions().size(), 50u);
  std::size_t censored = 0;
  for (const auto& session : prober.sessions()) {
    EXPECT_GE(session.length(), 0);
    if (session.censored) ++censored;
  }
  EXPECT_GT(censored, 0u);  // peers still online at the window end
}

TEST(UptimeProberTest, SessionLengthsByCountryAreComputable) {
  world::World world(crawl_config(600, 43));
  const auto self = add_crawler_node(world);
  UptimeProber prober(world.network(), self);
  for (std::size_t i = 6; i < world.size(); ++i)
    if (world.profile(i).dialable) prober.track(world.ref(i));
  world.simulator().run_until(sim::hours(6));
  prober.finish();

  const auto by_country = session_lengths_by_country(
      prober.sessions(), world.geodb(), 0, sim::hours(6));
  ASSERT_FALSE(by_country.empty());
  // The biggest populations must be represented.
  EXPECT_TRUE(by_country.contains("US") || by_country.contains("CN"));
}

TEST(UptimeProberTest, StableCloudPeersShowAsReliable) {
  world::World world(crawl_config(500, 47));
  const auto self = add_crawler_node(world);

  Crawler crawler(world.network(), self, world.bootstrap_refs());
  CrawlResult crawl_result;
  crawler.crawl([&](CrawlResult r) { crawl_result = std::move(r); });
  world.simulator().run();

  UptimeProber prober(world.network(), self);
  for (const auto& obs : crawl_result.observations) prober.track(obs.peer);
  const sim::Time window_start = world.simulator().now();
  world.simulator().run_until(window_start + sim::hours(5));
  prober.finish();

  const auto reliable =
      reliable_peers(crawl_result, prober.sessions(), window_start,
                     world.simulator().now());
  // Reliable peers exist but are a minority (Figure 7a: ~1.4 % over a
  // multi-week window; a 5 h test window is far more forgiving).
  EXPECT_GT(reliable.size(), 0u);
  EXPECT_LT(reliable.size(), crawl_result.total() / 2);
}

}  // namespace
}  // namespace ipfs::crawler
