// Adversarial scenario pack tests (docs/ADVERSARY.md): Sybil k-bucket
// floods against the diversity cap, eclipse occupation of a target key's
// XOR neighborhood with and without defenses, flash-crowd coalescing at
// the gateway, churn storms, partitions with heal, and the determinism
// and identity-domain guarantees the simfuzz invariants rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "adversary/adversary.h"
#include "blockstore/blockstore.h"
#include "gateway/gateway.h"
#include "merkledag/merkledag.h"
#include "node/ipfs_node.h"
#include "scenario/scenario.h"
#include "sim/fuzz_harness.h"
#include "testutil.h"
#include "world/world.h"

namespace ipfs::adversary {
namespace {

using testutil::TestSwarm;

dht::Key test_key(std::uint8_t tag) {
  return dht::Key::hash_of(std::vector<std::uint8_t>{tag, 0xa7});
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// Adversarial entries in `table` grouped by bucket (cpl vs `self_key`).
std::map<int, std::size_t> adversarial_occupancy(const AttackPlan& plan,
                                                 const dht::Key& self_key,
                                                 dht::RoutingTable& table) {
  std::map<int, std::size_t> per_bucket;
  for (const auto& peer : table.all_peers())
    if (plan.is_adversarial_id(peer.id))
      ++per_bucket[self_key.common_prefix_len(dht::Key::for_peer(peer.id))];
  return per_bucket;
}

// --------------------------------------------------------------------------
// Forged identities
// --------------------------------------------------------------------------

TEST(ForgedIdentityTest, NeverAliasesSyntheticIdentities) {
  // Attacker identities are domain-separated from both honest identity
  // generators; an alias would let a forged peer impersonate an honest
  // one in routing tables and invariant checks.
  std::set<multiformats::PeerId> forged;
  for (std::uint64_t n = 0; n < 64; ++n) {
    const auto id = AttackPlan::forged_peer_id(n);
    EXPECT_TRUE(forged.insert(id).second) << "forged id " << n << " repeats";
    for (std::uint64_t m = 0; m < 64; ++m) {
      EXPECT_NE(id, scenario::synthetic_peer_id(m));
      EXPECT_NE(id, world::synthetic_peer_id(m));
    }
  }
}

TEST(ForgedIdentityTest, AttackerAddressesShareOneSlash16) {
  // The whole fleet lives in 66.6.0.0/16 — the single operator address
  // block the RoutingTable diversity cap counts.
  for (std::uint32_t n = 0; n < 600; n += 37) {
    const dht::PeerRef ref{AttackPlan::forged_peer_id(n), 0,
                           {AttackPlan::attacker_address(n)}};
    const auto cls = dht::RoutingTable::diversity_class(ref);
    ASSERT_TRUE(cls.has_value());
    EXPECT_EQ(*cls, (66 << 8) | 6);
  }
}

// --------------------------------------------------------------------------
// Sybil flood vs the diversity cap
// --------------------------------------------------------------------------

scenario::Scenario sybil_swarm(std::uint64_t seed, SybilConfig sybil) {
  return scenario::ScenarioBuilder()
      .peers(24)
      .seed(seed)
      .single_region(15.0)
      .dht_servers(true)
      .sybils(sybil)
      .build();
}

TEST(SybilTest, MinedIdsLandInTheTargetBucket) {
  SybilConfig sybil;
  sybil.per_victim = 5;
  sybil.target_cpl = 6;
  scenario::Scenario s = sybil_swarm(11, sybil);
  ASSERT_NE(s.attack(), nullptr);
  s.attack()->arm();  // mining happens at arm time

  ASSERT_EQ(s.attack()->victim_count(), s.size());
  for (std::size_t v = 0; v < s.size(); ++v) {
    const dht::Key victim_key = dht::Key::for_peer(s.ref(v).id);
    const auto& refs = s.attack()->sybil_refs(v);
    ASSERT_EQ(refs.size(), sybil.per_victim);
    for (const auto& ref : refs) {
      EXPECT_EQ(victim_key.common_prefix_len(dht::Key::for_peer(ref.id)),
                sybil.target_cpl);
      EXPECT_TRUE(s.attack()->is_adversarial_id(ref.id));
    }
  }
  s.attack()->disarm();
  s.attack()->detach();
}

TEST(SybilTest, FloodFillsBucketsWithoutTheCap) {
  SybilConfig sybil;
  sybil.per_victim = 8;
  sybil.target_cpl = 6;
  sybil.rounds = 2;
  scenario::Scenario s = sybil_swarm(12, sybil);
  s.attack()->arm();
  s.simulator().run_until(s.simulator().now() + sim::minutes(2));
  s.attack()->disarm();
  s.simulator().run();

  // Undefended: the flood lands. At least one victim holds more
  // adversarial entries in the target bucket than any sane cap allows.
  std::size_t worst = 0;
  for (std::size_t v = 0; v < s.size(); ++v) {
    const auto per_bucket = adversarial_occupancy(
        *s.attack(), dht::Key::for_peer(s.ref(v).id), s.dht(v).routing_table());
    for (const auto& [cpl, count] : per_bucket)
      worst = std::max(worst, count);
  }
  EXPECT_GE(worst, 4u);
  EXPECT_GT(s.attack()->counters().flood_requests_sent, 0u);
  s.attack()->detach();
}

TEST(SybilTest, DiversityCapBoundsBucketOccupancy) {
  constexpr std::size_t kCap = 2;
  SybilConfig sybil;
  sybil.per_victim = 8;
  sybil.target_cpl = 6;
  sybil.rounds = 2;
  scenario::Scenario s = sybil_swarm(12, sybil);  // same seed as undefended
  for (std::size_t v = 0; v < s.size(); ++v)
    s.dht(v).set_bucket_diversity_cap(kCap);
  s.attack()->arm();
  s.simulator().run_until(s.simulator().now() + sim::minutes(2));
  s.attack()->disarm();
  s.simulator().run();

  std::uint64_t rejections = 0;
  for (std::size_t v = 0; v < s.size(); ++v) {
    const auto per_bucket = adversarial_occupancy(
        *s.attack(), dht::Key::for_peer(s.ref(v).id), s.dht(v).routing_table());
    for (const auto& [cpl, count] : per_bucket)
      EXPECT_LE(count, kCap) << "victim " << v << " bucket cpl=" << cpl;
    rejections += s.dht(v).routing_table().diversity_rejections();
  }
  // The cap did real work: the same flood that filled buckets undefended
  // was turned away here.
  EXPECT_GT(rejections, 0u);
  s.attack()->detach();
}

// --------------------------------------------------------------------------
// Eclipse
// --------------------------------------------------------------------------

TEST(EclipseTest, AttackersOccupyTheTargetNeighborhood) {
  const dht::Key target = test_key(1);
  EclipseConfig eclipse;
  eclipse.attackers = 12;
  eclipse.min_cpl = 10;
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(30)
                             .seed(21)
                             .single_region(15.0)
                             .dht_servers(true)
                             .eclipse(target, eclipse)
                             .build();
  ASSERT_NE(s.attack(), nullptr);
  const auto& refs = s.attack()->eclipse_refs();
  ASSERT_EQ(refs.size(), eclipse.attackers);
  // Every mined attacker out-distances every honest peer for the target.
  for (const auto& ref : refs) {
    EXPECT_GE(target.common_prefix_len(dht::Key::for_peer(ref.id)),
              eclipse.min_cpl);
    for (std::size_t i = 0; i < s.size(); ++i)
      EXPECT_TRUE(dht::Key::for_peer(ref.id).closer_to(
          target, dht::Key::for_peer(s.ref(i).id)));
  }
  EXPECT_FALSE(s.network().config(s.attack()->ghost_provider().node).dialable);
}

TEST(EclipseTest, SwallowsProviderRecordsOnceArmed) {
  const dht::Key target = test_key(2);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(30)
                             .seed(22)
                             .single_region(15.0)
                             .dht_servers(true)
                             .eclipse(target)
                             .build();
  s.attack()->arm();
  // Let the attacker announce plant the eclipse refs in victim tables.
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));

  bool provide_ok = false;
  s.dht(0).provide(target, [&](dht::DhtNode::ProvideResult r) {
    provide_ok = r.ok;
  });
  s.simulator().run();
  EXPECT_TRUE(provide_ok);  // the publisher never learns it was eclipsed

  // The walk converged onto the attackers; every record was swallowed,
  // so no honest node holds one.
  std::size_t honest_records = 0;
  for (std::size_t i = 0; i < s.size(); ++i)
    honest_records +=
        s.dht(i).record_store().providers(target, s.simulator().now()).size();
  EXPECT_EQ(honest_records, 0u);
  EXPECT_GT(s.attack()->counters().provider_records_swallowed, 0u);

  s.attack()->disarm();
  s.attack()->detach();
}

TEST(EclipseTest, DefeatsDhtOnlyRetrievalOfTheTargetCid) {
  // Node-level offense with the defenses off (quorum 1, no caps, DHT
  // routing only): the armed eclipse swallows the publisher's provider
  // records and feeds the retriever a poisoned record pointing at the
  // undialable ghost, so the retrieval fails.
  const auto data = random_bytes(64 * 1024, 9);
  blockstore::BlockStore scratch;
  const multiformats::Cid cid = merkledag::import_bytes(scratch, data).root;

  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(40)
                             .seed(23)
                             .single_region(20.0)
                             .dht_servers(true)
                             .eclipse(dht::Key::for_cid(cid))
                             .build();
  node::IpfsNodeConfig publisher_config;
  publisher_config.identity_seed = 77;
  publisher_config.provide_after_fetch = false;
  node::IpfsNode publisher(s.network(), publisher_config);
  node::IpfsNodeConfig retriever_config;
  retriever_config.identity_seed = 99;
  retriever_config.provide_after_fetch = false;
  node::IpfsNode retriever(s.network(), retriever_config);

  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(s.ref(i));
  bool publisher_up = false;
  bool retriever_up = false;
  publisher.bootstrap(seeds, [&](bool ok) { publisher_up = ok; });
  retriever.bootstrap(seeds, [&](bool ok) { retriever_up = ok; });
  s.simulator().run();
  ASSERT_TRUE(publisher_up);
  ASSERT_TRUE(retriever_up);

  s.attack()->add_victim(publisher.self());
  s.attack()->add_victim(retriever.self());
  s.attack()->arm();
  // Let the announce plant the attackers in every victim's table.
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));

  node::PublishTrace publish_trace;
  publisher.publish(data, [&](node::PublishTrace t) { publish_trace = t; });
  s.simulator().run();
  ASSERT_TRUE(publish_trace.ok);  // the publisher never learns
  ASSERT_EQ(publish_trace.cid, cid);
  EXPECT_GT(s.attack()->counters().provider_records_swallowed, 0u);

  // Drop the retriever's connections so the opportunistic Bitswap phase
  // cannot shortcut provider discovery (the paper's measurement reset).
  retriever.reset_for_next_measurement();
  std::optional<node::RetrievalTrace> trace;
  retriever.retrieve(cid, [&](node::RetrievalTrace t) { trace = t; });
  s.simulator().run();
  ASSERT_TRUE(trace.has_value());
  EXPECT_FALSE(trace->ok);
  EXPECT_GT(s.attack()->counters().poisoned_records_served, 0u);

  s.attack()->disarm();
  s.attack()->detach();
}

TEST(EclipseTest, QuorumCapsAndIndexerRaceRestoreRetrieval) {
  // The same eclipse inside the fuzz harness with the defense stack on
  // (indexer race + provider quorum + diversity caps): every retrieval
  // of the eclipsed CID is served — invariant 11 binds in-harness too.
  simfuzz::ScheduleParams params;
  params.seed = 4242;
  params.node_count = 14;
  params.nat_fraction = 0.0;
  params.flaky_fraction = 0.0;
  params.publish_count = 2;
  params.retrievals_per_object = 3;
  params.fault_scale = 0.0;
  params.faults = simfuzz::faults_for_scale(0.0, false);
  params.attack = simfuzz::ScheduleParams::Attack::kEclipse;
  params.indexer_count = 1;
  params.indexer_ingest_lag = sim::seconds(1);
  params.provider_quorum = 3;
  params.diversity_cap = 2;

  const auto report = simfuzz::run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  std::size_t attempted = 0;
  std::size_t ok = 0;
  for (std::size_t r = 0; r < params.retrievals_per_object; ++r) {
    const auto& op = report.stats.ops[params.publish_count + r];
    if (!op.attempted) continue;
    ++attempted;
    if (op.completed && op.ok) ++ok;
  }
  ASSERT_GT(attempted, 0u);
  EXPECT_EQ(ok, attempted) << report.stats.fingerprint();
  EXPECT_GT(report.stats.attack_events, 0u);
}

// --------------------------------------------------------------------------
// Flash crowd: gateway coalescing
// --------------------------------------------------------------------------

TEST(FlashCrowdTest, GatewayCoalescesConcurrentMissesForOneCid) {
  TestSwarm swarm(60, 33);
  gateway::GatewayConfig config;
  config.node.identity_seed = 99;
  config.node.provide_after_fetch = false;
  gateway::Gateway gateway(swarm.network(), config);

  node::IpfsNodeConfig publisher_config;
  publisher_config.identity_seed = 77;
  node::IpfsNode publisher(swarm.network(), publisher_config);

  std::vector<dht::PeerRef> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(swarm.ref(i));
  gateway.bootstrap(seeds, [](bool) {});
  publisher.bootstrap(seeds, [](bool) {});
  swarm.simulator().run();

  const auto data = random_bytes(128 * 1024, 5);
  node::PublishTrace publish_trace;
  publisher.publish(data, [&](node::PublishTrace t) { publish_trace = t; });
  swarm.simulator().run();
  ASSERT_TRUE(publish_trace.ok);

  // A crowd of requests for the same CID lands before the first can
  // resolve: one upstream retrieval, every waiter answered.
  constexpr std::size_t kCrowd = 8;
  std::vector<gateway::GatewayResponse> responses;
  for (std::size_t i = 0; i < kCrowd; ++i)
    gateway.handle_get(publish_trace.cid, [&](gateway::GatewayResponse r) {
      responses.push_back(r);
    });
  swarm.simulator().run();

  ASSERT_EQ(responses.size(), kCrowd);
  for (const auto& response : responses) {
    EXPECT_EQ(response.source, gateway::ServedFrom::kP2p);
    EXPECT_EQ(response.bytes, data.size());
    EXPECT_GT(response.latency, 0);
  }
  EXPECT_EQ(gateway.coalesced_requests(), kCrowd - 1);
  // Every request is accounted, but the P2P pipeline ran once: exactly
  // one provider connection was torn down afterwards.
  EXPECT_EQ(gateway.stats(gateway::ServedFrom::kP2p).requests, kCrowd);
  EXPECT_EQ(gateway.total_requests(), kCrowd);
}

TEST(FlashCrowdTest, PlanFiresEverySlotInsideTheWindow) {
  FlashCrowdConfig flash;
  flash.requests = 12;
  flash.start = sim::seconds(2);
  flash.window = sim::seconds(10);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(4)
                             .seed(44)
                             .single_region(10.0)
                             .dht_servers(true)
                             .flash_crowd(flash)
                             .build();
  std::vector<sim::Time> fired;
  const sim::Time base = s.simulator().now();
  s.attack()->set_flash_request_handler(
      [&](std::size_t) { fired.push_back(s.simulator().now()); });
  s.attack()->arm();
  s.simulator().run();
  s.attack()->disarm();
  s.attack()->detach();

  ASSERT_EQ(fired.size(), flash.requests);
  EXPECT_EQ(s.attack()->counters().flash_requests, flash.requests);
  for (const sim::Time t : fired) {
    EXPECT_GE(t, base + flash.start);
    EXPECT_LE(t, base + flash.start + flash.window);
  }
}

// --------------------------------------------------------------------------
// Churn storm
// --------------------------------------------------------------------------

TEST(ChurnStormTest, CrashesAndRevivesManagedNodes) {
  ChurnStormConfig storm;
  storm.fraction = 1.0;  // every managed node crashes
  storm.start = sim::seconds(1);
  storm.window = sim::seconds(10);
  storm.min_downtime = sim::seconds(5);
  storm.max_downtime = sim::seconds(15);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(10)
                             .seed(55)
                             .single_region(10.0)
                             .dht_servers(true)
                             .churn_storm(storm)
                             .build();
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  s.attack()->add_crash_listener([&](sim::NodeId, bool online) {
    online ? ++restarts : ++crashes;
  });
  for (std::size_t i = 4; i < s.size(); ++i)
    s.attack()->manage_storm(s.node(i));
  s.attack()->arm();
  s.simulator().run_until(s.simulator().now() + sim::minutes(1));
  s.attack()->disarm();
  s.simulator().run();
  s.attack()->detach();

  EXPECT_EQ(crashes, s.size() - 4);
  EXPECT_EQ(restarts, crashes);  // every crash was revived
  EXPECT_EQ(s.attack()->counters().storm_crashes, crashes);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_TRUE(s.network().online(s.node(i)));
}

TEST(ChurnStormTest, DisarmRevivesNodesStillDown) {
  ChurnStormConfig storm;
  storm.fraction = 1.0;
  storm.start = sim::seconds(1);
  storm.window = sim::seconds(5);
  storm.min_downtime = sim::minutes(10);  // far past the disarm below
  storm.max_downtime = sim::minutes(20);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(8)
                             .seed(56)
                             .single_region(10.0)
                             .dht_servers(true)
                             .churn_storm(storm)
                             .build();
  for (std::size_t i = 4; i < s.size(); ++i)
    s.attack()->manage_storm(s.node(i));
  s.attack()->arm();
  s.simulator().run_until(s.simulator().now() + sim::seconds(20));
  // Mid-storm: the managed nodes are down.
  std::size_t down = 0;
  for (std::size_t i = 4; i < s.size(); ++i)
    if (!s.network().online(s.node(i))) ++down;
  EXPECT_GT(down, 0u);

  s.attack()->disarm();  // cancels downtimes, revives everyone
  s.simulator().run();
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_TRUE(s.network().online(s.node(i)));
  s.attack()->detach();
}

// --------------------------------------------------------------------------
// Partition + heal
// --------------------------------------------------------------------------

class CountingInjector : public sim::FaultInjector {
 public:
  bool drop_message(sim::NodeId, sim::NodeId) override {
    ++drop_queries;
    return false;
  }
  bool duplicate_message(sim::NodeId, sim::NodeId) override { return false; }
  sim::Duration reorder_delay(sim::NodeId, sim::NodeId) override { return 0; }
  bool fail_dial(sim::NodeId, sim::NodeId) override {
    ++dial_queries;
    return false;
  }
  double latency_factor(sim::NodeId, sim::NodeId) override { return 1.0; }
  std::size_t drop_queries = 0;
  std::size_t dial_queries = 0;
};

TEST(PartitionTest, HealRestoresCrossGroupReachability) {
  // Three-region fabric; nodes are added by hand so regions differ.
  scenario::Scenario fabric =
      scenario::ScenarioBuilder()
          .seed(66)
          .regions({{10.0, 40.0, 80.0},
                    {40.0, 10.0, 60.0},
                    {80.0, 60.0, 10.0}})
          .build();
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < 6; ++i)
    nodes.push_back(
        fabric.network().add_node(sim::NodeConfig{}.with_region(i % 3)));

  // node 0 (region 0) vs node 1 (region 1): across the partition below;
  // node 1 vs node 2 (region 2): same side.
  AttackConfig config;
  PartitionConfig partition;
  partition.groups = {{0}, {1, 2}};
  partition.start = 0;
  partition.heal_at = sim::seconds(30);
  config.partition = partition;
  AttackPlan plan(fabric.network(), config, 66);

  // Bounded drains: run() would also fire the pending heal timer, so
  // each probe advances just past the transport's 5 s dial timeout.
  const auto probe = [&](std::size_t from, std::size_t to) {
    std::optional<bool> ok;
    fabric.network().connect(nodes[from], nodes[to],
                             [&](bool connected, sim::Duration) {
                               ok = connected;
                             });
    fabric.simulator().run_until(fabric.simulator().now() + sim::seconds(8));
    return ok;
  };

  plan.arm();
  EXPECT_TRUE(plan.partition_active());
  const auto cross = probe(0, 1);
  ASSERT_TRUE(cross.has_value());
  EXPECT_FALSE(*cross);  // dial blocked across the partition
  const auto same_side = probe(1, 2);
  ASSERT_TRUE(same_side.has_value());
  EXPECT_TRUE(*same_side);  // groups stay internally connected
  EXPECT_GT(plan.counters().partition_dials_blocked, 0u);

  // Heal (at t = 30 s; the probes consumed 16 s), then the same
  // cross-group dial succeeds.
  fabric.simulator().run_until(fabric.simulator().now() + sim::minutes(1));
  EXPECT_FALSE(plan.partition_active());
  const auto healed = probe(0, 1);
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(*healed);

  plan.disarm();
  plan.detach();
}

TEST(PartitionTest, DecoratorDelegatesToTheInnerInjector) {
  scenario::Scenario fabric = scenario::ScenarioBuilder()
                                  .seed(67)
                                  .single_region(10.0)
                                  .build();
  const sim::NodeId a = fabric.network().add_node(sim::NodeConfig{});
  const sim::NodeId b = fabric.network().add_node(sim::NodeConfig{});

  CountingInjector inner;
  fabric.network().set_fault_injector(&inner);

  AttackConfig config;
  PartitionConfig partition;
  partition.groups = {{1}, {2}};  // both nodes are region 0: unaffected
  partition.start = 0;
  partition.heal_at = sim::seconds(30);
  config.partition = partition;
  AttackPlan plan(fabric.network(), config, 67);
  plan.arm();

  // Unpartitioned traffic passes through the decorator to the inner
  // injector (a FaultPlan in real scenarios).
  bool connected = false;
  fabric.network().connect(a, b,
                           [&](bool ok, sim::Duration) { connected = ok; });
  fabric.simulator().run_until(fabric.simulator().now() + sim::seconds(5));
  ASSERT_TRUE(connected);
  EXPECT_GT(inner.dial_queries, 0u);
  fabric.network().send(a, b, std::make_shared<const sim::Message>(), 64);
  fabric.simulator().run_until(fabric.simulator().now() + sim::seconds(5));
  EXPECT_GT(inner.drop_queries, 0u);
  EXPECT_EQ(plan.counters().partition_dials_blocked, 0u);

  plan.disarm();
  plan.detach();
  // Detach restores the exact injector that was installed before arm().
  EXPECT_EQ(fabric.network().fault_injector(), &inner);
  fabric.network().set_fault_injector(nullptr);
}

// --------------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------------

TEST(AttackPlanTest, SameSeedMintsIdenticalIdentitiesAndCounters) {
  const auto build = [](std::uint64_t seed) {
    SybilConfig sybil;
    sybil.per_victim = 4;
    sybil.target_cpl = 5;
    sybil.rounds = 1;
    return scenario::ScenarioBuilder()
        .peers(12)
        .seed(seed)
        .single_region(10.0)
        .dht_servers(true)
        .sybils(sybil)
        .eclipse(test_key(9))
        .build();
  };
  scenario::Scenario first = build(70);
  scenario::Scenario second = build(70);
  const auto run = [](scenario::Scenario& s) {
    s.attack()->arm();
    s.simulator().run_until(s.simulator().now() + sim::minutes(1));
    s.attack()->disarm();
    s.simulator().run();
    s.attack()->detach();
  };
  run(first);
  run(second);

  ASSERT_EQ(first.attack()->eclipse_refs().size(),
            second.attack()->eclipse_refs().size());
  for (std::size_t i = 0; i < first.attack()->eclipse_refs().size(); ++i)
    EXPECT_EQ(first.attack()->eclipse_refs()[i].id,
              second.attack()->eclipse_refs()[i].id);
  for (std::size_t v = 0; v < first.attack()->victim_count(); ++v) {
    const auto& lhs = first.attack()->sybil_refs(v);
    const auto& rhs = second.attack()->sybil_refs(v);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i)
      EXPECT_EQ(lhs[i].id, rhs[i].id);
  }
  EXPECT_EQ(first.attack()->counters().flood_requests_sent,
            second.attack()->counters().flood_requests_sent);
  EXPECT_EQ(first.attack()->counters().sybil_ids_minted,
            second.attack()->counters().sybil_ids_minted);
}

}  // namespace
}  // namespace ipfs::adversary
