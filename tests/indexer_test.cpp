// Network-indexer tests: the ingest lag gates visibility, re-adverts
// refresh instead of duplicating, records expire on TTL, a crash wipes
// the soft-state index, and queries are answered from the visible index
// in one RTT.
#include <gtest/gtest.h>

#include <vector>

#include "indexer/indexer.h"
#include "indexer/messages.h"
#include "routing/router.h"
#include "scenario/scenario.h"
#include "testutil.h"

namespace ipfs::indexer {
namespace {

dht::Key test_key(std::uint8_t tag) {
  return dht::Key::hash_of(std::vector<std::uint8_t>{tag, 0x42});
}

dht::PeerRef test_provider(std::uint64_t n, sim::NodeId node) {
  return dht::PeerRef{testutil::synthetic_peer_id(n), node,
                      {testutil::synthetic_address(
                          static_cast<std::uint32_t>(n))}};
}

// One peer node (the advertiser/querier) plus one indexer.
scenario::Scenario make_fabric(IndexerConfig config,
                               std::uint64_t seed = 11) {
  return scenario::ScenarioBuilder()
      .peers(1)
      .seed(seed)
      .single_region(10.0)
      .indexers(1)
      .indexer_config(config)
      .build();
}

TEST(IndexerTest, IngestLagGatesVisibility) {
  scenario::Scenario s =
      make_fabric(IndexerConfig().with_ingest_lag(sim::seconds(30)));
  Indexer& ix = s.indexer(0);
  const dht::Key key = test_key(1);

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, test_provider(7, s.node(0)));
  // run() drains the dial + advert delivery; the ingest timer is a
  // daemon, so the record is received but not yet visible.
  s.simulator().run();
  EXPECT_EQ(ix.advertisements_received(), 1u);
  EXPECT_EQ(ix.pending_count(), 1u);
  EXPECT_EQ(ix.visible_provider_count(key), 0u);

  s.simulator().run_until(s.simulator().now() + sim::seconds(31));
  EXPECT_EQ(ix.pending_count(), 0u);
  EXPECT_EQ(ix.visible_provider_count(key), 1u);
}

TEST(IndexerTest, ReadvertiseRefreshesInsteadOfDuplicating) {
  scenario::Scenario s =
      make_fabric(IndexerConfig().with_ingest_lag(sim::seconds(1)));
  Indexer& ix = s.indexer(0);
  const dht::Key key = test_key(2);
  const dht::PeerRef provider = test_provider(7, s.node(0));

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, provider);
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));
  ASSERT_EQ(ix.visible_provider_count(key), 1u);

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, provider);
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));
  EXPECT_EQ(ix.advertisements_received(), 2u);
  EXPECT_EQ(ix.visible_provider_count(key), 1u);  // refreshed, not doubled

  // A different provider for the same key is a second record.
  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, test_provider(8, s.node(0)));
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));
  EXPECT_EQ(ix.visible_provider_count(key), 2u);
}

TEST(IndexerTest, RecordsExpireAfterTtl) {
  scenario::Scenario s = make_fabric(IndexerConfig()
                                         .with_ingest_lag(sim::seconds(1))
                                         .with_provider_ttl(sim::minutes(1)));
  Indexer& ix = s.indexer(0);
  const dht::Key key = test_key(3);

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, test_provider(7, s.node(0)));
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));
  ASSERT_EQ(ix.visible_provider_count(key), 1u);

  s.simulator().run_until(s.simulator().now() + sim::minutes(2));
  EXPECT_EQ(ix.visible_provider_count(key), 0u);
}

TEST(IndexerTest, CrashWipesSoftStateAndReadvertiseRebuildsIt) {
  scenario::Scenario s =
      make_fabric(IndexerConfig().with_ingest_lag(sim::seconds(10)));
  Indexer& ix = s.indexer(0);
  const dht::Key visible_key = test_key(4);
  const dht::Key pending_key = test_key(5);

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 visible_key, test_provider(7, s.node(0)));
  s.simulator().run_until(s.simulator().now() + sim::seconds(15));
  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 pending_key, test_provider(8, s.node(0)));
  s.simulator().run();
  ASSERT_EQ(ix.visible_provider_count(visible_key), 1u);
  ASSERT_EQ(ix.pending_count(), 1u);

  s.network().set_online(ix.node(), false);
  ix.handle_crash();
  EXPECT_EQ(ix.visible_provider_count(visible_key), 0u);
  EXPECT_EQ(ix.pending_count(), 0u);
  // The wipe cancelled the ingest timer: the drain owes nothing.
  s.simulator().run();
  EXPECT_EQ(s.simulator().foreground_pending(), 0u);

  s.network().set_online(ix.node(), true);
  ix.handle_restart();
  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 visible_key, test_provider(7, s.node(0)));
  s.simulator().run_until(s.simulator().now() + sim::seconds(15));
  EXPECT_EQ(ix.visible_provider_count(visible_key), 1u);
}

TEST(IndexerTest, QueriesAreAnsweredFromTheVisibleIndex) {
  scenario::Scenario s =
      make_fabric(IndexerConfig().with_ingest_lag(sim::seconds(1)));
  Indexer& ix = s.indexer(0);
  const dht::Key key = test_key(6);
  const dht::PeerRef provider = test_provider(7, s.node(0));

  routing::advertise_to_indexers(s.transport(0), s.routing_config(),
                                 key, provider);
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));

  std::vector<dht::ProviderRecord> got;
  bool responded = false;
  const sim::Time asked_at = s.simulator().now();
  sim::Time answered_at = 0;
  s.network().connect(s.node(0), ix.node(), [&](bool ok, sim::Duration) {
    ASSERT_TRUE(ok);
    auto query = std::make_shared<QueryRequest>();
    query->key = key;
    s.network().request(
        s.node(0), ix.node(), std::move(query), kQueryBytes, sim::seconds(2),
        [&](sim::RpcStatus status, const sim::MessagePtr& message) {
          responded = true;
          answered_at = s.simulator().now();
          ASSERT_EQ(status, sim::RpcStatus::kOk);
          const auto* response =
              dynamic_cast<const QueryResponse*>(message.get());
          ASSERT_NE(response, nullptr);
          got = response->providers;
        });
  });
  s.simulator().run();

  ASSERT_TRUE(responded);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].provider.id, provider.id);
  EXPECT_EQ(ix.queries_served(), 1u);
  // One-RTT lookup: the answer lands within a handful of link RTTs (the
  // 10 ms single-region fabric), not a multi-hop DHT walk.
  EXPECT_LT(answered_at - asked_at, sim::milliseconds(200));
}

}  // namespace
}  // namespace ipfs::indexer
