// Seeded simulation-fuzz harness tests: N randomized fault/workload
// schedules of the full publish -> provide -> resolve -> fetch pipeline,
// every global invariant checked after each run.
//
// Replay a failing schedule:
//   IPFS_FUZZ_SEED=<seed> IPFS_FUZZ_SCHEDULES=1 ./tests/simfuzz_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>

#include "sim/fuzz_harness.h"

namespace ipfs::simfuzz {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(SimFuzz, InvariantsHoldAcrossSeededSchedules) {
  const std::uint64_t base_seed = env_u64("IPFS_FUZZ_SEED", 1000);
  const std::uint64_t schedules = env_u64("IPFS_FUZZ_SCHEDULES", 200);

  std::uint64_t faults_injected = 0;
  std::size_t retrievals_ok = 0;
  std::size_t retrievals_attempted = 0;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    const ScheduleParams params = make_schedule(base_seed + i);
    const ScheduleReport report = run_schedule(params);
    ASSERT_TRUE(report.ok()) << report.failure_summary();
    faults_injected += report.stats.faults.total_injected();
    retrievals_ok += report.stats.retrievals_ok();
    retrievals_attempted += report.stats.retrievals_attempted();
  }

  // The sweep must actually exercise the fault paths and still move data.
  if (schedules >= 10) {
    EXPECT_GT(faults_injected, 0u);
    EXPECT_GT(retrievals_ok, 0u);
    EXPECT_GT(retrievals_attempted, retrievals_ok / 2)
        << "schedules barely attempted any retrievals";
  }
}

TEST(SimFuzz, SameSeedProducesByteIdenticalStats) {
  const std::uint64_t seed = env_u64("IPFS_FUZZ_SEED", 424242);
  const ScheduleParams params = make_schedule(seed);
  const ScheduleReport first = run_schedule(params);
  const ScheduleReport second = run_schedule(params);
  EXPECT_EQ(first.stats.fingerprint(), second.stats.fingerprint());
  EXPECT_EQ(first.violations, second.violations);
}

TEST(SimFuzz, SchedulerBackendsProduceIdenticalTraceStreams) {
  // The timer wheel replaced the binary heap as the event-queue backend;
  // both remain selectable precisely so this test can prove the swap is
  // invisible: a seeded schedule replayed under each backend must emit a
  // byte-identical trace stream (every span and instant, in order) and
  // identical aggregate fingerprints.
  const std::uint64_t seed = env_u64("IPFS_FUZZ_SEED", 606060);
  ScheduleParams params = make_schedule(seed);
  params.capture_trace = true;

  params.scheduler = sim::SchedulerBackend::kTimerWheel;
  const ScheduleReport wheel = run_schedule(params);
  params.scheduler = sim::SchedulerBackend::kBinaryHeap;
  const ScheduleReport heap = run_schedule(params);

  ASSERT_TRUE(wheel.ok()) << wheel.failure_summary();
  ASSERT_TRUE(heap.ok()) << heap.failure_summary();
  EXPECT_EQ(wheel.stats.fingerprint(), heap.stats.fingerprint());
  ASSERT_FALSE(wheel.trace_jsonl.empty());
  EXPECT_EQ(wheel.trace_jsonl, heap.trace_jsonl);
}

// The sharded engine's own bookkeeping records (par.windows, per-shard
// event counts, ...) legitimately vary with the shard count; everything
// else in the trace must not.
std::string strip_par_lines(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("par.") == std::string::npos) out << line << '\n';
  return out.str();
}

TEST(SimFuzz, ShardCountsProduceIdenticalTraceStreams) {
  // Determinism gate for the sharded parallel event core
  // (src/sim/parallel): every randomized schedule replayed at 1 shard
  // (the sequential oracle) and at 4 shards must produce byte-identical
  // fingerprints and — modulo the engine's own par.* records — a
  // byte-identical trace stream. Shard count may change the engine's
  // internals, never the simulation.
  const std::uint64_t base_seed = env_u64("IPFS_FUZZ_SEED", 909090);
  const std::uint64_t schedules = env_u64("IPFS_FUZZ_SHARD_SCHEDULES", 25);

  for (std::uint64_t i = 0; i < schedules; ++i) {
    ScheduleParams params = make_schedule(base_seed + i);
    params.capture_trace = true;

    params.shards = 1;
    const ScheduleReport oracle = run_schedule(params);
    params.shards = 4;
    const ScheduleReport sharded = run_schedule(params);

    ASSERT_TRUE(oracle.ok()) << oracle.failure_summary();
    ASSERT_TRUE(sharded.ok()) << sharded.failure_summary();
    ASSERT_EQ(oracle.stats.fingerprint(), sharded.stats.fingerprint())
        << "shard-count divergence: " << params.describe();
    ASSERT_FALSE(oracle.trace_jsonl.empty());
    ASSERT_EQ(strip_par_lines(oracle.trace_jsonl),
              strip_par_lines(sharded.trace_jsonl))
        << "shard-count trace divergence: " << params.describe();
  }
}

TEST(SimFuzz, FailureMessagesCarryReplaySeed) {
  const ScheduleParams params = make_schedule(77);
  EXPECT_NE(params.describe().find("seed=77"), std::string::npos);
  EXPECT_NE(params.describe().find("IPFS_FUZZ_SEED=77"), std::string::npos);

  ScheduleReport report;
  report.params = params;
  report.violations.push_back("synthetic violation");
  const std::string summary = report.failure_summary();
  EXPECT_NE(summary.find("IPFS_FUZZ_SEED=77"), std::string::npos);
  EXPECT_NE(summary.find("synthetic violation"), std::string::npos);
}

TEST(SimFuzz, ZeroFaultScheduleRetrievesEverything) {
  ScheduleParams params;
  params.seed = 31337;
  params.node_count = 14;
  params.nat_fraction = 0.2;
  params.flaky_fraction = 0.0;
  params.publish_count = 3;
  params.retrievals_per_object = 3;
  params.fault_scale = 0.0;
  params.faults = faults_for_scale(0.0, false);

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_EQ(report.stats.publishes_ok(), params.publish_count);
  EXPECT_EQ(report.stats.retrievals_attempted(),
            params.publish_count * params.retrievals_per_object);
  EXPECT_EQ(report.stats.retrievals_ok(),
            params.publish_count * params.retrievals_per_object)
      << report.stats.fingerprint();
  EXPECT_EQ(report.stats.faults.total_injected(), 0u);
}

TEST(SimFuzz, PubsubWorkloadDeliversOnCleanSchedule) {
  ScheduleParams params;
  params.seed = 24601;
  params.node_count = 16;
  params.nat_fraction = 0.1;
  params.flaky_fraction = 0.0;
  params.publish_count = 2;
  params.retrievals_per_object = 1;
  params.fault_scale = 0.0;
  params.faults = faults_for_scale(0.0, false);
  params.pubsub_topics = 2;
  params.pubsub_subscriber_fraction = 0.6;
  params.pubsub_publish_count = 8;

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_GT(report.stats.pubsub_publishes, 0u);
  // Every publish fans out to a multi-member subscriber set, so total
  // deliveries must clearly exceed the publish count.
  EXPECT_GT(report.stats.pubsub_deliveries, report.stats.pubsub_publishes);
}

TEST(SimFuzz, PubsubAtMostOnceHoldsUnderHeavyChurn) {
  // Full-intensity faults: crash-restarts wipe dedup caches and force
  // mesh repair, and the at-most-once ledger (which resets per subscriber
  // crash) must still hold at every delivery.
  ScheduleParams params;
  params.seed = 777;
  params.node_count = 18;
  params.nat_fraction = 0.2;
  params.flaky_fraction = 0.1;
  params.publish_count = 2;
  params.retrievals_per_object = 2;
  params.fault_scale = 1.0;
  params.faults = faults_for_scale(1.0, false);
  params.pubsub_topics = 1;
  params.pubsub_subscriber_fraction = 0.7;
  params.pubsub_publish_count = 10;

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_GT(report.stats.faults.crashes, 0u)
      << "schedule was meant to crash nodes";
  EXPECT_GT(report.stats.pubsub_publishes, 0u);
}

TEST(SimFuzz, IndexerSchedulesHoldInvariantsAcrossFiveHundredSeeds) {
  // Satellite sweep for the delegated-routing invariants (9 and 10):
  // every schedule gets at least one indexer and every other one crashes
  // them mid-window. Worlds are kept small so 500 seeds stay tractable.
  const std::uint64_t base_seed = env_u64("IPFS_FUZZ_SEED", 50'000);
  const std::uint64_t schedules = env_u64("IPFS_FUZZ_INDEXER_SCHEDULES", 500);

  std::uint64_t indexer_routed = 0;
  std::uint64_t indexer_crashes = 0;
  std::size_t clean_crash_schedules = 0;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    ScheduleParams params = make_schedule(base_seed + i);
    params.node_count = std::min<std::size_t>(params.node_count, 12);
    params.long_horizon = false;
    params.publish_count = std::min<std::size_t>(params.publish_count, 3);
    params.retrievals_per_object =
        std::min<std::size_t>(params.retrievals_per_object, 2);
    params.max_object_bytes =
        std::min<std::size_t>(params.max_object_bytes, 128 * 1024);
    if (params.indexer_count == 0) params.indexer_count = 1 + (i % 2);
    params.indexer_crashes = (i % 2) == 0;
    if (params.fault_scale == 0.0 && params.indexer_crashes)
      ++clean_crash_schedules;

    const ScheduleReport report = run_schedule(params);
    ASSERT_TRUE(report.ok()) << report.failure_summary();
    indexer_routed += report.stats.indexer_routed;
    indexer_crashes += report.stats.indexer_crashes;
  }

  if (schedules >= 100) {
    // The sweep must actually exercise both sides of the race: fetches
    // won by the delegated path, and indexer crash/restart cycles.
    EXPECT_GT(indexer_routed, 0u);
    EXPECT_GT(indexer_crashes, 0u);
    // And some schedules bind invariant 10 (indexer crashes as the only
    // faults).
    EXPECT_GT(clean_crash_schedules, 0u);
  }
}

TEST(SimFuzz, IndexerCrashesNeverFailAFetchTheDhtWouldServe) {
  // Invariant 10, pinned: a clean schedule whose only faults are indexer
  // crashes must retrieve everything — the race degrades to the DHT arm.
  ScheduleParams params;
  params.seed = 90210;
  params.node_count = 14;
  params.nat_fraction = 0.1;
  params.flaky_fraction = 0.0;
  params.publish_count = 3;
  params.retrievals_per_object = 3;
  params.fault_scale = 0.0;
  params.faults = faults_for_scale(0.0, false);
  params.indexer_count = 2;
  params.indexer_ingest_lag = sim::seconds(5);
  params.indexer_crashes = true;

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_EQ(report.stats.indexer_crashes, 2u);
  EXPECT_EQ(report.stats.retrievals_ok(), report.stats.retrievals_attempted())
      << report.stats.fingerprint();
}

TEST(SimFuzz, AttackSchedulesHoldInvariantsAcrossFiveHundredSeeds) {
  // Satellite sweep for the adversarial invariants (11-13): every
  // schedule runs one attack family, round-robin so coverage never
  // depends on the 40% attack draw, with the defense knobs as drawn from
  // the schedule-adversary fork and then re-normalized. Worlds are kept
  // small so 500 seeds stay tractable.
  const std::uint64_t base_seed = env_u64("IPFS_FUZZ_SEED", 80'000);
  const std::uint64_t schedules = env_u64("IPFS_FUZZ_ATTACK_SCHEDULES", 500);

  std::uint64_t attack_events = 0;
  std::uint64_t flash_fired = 0;
  std::uint64_t flash_completions = 0;
  std::uint64_t sybil_rejections = 0;
  std::size_t capped_sybil_schedules = 0;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    ScheduleParams params = make_schedule(base_seed + i);
    params.node_count = std::min<std::size_t>(params.node_count, 12);
    params.long_horizon = false;
    params.publish_count = std::min<std::size_t>(params.publish_count, 3);
    params.retrievals_per_object =
        std::min<std::size_t>(params.retrievals_per_object, 2);
    params.max_object_bytes =
        std::min<std::size_t>(params.max_object_bytes, 128 * 1024);
    params.attack = static_cast<ScheduleParams::Attack>(1 + (i % 5));
    apply_attack_constraints(params);
    if (params.attack == ScheduleParams::Attack::kSybil &&
        params.diversity_cap > 0)
      ++capped_sybil_schedules;

    const ScheduleReport report = run_schedule(params);
    ASSERT_TRUE(report.ok()) << report.failure_summary();
    attack_events += report.stats.attack_events;
    flash_fired += report.stats.flash_fired;
    flash_completions += report.stats.flash_completions;
    sybil_rejections += report.stats.sybil_rejections;
  }

  if (schedules >= 100) {
    // The sweep must actually land attacks, fire flash crowds that all
    // complete (invariant 12), and exercise the diversity cap both ways.
    EXPECT_GT(attack_events, 0u);
    EXPECT_GT(flash_fired, 0u);
    EXPECT_EQ(flash_completions, flash_fired);
    EXPECT_GT(capped_sybil_schedules, 0u);
    EXPECT_GT(sybil_rejections, 0u);
  }
}

TEST(SimFuzz, ApplyAttackConstraintsNormalizesDefenses) {
  // kNone switches every defense off — historical seeds must replay
  // their pre-adversary schedules bit-identically.
  ScheduleParams params = make_schedule(123);
  params.attack = ScheduleParams::Attack::kNone;
  params.diversity_cap = 3;
  params.provider_quorum = 4;
  params.flash_requests = 9;
  params.flash_dead_cid = true;
  apply_attack_constraints(params);
  EXPECT_EQ(params.diversity_cap, 0u);
  EXPECT_EQ(params.provider_quorum, 1u);
  EXPECT_EQ(params.flash_requests, 0u);
  EXPECT_FALSE(params.flash_dead_cid);

  // Eclipse schedules arm the full defense stack: invariant 11 relies on
  // a healthy indexer escape hatch and nothing else degrading retrievals.
  ScheduleParams eclipse = make_schedule(123);
  eclipse.attack = ScheduleParams::Attack::kEclipse;
  eclipse.indexer_count = 0;
  eclipse.indexer_crashes = true;
  eclipse.fault_scale = 1.0;
  apply_attack_constraints(eclipse);
  EXPECT_GE(eclipse.indexer_count, 1u);
  EXPECT_FALSE(eclipse.indexer_crashes);
  EXPECT_EQ(eclipse.fault_scale, 0.0);
  EXPECT_GE(eclipse.provider_quorum, 3u);
  EXPECT_GE(eclipse.diversity_cap, 2u);
  EXPECT_EQ(eclipse.flash_requests, 0u);

  // Storm schedules keep FaultPlan crashes away from the storm's: one
  // owner per node's process lifecycle.
  ScheduleParams storm = make_schedule(123);
  storm.attack = ScheduleParams::Attack::kChurnStorm;
  storm.fault_scale = 1.0;
  apply_attack_constraints(storm);
  EXPECT_EQ(storm.faults.crashes_per_hour_per_node, 0.0);
}

TEST(SimFuzz, FlashCrowdAgainstADeadCidCompletesEveryRequest) {
  // Invariant 12, pinned: a burst chasing a never-published CID must end
  // in typed failures, never hangs — every fired slot completes.
  ScheduleParams params;
  params.seed = 1717;
  params.node_count = 12;
  params.nat_fraction = 0.0;
  params.flaky_fraction = 0.0;
  params.publish_count = 2;
  params.retrievals_per_object = 2;
  params.fault_scale = 0.0;
  params.faults = faults_for_scale(0.0, false);
  params.attack = ScheduleParams::Attack::kFlashCrowd;
  params.flash_requests = 10;
  params.flash_dead_cid = true;

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_GT(report.stats.flash_fired, 0u);
  EXPECT_EQ(report.stats.flash_completions, report.stats.flash_fired);
  EXPECT_GT(report.stats.attack_events, 0u);
}

TEST(SimFuzz, SybilFloodStaysWithinTheDiversityCap) {
  // Invariant 13, pinned: a capped sybil schedule keeps every bucket's
  // adversarial occupancy within the cap, and the turned-away flood
  // shows up in the rejection counter.
  ScheduleParams params;
  params.seed = 2718;
  params.node_count = 12;
  params.nat_fraction = 0.0;
  params.flaky_fraction = 0.0;
  params.publish_count = 2;
  params.retrievals_per_object = 2;
  params.fault_scale = 0.0;
  params.faults = faults_for_scale(0.0, false);
  params.attack = ScheduleParams::Attack::kSybil;
  params.diversity_cap = 2;

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_GT(report.stats.attack_events, 0u);
  EXPECT_GT(report.stats.sybil_rejections, 0u);
}

TEST(SimFuzz, AttackSchedulesAreByteIdenticalAcrossSchedulerBackends) {
  // Every attack controller schedules through the event core, so each
  // family must replay byte-identically (fingerprint AND full trace
  // stream) under the wheel and heap backends.
  for (int family = 1; family <= 5; ++family) {
    ScheduleParams params = make_schedule(3000 + static_cast<std::uint64_t>(family));
    params.node_count = 10;
    params.long_horizon = false;
    params.publish_count = 2;
    params.retrievals_per_object = 2;
    params.max_object_bytes = 64 * 1024;
    params.attack = static_cast<ScheduleParams::Attack>(family);
    apply_attack_constraints(params);
    params.capture_trace = true;

    params.scheduler = sim::SchedulerBackend::kTimerWheel;
    const ScheduleReport wheel = run_schedule(params);
    params.scheduler = sim::SchedulerBackend::kBinaryHeap;
    const ScheduleReport heap = run_schedule(params);

    ASSERT_TRUE(wheel.ok()) << wheel.failure_summary();
    ASSERT_TRUE(heap.ok()) << heap.failure_summary();
    EXPECT_EQ(wheel.stats.fingerprint(), heap.stats.fingerprint())
        << "family=" << attack_name(params.attack);
    ASSERT_FALSE(wheel.trace_jsonl.empty());
    EXPECT_EQ(wheel.trace_jsonl, heap.trace_jsonl)
        << "family=" << attack_name(params.attack);
  }
}

TEST(SimFuzz, DescribeCarriesTheAttackKnobs) {
  ScheduleParams params = make_schedule(55);
  params.attack = ScheduleParams::Attack::kEclipse;
  apply_attack_constraints(params);
  const std::string text = params.describe();
  EXPECT_NE(text.find("attack=eclipse"), std::string::npos);
  EXPECT_NE(text.find("diversity_cap="), std::string::npos);
  EXPECT_NE(text.find("provider_quorum="), std::string::npos);
  EXPECT_NE(text.find("flash_requests="), std::string::npos);

  EXPECT_EQ(std::string(attack_name(ScheduleParams::Attack::kNone)), "none");
  EXPECT_EQ(std::string(attack_name(ScheduleParams::Attack::kSybil)), "sybil");
  EXPECT_EQ(std::string(attack_name(ScheduleParams::Attack::kFlashCrowd)),
            "flash");
  EXPECT_EQ(std::string(attack_name(ScheduleParams::Attack::kChurnStorm)),
            "storm");
  EXPECT_EQ(std::string(attack_name(ScheduleParams::Attack::kPartition)),
            "partition");
}

TEST(SimFuzz, LongHorizonScheduleExpiresProviderRecords) {
  ScheduleParams params;
  params.seed = 9001;
  params.node_count = 12;
  params.nat_fraction = 0.0;
  params.flaky_fraction = 0.0;
  params.publish_count = 2;
  params.retrievals_per_object = 2;
  params.long_horizon = true;
  params.fault_scale = 0.3;
  params.faults = faults_for_scale(0.3, true);

  const ScheduleReport report = run_schedule(params);
  ASSERT_TRUE(report.ok()) << report.failure_summary();
}

}  // namespace
}  // namespace ipfs::simfuzz
