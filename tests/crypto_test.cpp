// Crypto substrate tests: FIPS 180-4 vectors for SHA-256/512, RFC 4231
// vectors for HMAC, and RFC 8032 vectors for Ed25519.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace ipfs::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data(300, 'x');
  // Split the input at every possible point; digests must agree.
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    Sha256 ctx;
    ctx.update(std::string_view(data).substr(0, split));
    ctx.update(std::string_view(data).substr(split));
    EXPECT_EQ(ctx.finish(), sha256(data)) << "split=" << split;
  }
}

TEST(Sha256Test, ResetReusesContext) {
  Sha256 ctx;
  ctx.update("garbage");
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha512Test, EmptyInput) {
  EXPECT_EQ(to_hex(sha512("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(to_hex(sha512("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha512("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                    "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);  // longer than block size
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

Ed25519Seed seed_from_hex(std::string_view hex) {
  const auto bytes = from_hex(hex);
  Ed25519Seed seed;
  std::copy(bytes.begin(), bytes.end(), seed.begin());
  return seed;
}

struct Rfc8032Vector {
  std::string seed_hex;
  std::string public_hex;
  std::string message_hex;
  std::string signature_hex;
};

class Ed25519Rfc8032Test : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Ed25519Rfc8032Test, KeyDerivationSignAndVerify) {
  const auto& vec = GetParam();
  const auto kp = ed25519_keypair(seed_from_hex(vec.seed_hex));
  EXPECT_EQ(to_hex(kp.public_key), vec.public_hex);

  const auto message = from_hex(vec.message_hex);
  const auto sig = ed25519_sign(kp, message);
  EXPECT_EQ(to_hex(sig), vec.signature_hex);
  EXPECT_TRUE(ed25519_verify(kp.public_key, message, sig));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc8032Vectors, Ed25519Rfc8032Test,
    ::testing::Values(
        Rfc8032Vector{
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        Rfc8032Vector{
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        Rfc8032Vector{
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}));

TEST(Ed25519Test, RejectsTamperedMessage) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const auto message = bytes_of("original message");
  const auto sig = ed25519_sign(kp, message);
  auto tampered = message;
  tampered[0] ^= 1;
  EXPECT_TRUE(ed25519_verify(kp.public_key, message, sig));
  EXPECT_FALSE(ed25519_verify(kp.public_key, tampered, sig));
}

TEST(Ed25519Test, RejectsTamperedSignature) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  const auto message = bytes_of("hello ipfs");
  auto sig = ed25519_sign(kp, message);
  sig[10] ^= 0x40;
  EXPECT_FALSE(ed25519_verify(kp.public_key, message, sig));
}

TEST(Ed25519Test, RejectsWrongKey) {
  const auto kp1 = ed25519_keypair(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const auto kp2 = ed25519_keypair(seed_from_hex(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"));
  const auto message = bytes_of("key confusion");
  const auto sig = ed25519_sign(kp1, message);
  EXPECT_FALSE(ed25519_verify(kp2.public_key, message, sig));
}

TEST(Ed25519Test, RejectsNonCanonicalS) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const auto message = bytes_of("strict verification");
  auto sig = ed25519_sign(kp, message);
  // Force S into the non-canonical range by setting its top bits.
  sig[63] |= 0xf0;
  EXPECT_FALSE(ed25519_verify(kp.public_key, message, sig));
}

TEST(Ed25519Test, SignaturesAreDeterministic) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"));
  const auto message = bytes_of("same input, same signature");
  EXPECT_EQ(ed25519_sign(kp, message), ed25519_sign(kp, message));
}

TEST(HexTest, RoundTrip) {
  const auto bytes = from_hex("00ff10ab");
  EXPECT_EQ(to_hex(bytes), "00ff10ab");
  EXPECT_THROW(from_hex("0"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace ipfs::crypto
