#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/jsonl.h"
#include "stats/stats.h"

namespace ipfs::stats {
namespace {

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 90), 9.0);
}

TEST(PercentileTest, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

TEST(PercentileTest, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7}, 37), 7.0);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1}, 101), std::invalid_argument);
}

TEST(CdfTest, FractionAtValue) {
  const Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(CdfTest, CurveIsMonotonic) {
  const Cdf cdf({5, 1, 9, 2, 8, 3, 7, 4, 6});
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].value, curve[i].value);
    EXPECT_LT(curve[i - 1].cumulative_fraction, curve[i].cumulative_fraction);
  }
  EXPECT_DOUBLE_EQ(curve.back().cumulative_fraction, 1.0);
}

TEST(CdfTest, EmptyDistributionDegradesToZero) {
  // Empty distributions are routine (a bench phase with zero failures
  // still asks for p50); only the free-function percentile() throws.
  const Cdf cdf({});
  EXPECT_EQ(cdf.sample_count(), 0u);
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to first bin
  h.add(42.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_low(9), 9.0);
}

TEST(HistogramTest, NanIsCountedAsideAndInfinitiesClampToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.total(), 0u);  // NaN lands in no bin
  for (std::size_t bin = 0; bin < h.bins(); ++bin)
    EXPECT_EQ(h.count(bin), 0u);

  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_count(), 1u);
}

TEST(HistogramTest, RejectsDegenerateRanges) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"Region", "p50"});
  table.add_row({"eu_central_1", "1.81 s"});
  table.add_row({"us_west_1", "2.48 s"});
  const auto text = table.render();
  EXPECT_NE(text.find("Region"), std::string::npos);
  EXPECT_NE(text.find("eu_central_1"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(FormatTest, HumanReadableUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0 us");
  EXPECT_EQ(format_seconds(0.012), "12 ms");
  EXPECT_EQ(format_seconds(33.8), "33.80 s");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KB");
  EXPECT_EQ(format_bytes(0.5 * 1024 * 1024), "512.0 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.5 MB");
  EXPECT_EQ(format_percent(0.285), "28.5 %");
}

// --------------------------------------------------------------------------
// Trial folding. The parallel bench runner hands trials back in whatever
// order threads finish; fold_trials / fold_trials_jsonl must erase that
// order so multi-threaded runs export byte-identical results.
// --------------------------------------------------------------------------

TEST(FoldTrialsTest, OrderOfCompletionDoesNotMatter) {
  const std::vector<TrialSamples> forward = {
      {1, {1.0, 2.0}}, {2, {3.0}}, {3, {4.0, 5.0}}};
  const std::vector<TrialSamples> shuffled = {
      {3, {4.0, 5.0}}, {1, {1.0, 2.0}}, {2, {3.0}}};
  const auto a = fold_trials(forward);
  const auto b = fold_trials(shuffled);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(FoldTrialsTest, DuplicateSeedsKeepInputOrder) {
  // Stable sort: two trials with the same seed fold in the order given.
  const std::vector<TrialSamples> trials = {
      {7, {1.0}}, {7, {2.0}}, {3, {0.5}}};
  EXPECT_EQ(fold_trials(trials), (std::vector<double>{0.5, 1.0, 2.0}));
}

TEST(FoldTrialsJsonlTest, OrderOfCompletionDoesNotMatter) {
  const std::vector<TrialJsonl> forward = {
      {10, "{\"v\":1}\n"}, {20, "{\"v\":2}"}};  // note: missing newline
  const std::vector<TrialJsonl> shuffled = {
      {20, "{\"v\":2}"}, {10, "{\"v\":1}\n"}};
  const auto a = fold_trials_jsonl(forward);
  const auto b = fold_trials_jsonl(shuffled);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a,
            "{\"type\":\"trial\",\"seed\":10}\n{\"v\":1}\n"
            "{\"type\":\"trial\",\"seed\":20}\n{\"v\":2}\n");
}

}  // namespace
}  // namespace ipfs::stats
