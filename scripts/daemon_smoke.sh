#!/usr/bin/env bash
# Three-process ipfsd smoke (ISSUE 8 satellite; CI job daemon-smoke):
# node 0 is the bootstrap DHT server, node 1 publishes a string, node 2
# derives the same root CID locally and retrieves it through DHT provider
# resolution + Bitswap — all over real UDP sockets on loopback.
#
# Leg 2 (ISSUE 9 satellite) reruns the cluster with the publisher on a
# persistent store (--store-dir): publish, kill -9 mid-serve, relaunch
# from the same directory WITHOUT --publish, and a fresh fetcher must
# still retrieve the content — served from the log-structured store the
# restart recovered (the "restored N blocks" line is asserted).
#
# Usage: scripts/daemon_smoke.sh [path-to-ipfsd] [artifact-dir]
set -euo pipefail

IPFSD="${1:-build/examples/ipfsd}"
OUT="${2:-daemon-smoke-artifacts}"
CONTENT="hello interplanetary world"
SERVE_MS=15000
BASE_PORT=${DAEMON_SMOKE_BASE_PORT:-9400}

if [[ ! -x "$IPFSD" ]]; then
  echo "daemon_smoke: $IPFSD not found or not executable" >&2
  exit 1
fi
mkdir -p "$OUT"

P0=$BASE_PORT; P1=$((BASE_PORT + 1)); P2=$((BASE_PORT + 2))

"$IPFSD" --index 0 --port "$P0" --peer "1:$P1" --peer "2:$P2" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node0.jsonl" \
  >"$OUT/node0.log" 2>&1 &
PID0=$!
sleep 0.3

"$IPFSD" --index 1 --port "$P1" --peer "0:$P0" --peer "2:$P2" \
  --bootstrap 0 --publish "$CONTENT" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node1.jsonl" \
  >"$OUT/node1.log" 2>&1 &
PID1=$!
sleep 0.3

# The fetcher runs in the foreground; its exit code is the verdict.
set +e
"$IPFSD" --index 2 --port "$P2" --peer "0:$P0" --peer "1:$P1" \
  --bootstrap 0 --fetch "$CONTENT" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node2.jsonl" \
  >"$OUT/node2.log" 2>&1
FETCH_RC=$?
wait "$PID0"; RC0=$?
wait "$PID1"; RC1=$?
set -e

echo "--- node0 ---"; cat "$OUT/node0.log"
echo "--- node1 ---"; cat "$OUT/node1.log"
echo "--- node2 ---"; cat "$OUT/node2.log"

if [[ $FETCH_RC -ne 0 || $RC0 -ne 0 || $RC1 -ne 0 ]]; then
  echo "daemon_smoke: FAIL (server=$RC0 publisher=$RC1 fetcher=$FETCH_RC)" >&2
  exit 1
fi

# The fetch must have crossed the wire: both sides' transport counters
# moved (transport.tx/rx.*, docs/OBSERVABILITY.md).
for node in node1 node2; do
  if ! grep -q '"name":"transport.rx.messages","value":[1-9]' "$OUT/$node.jsonl"; then
    echo "daemon_smoke: FAIL ($node received no transport messages)" >&2
    exit 1
  fi
done
if ! grep -q '"ok":true' "$OUT/node2.jsonl"; then
  echo "daemon_smoke: FAIL (fetcher summary not ok)" >&2
  exit 1
fi

echo "daemon_smoke: leg 1 OK"

# --- Leg 2: kill -9 the publisher, restart from its --store-dir ----------
Q0=$((BASE_PORT + 10)); Q1=$((BASE_PORT + 11)); Q2=$((BASE_PORT + 12))
STORE="$OUT/store1"
rm -rf "$STORE"
LEG2_SERVE_MS=25000

"$IPFSD" --index 0 --port "$Q0" --peer "1:$Q1" --peer "2:$Q2" \
  --serve-ms "$LEG2_SERVE_MS" \
  >"$OUT/node0b.log" 2>&1 &
QID0=$!
sleep 0.3

"$IPFSD" --index 1 --port "$Q1" --peer "0:$Q0" --peer "2:$Q2" \
  --bootstrap 0 --publish "$CONTENT" --store-dir "$STORE" \
  --serve-ms "$LEG2_SERVE_MS" \
  >"$OUT/node1b.log" 2>&1 &
QID1=$!

# Wait for the publish to be acked (add() flushes the store before the
# trace fires), then simulate power loss.
for _ in $(seq 1 100); do
  grep -q "published" "$OUT/node1b.log" && break
  sleep 0.1
done
if ! grep -q "published" "$OUT/node1b.log"; then
  echo "daemon_smoke: FAIL (leg 2 publisher never published)" >&2
  kill "$QID0" "$QID1" 2>/dev/null || true
  exit 1
fi
kill -9 "$QID1" 2>/dev/null || true
set +e; wait "$QID1" 2>/dev/null; set -e

# Relaunch from the same store directory — no --publish: the blocks must
# come back from the recovered log, and the provider record node 0 still
# holds points the fetcher here.
"$IPFSD" --index 1 --port "$Q1" --peer "0:$Q0" --peer "2:$Q2" \
  --bootstrap 0 --store-dir "$STORE" \
  --serve-ms 15000 \
  >"$OUT/node1c.log" 2>&1 &
QID1=$!
sleep 0.3

set +e
"$IPFSD" --index 2 --port "$Q2" --peer "0:$Q0" --peer "1:$Q1" \
  --bootstrap 0 --fetch "$CONTENT" \
  --serve-ms 15000 --metrics "$OUT/node2b.jsonl" \
  >"$OUT/node2b.log" 2>&1
FETCH2_RC=$?
kill "$QID0" "$QID1" 2>/dev/null
wait "$QID0" "$QID1" 2>/dev/null
set -e

echo "--- node1b (publisher, killed) ---"; cat "$OUT/node1b.log"
echo "--- node1c (restarted) ---"; cat "$OUT/node1c.log"
echo "--- node2b (fetcher) ---"; cat "$OUT/node2b.log"

if [[ $FETCH2_RC -ne 0 ]]; then
  echo "daemon_smoke: FAIL (leg 2 fetch after publisher restart rc=$FETCH2_RC)" >&2
  exit 1
fi
if ! grep -Eq 'restored [1-9][0-9]* blocks' "$OUT/node1c.log"; then
  echo "daemon_smoke: FAIL (restarted publisher recovered no blocks)" >&2
  exit 1
fi
if ! grep -q '"ok":true' "$OUT/node2b.jsonl"; then
  echo "daemon_smoke: FAIL (leg 2 fetcher summary not ok)" >&2
  exit 1
fi

echo "daemon_smoke: OK"
