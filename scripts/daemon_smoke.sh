#!/usr/bin/env bash
# Three-process ipfsd smoke (ISSUE 8 satellite; CI job daemon-smoke):
# node 0 is the bootstrap DHT server, node 1 publishes a string, node 2
# derives the same root CID locally and retrieves it through DHT provider
# resolution + Bitswap — all over real UDP sockets on loopback.
#
# Usage: scripts/daemon_smoke.sh [path-to-ipfsd] [artifact-dir]
set -euo pipefail

IPFSD="${1:-build/examples/ipfsd}"
OUT="${2:-daemon-smoke-artifacts}"
CONTENT="hello interplanetary world"
SERVE_MS=15000
BASE_PORT=${DAEMON_SMOKE_BASE_PORT:-9400}

if [[ ! -x "$IPFSD" ]]; then
  echo "daemon_smoke: $IPFSD not found or not executable" >&2
  exit 1
fi
mkdir -p "$OUT"

P0=$BASE_PORT; P1=$((BASE_PORT + 1)); P2=$((BASE_PORT + 2))

"$IPFSD" --index 0 --port "$P0" --peer "1:$P1" --peer "2:$P2" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node0.jsonl" \
  >"$OUT/node0.log" 2>&1 &
PID0=$!
sleep 0.3

"$IPFSD" --index 1 --port "$P1" --peer "0:$P0" --peer "2:$P2" \
  --bootstrap 0 --publish "$CONTENT" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node1.jsonl" \
  >"$OUT/node1.log" 2>&1 &
PID1=$!
sleep 0.3

# The fetcher runs in the foreground; its exit code is the verdict.
set +e
"$IPFSD" --index 2 --port "$P2" --peer "0:$P0" --peer "1:$P1" \
  --bootstrap 0 --fetch "$CONTENT" \
  --serve-ms "$SERVE_MS" --metrics "$OUT/node2.jsonl" \
  >"$OUT/node2.log" 2>&1
FETCH_RC=$?
wait "$PID0"; RC0=$?
wait "$PID1"; RC1=$?
set -e

echo "--- node0 ---"; cat "$OUT/node0.log"
echo "--- node1 ---"; cat "$OUT/node1.log"
echo "--- node2 ---"; cat "$OUT/node2.log"

if [[ $FETCH_RC -ne 0 || $RC0 -ne 0 || $RC1 -ne 0 ]]; then
  echo "daemon_smoke: FAIL (server=$RC0 publisher=$RC1 fetcher=$FETCH_RC)" >&2
  exit 1
fi

# The fetch must have crossed the wire: both sides' transport counters
# moved (transport.tx/rx.*, docs/OBSERVABILITY.md).
for node in node1 node2; do
  if ! grep -q '"name":"transport.rx.messages","value":[1-9]' "$OUT/$node.jsonl"; then
    echo "daemon_smoke: FAIL ($node received no transport messages)" >&2
    exit 1
  fi
done
if ! grep -q '"ok":true' "$OUT/node2.jsonl"; then
  echo "daemon_smoke: FAIL (fetcher summary not ok)" >&2
  exit 1
fi

echo "daemon_smoke: OK"
