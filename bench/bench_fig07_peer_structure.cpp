// Figure 7: (a) reliable (>90 % uptime) peers by country, (b) never-
// reachable peers by country, (c) CDF of PeerIDs per IP address, and
// (d) IPs across ASes by rank — all recovered from crawls plus an uptime
// probing window. Trials shard across cores (IPFS_BENCH_TRIALS); each
// trial renders its sections deterministically and the headline shares
// fold in seed order.
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "crawler/census.h"
#include "crawler/uptime_prober.h"
#include "perf_common.h"

using namespace ipfs;

namespace {

struct StructureTrial {
  std::string rendered;
  double reliable_share = 0;
  double unreachable_share = 0;
  double single_ip_share = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: reliable/unreachable peers, PeerIDs per IP, AS spread",
      "(a) ~1.4 % reliable, max country ~0.3 %; (b) ~1/3 never reachable; "
      "(c) 92.3 % of IPs host one PeerID; (d) top-10 ASes 64.9 % of IPs");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(2000, 400));
  const std::size_t trials = bench::bench_trials(1);

  const auto results = bench::run_trials(
      trials, bench::run_seed(), [&](std::uint64_t seed) {
        const auto world = bench::scenario_builder(peers, seed).build_world();
        const auto crawl = bench::crawl_world(*world);
        StructureTrial trial;
        std::ostringstream out;
        char line[160];

        // Probe every crawled peer across a measurement window.
        const sim::NodeId prober_node = world->network().add_node(
            sim::NodeConfig()
                .with_region(world::kEuCentral)
                .with_bandwidth(100.0 * 1024 * 1024, 100.0 * 1024 * 1024));
        crawler::UptimeProber prober(world->network(), prober_node);
        for (const auto& obs : crawl.observations) prober.track(obs.peer);

        const sim::Time window_start = world->simulator().now();
        const sim::Duration window = sim::hours(bench::scaled(24, 2));
        world->simulator().run_until(window_start + window);
        prober.finish();
        const sim::Time window_end = world->simulator().now();

        // --- (a) reliable peers --------------------------------------
        const auto reliable = crawler::reliable_peers(
            crawl, prober.sessions(), window_start, window_end, 0.9);
        trial.reliable_share = static_cast<double>(reliable.size()) /
                               static_cast<double>(crawl.total());
        std::snprintf(line, sizeof(line),
                      "\n(a) reliable peers (>90%% uptime over a %s window): "
                      "%zu of %zu (%.1f%%)\n    (the paper's 1.4%% is over "
                      "an ~8-week window; shares shrink as the window "
                      "grows)\n",
                      stats::format_seconds(sim::to_seconds(window)).c_str(),
                      reliable.size(), crawl.total(),
                      100.0 * trial.reliable_share);
        out << line;
        for (const auto& share :
             crawler::country_distribution_of(reliable, world->geodb())) {
          std::snprintf(line, sizeof(line),
                        "    %-8s %6zu  (%.2f%% of reliable peers)\n",
                        share.code.c_str(), share.count, share.share * 100.0);
          out << line;
        }

        // --- (b) never-reachable peers -------------------------------
        std::set<std::vector<std::uint8_t>> ever_online;
        for (const auto& session : prober.sessions())
          ever_online.insert(session.peer.id.encode());
        std::vector<crawler::PeerObservation> unreachable;
        for (const auto& obs : crawl.observations)
          if (!ever_online.contains(obs.peer.id.encode()))
            unreachable.push_back(obs);
        trial.unreachable_share = static_cast<double>(unreachable.size()) /
                                  static_cast<double>(crawl.total());
        std::snprintf(line, sizeof(line),
                      "\n(b) never-reachable peers: %zu of %zu "
                      "(%.1f%%; paper ~33%%)\n",
                      unreachable.size(), crawl.total(),
                      100.0 * trial.unreachable_share);
        out << line;
        int shown = 0;
        for (const auto& share : crawler::country_distribution_of(
                 unreachable, world->geodb())) {
          std::snprintf(line, sizeof(line), "    %-8s %6zu  (%.1f%%)\n",
                        share.code.c_str(), share.count, share.share * 100.0);
          out << line;
          if (++shown >= 8) break;
        }

        // --- (c) PeerIDs per IP --------------------------------------
        const auto per_ip = crawler::peers_per_ip(crawl);
        std::size_t singles = 0;
        for (const auto count : per_ip)
          if (count == 1) ++singles;
        trial.single_ip_share = static_cast<double>(singles) /
                                static_cast<double>(per_ip.size());
        std::snprintf(line, sizeof(line),
                      "\n(c) PeerIDs per IP: %zu IPs, %.1f%% host exactly "
                      "one (paper 92.3%%)\n",
                      per_ip.size(), 100.0 * trial.single_ip_share);
        out << line;
        out << "    heaviest IPs host: ";
        for (std::size_t i = 0; i < 5 && i < per_ip.size(); ++i) {
          std::snprintf(line, sizeof(line), "%zu ", per_ip[i]);
          out << line;
        }
        out << "PeerIDs\n";

        // --- (d) IPs across ASes -------------------------------------
        const auto ases = crawler::as_distribution(crawl, world->geodb());
        double top10 = 0, top100 = 0;
        for (std::size_t i = 0; i < ases.size(); ++i) {
          if (i < 10) top10 += ases[i].share;
          if (i < 100) top100 += ases[i].share;
        }
        std::snprintf(line, sizeof(line),
                      "\n(d) AS distribution: %zu ASes seen\n"
                      "    top-10 ASes hold %.1f%% of IPs (paper 64.9%%)\n"
                      "    top-100 ASes hold %.1f%% of IPs (paper 90.6%%)\n",
                      ases.size(), top10 * 100.0, top100 * 100.0);
        out << line;

        trial.rendered = out.str();
        return trial;
      });

  std::printf("%s", results[0].result.rendered.c_str());

  if (trials > 1) {
    double reliable = 0, unreachable = 0, single_ip = 0;
    for (const auto& trial : results) {
      reliable += trial.result.reliable_share;
      unreachable += trial.result.unreachable_share;
      single_ip += trial.result.single_ip_share;
    }
    const double n = static_cast<double>(trials);
    std::printf("\nfolded over %zu trials: reliable %.1f%%, never-reachable "
                "%.1f%%, single-PeerID IPs %.1f%%\n",
                trials, 100.0 * reliable / n, 100.0 * unreachable / n,
                100.0 * single_ip / n);
  }
  return 0;
}
