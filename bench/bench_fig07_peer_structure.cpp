// Figure 7: (a) reliable (>90 % uptime) peers by country, (b) never-
// reachable peers by country, (c) CDF of PeerIDs per IP address, and
// (d) IPs across ASes by rank — all recovered from crawls plus an uptime
// probing window.
#include <cstdio>
#include <set>

#include "common.h"
#include "crawler/census.h"
#include "crawler/uptime_prober.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 7: reliable/unreachable peers, PeerIDs per IP, AS spread",
      "(a) ~1.4 % reliable, max country ~0.3 %; (b) ~1/3 never reachable; "
      "(c) 92.3 % of IPs host one PeerID; (d) top-10 ASes 64.9 % of IPs");

  world::World world(bench::default_world_config(bench::scaled(2000, 400)));
  const auto crawl = bench::crawl_world(world);

  // Probe every crawled peer across a measurement window.
  sim::NodeConfig prober_config;
  prober_config.region = world::kEuCentral;
  prober_config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  prober_config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  const sim::NodeId prober_node = world.network().add_node(prober_config);
  crawler::UptimeProber prober(world.network(), prober_node);
  for (const auto& obs : crawl.observations) prober.track(obs.peer);

  const sim::Time window_start = world.simulator().now();
  const sim::Duration window = sim::hours(bench::scaled(24, 2));
  world.simulator().run_until(window_start + window);
  prober.finish();
  const sim::Time window_end = world.simulator().now();

  // --- (a) reliable peers ---------------------------------------------------
  const auto reliable = crawler::reliable_peers(
      crawl, prober.sessions(), window_start, window_end, 0.9);
  std::printf("\n(a) reliable peers (>90%% uptime over a %s window): "
              "%zu of %zu (%.1f%%)\n    (the paper's 1.4%% is over an "
              "~8-week window; shares shrink as the window grows)\n",
              stats::format_seconds(sim::to_seconds(window)).c_str(),
              reliable.size(), crawl.total(),
              100.0 * static_cast<double>(reliable.size()) /
                  static_cast<double>(crawl.total()));
  for (const auto& share :
       crawler::country_distribution_of(reliable, world.geodb())) {
    std::printf("    %-8s %6zu  (%.2f%% of reliable peers)\n",
                share.code.c_str(), share.count, share.share * 100.0);
  }

  // --- (b) never-reachable peers --------------------------------------------
  std::set<std::vector<std::uint8_t>> ever_online;
  for (const auto& session : prober.sessions())
    ever_online.insert(session.peer.id.encode());
  std::vector<crawler::PeerObservation> unreachable;
  for (const auto& obs : crawl.observations)
    if (!ever_online.contains(obs.peer.id.encode())) unreachable.push_back(obs);
  std::printf("\n(b) never-reachable peers: %zu of %zu (%.1f%%; paper ~33%%)\n",
              unreachable.size(), crawl.total(),
              100.0 * static_cast<double>(unreachable.size()) /
                  static_cast<double>(crawl.total()));
  int shown = 0;
  for (const auto& share :
       crawler::country_distribution_of(unreachable, world.geodb())) {
    std::printf("    %-8s %6zu  (%.1f%%)\n", share.code.c_str(), share.count,
                share.share * 100.0);
    if (++shown >= 8) break;
  }

  // --- (c) PeerIDs per IP ----------------------------------------------------
  const auto per_ip = crawler::peers_per_ip(crawl);
  std::size_t singles = 0;
  for (const auto count : per_ip)
    if (count == 1) ++singles;
  std::printf("\n(c) PeerIDs per IP: %zu IPs, %.1f%% host exactly one "
              "(paper 92.3%%)\n",
              per_ip.size(),
              100.0 * static_cast<double>(singles) /
                  static_cast<double>(per_ip.size()));
  std::printf("    heaviest IPs host: ");
  for (std::size_t i = 0; i < 5 && i < per_ip.size(); ++i)
    std::printf("%zu ", per_ip[i]);
  std::printf("PeerIDs\n");

  // --- (d) IPs across ASes ----------------------------------------------------
  const auto ases = crawler::as_distribution(crawl, world.geodb());
  double top10 = 0, top100 = 0;
  for (std::size_t i = 0; i < ases.size(); ++i) {
    if (i < 10) top10 += ases[i].share;
    if (i < 100) top100 += ases[i].share;
  }
  std::printf("\n(d) AS distribution: %zu ASes seen\n", ases.size());
  std::printf("    top-10 ASes hold %.1f%% of IPs (paper 64.9%%)\n",
              top10 * 100.0);
  std::printf("    top-100 ASes hold %.1f%% of IPs (paper 90.6%%)\n",
              top100 * 100.0);
  return 0;
}
