// Figure 10: retrieval stretch (IPFS retrieval time vs estimated HTTPS
// time, Equation 2), (a) with and (b) without the initial Bitswap
// timeout.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

namespace {

void print_stretch_block(
    const char* title,
    const std::map<std::string, std::vector<double>>& by_region) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-16s %6s %8s %8s %8s %12s\n", "region", "n", "p50", "p80",
              "p95", "frac < 2");
  for (const auto& [region, samples] : by_region) {
    if (samples.empty()) continue;
    const stats::Cdf cdf(samples);
    std::printf("%-16s %6zu %8.2f %8.2f %8.2f %11.1f%%\n", region.c_str(),
                samples.size(), cdf.percentile(50), cdf.percentile(80),
                cdf.percentile(95), cdf.at(2.0) * 100.0);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 10: retrieval stretch vs HTTPS, with/without Bitswap delay",
      "(a) majority of retrievals stretch >= 4 (median ~4.3); (b) without "
      "the 1 s Bitswap window, eu_central_1 reaches stretch < 2 for 80 %");

  auto run = bench::run_perf_experiment(bench::scaled(1500, 300),
                                        bench::scaled(30, 6));
  const auto& results = run.experiment->results();

  std::map<std::string, std::vector<double>> with_bitswap, without_bitswap;
  std::vector<double> all_with;
  for (const auto& [region, traces] : results.retrievals) {
    for (const auto& trace : traces) {
      if (!trace.ok) continue;
      with_bitswap[region].push_back(trace.stretch());
      without_bitswap[region].push_back(trace.stretch_without_bitswap());
      all_with.push_back(trace.stretch());
    }
  }

  print_stretch_block("(a) stretch including the Bitswap timeout",
                      with_bitswap);
  print_stretch_block("(b) stretch excluding the Bitswap timeout",
                      without_bitswap);

  // Where the stretch comes from: per-phase duration histograms straight
  // from the metrics registry (every span feeds the histogram of its
  // name). The Bitswap window dominates panel (a) vs (b).
  std::printf("\n--- phase durations (registry histograms) ---\n");
  std::printf("%-28s %6s %10s %10s\n", "span", "n", "p50", "p95");
  const auto& registry = run.world->network().metrics();
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!name.starts_with("retrieve.")) continue;
    if (histogram.count() == 0) continue;
    const stats::Cdf cdf(histogram.samples_seconds());
    std::printf("%-28s %6zu %10s %10s\n", name.c_str(), histogram.count(),
                bench::secs(cdf.percentile(50)).c_str(),
                bench::secs(cdf.percentile(95)).c_str());
  }

  if (!all_with.empty()) {
    std::printf("\noverall median stretch: %.2f (paper ~4.3)\n",
                stats::percentile(all_with, 50));
  }
  const auto eu = without_bitswap.find("eu_central_1");
  if (eu != without_bitswap.end() && !eu->second.empty()) {
    std::printf("eu_central_1 without Bitswap delay, stretch < 2: %.1f%% "
                "(paper ~80%%)\n",
                stats::Cdf(eu->second).at(2.0) * 100.0);
  }
  return 0;
}
