// Ablation: provider-discovery TTFB — the DHT walk vs delegated network
// indexers vs a first-success race of both (docs/ROUTING.md).
//
// The paper's Figure 10 shows retrieval latency dominated by the
// iterative DHT walk. Delegated routing replaces that walk with a
// single round trip to a network indexer that already holds pushed
// provider advertisements (the InterPlanetary Network Indexer design);
// the race composition launches both and takes the first success, so
// indexer downtime can never make retrieval worse than DHT-only. This
// bench measures time-to-first-byte (retrieval total minus the content
// transfer itself) against the same 10k-peer churning world:
//
//   dht       provider discovery via the iterative DHT walk only
//   indexer   delegated one-RTT indexer query only
//   race      both in parallel, first provider wins, loser cancelled
//
// A degradation phase then crashes every indexer and re-runs the dht
// and race arms: the race must succeed at least as often as DHT-only.
//
// Acceptance gates: indexer and race median TTFB at least 3x below the
// DHT-only median; degraded-race successes >= DHT-only successes. A
// reduced-scale determinism probe additionally replays a racing
// workload under both scheduler backends and requires byte-identical
// trace streams. Any failure exits non-zero.
//
// Writes a JSONL artifact (one sample per line) for plotting; path
// overridable via IPFS_BENCH_ARTIFACT.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "indexer/indexer.h"
#include "node/ipfs_node.h"
#include "routing/router.h"
#include "stats/jsonl.h"
#include "stats/stats.h"

using namespace ipfs;

namespace {

// Replays a reduced-scale race workload (DHT walk vs indexer query,
// loser cancelled) under the timer-wheel and the legacy binary-heap
// scheduler and compares the full exported trace streams byte-for-byte.
bool backend_determinism_probe(std::uint64_t seed) {
  std::string dumps[2];
  const sim::SchedulerBackend backends[2] = {
      sim::SchedulerBackend::kTimerWheel, sim::SchedulerBackend::kBinaryHeap};
  for (int b = 0; b < 2; ++b) {
    auto swarm = scenario::ScenarioBuilder()
                     .peers(24)
                     .seed(seed)
                     .single_region(25.0)
                     .scheduler(backends[b])
                     .trace_capacity(200'000)
                     .dht_servers(true)
                     .indexers(2)
                     .indexer_config(indexer::IndexerConfig().with_ingest_lag(
                         sim::seconds(1)))
                     .routing(routing::RoutingConfig::Mode::kRace)
                     .build();
    const dht::Key key =
        dht::Key::hash_of(std::vector<std::uint8_t>{0xDE, 0x1E});
    swarm.dht(0).provide(key, [](dht::DhtNode::ProvideResult) {});
    swarm.simulator().run();
    routing::advertise_to_indexers(swarm.dht(0).transport(),
                                   swarm.routing_config(), key, swarm.ref(0));
    swarm.simulator().run_until(swarm.simulator().now() + sim::seconds(5));

    std::vector<std::unique_ptr<routing::RaceRouter>> routers;
    for (const std::size_t i : {3u, 9u, 15u}) {
      routers.push_back(std::make_unique<routing::RaceRouter>(
          swarm.dht(i).transport(), swarm.dht(i), swarm.routing_config()));
      routers.back()->find_providers(key, [](routing::FindResult) {}, 0);
    }
    swarm.simulator().run();
    std::ostringstream dump;
    stats::export_registry_jsonl(swarm.network().metrics(), dump);
    dumps[b] = dump.str();
  }
  return !dumps[0].empty() && dumps[0] == dumps[1];
}

// One measurement arm: per-round TTFB samples plus the winning-source
// split (which path actually resolved the provider).
struct ArmResult {
  std::vector<double> ttfb;
  int failures = 0;
  std::size_t via_dht = 0;
  std::size_t via_indexer = 0;
  std::size_t via_none = 0;

  void record(const node::RetrievalTrace& trace, sim::Time start,
              sim::Time end) {
    if (!trace.ok) {
      ++failures;
      return;
    }
    ttfb.push_back(sim::to_seconds((end - start) - trace.fetch));
    switch (trace.routing_source) {
      case routing::Source::kDht: ++via_dht; break;
      case routing::Source::kIndexer: ++via_indexer; break;
      case routing::Source::kNone: ++via_none; break;
    }
  }
};

void print_arm_row(const char* label, const ArmResult& arm) {
  if (arm.ttfb.empty()) {
    std::printf("%-14s %10s (no successful samples, %d failures)\n", label,
                "-", arm.failures);
    return;
  }
  const stats::Cdf cdf(arm.ttfb);
  std::printf("%-14s %6zu %10.4f %10.4f %10.4f %6d   dht=%zu ix=%zu none=%zu\n",
              label, arm.ttfb.size(), cdf.percentile(50), cdf.percentile(90),
              cdf.percentile(99), arm.failures, arm.via_dht, arm.via_indexer,
              arm.via_none);
}

void dump_series(std::ofstream& out, const char* series, std::size_t peers,
                 const ArmResult& arm) {
  for (const double v : arm.ttfb)
    out << "{\"bench\":\"ablation_indexer\",\"series\":\"" << series
        << "\",\"peers\":" << peers << ",\"ttfb_s\":" << v << "}\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: provider-discovery TTFB — DHT walk vs network indexers",
      "Figure 10: retrieval latency is dominated by the iterative DHT "
      "walk; delegated routing answers in one round trip");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(10000, 400));
  const std::size_t indexer_count = 3;
  const int rounds = static_cast<int>(bench::scaled(10, 4));

  const auto world_ptr = bench::scenario_builder(peers)
                             .indexers(indexer_count)
                             .build_world();
  world::World& world = *world_ptr;
  sim::Simulator& simulator = world.simulator();

  // The measurement endpoints live outside the world's churn process.
  // The publisher's routing config carries the indexer list so provide()
  // pushes advertisements alongside the DHT provider records.
  node::IpfsNodeConfig publisher_config;
  publisher_config.net.region = world::kEuCentral;
  publisher_config.identity_seed = 0x1D50;
  publisher_config.routing =
      world.routing_config(routing::RoutingConfig::Mode::kDht);
  node::IpfsNode publisher(world.network(), publisher_config);

  const auto make_fetchers = [&](routing::RoutingConfig::Mode mode,
                                 std::uint64_t seed_base) {
    std::vector<std::unique_ptr<node::IpfsNode>> fetchers;
    for (std::size_t i = 0; i < 2; ++i) {
      node::IpfsNodeConfig config;
      config.net.region = (i % 2) == 0 ? world::kEuCentral : world::kUsEast;
      config.identity_seed = seed_base + i;
      // The 1 s opportunistic Bitswap window must not floor the fast
      // arm: run provider discovery in parallel with it.
      config.parallel_dht_lookup = true;
      config.provide_after_fetch = false;
      config.routing = world.routing_config(mode);
      fetchers.push_back(
          std::make_unique<node::IpfsNode>(world.network(), config));
    }
    return fetchers;
  };
  auto dht_fetchers = make_fetchers(routing::RoutingConfig::Mode::kDht, 0xD0);
  auto indexer_fetchers =
      make_fetchers(routing::RoutingConfig::Mode::kIndexer, 0x1D0);
  auto race_fetchers =
      make_fetchers(routing::RoutingConfig::Mode::kRace, 0x2C0);

  publisher.bootstrap(world.bootstrap_refs(), [](bool) {});
  for (auto* arm : {&dht_fetchers, &indexer_fetchers, &race_fetchers})
    for (const auto& fetcher : *arm)
      fetcher->bootstrap(world.bootstrap_refs(), [](bool) {});
  simulator.run();

  // Runs one arm: each round publishes a fresh object (DHT provider
  // records + indexer advertisements), waits out the ingest lag, then
  // each fetcher retrieves it cold (connections dropped so the Bitswap
  // phase cannot shortcut provider discovery).
  std::uint8_t object_tag = 1;
  const auto run_arm =
      [&](std::vector<std::unique_ptr<node::IpfsNode>>& fetchers,
          int arm_rounds) {
        ArmResult arm;
        for (int round = 0; round < arm_rounds; ++round) {
          simulator.run_until(simulator.now() + sim::minutes(2));
          std::vector<std::uint8_t> content(64 * 1024, object_tag++);
          const auto cid = publisher.add(content).root;
          bool published = false;
          publisher.provide(
              cid, [&](node::PublishTrace t) { published = t.ok; });
          simulator.run();
          if (!published) continue;
          // Let the pushed advertisements clear the indexer ingest lag
          // (30 s by default) — the steady state the paper-facing
          // comparison is about.
          simulator.run_until(simulator.now() + sim::seconds(45));

          for (const auto& fetcher : fetchers) {
            fetcher->reset_for_next_measurement();
            const sim::Time start = simulator.now();
            sim::Time end = start;
            node::RetrievalTrace trace;
            bool done = false;
            fetcher->retrieve(cid, [&](node::RetrievalTrace t) {
              end = simulator.now();
              trace = t;
              done = true;
            });
            simulator.run();
            if (!done) trace.ok = false;
            arm.record(trace, start, end);
          }
        }
        return arm;
      };

  const ArmResult dht_arm = run_arm(dht_fetchers, rounds);
  const ArmResult indexer_arm = run_arm(indexer_fetchers, rounds);
  const ArmResult race_arm = run_arm(race_fetchers, rounds);

  // ---- Degradation phase: every indexer down ------------------------------
  for (std::size_t i = 0; i < world.indexer_count(); ++i) {
    world.network().set_online(world.indexer(i).node(), false);
    world.indexer(i).handle_crash();
  }
  const ArmResult degraded_dht_arm = run_arm(dht_fetchers, rounds);
  const ArmResult degraded_race_arm = run_arm(race_fetchers, rounds);

  // ---- Report -------------------------------------------------------------
  std::printf("world: %zu churning peers, %zu indexers, %d rounds/arm, "
              "2 fetchers/arm\n\n",
              peers, indexer_count, rounds);
  std::printf("%-14s %6s %10s %10s %10s %6s   %s\n", "ttfb (seconds)", "n",
              "p50", "p90", "p99", "fail", "winning source");
  print_arm_row("dht", dht_arm);
  print_arm_row("indexer", indexer_arm);
  print_arm_row("race", race_arm);
  print_arm_row("degraded_dht", degraded_dht_arm);
  print_arm_row("degraded_race", degraded_race_arm);

  const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
  const std::string artifact_path =
      artifact_env != nullptr && artifact_env[0] != '\0'
          ? artifact_env
          : "bench_ablation_indexer.jsonl";
  std::ofstream artifact(artifact_path, std::ios::trunc);
  dump_series(artifact, "dht", peers, dht_arm);
  dump_series(artifact, "indexer", peers, indexer_arm);
  dump_series(artifact, "race", peers, race_arm);
  dump_series(artifact, "degraded_dht", peers, degraded_dht_arm);
  dump_series(artifact, "degraded_race", peers, degraded_race_arm);

  bool pass = true;
  if (dht_arm.ttfb.empty() || indexer_arm.ttfb.empty() ||
      race_arm.ttfb.empty()) {
    std::printf("\nFAIL: an arm produced no successful retrievals\n");
    pass = false;
  } else {
    const double median_dht = stats::Cdf(dht_arm.ttfb).percentile(50);
    const double median_indexer =
        stats::Cdf(indexer_arm.ttfb).percentile(50);
    const double median_race = stats::Cdf(race_arm.ttfb).percentile(50);
    std::printf("\nmedian ttfb dht=%.4fs indexer=%.4fs race=%.4fs\n",
                median_dht, median_indexer, median_race);
    artifact << "{\"bench\":\"ablation_indexer\",\"series\":\"summary\","
             << "\"peers\":" << peers << ",\"median_dht_s\":" << median_dht
             << ",\"median_indexer_s\":" << median_indexer
             << ",\"median_race_s\":" << median_race
             << ",\"degraded_race_ok\":" << degraded_race_arm.ttfb.size()
             << ",\"degraded_dht_ok\":" << degraded_dht_arm.ttfb.size()
             << "}\n";
    // The 3x separation is a full-scale claim: at 10k peers the DHT
    // walk costs seconds while the delegated query stays one round
    // trip. In the small CI smoke world the walk is short enough that
    // the dial+negotiate tail (common to every arm) compresses the
    // ratio, so the smoke gate is strict ordering instead.
    const bool full_scale = peers >= 2000;
    const double factor = full_scale ? 3.0 : 1.0;
    const char* gate_desc = full_scale ? ">= 3x below" : "below";
    if (median_indexer * factor > median_dht) {
      std::printf("FAIL: indexer median TTFB is not %s DHT-only\n", gate_desc);
      pass = false;
    } else {
      std::printf("gate:     indexer median TTFB %s DHT-only: ok\n",
                  gate_desc);
    }
    if (median_race * factor > median_dht) {
      std::printf("FAIL: race median TTFB is not %s DHT-only\n", gate_desc);
      pass = false;
    } else {
      std::printf("gate:     race median TTFB %s DHT-only: ok\n", gate_desc);
    }
    if (degraded_race_arm.ttfb.size() < degraded_dht_arm.ttfb.size()) {
      std::printf("FAIL: with every indexer down the race succeeded less "
                  "often than DHT-only\n");
      pass = false;
    } else {
      std::printf("gate:     all-indexers-down race success >= DHT-only: "
                  "ok (%zu vs %zu)\n",
                  degraded_race_arm.ttfb.size(),
                  degraded_dht_arm.ttfb.size());
    }
  }
  std::printf("artifact: %s\n", artifact_path.c_str());

  const bool deterministic = backend_determinism_probe(bench::run_seed());
  std::printf("determinism probe (wheel vs heap trace bytes): %s\n",
              deterministic ? "identical" : "MISMATCH");

  return pass && deterministic ? 0 : 1;
}
