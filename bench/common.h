// Shared scaffolding for the experiment benches: run-seed handling,
// standard world sizes, crawl helpers, and paper-vs-measured printing.
//
// Every bench prints its seed; rerunning with IPFS_BENCH_SEED=<n> and the
// same build reproduces the output bit-for-bit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "crawler/crawler.h"
#include "stats/stats.h"
#include "world/world.h"

namespace ipfs::bench {

inline std::uint64_t run_seed() {
  if (const char* env = std::getenv("IPFS_BENCH_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 42;
}

// Smaller worlds when IPFS_BENCH_FAST=1 (CI smoke runs).
inline bool fast_mode() {
  const char* env = std::getenv("IPFS_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline std::size_t scaled(std::size_t full, std::size_t fast) {
  return fast_mode() ? fast : full;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper:    %s\n", paper_summary.c_str());
  std::printf("seed:     %llu%s\n",
              static_cast<unsigned long long>(run_seed()),
              fast_mode() ? "  (fast mode)" : "");
  std::printf("------------------------------------------------------------------\n");
}

inline void print_row(const std::string& label, const std::string& value) {
  std::printf("%-28s %s\n", (label + ":").c_str(), value.c_str());
}

// Runs one crawl of `world` from a well-connected vantage point in
// Germany (Section 4.1) and returns the result.
inline crawler::CrawlResult crawl_world(world::World& world) {
  sim::NodeConfig config;
  config.region = world::kEuCentral;
  config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  const sim::NodeId self = world.network().add_node(config);
  crawler::Crawler crawler(world.network(), self, world.bootstrap_refs());
  crawler::CrawlResult result;
  crawler.crawl([&](crawler::CrawlResult r) { result = std::move(r); });
  world.simulator().run();
  return result;
}

inline world::WorldConfig default_world_config(std::size_t peers) {
  world::WorldConfig config;
  config.population.peer_count = peers;
  config.seed = run_seed();
  return config;
}

inline std::string pct(double fraction) {
  return stats::format_percent(fraction);
}

inline std::string secs(double seconds) {
  return stats::format_seconds(seconds);
}

}  // namespace ipfs::bench
