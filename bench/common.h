// Shared scaffolding for the experiment benches: run-seed handling,
// standard world sizes, crawl helpers, and paper-vs-measured printing.
//
// Every bench prints its seed; rerunning with IPFS_BENCH_SEED=<n> and the
// same build reproduces the output bit-for-bit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "crawler/crawler.h"
#include "scenario/scenario.h"
#include "stats/stats.h"
#include "world/world.h"

namespace ipfs::bench {

inline std::uint64_t run_seed() {
  if (const char* env = std::getenv("IPFS_BENCH_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 42;
}

// Smaller worlds when IPFS_BENCH_FAST=1 (CI smoke runs).
inline bool fast_mode() {
  const char* env = std::getenv("IPFS_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline std::size_t scaled(std::size_t full, std::size_t fast) {
  return fast_mode() ? fast : full;
}

// Integer env override (IPFS_BENCH_PEERS, IPFS_BENCH_ROUNDS, ...); zero
// or unset keeps the fallback.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

// Shard count for the parallel event core (IPFS_BENCH_SHARDS); 0 keeps
// the sequential Simulator. Applied by scenario_builder(), so every
// bench picks the engine up without its own plumbing.
inline std::size_t env_shards() { return env_size("IPFS_BENCH_SHARDS", 0); }

inline void print_header(const std::string& experiment,
                         const std::string& paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper:    %s\n", paper_summary.c_str());
  std::printf("seed:     %llu%s\n",
              static_cast<unsigned long long>(run_seed()),
              fast_mode() ? "  (fast mode)" : "");
  std::printf("------------------------------------------------------------------\n");
}

inline void print_row(const std::string& label, const std::string& value) {
  std::printf("%-28s %s\n", (label + ":").c_str(), value.c_str());
}

// Runs one crawl of `world` from a well-connected vantage point in
// Germany (Section 4.1) and returns the result.
inline crawler::CrawlResult crawl_world(world::World& world) {
  const sim::NodeId self = world.network().add_node(
      sim::NodeConfig()
          .with_region(world::kEuCentral)
          .with_bandwidth(100.0 * 1024 * 1024, 100.0 * 1024 * 1024));
  crawler::Crawler crawler(world.network(), self, world.bootstrap_refs());
  crawler::CrawlResult result;
  crawler.crawl([&](crawler::CrawlResult r) { result = std::move(r); });
  world.run();
  return result;
}

// The benches' one way to construct simulations: a ScenarioBuilder
// pre-loaded with the run seed. Chain world knobs (.undialable_fraction,
// .hydra, ...) and finish with .build_world(), or swarm knobs with
// .build().
inline scenario::ScenarioBuilder scenario_builder(std::size_t peers,
                                                  std::uint64_t seed) {
  scenario::ScenarioBuilder builder;
  builder.peers(peers).seed(seed).shards(env_shards());
  return builder;
}

inline scenario::ScenarioBuilder scenario_builder(std::size_t peers) {
  return scenario_builder(peers, run_seed());
}

// The standard paper-geography world at `peers` peers.
inline std::unique_ptr<world::World> standard_world(std::size_t peers) {
  return scenario_builder(peers).build_world();
}

inline std::string pct(double fraction) {
  return stats::format_percent(fraction);
}

inline std::string secs(double seconds) {
  return stats::format_seconds(seconds);
}

}  // namespace ipfs::bench
