// Figure 4a: total crawled peers over time, split into dialable and
// undialable fractions. The crawler runs every 30 simulated minutes.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 4a: crawled peers over time (dialable vs undialable)",
      "~200k peers total, ~55 % dialable at any snapshot, 1-day periodicity");

  world::World world(bench::default_world_config(bench::scaled(2500, 400)));
  const int rounds = static_cast<int>(bench::scaled(16, 4));
  const sim::Duration interval = sim::minutes(30);

  sim::NodeConfig crawler_config;
  crawler_config.region = world::kEuCentral;
  crawler_config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  crawler_config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  const sim::NodeId self = world.network().add_node(crawler_config);

  std::printf("%-12s %10s %10s %12s %10s\n", "sim_time", "total",
              "dialable", "undialable", "dialable%");

  for (int round = 0; round < rounds; ++round) {
    crawler::Crawler crawler(world.network(), self, world.bootstrap_refs());
    crawler::CrawlResult result;
    crawler.crawl([&](crawler::CrawlResult r) { result = std::move(r); });
    world.simulator().run();

    std::printf("%-12s %10zu %10zu %12zu %9.1f%%\n",
                stats::format_seconds(sim::to_seconds(result.started_at))
                    .c_str(),
                result.total(), result.dialable(), result.undialable(),
                100.0 * static_cast<double>(result.dialable()) /
                    static_cast<double>(std::max<std::size_t>(1,
                                                              result.total())));

    world.simulator().run_until(world.simulator().now() + interval);
  }

  std::printf(
      "\nshape check: totals stay near the population size while the\n"
      "dialable share hovers around the paper's ~55%% snapshot value.\n");
  return 0;
}
