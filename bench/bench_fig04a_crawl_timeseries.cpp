// Figure 4a: total crawled peers over time, split into dialable and
// undialable fractions. The crawler runs every 30 simulated minutes.
//
// This bench doubles as the scale census (docs/SCALING.md): the world
// size, round count and trial count are env-tunable, and independent
// seeded trials shard across cores via bench::run_trials.
//
//   IPFS_BENCH_PEERS=100000 IPFS_BENCH_ROUNDS=1 ./bench_fig04a_crawl_timeseries
//   IPFS_BENCH_TRIALS=8 IPFS_BENCH_THREADS=8 ...   # multi-trial fold
//   IPFS_BENCH_WALL_BUDGET_S=60 ...                # fail if wall-clock exceeds
//   IPFS_BENCH_SHARDS=4 ...                        # sharded event core
//   IPFS_BENCH_ARTIFACT=census.jsonl ...           # per-phase JSONL dump
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "perf_common.h"

using namespace ipfs;

namespace {

struct CensusTrial {
  std::string rendered;              // per-round table rows
  std::size_t final_total = 0;       // last round's census
  std::size_t final_dialable = 0;
  std::vector<double> dialable_shares;  // one per round, for folding
  double build_seconds = 0.0;        // world construction wall time
  double event_seconds = 0.0;        // crawl rounds wall time (event loop)
  std::uint64_t events_executed = 0; // events the crawl rounds executed
};

double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4a: crawled peers over time (dialable vs undialable)",
      "~200k peers total, ~55 % dialable at any snapshot, 1-day periodicity");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(2500, 400));
  const std::size_t rounds =
      bench::env_size("IPFS_BENCH_ROUNDS", bench::scaled(16, 4));
  const std::size_t trials = bench::bench_trials(1);
  const sim::Duration interval = sim::minutes(30);

  // Full 192-entry routing tables cost ~2.5 KB/peer-entry; beyond ~20k
  // peers cap the pre-seeded budget so a 100k census fits in CI memory.
  // Crawl coverage is unaffected: the BFS still traverses the whole
  // keyspace, just through a few more hops.
  const std::size_t routing_entries = peers > 20'000 ? 64 : 192;

  const auto wall_start = std::chrono::steady_clock::now();

  const auto results = bench::run_trials(
      trials, bench::run_seed(), [&](std::uint64_t seed) {
        const auto build_start = std::chrono::steady_clock::now();
        const auto world = bench::scenario_builder(peers, seed)
                               .max_routing_entries(routing_entries)
                               .build_world();
        CensusTrial trial;
        trial.build_seconds = elapsed_s(build_start);

        const sim::NodeId self = world->network().add_node(
            sim::NodeConfig()
                .with_region(world::kEuCentral)
                .with_bandwidth(100.0 * 1024 * 1024, 100.0 * 1024 * 1024));

        std::ostringstream out;
        for (std::size_t round = 0; round < rounds; ++round) {
          crawler::Crawler crawler(world->network(), self,
                                   world->bootstrap_refs());
          crawler::CrawlResult result;
          crawler.crawl(
              [&](crawler::CrawlResult r) { result = std::move(r); });
          const auto round_start = std::chrono::steady_clock::now();
          trial.events_executed += world->run();
          trial.event_seconds += elapsed_s(round_start);

          const double share =
              static_cast<double>(result.dialable()) /
              static_cast<double>(std::max<std::size_t>(1, result.total()));
          char row[128];
          std::snprintf(row, sizeof(row), "%-12s %10zu %10zu %12zu %9.1f%%\n",
                        stats::format_seconds(
                            sim::to_seconds(result.started_at))
                            .c_str(),
                        result.total(), result.dialable(),
                        result.undialable(), 100.0 * share);
          out << row;
          trial.dialable_shares.push_back(share);
          trial.final_total = result.total();
          trial.final_dialable = result.dialable();

          const auto advance_start = std::chrono::steady_clock::now();
          trial.events_executed += world->run_until(world->now() + interval);
          trial.event_seconds += elapsed_s(advance_start);
        }
        trial.rendered = out.str();
        return trial;
      });

  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  std::printf("%-12s %10s %10s %12s %10s\n", "sim_time", "total",
              "dialable", "undialable", "dialable%");
  std::printf("%s", results[0].result.rendered.c_str());

  if (trials > 1) {
    // Deterministic fold: trials come back in seed order, so the merged
    // CDF is byte-identical regardless of thread completion order.
    std::vector<stats::TrialSamples> folds;
    for (const auto& trial : results)
      folds.push_back({trial.seed, trial.result.dialable_shares});
    const stats::Cdf cdf(stats::fold_trials(std::move(folds)));
    std::printf("\nfolded over %zu trials: dialable share p10 %.1f%%  "
                "p50 %.1f%%  p90 %.1f%%\n",
                trials, cdf.percentile(10) * 100.0,
                cdf.percentile(50) * 100.0, cdf.percentile(90) * 100.0);
  }

  const std::size_t shards = bench::env_shards();
  double build_seconds = 0.0, event_seconds = 0.0;
  std::uint64_t events_executed = 0;
  for (const auto& trial : results) {
    build_seconds += trial.result.build_seconds;
    event_seconds += trial.result.event_seconds;
    events_executed += trial.result.events_executed;
  }
  std::printf("\ncensus: %zu peers, %zu round(s), %zu trial(s), "
              "%zu shard(s), wall-clock %.1f s\n",
              peers, rounds, trials, shards, wall_seconds);
  std::printf("phases: build %.1f s, events %.1f s "
              "(%llu events, %.0f events/s)\n",
              build_seconds, event_seconds,
              static_cast<unsigned long long>(events_executed),
              event_seconds > 0.0
                  ? static_cast<double>(events_executed) / event_seconds
                  : 0.0);

  if (const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
      artifact_env != nullptr && artifact_env[0] != '\0') {
    std::ofstream artifact(artifact_env, std::ios::trunc);
    artifact << "{\"bench\":\"fig04a_census\",\"peers\":" << peers
             << ",\"rounds\":" << rounds << ",\"trials\":" << trials
             << ",\"shards\":" << shards
             << ",\"build_s\":" << build_seconds
             << ",\"event_s\":" << event_seconds
             << ",\"events\":" << events_executed
             << ",\"wall_s\":" << wall_seconds
             << ",\"final_total\":" << results[0].result.final_total
             << ",\"final_dialable\":" << results[0].result.final_dialable
             << "}\n";
    std::printf("artifact: %s\n", artifact_env);
  }

  if (const std::size_t budget = bench::env_size("IPFS_BENCH_WALL_BUDGET_S", 0);
      budget > 0 && wall_seconds > static_cast<double>(budget)) {
    std::printf("FAIL: wall-clock %.1f s exceeded budget %zu s\n",
                wall_seconds, budget);
    return 1;
  }

  std::printf(
      "\nshape check: totals stay near the population size while the\n"
      "dialable share hovers around the paper's ~55%% snapshot value.\n");
  return 0;
}
