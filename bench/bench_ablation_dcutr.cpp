// Ablation: NAT hole punching via relays (DCUtR) — the extension the
// paper notes as "currently being developed... still under-test"
// (Section 3.1).
//
// Without DCUtR, dials to NAT'ed peers burn the full transport timeout
// and NAT'ed peers cannot host content. With DCUtR, those peers become
// reachable through relays (slower but successful dials). This bench
// sweeps DCUtR adoption and reports the effect on lookups and on the
// crawler's dialable share.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Ablation: DCUtR hole-punching adoption among NAT'ed peers",
      "Section 3.1: 'a NAT hole-punching solution is currently being "
      "developed, it is still under-test'");

  const double adoption_levels[] = {0.0, 0.5, 1.0};
  std::printf("%-18s %14s %14s %16s\n", "DCUtR adoption", "publish p50",
              "retrieve p50", "crawl dialable");

  for (const double adoption : adoption_levels) {
    const auto world_ptr = bench::scenario_builder(bench::scaled(1200, 300))
                               .dcutr_share(adoption)
                               .build_world();
    world::World& world = *world_ptr;

    workload::PerfExperimentConfig perf_config;
    perf_config.cycles = bench::scaled(18, 6);
    workload::PerfExperiment experiment(world, perf_config);
    bool done = false;
    experiment.run([&] { done = true; });
    world.simulator().run();
    (void)done;

    const auto crawl = bench::crawl_world(world);
    const auto publish = experiment.results().all_publish_totals_seconds();
    const auto retrieve = experiment.results().all_retrieval_totals_seconds();
    std::printf("%16.0f %% %14s %14s %15.1f%%\n", adoption * 100.0,
                publish.empty()
                    ? "-"
                    : bench::secs(stats::percentile(publish, 50)).c_str(),
                retrieve.empty()
                    ? "-"
                    : bench::secs(stats::percentile(retrieve, 50)).c_str(),
                100.0 * static_cast<double>(crawl.dialable()) /
                    static_cast<double>(std::max<std::size_t>(1,
                                                              crawl.total())));
  }

  std::printf("\nshape check: adoption converts 5 s NAT timeouts into "
              "slower-but-successful\nrelayed dials — walks speed up and "
              "the crawler's dialable share rises.\n");
  return 0;
}
