// Ablation: adversarial resilience — eclipse/Sybil/flash-crowd attacks
// with the defense stack toggled (docs/ADVERSARY.md).
//
// Henningsen et al.'s measurements of the public IPFS DHT showed that
// node IDs are free and the keyspace is cheaply enumerable, so a handful
// of machines can occupy the XOR neighborhood of a chosen CID and starve
// its retrievals. This bench stages that attack against the same
// publish/retrieve pipeline the paper's Figure 9/10 experiments measure
// and toggles the defense stack:
//
//   baseline      no attack, defenses on (indexer race + quorum + caps)
//   eclipse_off   eclipse armed, undefended protocol (DHT-only, quorum 1)
//   eclipse_on    eclipse armed, defenses on
//
// Each arm publishes one 64 KiB object and retrieves it with a fresh,
// measurement-reset client per round (connections dropped so the
// opportunistic Bitswap phase cannot shortcut provider discovery — the
// paper's Section 4.3 reset). Two informational panels ride along: the
// Sybil bucket-flood occupancy with the per-bucket /16 diversity cap off
// vs on, and gateway request-coalescing under a flash crowd driven
// through the AttackPlan's deterministic schedule.
//
// Acceptance gates: baseline retrieves 100%; the undefended eclipse
// drops target-CID success below 50%; with defenses on success returns
// to 100% with median TTFB within 2x the unattacked baseline; the
// capped Sybil run keeps every bucket's adversarial occupancy within the
// cap while the uncapped run exceeds it; the flash crowd coalesces to a
// single upstream retrieval; and a reduced-scale replay of the defended
// eclipse workload is byte-identical across the timer-wheel and
// binary-heap scheduler backends. Any failure exits non-zero.
//
// Writes a JSONL artifact (one sample per line) for plotting; path
// overridable via IPFS_BENCH_ARTIFACT.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "blockstore/blockstore.h"
#include "common.h"
#include "gateway/gateway.h"
#include "indexer/indexer.h"
#include "merkledag/merkledag.h"
#include "node/ipfs_node.h"
#include "routing/router.h"
#include "stats/jsonl.h"
#include "stats/stats.h"

using namespace ipfs;

namespace {

constexpr std::size_t kDiversityCap = 2;
constexpr std::size_t kProviderQuorum = 3;

std::vector<std::uint8_t> deterministic_bytes(std::size_t n,
                                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return bytes;
}

// One retrieval arm: a dht_servers swarm, one publisher, `rounds` fresh
// retriever nodes created before arm() so each is a registered eclipse
// victim, each measurement-reset before its retrieval.
struct ArmResult {
  int attempts = 0;
  int successes = 0;
  std::vector<double> ttfb;  // successful samples, seconds
  std::size_t via_dht = 0;
  std::size_t via_indexer = 0;
  std::uint64_t records_swallowed = 0;
  std::uint64_t poisoned_served = 0;

  double success_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(successes) / attempts;
  }
};

ArmResult run_retrieval_arm(bool attacked, bool defended, std::uint64_t seed,
                            std::size_t honest_peers, int rounds,
                            sim::SchedulerBackend backend,
                            std::string* trace_dump = nullptr) {
  // The eclipse target must be known at build time, so the object is
  // hashed through a scratch store first.
  const auto content = deterministic_bytes(64 * 1024, seed ^ 0xAD5A);
  blockstore::BlockStore scratch;
  const multiformats::Cid cid = merkledag::import_bytes(scratch, content).root;

  scenario::ScenarioBuilder builder;
  builder.peers(honest_peers)
      .seed(seed)
      .single_region(20.0)
      .scheduler(backend)
      .dht_servers(true);
  if (trace_dump != nullptr) builder.trace_capacity(400'000);
  if (defended)
    builder.indexers(1)
        .indexer_config(
            indexer::IndexerConfig().with_ingest_lag(sim::seconds(1)))
        .routing(routing::RoutingConfig::Mode::kRace);
  if (attacked) builder.eclipse(dht::Key::for_cid(cid));
  scenario::Scenario s = builder.build();

  node::IpfsNodeConfig publisher_config;
  publisher_config.identity_seed = 0x9AB;
  publisher_config.provide_after_fetch = false;
  // The routing config carries the indexer list (when built), so
  // provide() pushes advertisements alongside the DHT provider records.
  publisher_config.routing = s.routing_config();
  node::IpfsNode publisher(s.network(), publisher_config);

  std::vector<std::unique_ptr<node::IpfsNode>> retrievers;
  for (int round = 0; round < rounds; ++round) {
    node::IpfsNodeConfig config;
    config.identity_seed = 0xFE7C + static_cast<std::uint64_t>(round);
    config.provide_after_fetch = false;
    config.routing = s.routing_config();
    if (defended) {
      config.provider_quorum = kProviderQuorum;
      config.bucket_diversity_cap = kDiversityCap;
    }
    retrievers.push_back(
        std::make_unique<node::IpfsNode>(s.network(), config));
  }

  std::vector<dht::PeerRef> seeds;
  for (std::size_t i = 0; i < 6; ++i) seeds.push_back(s.ref(i));
  publisher.bootstrap(seeds, [](bool) {});
  for (const auto& retriever : retrievers)
    retriever->bootstrap(seeds, [](bool) {});
  s.simulator().run();

  if (attacked) {
    s.attack()->add_victim(publisher.self());
    for (const auto& retriever : retrievers)
      s.attack()->add_victim(retriever->self());
    s.attack()->arm();
    // Let the announce plant the attackers in every victim's table.
    s.simulator().run_until(s.simulator().now() + sim::seconds(5));
  }

  ArmResult arm;
  bool published = false;
  publisher.publish(content, [&](node::PublishTrace t) { published = t.ok; });
  s.simulator().run();
  if (!published) {
    arm.attempts = rounds;  // the whole arm fails
    return arm;
  }
  // Clear the indexer ingest lag so the defended arms measure the
  // steady state, not the advertisement pipeline.
  s.simulator().run_until(s.simulator().now() + sim::seconds(5));

  for (const auto& retriever : retrievers) {
    s.simulator().run_until(s.simulator().now() + sim::seconds(10));
    retriever->reset_for_next_measurement();
    const sim::Time start = s.simulator().now();
    sim::Time end = start;
    node::RetrievalTrace trace;
    bool done = false;
    retriever->retrieve(cid, [&](node::RetrievalTrace t) {
      end = s.simulator().now();
      trace = t;
      done = true;
    });
    s.simulator().run();
    ++arm.attempts;
    if (!done || !trace.ok) continue;
    ++arm.successes;
    arm.ttfb.push_back(sim::to_seconds((end - start) - trace.fetch));
    if (trace.routing_source == routing::Source::kDht) ++arm.via_dht;
    if (trace.routing_source == routing::Source::kIndexer) ++arm.via_indexer;
  }

  if (attacked) {
    arm.records_swallowed = s.attack()->counters().provider_records_swallowed;
    arm.poisoned_served = s.attack()->counters().poisoned_records_served;
    s.attack()->disarm();
    s.attack()->detach();
  }
  if (trace_dump != nullptr) {
    std::ostringstream dump;
    stats::export_registry_jsonl(s.network().metrics(), dump);
    *trace_dump = dump.str();
  }
  return arm;
}

// Sybil panel: the same deterministic bucket flood with the per-bucket
// /16 diversity cap off vs on.
struct SybilPanel {
  std::size_t worst_occupancy = 0;  // adversarial entries, worst bucket
  std::uint64_t rejections = 0;
  std::uint64_t floods_sent = 0;
};

SybilPanel run_sybil_panel(std::uint64_t seed, std::size_t cap) {
  adversary::SybilConfig sybil;
  sybil.per_victim = 8;
  sybil.target_cpl = 6;
  sybil.rounds = 2;
  sybil.interval = sim::seconds(20);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(24)
                             .seed(seed)
                             .single_region(15.0)
                             .dht_servers(true)
                             .sybils(sybil)
                             .build();
  if (cap > 0)
    for (std::size_t v = 0; v < s.size(); ++v)
      s.dht(v).set_bucket_diversity_cap(cap);
  s.attack()->arm();
  s.simulator().run_until(s.simulator().now() + sim::minutes(2));
  s.attack()->disarm();
  s.simulator().run();

  SybilPanel panel;
  for (std::size_t v = 0; v < s.size(); ++v) {
    std::size_t adversarial = 0;
    const dht::Key self_key = dht::Key::for_peer(s.ref(v).id);
    // Adversarial entries grouped by bucket (cpl vs the victim's key);
    // the flood aims all of one victim's sybils at a single bucket.
    std::vector<std::size_t> per_bucket(dht::kBucketCount, 0);
    for (const auto& peer : s.dht(v).routing_table().all_peers()) {
      if (!s.attack()->is_adversarial_id(peer.id)) continue;
      ++adversarial;
      const std::size_t cpl = static_cast<std::size_t>(
          self_key.common_prefix_len(dht::Key::for_peer(peer.id)));
      panel.worst_occupancy =
          std::max(panel.worst_occupancy, ++per_bucket[cpl]);
    }
    panel.rejections += s.dht(v).routing_table().diversity_rejections();
  }
  panel.floods_sent = s.attack()->counters().flood_requests_sent;
  s.attack()->detach();
  return panel;
}

// Flash-crowd panel: the AttackPlan's deterministic request schedule
// mapped onto gateway GETs for one CID, landing inside a window narrower
// than the P2P retrieval so the singleflight layer must coalesce them.
struct FlashPanel {
  std::size_t crowd = 0;
  std::size_t served = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t p2p_requests = 0;
};

FlashPanel run_flash_panel(std::uint64_t seed, std::size_t crowd) {
  adversary::FlashCrowdConfig flash;
  flash.requests = crowd;
  flash.start = sim::seconds(2);
  flash.window = sim::milliseconds(200);
  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(48)
                             .seed(seed)
                             .single_region(20.0)
                             .dht_servers(true)
                             .flash_crowd(flash)
                             .build();

  gateway::GatewayConfig gateway_config;
  gateway_config.node.identity_seed = 0x6A7E;
  gateway_config.node.provide_after_fetch = false;
  gateway::Gateway gateway(s.network(), gateway_config);
  node::IpfsNodeConfig publisher_config;
  publisher_config.identity_seed = 0x9AB;
  node::IpfsNode publisher(s.network(), publisher_config);

  std::vector<dht::PeerRef> seeds;
  for (std::size_t i = 0; i < 6; ++i) seeds.push_back(s.ref(i));
  gateway.bootstrap(seeds, [](bool) {});
  publisher.bootstrap(seeds, [](bool) {});
  s.simulator().run();

  const auto content = deterministic_bytes(128 * 1024, seed ^ 0xF1A5);
  node::PublishTrace publish_trace;
  publisher.publish(content,
                    [&](node::PublishTrace t) { publish_trace = t; });
  s.simulator().run();

  FlashPanel panel;
  panel.crowd = crowd;
  if (!publish_trace.ok) return panel;

  s.attack()->set_flash_request_handler([&](std::size_t) {
    gateway.handle_get(publish_trace.cid, [&](gateway::GatewayResponse r) {
      if (r.source != gateway::ServedFrom::kFailed) ++panel.served;
    });
  });
  s.attack()->arm();
  s.simulator().run();
  s.attack()->disarm();
  s.attack()->detach();

  panel.coalesced = gateway.coalesced_requests();
  panel.p2p_requests = gateway.stats(gateway::ServedFrom::kP2p).requests;
  return panel;
}

void print_arm_row(const char* label, const ArmResult& arm) {
  if (arm.ttfb.empty()) {
    std::printf("%-14s %4d/%-4d %8s %8s %8s   swallowed=%llu poisoned=%llu\n",
                label, arm.successes, arm.attempts, "-", "-", "-",
                static_cast<unsigned long long>(arm.records_swallowed),
                static_cast<unsigned long long>(arm.poisoned_served));
    return;
  }
  const stats::Cdf cdf(arm.ttfb);
  std::printf("%-14s %4d/%-4d %8.4f %8.4f %8.4f   dht=%zu ix=%zu "
              "swallowed=%llu poisoned=%llu\n",
              label, arm.successes, arm.attempts, cdf.percentile(50),
              cdf.percentile(90), cdf.percentile(99), arm.via_dht,
              arm.via_indexer,
              static_cast<unsigned long long>(arm.records_swallowed),
              static_cast<unsigned long long>(arm.poisoned_served));
}

void dump_arm(std::ofstream& out, const char* series, const ArmResult& arm) {
  out << "{\"bench\":\"ablation_adversary\",\"series\":\"" << series
      << "\",\"attempts\":" << arm.attempts
      << ",\"successes\":" << arm.successes << "}\n";
  for (const double v : arm.ttfb)
    out << "{\"bench\":\"ablation_adversary\",\"series\":\"" << series
        << "\",\"ttfb_s\":" << v << "}\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: adversarial resilience — eclipse/Sybil/flash-crowd "
      "attacks vs the defense stack",
      "Henningsen et al.: free node IDs let a few machines eclipse a "
      "CID; diversity caps + provider quorum + the indexer race answer");

  const std::uint64_t seed = bench::run_seed();
  const std::size_t honest_peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(64, 32));
  const int rounds = static_cast<int>(bench::scaled(8, 4));
  const auto wheel = sim::SchedulerBackend::kTimerWheel;

  const ArmResult baseline =
      run_retrieval_arm(false, true, seed, honest_peers, rounds, wheel);
  const ArmResult eclipse_off =
      run_retrieval_arm(true, false, seed, honest_peers, rounds, wheel);
  const ArmResult eclipse_on =
      run_retrieval_arm(true, true, seed, honest_peers, rounds, wheel);

  std::printf("world: %zu honest dht servers, %d retrieval rounds/arm, "
              "eclipse attackers=%zu min_cpl=%d\n\n",
              honest_peers, rounds, adversary::EclipseConfig{}.attackers,
              adversary::EclipseConfig{}.min_cpl);
  std::printf("%-14s %9s %8s %8s %8s   %s\n", "ttfb (seconds)", "ok/n",
              "p50", "p90", "p99", "routing source / attack counters");
  print_arm_row("baseline", baseline);
  print_arm_row("eclipse_off", eclipse_off);
  print_arm_row("eclipse_on", eclipse_on);

  const SybilPanel uncapped = run_sybil_panel(seed, 0);
  const SybilPanel capped = run_sybil_panel(seed, kDiversityCap);
  std::printf("\nsybil flood   worst-bucket occupancy  rejections  floods\n");
  std::printf("  cap=0       %21zu  %10llu  %6llu\n", uncapped.worst_occupancy,
              static_cast<unsigned long long>(uncapped.rejections),
              static_cast<unsigned long long>(uncapped.floods_sent));
  std::printf("  cap=%zu       %21zu  %10llu  %6llu\n", kDiversityCap,
              capped.worst_occupancy,
              static_cast<unsigned long long>(capped.rejections),
              static_cast<unsigned long long>(capped.floods_sent));

  const FlashPanel flash = run_flash_panel(seed, 16);
  std::printf("\nflash crowd   %zu requests in 200 ms: served=%zu "
              "coalesced=%llu upstream_p2p=%llu\n",
              flash.crowd, flash.served,
              static_cast<unsigned long long>(flash.coalesced),
              static_cast<unsigned long long>(flash.p2p_requests));

  const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
  const std::string artifact_path =
      artifact_env != nullptr && artifact_env[0] != '\0'
          ? artifact_env
          : "bench_ablation_adversary.jsonl";
  std::ofstream artifact(artifact_path, std::ios::trunc);
  dump_arm(artifact, "baseline", baseline);
  dump_arm(artifact, "eclipse_off", eclipse_off);
  dump_arm(artifact, "eclipse_on", eclipse_on);
  artifact << "{\"bench\":\"ablation_adversary\",\"series\":\"sybil\","
           << "\"cap\":0,\"worst_occupancy\":" << uncapped.worst_occupancy
           << ",\"rejections\":" << uncapped.rejections << "}\n";
  artifact << "{\"bench\":\"ablation_adversary\",\"series\":\"sybil\","
           << "\"cap\":" << kDiversityCap
           << ",\"worst_occupancy\":" << capped.worst_occupancy
           << ",\"rejections\":" << capped.rejections << "}\n";
  artifact << "{\"bench\":\"ablation_adversary\",\"series\":\"flash\","
           << "\"crowd\":" << flash.crowd << ",\"served\":" << flash.served
           << ",\"coalesced\":" << flash.coalesced
           << ",\"upstream_p2p\":" << flash.p2p_requests << "}\n";

  // ---- Gates ---------------------------------------------------------------
  bool pass = true;
  const auto gate = [&](bool ok, const char* desc) {
    std::printf("%s %s\n", ok ? "gate:    " : "FAIL:    ", desc);
    if (!ok) pass = false;
  };

  std::printf("\n");
  gate(baseline.successes == baseline.attempts && baseline.attempts > 0,
       "unattacked baseline retrieves 100%");
  gate(eclipse_off.success_rate() < 0.5,
       "undefended eclipse drops target-CID success below 50%");
  gate(eclipse_on.successes == eclipse_on.attempts && eclipse_on.attempts > 0,
       "defenses on (caps + quorum + race) restore 100% success");
  if (!baseline.ttfb.empty() && !eclipse_on.ttfb.empty()) {
    const double base_median = stats::Cdf(baseline.ttfb).percentile(50);
    const double defended_median = stats::Cdf(eclipse_on.ttfb).percentile(50);
    std::printf("median ttfb baseline=%.4fs eclipse_on=%.4fs (%.2fx)\n",
                base_median, defended_median, defended_median / base_median);
    gate(defended_median <= 2.0 * base_median,
         "defended median TTFB within 2x the unattacked baseline");
    artifact << "{\"bench\":\"ablation_adversary\",\"series\":\"summary\","
             << "\"median_baseline_s\":" << base_median
             << ",\"median_eclipse_on_s\":" << defended_median
             << ",\"eclipse_off_ok\":" << eclipse_off.successes
             << ",\"eclipse_off_attempts\":" << eclipse_off.attempts << "}\n";
  }
  gate(eclipse_off.records_swallowed > 0 && eclipse_off.poisoned_served > 0,
       "undefended arm exercised the attack (records swallowed + poisoned)");
  gate(uncapped.worst_occupancy > kDiversityCap,
       "uncapped sybil flood exceeds the diversity cap in some bucket");
  gate(capped.worst_occupancy <= kDiversityCap && capped.rejections > 0,
       "capped tables bound adversarial occupancy and reject the overflow");
  // Requests landing while the first retrieval is in flight coalesce
  // onto it; any that land after completion hit the gateway node's warm
  // store. Either way the whole crowd costs exactly one upstream fetch.
  gate(flash.served == flash.crowd && flash.coalesced > 0 &&
           flash.p2p_requests == flash.coalesced + 1,
       "flash crowd fully served through one upstream P2P retrieval");

  // ---- Determinism probe ---------------------------------------------------
  // Replays a reduced defended-eclipse workload under both scheduler
  // backends and compares the full exported trace streams byte-for-byte.
  std::string dumps[2];
  run_retrieval_arm(true, true, seed, 24, 2,
                    sim::SchedulerBackend::kTimerWheel, &dumps[0]);
  run_retrieval_arm(true, true, seed, 24, 2,
                    sim::SchedulerBackend::kBinaryHeap, &dumps[1]);
  const bool deterministic = !dumps[0].empty() && dumps[0] == dumps[1];
  std::printf("determinism probe (wheel vs heap trace bytes): %s\n",
              deterministic ? "identical" : "MISMATCH");

  std::printf("artifact: %s\n", artifact_path.c_str());
  return pass && deterministic ? 0 : 1;
}
