// Ablation: the ISSUE 9 data plane (docs/BLOCKSTORE.md).
//
// Four gated legs, each isolating one claim of the Bitswap 1.2.0 +
// persistent-async-blockstore subsystem:
//
//   A. GB-scale DAG fetch: a Session striping WANT_BLOCKs over 8
//      providers must beat a single-peer serial fetch_dag by >= 3x
//      (the providers' uplinks aggregate, paper ref [20]).
//   B. Loss tolerance: the same 8-peer session still completes with 5%
//      message loss injected by a FaultPlan — dropped RPCs surface as
//      timeouts, the session reroutes, content still verifies.
//   C. Write-behind batching: AsyncBlockStore over PosixStorage must
//      sustain >= 5x the put throughput of fsync-per-put on the same
//      log-structured store (one group fsync per batch, wall-clock).
//   D. Acked-put durability: a >= 300-seed crash sweep over the
//      write-behind queue (every acked put readable after a seeded
//      power cut) plus a wheel-vs-heap scheduler probe on persist-store
//      simfuzz schedules, whose traces must be byte-identical.
//
// The bench self-gates: any failed leg prints FAIL and exits nonzero.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bitswap/session.h"
#include "blockstore/persist/async_store.h"
#include "blockstore/persist/storage.h"
#include "common.h"
#include "merkledag/merkledag.h"
#include "sim/faults.h"
#include "sim/fuzz_harness.h"

using namespace ipfs;

namespace {

// Imports `data` once, then shares the resulting BlockData pointers into
// every provider store — a 1 GB object must not be duplicated 8 times.
multiformats::Cid seed_providers(std::span<const std::uint8_t> data,
                                 blockstore::BlockStore* stores,
                                 int count) {
  const auto result = merkledag::import_bytes(stores[0], data);
  const auto cids = merkledag::enumerate(stores[0], result.root);
  for (int i = 1; i < count; ++i)
    for (const auto& cid : *cids) stores[i].put(cid, stores[0].get(cid));
  return result.root;
}

double wall_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: Bitswap 1.2.0 data plane + persistent async blockstore",
      "gates: 8-peer session >= 3x serial fetch; completes at 5% loss; "
      "write-behind >= 5x fsync-per-put; 300-seed acked-crash sweep + "
      "byte-identical wheel/heap traces");

  const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
  const std::string artifact_path =
      artifact_env ? artifact_env : "bench_ablation_dataplane.jsonl";
  std::ofstream artifact(artifact_path, std::ios::trunc);
  bool pass = true;

  // --- Leg A: 8-peer session vs single-peer serial fetch ------------------
  // Full scale moves a 1 GiB DAG; IPFS_BENCH_FAST keeps CI at 32 MiB
  // (same block count ratio, same shape — the speedup gate still binds).
  const std::size_t object_bytes = bench::env_size(
      "IPFS_BENCH_DATAPLANE_BYTES",
      bench::scaled(1024ull * 1024 * 1024, 32ull * 1024 * 1024));
  constexpr int kProviders = 8;

  scenario::Scenario scenario = bench::scenario_builder(0)
                                    .world_geography()
                                    .build();
  sim::Simulator& simulator = scenario.simulator();
  sim::Network& network = scenario.network();

  const sim::NodeId requester_node = network.add_node(
      sim::NodeConfig()
          .with_region(world::kEuCentral)
          .with_download(100.0 * 1024 * 1024));
  sim::NodeId provider_nodes[kProviders];
  blockstore::BlockStore provider_stores[kProviders];
  std::vector<std::unique_ptr<bitswap::Bitswap>> provider_bitswaps;
  const int provider_regions[] = {world::kEuCentral,   world::kUsEast,
                                  world::kAsiaEast,    world::kUsWest,
                                  world::kApSoutheast, world::kSaEast,
                                  world::kAfSouth,     world::kMeSouth};
  for (int i = 0; i < kProviders; ++i) {
    provider_nodes[i] = network.add_node(
        sim::NodeConfig()
            .with_region(provider_regions[i])
            .with_upload(4.0 * 1024 * 1024));
    provider_bitswaps.push_back(std::make_unique<bitswap::Bitswap>(
        network, provider_nodes[i], provider_stores[i]));
    bitswap::Bitswap* bs = provider_bitswaps.back().get();
    network.set_request_handler(
        provider_nodes[i],
        [bs](sim::NodeId from, const sim::MessagePtr& message, auto respond) {
          bs->handle_request(from, message, respond);
        });
    network.connect(requester_node, provider_nodes[i],
                    [](bool, sim::Duration) {});
  }
  simulator.run();

  sim::Rng content_rng(bench::run_seed() ^ 0xdacaf);
  std::vector<std::uint8_t> object(object_bytes);
  for (auto& b : object) b = static_cast<std::uint8_t>(content_rng.next());
  const multiformats::Cid root =
      seed_providers(object, provider_stores, kProviders);

  // Serial baseline: one peer, plain fetch_dag (kFetchWindow pipeline,
  // no striping).
  double serial_seconds = 0.0;
  {
    blockstore::BlockStore store;
    bitswap::Bitswap requester(network, requester_node, store);
    bitswap::FetchStats stats;
    requester.fetch_dag(provider_nodes[0], root,
                        [&](bitswap::FetchStats s) { stats = s; });
    simulator.run();
    if (!stats.ok) {
      std::printf("FAIL: serial baseline fetch did not complete\n");
      return 1;
    }
    serial_seconds = sim::to_seconds(stats.elapsed);
  }

  // 8-peer session.
  double session_seconds = 0.0;
  {
    blockstore::BlockStore store;
    bitswap::Bitswap requester(network, requester_node, store);
    bitswap::SessionConfig config;
    config.window = 8 * bitswap::Bitswap::kFetchWindow;
    bitswap::Session session(requester, config);
    for (int i = 0; i < kProviders; ++i) session.add_peer(provider_nodes[i]);
    bitswap::SessionFetchStats stats;
    session.fetch_dag(root, [&](bitswap::SessionFetchStats s) { stats = s; });
    simulator.run();
    if (!stats.ok) {
      std::printf("FAIL: 8-peer session fetch did not complete\n");
      return 1;
    }
    const auto fetched = merkledag::cat(store, root);
    if (!fetched || *fetched != object) {
      std::printf("FAIL: 8-peer session content mismatch\n");
      return 1;
    }
    session_seconds = sim::to_seconds(stats.elapsed);
  }

  const double speedup = serial_seconds / session_seconds;
  std::printf("\nleg A: %zu MiB DAG, %d providers @ 4 MiB/s up\n",
              object_bytes / (1024 * 1024), kProviders);
  std::printf("%-24s %10.2fs\n", "  serial (1 peer)", serial_seconds);
  std::printf("%-24s %10.2fs\n", "  session (8 peers)", session_seconds);
  std::printf("%-24s %10.2fx  (gate: >= 3x)\n", "  speedup", speedup);
  if (speedup < 3.0) {
    std::printf("FAIL: session speedup %.2fx below the 3x gate\n", speedup);
    pass = false;
  }
  artifact << "{\"leg\":\"fetch\",\"object_bytes\":" << object_bytes
           << ",\"serial_s\":" << serial_seconds
           << ",\"session_s\":" << session_seconds
           << ",\"speedup\":" << speedup << "}\n";

  // --- Leg B: the same fetch at 5% message loss ---------------------------
  // Every dropped request/response surfaces as an RPC timeout; the
  // session must reroute around them. Transport failures are expected by
  // the hundreds here, so the lossy-link profile raises the per-peer
  // failure cap — the gate is completion + integrity, not peer hygiene.
  double lossy_seconds = 0.0;
  std::uint64_t lossy_retries = 0;
  {
    sim::FaultConfig faults;
    faults.drop_prob = 0.05;
    sim::FaultPlan plan(network, faults, bench::run_seed() ^ 0x105e);
    plan.arm();
    blockstore::BlockStore store;
    bitswap::Bitswap requester(network, requester_node, store);
    bitswap::SessionConfig config;
    config.window = 8 * bitswap::Bitswap::kFetchWindow;
    config.max_peer_failures = 1ull << 32;  // lossy links, not dead peers
    bitswap::Session session(requester, config);
    for (int i = 0; i < kProviders; ++i) session.add_peer(provider_nodes[i]);
    bitswap::SessionFetchStats stats;
    session.fetch_dag(root, [&](bitswap::SessionFetchStats s) { stats = s; });
    simulator.run();
    plan.detach();
    const auto fetched = merkledag::cat(store, root);
    if (!stats.ok || !fetched || *fetched != object) {
      std::printf("FAIL: session fetch at 5%% loss did not complete intact\n");
      return 1;
    }
    lossy_seconds = sim::to_seconds(stats.elapsed);
    lossy_retries = stats.retried_blocks;
  }
  std::printf("\nleg B: same fetch at 5%% message loss\n");
  std::printf("%-24s %10.2fs  (%llu blocks retried; gate: completes)\n",
              "  session (8 peers)", lossy_seconds,
              static_cast<unsigned long long>(lossy_retries));
  artifact << "{\"leg\":\"loss\",\"drop_prob\":0.05,\"session_s\":"
           << lossy_seconds << ",\"retried_blocks\":" << lossy_retries
           << "}\n";

  // --- Leg C: write-behind batching vs fsync-per-put (wall clock) ---------
  // Real disk, real fsync: PosixStorage in a scratch directory. The sim
  // clock does not model disk, so this leg times the host.
  namespace fs = std::filesystem;
  namespace persist = blockstore::persist;
  const fs::path scratch = fs::path("bench_dataplane_scratch");
  fs::remove_all(scratch);
  const std::size_t put_count = bench::scaled(8192, 2048);
  const std::size_t block_bytes = 1024;
  sim::Rng block_rng(bench::run_seed() ^ 0xb10c);
  std::vector<blockstore::Block> blocks;
  blocks.reserve(put_count);
  for (std::size_t i = 0; i < put_count; ++i) {
    std::vector<std::uint8_t> data(block_bytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(block_rng.next());
    blocks.push_back(
        blockstore::Block::from_data(multiformats::Multicodec::kRaw, data));
  }

  double sync_seconds = 0.0;
  {
    persist::PersistentBlockStore store(
        std::make_unique<persist::PosixStorage>((scratch / "sync").string()));
    const auto start = std::chrono::steady_clock::now();
    for (const auto& block : blocks) {
      store.put(block);
      store.flush();  // fsync-per-put: each block acked individually
    }
    sync_seconds = wall_seconds(start);
  }
  double async_seconds = 0.0;
  {
    persist::AsyncBlockStore store(
        std::make_unique<persist::PersistentBlockStore>(
            std::make_unique<persist::PosixStorage>(
                (scratch / "async").string())));
    const auto start = std::chrono::steady_clock::now();
    for (const auto& block : blocks) store.put(block);
    store.flush();  // one group fsync acks the whole run
    async_seconds = wall_seconds(start);
  }
  fs::remove_all(scratch);

  const double put_ratio = sync_seconds / async_seconds;
  std::printf("\nleg C: %zu x %zu B puts on PosixStorage (wall clock)\n",
              put_count, block_bytes);
  std::printf("%-24s %10.3fs  (%.0f puts/s)\n", "  fsync-per-put",
              sync_seconds, put_count / sync_seconds);
  std::printf("%-24s %10.3fs  (%.0f puts/s)\n", "  write-behind",
              async_seconds, put_count / async_seconds);
  std::printf("%-24s %10.2fx  (gate: >= 5x)\n", "  throughput ratio",
              put_ratio);
  if (put_ratio < 5.0) {
    std::printf("FAIL: write-behind ratio %.2fx below the 5x gate\n",
                put_ratio);
    pass = false;
  }
  artifact << "{\"leg\":\"write_behind\",\"puts\":" << put_count
           << ",\"sync_s\":" << sync_seconds << ",\"async_s\":"
           << async_seconds << ",\"ratio\":" << put_ratio << "}\n";

  // --- Leg D1: >= 300-seed acked-put crash sweep --------------------------
  // The async store's durability line, hammered: random interleavings of
  // put / flush / crash over MemStorage; after every crash each block
  // acked (flushed after its put) must still be readable.
  const std::size_t sweep_seeds = 300;
  std::size_t sweep_crashes = 0;
  std::size_t sweep_acked_checked = 0;
  for (std::size_t s = 0; s < sweep_seeds; ++s) {
    sim::Rng rng(0xdacaf000ull + s);
    persist::PersistConfig base_config;
    base_config.segment_bytes = 8 * 1024;
    base_config.crash_seed = 0xdacaf000ull + s;
    persist::AsyncConfig async_config;
    async_config.flush_batch_blocks = 1 + rng.uniform_int(0, 15);
    persist::AsyncBlockStore store(
        std::make_unique<persist::PersistentBlockStore>(
            std::make_unique<persist::MemStorage>(), base_config),
        async_config);
    std::vector<blockstore::Block> put_blocks;
    std::set<std::size_t> acked;      // durable: a flush completed after put
    std::set<std::size_t> unflushed;  // at risk until the next flush
    const int ops = 20 + static_cast<int>(rng.uniform_int(0, 40));
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.6) {
        std::vector<std::uint8_t> data(64 + rng.uniform_int(0, 512));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        put_blocks.push_back(blockstore::Block::from_data(
            multiformats::Multicodec::kRaw, data));
        store.put(put_blocks.back());
        unflushed.insert(put_blocks.size() - 1);
      } else if (dice < 0.8) {
        store.flush();
        acked.insert(unflushed.begin(), unflushed.end());
        unflushed.clear();
      } else {
        store.handle_crash();
        ++sweep_crashes;
        unflushed.clear();  // never acked; legitimately lost
        for (const std::size_t index : acked) {
          const auto data = store.get(put_blocks[index].cid);
          ++sweep_acked_checked;
          if (!data || *data != put_blocks[index].data) {
            std::printf("FAIL: seed %zu lost acked block %zu after crash\n",
                        s, index);
            return 1;
          }
        }
      }
    }
  }
  std::printf("\nleg D1: acked-put crash sweep\n");
  std::printf("  %zu seeds, %zu crashes, %zu acked reads verified — "
              "no acked put lost\n",
              sweep_seeds, sweep_crashes, sweep_acked_checked);
  artifact << "{\"leg\":\"crash_sweep\",\"seeds\":" << sweep_seeds
           << ",\"crashes\":" << sweep_crashes << ",\"acked_checked\":"
           << sweep_acked_checked << "}\n";

  // --- Leg D2: wheel vs heap trace determinism on persist schedules -------
  // Full simfuzz schedules with the persistent data plane forced on,
  // replayed under both scheduler backends; fingerprints and captured
  // traces must match byte for byte.
  const std::size_t probe_schedules = bench::scaled(6, 3);
  std::size_t probe_ok = 0;
  for (std::size_t s = 0; s < probe_schedules; ++s) {
    simfuzz::ScheduleParams params =
        simfuzz::make_schedule(bench::run_seed() + 7000 + s);
    params.persist_stores = true;
    params.capture_trace = true;
    params.scheduler = sim::SchedulerBackend::kTimerWheel;
    const simfuzz::ScheduleReport wheel = simfuzz::run_schedule(params);
    params.scheduler = sim::SchedulerBackend::kBinaryHeap;
    const simfuzz::ScheduleReport heap = simfuzz::run_schedule(params);
    if (!wheel.ok() || !heap.ok()) {
      std::printf("FAIL: persist schedule seed %llu violated invariants\n%s%s",
                  static_cast<unsigned long long>(params.seed),
                  wheel.failure_summary().c_str(),
                  heap.failure_summary().c_str());
      pass = false;
      continue;
    }
    if (wheel.stats.fingerprint() != heap.stats.fingerprint() ||
        wheel.trace_jsonl != heap.trace_jsonl) {
      std::printf(
          "FAIL: wheel/heap divergence on persist schedule seed %llu\n",
          static_cast<unsigned long long>(params.seed));
      pass = false;
      continue;
    }
    ++probe_ok;
  }
  std::printf("\nleg D2: wheel vs heap on persist-store schedules\n");
  std::printf("  %zu/%zu schedules byte-identical across backends\n",
              probe_ok, probe_schedules);
  artifact << "{\"leg\":\"backend_probe\",\"schedules\":" << probe_schedules
           << ",\"identical\":" << probe_ok << "}\n";

  artifact << "{\"summary\":{\"speedup\":" << speedup
           << ",\"write_behind_ratio\":" << put_ratio
           << ",\"crash_seeds\":" << sweep_seeds
           << ",\"pass\":" << (pass ? "true" : "false") << "}}\n";
  std::printf("\nartifact: %s\n", artifact_path.c_str());
  std::printf(pass ? "\nPASS: all data-plane gates hold\n"
                   : "\nFAIL: see gates above\n");
  return pass ? 0 : 1;
}
