// Figure 11: (a) distributions of upstream response latency and of bytes
// downloaded per gateway request; (b) cached vs non-cached traffic over
// the day in 30-minute bins.
#include <cstdio>

#include "gateway_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 11: gateway latency/size distributions and cache timeline",
      "(a) 46 % zero-latency nginx hits, node-store hits < 24 ms, "
      "76 % of requests < 250 ms; object median 664.59 kB; "
      "(b) nginx hit rate swings 32.3-65.6 % over the day");

  auto experiment = bench::setup_gateway_experiment(
      bench::scaled(1000, 250), bench::scaled(180, 40),
      bench::scaled(14000, 1500));
  auto& world = *experiment.world;

  experiment.workload->run(*experiment.gateway);
  world.simulator().run_until(world.simulator().now() + sim::hours(24));
  world.simulator().run();

  const auto& log = experiment.workload->log();
  std::printf("requests: %zu\n", log.size());

  // --- (a) latency distribution ---------------------------------------------
  std::vector<double> latencies_ms, sizes_kb;
  std::size_t under_250ms = 0;
  for (const auto& entry : log) {
    if (entry.source == gateway::ServedFrom::kFailed) continue;
    latencies_ms.push_back(sim::to_millis(entry.latency));
    sizes_kb.push_back(static_cast<double>(entry.bytes) / 1024.0);
    if (entry.latency < sim::milliseconds(250)) ++under_250ms;
  }
  if (latencies_ms.empty()) {
    std::printf("no successful requests\n");
    return 1;
  }
  const stats::Cdf latency_cdf(latencies_ms);
  const stats::Cdf size_cdf(sizes_kb);

  std::printf("\n(a) upstream latency:\n");
  std::printf("    p25 %-10s p50 %-10s p75 %-10s p95 %s\n",
              bench::secs(latency_cdf.percentile(25) / 1000).c_str(),
              bench::secs(latency_cdf.percentile(50) / 1000).c_str(),
              bench::secs(latency_cdf.percentile(75) / 1000).c_str(),
              bench::secs(latency_cdf.percentile(95) / 1000).c_str());
  std::printf("    under 250 ms: %.1f%% (paper 76%%)\n",
              100.0 * static_cast<double>(under_250ms) /
                  static_cast<double>(latencies_ms.size()));

  std::printf("\n(a) object sizes (bytes downloaded per request):\n");
  std::printf("    p25 %.0f kB   p50 %.0f kB (paper 664.59 kB)   p75 %.0f kB\n",
              size_cdf.percentile(25), size_cdf.percentile(50),
              size_cdf.percentile(75));
  std::size_t above_100kb = 0;
  for (const auto size : sizes_kb)
    if (size > 100.0) ++above_100kb;
  std::printf("    above 100 kB: %.1f%% (paper 79.1%%)\n",
              100.0 * static_cast<double>(above_100kb) /
                  static_cast<double>(sizes_kb.size()));
  std::printf("    latency/size Pearson correlation: %.3f (paper 0.13)\n",
              stats::pearson_correlation(latencies_ms, sizes_kb));

  // --- (b) cached vs non-cached traffic per 30 min ---------------------------
  constexpr int kBins = 48;
  std::vector<std::uint64_t> cached(kBins, 0), uncached(kBins, 0);
  for (const auto& entry : log) {
    const auto bin = std::min<std::size_t>(
        static_cast<std::size_t>((entry.timestamp % sim::hours(24)) /
                                 sim::minutes(30)),
        kBins - 1);
    if (entry.source == gateway::ServedFrom::kP2p ||
        entry.source == gateway::ServedFrom::kFailed) {
      uncached[bin] += entry.bytes;
    } else {
      cached[bin] += entry.bytes;
    }
  }
  std::printf("\n(b) cached vs non-cached traffic (30-minute bins):\n");
  std::printf("%-8s %12s %12s %10s\n", "time", "cached", "non-cached",
              "cached%");
  for (int i = 0; i < kBins; i += 4) {  // print every 2 hours
    const double total = static_cast<double>(cached[i] + uncached[i]);
    std::printf("%02d:%02d    %12s %12s %9.1f%%\n", i / 2, (i % 2) * 30,
                stats::format_bytes(static_cast<double>(cached[i])).c_str(),
                stats::format_bytes(static_cast<double>(uncached[i])).c_str(),
                total == 0 ? 0.0 : 100.0 * cached[i] / total);
  }
  return 0;
}
