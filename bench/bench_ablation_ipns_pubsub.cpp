// Ablation: IPNS resolution latency — quorum DHT walk vs the pubsub
// fast path (paper Section 2.6).
//
// The paper notes that IPNS over the DHT "suffers from similar
// performance issues" as provider lookups, which is why go-ipfs ships
// the experimental --enable-namesys-pubsub fast path: followers of a
// name subscribe to its record topic and receive updates pushed through
// a GossipSub mesh instead of walking the DHT per resolve. This bench
// measures both paths against the same 10k-peer churning world:
//
//   dht_resolve       per-resolve latency of the quorum DHT walk
//   pubsub_resolve    steady-state resolve latency for a follower
//                     (cache hit: no network round trip at all)
//   pubsub_propagation publish -> follower-cache-updated latency, i.e.
//                     how stale a follower can ever be under pubsub
//
// Acceptance gate: the pubsub median resolve must be at least 5x below
// the DHT-only median. A reduced-scale determinism probe additionally
// replays a pubsub workload under both scheduler backends and requires
// byte-identical trace streams. Either failure exits non-zero.
//
// Writes a JSONL artifact (one sample per line) for plotting; path
// overridable via IPFS_BENCH_ARTIFACT.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "ipns/ipns.h"
#include "node/ipfs_node.h"
#include "stats/jsonl.h"
#include "stats/stats.h"

using namespace ipfs;

namespace {

// Replays a reduced-scale pubsub workload under the timer-wheel and the
// legacy binary-heap scheduler and compares the full exported trace
// streams byte-for-byte.
bool backend_determinism_probe(std::uint64_t seed) {
  std::string dumps[2];
  const sim::SchedulerBackend backends[2] = {
      sim::SchedulerBackend::kTimerWheel, sim::SchedulerBackend::kBinaryHeap};
  for (int b = 0; b < 2; ++b) {
    auto swarm = scenario::ScenarioBuilder()
                     .peers(24)
                     .seed(seed)
                     .single_region(25.0)
                     .scheduler(backends[b])
                     .trace_capacity(200'000)
                     .pubsub(true)
                     .build();
    constexpr char kTopic[] = "determinism-probe";
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < swarm.size(); ++i)
      swarm.pubsub(i).subscribe(
          kTopic, [&delivered](const pubsub::PubsubMessage&) { ++delivered; });
    swarm.simulator().run_until(sim::seconds(10));
    for (std::size_t i = 0; i < 4; ++i)
      swarm.pubsub(i).publish(kTopic,
                              {static_cast<std::uint8_t>(i), 0xAB, 0xCD});
    swarm.simulator().run_until(sim::seconds(20));
    swarm.simulator().run();
    std::ostringstream dump;
    stats::export_registry_jsonl(swarm.network().metrics(), dump);
    dumps[b] = dump.str();
  }
  return !dumps[0].empty() && dumps[0] == dumps[1];
}

void print_cdf_row(const char* label, const std::vector<double>& samples,
                   int failures) {
  if (samples.empty()) {
    std::printf("%-20s %10s (no successful samples, %d failures)\n", label,
                "-", failures);
    return;
  }
  const stats::Cdf cdf(samples);
  std::printf("%-20s %9zu %12.4f %12.4f %12.4f %10d\n", label,
              samples.size(), cdf.percentile(50), cdf.percentile(90),
              cdf.percentile(99), failures);
}

void dump_series(std::ofstream& out, const char* series, std::size_t peers,
                 const std::vector<double>& samples) {
  for (const double v : samples)
    out << "{\"bench\":\"ablation_ipns_pubsub\",\"series\":\"" << series
        << "\",\"peers\":" << peers << ",\"latency_s\":" << v << "}\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: IPNS resolve latency — DHT quorum walk vs pubsub",
      "Section 2.6: IPNS over the DHT is slow enough that go-ipfs ships "
      "an experimental pubsub fast path");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(10000, 400));
  const std::size_t follower_count = bench::scaled(16, 8);
  const int rounds = static_cast<int>(bench::scaled(10, 4));

  const auto world_ptr = bench::standard_world(peers);
  world::World& world = *world_ptr;
  sim::Simulator& simulator = world.simulator();

  // The measurement endpoints live outside the world's churn process:
  // the world provides the churning DHT fabric both paths run against.
  node::IpfsNodeConfig publisher_config;
  publisher_config.net.region = world::kEuCentral;
  publisher_config.identity_seed = 0x1B51;
  publisher_config.enable_pubsub = true;
  node::IpfsNode publisher(world.network(), publisher_config);

  std::vector<std::unique_ptr<node::IpfsNode>> followers;
  for (std::size_t i = 0; i < follower_count; ++i) {
    node::IpfsNodeConfig config;
    config.net.region = (i % 2) == 0 ? world::kUsEast : world::kEuCentral;
    config.identity_seed = 0xF0110 + i;
    config.enable_pubsub = true;
    followers.push_back(
        std::make_unique<node::IpfsNode>(world.network(), config));
  }
  publisher.bootstrap(world.bootstrap_refs(), [](bool) {});
  for (const auto& follower : followers)
    follower->bootstrap(world.bootstrap_refs(), [](bool) {});
  simulator.run();

  const multiformats::PeerId name = publisher.self().id;

  // Authoritative sequence-1 record on the DHT (nobody follows yet, so
  // the broadcast arm of publish_name is a no-op here).
  std::vector<std::uint8_t> content_v1(1024, 0x11);
  const auto cid_v1 = publisher.add(content_v1).root;
  bool published = false;
  publisher.publish_name(cid_v1, 1,
                         [&](bool ok, int) { published = ok; });
  simulator.run();
  if (!published) {
    std::printf("FAIL: initial IPNS publish did not reach the DHT\n");
    return 1;
  }

  // ---- Arm A: DHT-only resolves, spread across a churning hour ----------
  std::vector<double> dht_latencies;
  int dht_failures = 0;
  for (int round = 0; round < rounds; ++round) {
    simulator.run_until(simulator.now() + sim::minutes(2));
    for (const auto& follower : followers) {
      const sim::Time start = simulator.now();
      sim::Time end = start;
      bool ok = false;
      ipns::resolve(follower->dht(), name,
                    [&](std::optional<multiformats::Cid> target) {
                      end = simulator.now();
                      ok = target.has_value();
                    });
      simulator.run();
      if (ok)
        dht_latencies.push_back(sim::to_seconds(end - start));
      else
        ++dht_failures;
    }
  }

  // ---- Arm B: pubsub fast path -------------------------------------------
  // The measurement swarm wires itself as mutual pubsub candidates (the
  // ambient-discovery analogue), follows the name, and lets a few
  // heartbeats graft the record topic's mesh.
  std::vector<node::IpfsNode*> swarm{&publisher};
  for (const auto& follower : followers) swarm.push_back(follower.get());
  for (node::IpfsNode* a : swarm)
    for (node::IpfsNode* b : swarm)
      if (a != b) a->pubsub()->add_candidate_peer(b->node());
  for (const auto& follower : followers) follower->follow_name(name);
  simulator.run();
  simulator.run_until(simulator.now() + sim::seconds(30));

  // Publish sequence 2 and measure how fast the broadcast lands in every
  // follower's cache (20 ms polling granularity).
  std::vector<std::uint8_t> content_v2(1024, 0x22);
  const auto cid_v2 = publisher.add(content_v2).root;
  const sim::Time publish_time = simulator.now();
  publisher.publish_name(cid_v2, 2, [](bool, int) {});

  std::vector<double> propagation;
  std::size_t propagated = 0;
  const sim::Duration poll_every = sim::milliseconds(20);
  for (std::size_t i = 0; i < followers.size(); ++i) {
    auto poll = std::make_shared<std::function<void()>>();
    *poll = [&, i, poll] {
      const auto record = followers[i]->name_resolver()->cached(name);
      if (record && record->sequence >= 2) {
        propagation.push_back(sim::to_seconds(simulator.now() - publish_time));
        ++propagated;
        return;
      }
      if (simulator.now() - publish_time > sim::seconds(60)) return;
      simulator.schedule_after(poll_every, *poll);
    };
    simulator.schedule_after(poll_every, *poll);
  }
  simulator.run();

  // Steady-state follower resolves: the record topic keeps the cache
  // warm, so these answer locally while the world keeps churning.
  std::vector<double> pubsub_latencies;
  int pubsub_failures = 0;
  for (int round = 0; round < rounds; ++round) {
    simulator.run_until(simulator.now() + sim::minutes(2));
    for (const auto& follower : followers) {
      const sim::Time start = simulator.now();
      sim::Time end = start;
      bool ok = false;
      follower->resolve_name(name,
                             [&](std::optional<multiformats::Cid> target) {
                               end = simulator.now();
                               ok = target.has_value() && *target == cid_v2;
                             });
      simulator.run();
      if (ok)
        pubsub_latencies.push_back(sim::to_seconds(end - start));
      else
        ++pubsub_failures;
    }
  }

  // ---- Report -------------------------------------------------------------
  std::printf("world: %zu churning peers, %zu followers, %d rounds/arm\n\n",
              peers, follower_count, rounds);
  std::printf("%-20s %9s %12s %12s %12s %10s\n", "series (seconds)", "n",
              "p50", "p90", "p99", "failures");
  print_cdf_row("dht_resolve", dht_latencies, dht_failures);
  print_cdf_row("pubsub_resolve", pubsub_latencies, pubsub_failures);
  print_cdf_row("pubsub_propagation", propagation,
                static_cast<int>(followers.size() - propagated));

  const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
  const std::string artifact_path =
      artifact_env != nullptr && artifact_env[0] != '\0'
          ? artifact_env
          : "bench_ablation_ipns_pubsub.jsonl";
  std::ofstream artifact(artifact_path, std::ios::trunc);
  dump_series(artifact, "dht_resolve", peers, dht_latencies);
  dump_series(artifact, "pubsub_resolve", peers, pubsub_latencies);
  dump_series(artifact, "pubsub_propagation", peers, propagation);

  bool pass = true;
  if (dht_latencies.empty() || pubsub_latencies.empty()) {
    std::printf("\nFAIL: one of the arms produced no successful resolves\n");
    pass = false;
  } else {
    const double median_dht = stats::Cdf(dht_latencies).percentile(50);
    const double median_pubsub = stats::Cdf(pubsub_latencies).percentile(50);
    const double median_propagation =
        propagation.empty() ? -1.0 : stats::Cdf(propagation).percentile(50);
    // A cache hit costs zero simulated network time, so the ratio is
    // reported against the propagation latency too (the honest "how
    // fresh is the cache" number) — the gate itself is the paper-facing
    // resolve comparison.
    std::printf("\nmedian dht=%.4fs pubsub=%.4fs propagation=%.4fs\n",
                median_dht, median_pubsub, median_propagation);
    artifact << "{\"bench\":\"ablation_ipns_pubsub\",\"series\":\"summary\","
             << "\"peers\":" << peers << ",\"median_dht_s\":" << median_dht
             << ",\"median_pubsub_s\":" << median_pubsub
             << ",\"median_propagation_s\":" << median_propagation << "}\n";
    if (median_dht < 5.0 * median_pubsub) {
      std::printf("FAIL: pubsub median resolve is not 5x below DHT-only\n");
      pass = false;
    } else {
      std::printf("gate:     pubsub median resolve >= 5x below DHT-only: ok\n");
    }
    if (median_propagation > 0.0 && median_dht < median_propagation)
      std::printf("note: record propagation slower than a DHT walk\n");
  }
  std::printf("artifact: %s\n", artifact_path.c_str());

  const bool deterministic = backend_determinism_probe(bench::run_seed());
  std::printf("determinism probe (wheel vs heap trace bytes): %s\n",
              deterministic ? "identical" : "MISMATCH");

  return pass && deterministic ? 0 : 1;
}
