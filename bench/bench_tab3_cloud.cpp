// Table 3: percentage of nodes hosted on cloud providers.
#include <cstdio>

#include "common.h"
#include "crawler/census.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 3: share of nodes hosted on cloud providers",
      "Contabo 0.44 %, AWS 0.39 %, Azure 0.33 %, ... non-cloud 97.71 %");

  const auto world_ptr = bench::standard_world(bench::scaled(4000, 500));
  world::World& world = *world_ptr;
  const auto crawl = bench::crawl_world(world);
  const auto clouds = crawler::cloud_distribution(crawl, world.geodb());

  std::printf("%-4s %-28s %12s %14s\n", "rank", "provider", "IPs", "share");
  int rank = 1;
  double cloud_total = 0.0;
  for (const auto& entry : clouds) {
    if (entry.provider == "Non-Cloud") {
      std::printf("%-4s %-28s %12zu %13.2f%%\n", "-", entry.provider.c_str(),
                  entry.ip_count, entry.share * 100.0);
      continue;
    }
    cloud_total += entry.share;
    std::printf("%-4d %-28s %12zu %13.2f%%\n", rank++, entry.provider.c_str(),
                entry.ip_count, entry.share * 100.0);
  }
  std::printf("\ntotal cloud share: %.2f%% (paper: ~2.3%%)\n",
              cloud_total * 100.0);
  return 0;
}
