// Shared setup for the DHT-performance benches (Table 1, Figures 9/10,
// Table 4): builds a world and runs the Section 4.3 controlled
// experiment, returning the per-region publish/retrieval traces. Also
// home of the thread-parallel multi-trial runner the repeated-world
// benches (Figures 4a/5/7/8, fault sweep) shard their trials through.
#pragma once

#include <atomic>
#include <thread>

#include "common.h"
#include "workload/perf_experiment.h"

namespace ipfs::bench {

// ---------------------------------------------------------------------------
// Thread-parallel multi-trial runner.
//
// A trial is one fully deterministic simulation derived from a single
// seed — the simulator is single-threaded, so the way to use many cores
// is many independent trials. run_trials() shards trials base_seed+0 ..
// base_seed+trials-1 across a worker pool; the body must build its
// entire world from the seed it is handed (ScenarioBuilder makes that
// the path of least resistance) and must not touch shared state.
//
// Results come back indexed by trial — ascending seed, never completion
// order — so any fold over them (stats::fold_trials, concatenated
// JSONL via stats::fold_trials_jsonl) is byte-identical no matter how
// the threads interleave.
// ---------------------------------------------------------------------------

template <typename Result>
struct Trial {
  std::uint64_t seed = 0;
  Result result{};
};

// Worker-pool width: IPFS_BENCH_THREADS, default hardware concurrency.
inline std::size_t bench_threads() {
  if (const char* env = std::getenv("IPFS_BENCH_THREADS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Trial count: IPFS_BENCH_TRIALS, default `fallback`.
inline std::size_t bench_trials(std::size_t fallback = 1) {
  if (const char* env = std::getenv("IPFS_BENCH_TRIALS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

template <typename Body>
auto run_trials(std::size_t trials, std::uint64_t base_seed, Body&& body)
    -> std::vector<Trial<decltype(body(std::uint64_t{}))>> {
  using Result = decltype(body(std::uint64_t{}));
  std::vector<Trial<Result>> results(trials);
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      std::min(bench_threads(), std::max<std::size_t>(trials, 1));

  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < trials;
         i = next.fetch_add(1)) {
      const std::uint64_t seed = base_seed + i;
      results[i] = Trial<Result>{seed, body(seed)};
    }
  };
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  return results;
}

struct PerfRun {
  std::unique_ptr<world::World> world;
  std::unique_ptr<workload::PerfExperiment> experiment;
};

inline PerfRun run_perf_experiment(std::size_t world_peers,
                                   std::size_t cycles,
                                   bool bitswap_early_exit = false) {
  PerfRun run;
  run.world = scenario_builder(world_peers).build_world();

  // The perf benches analyze the publish/retrieve span families from the
  // trace stream; without a filter the world's ambient DHT traffic
  // (thousands of net.dial/net.rpc spans) would evict them from the
  // bounded recorder. Instruments are unaffected.
  run.world->network().metrics().set_trace_filter([](const std::string& name) {
    return name.starts_with("publish.") || name.starts_with("retrieve.");
  });

  workload::PerfExperimentConfig config;
  config.cycles = cycles;
  config.bitswap_early_exit = bitswap_early_exit;
  run.experiment =
      std::make_unique<workload::PerfExperiment>(*run.world, config);

  bool done = false;
  run.experiment->run([&] { done = true; });
  run.world->simulator().run();
  if (!done) std::printf("WARNING: experiment did not complete\n");
  return run;
}

inline std::vector<double> to_seconds(const std::vector<sim::Duration>& in) {
  std::vector<double> out;
  out.reserve(in.size());
  for (const auto d : in) out.push_back(sim::to_seconds(d));
  return out;
}

// Maps each measurement node's NodeId to its AWS region label, so trace
// events (which carry the observing node) can be bucketed per region.
inline std::map<metrics::NodeId, std::string> region_by_node(PerfRun& run) {
  std::map<metrics::NodeId, std::string> out;
  for (std::size_t i = 0; i < run.experiment->node_count(); ++i)
    out[run.experiment->node(i).node()] = workload::aws_regions()[i].name;
  return out;
}

}  // namespace ipfs::bench
