// Shared setup for the DHT-performance benches (Table 1, Figures 9/10,
// Table 4): builds a world and runs the Section 4.3 controlled
// experiment, returning the per-region publish/retrieval traces.
#pragma once

#include "common.h"
#include "workload/perf_experiment.h"

namespace ipfs::bench {

struct PerfRun {
  std::unique_ptr<world::World> world;
  std::unique_ptr<workload::PerfExperiment> experiment;
};

inline PerfRun run_perf_experiment(std::size_t world_peers,
                                   std::size_t cycles,
                                   bool bitswap_early_exit = false) {
  PerfRun run;
  run.world =
      std::make_unique<world::World>(default_world_config(world_peers));

  // The perf benches analyze the publish/retrieve span families from the
  // trace stream; without a filter the world's ambient DHT traffic
  // (thousands of net.dial/net.rpc spans) would evict them from the
  // bounded recorder. Instruments are unaffected.
  run.world->network().metrics().set_trace_filter([](const std::string& name) {
    return name.starts_with("publish.") || name.starts_with("retrieve.");
  });

  workload::PerfExperimentConfig config;
  config.cycles = cycles;
  config.bitswap_early_exit = bitswap_early_exit;
  run.experiment =
      std::make_unique<workload::PerfExperiment>(*run.world, config);

  bool done = false;
  run.experiment->run([&] { done = true; });
  run.world->simulator().run();
  if (!done) std::printf("WARNING: experiment did not complete\n");
  return run;
}

inline std::vector<double> to_seconds(const std::vector<sim::Duration>& in) {
  std::vector<double> out;
  out.reserve(in.size());
  for (const auto d : in) out.push_back(sim::to_seconds(d));
  return out;
}

// Maps each measurement node's NodeId to its AWS region label, so trace
// events (which carry the observing node) can be bucketed per region.
inline std::map<metrics::NodeId, std::string> region_by_node(PerfRun& run) {
  std::map<metrics::NodeId, std::string> out;
  for (std::size_t i = 0; i < run.experiment->node_count(); ++i)
    out[run.experiment->node(i).node()] = workload::aws_regions()[i].name;
  return out;
}

}  // namespace ipfs::bench
