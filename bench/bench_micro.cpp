// Micro-benchmarks of the hot primitives (google-benchmark): hashing,
// signatures, CID/multiaddr codecs, routing-table queries, chunking.
#include <benchmark/benchmark.h>

#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "dht/routing_table.h"
#include "merkledag/merkledag.h"
#include "multiformats/cid.h"
#include "multiformats/multiaddr.h"
#include "scenario/scenario.h"
#include "sim/parallel/shard_engine.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "world/world.h"

namespace {

using namespace ipfs;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(256 * 1024);

void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed[0] = 7;
  const auto keypair = crypto::ed25519_keypair(seed);
  const auto message = random_bytes(256, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519_sign(keypair, message));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed[0] = 8;
  const auto keypair = crypto::ed25519_keypair(seed);
  const auto message = random_bytes(256, 3);
  const auto signature = crypto::ed25519_sign(keypair, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::ed25519_verify(keypair.public_key, message, signature));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_CidFromData(benchmark::State& state) {
  const auto data = random_bytes(4096, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multiformats::Cid::from_data(multiformats::Multicodec::kRaw, data));
  }
}
BENCHMARK(BM_CidFromData);

void BM_CidParseBase32(benchmark::State& state) {
  const auto cid =
      multiformats::Cid::from_data(multiformats::Multicodec::kRaw,
                                   random_bytes(100, 5));
  const auto text = cid.to_string();
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiformats::Cid::parse(text));
  }
}
BENCHMARK(BM_CidParseBase32);

void BM_MultiaddrParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multiformats::Multiaddr::parse("/ip4/147.75.83.83/tcp/4001"));
  }
}
BENCHMARK(BM_MultiaddrParse);

void BM_RoutingTableClosest(benchmark::State& state) {
  dht::RoutingTable table(
      dht::Key::for_peer(world::synthetic_peer_id(0)));
  for (std::uint64_t i = 1; i <= 4000; ++i) {
    table.upsert(dht::PeerRef{world::synthetic_peer_id(i),
                              static_cast<sim::NodeId>(i),
                              {}});
  }
  const dht::Key target = dht::Key::hash_of(random_bytes(32, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest(target, 20));
  }
}
BENCHMARK(BM_RoutingTableClosest);

void BM_ChunkAndBuildDag(benchmark::State& state) {
  const auto data = random_bytes(512 * 1024, 7);
  for (auto _ : state) {
    blockstore::BlockStore store;
    benchmark::DoNotOptimize(merkledag::import_bytes(store, data));
  }
  state.SetBytesProcessed(state.iterations() * 512 * 1024);
}
BENCHMARK(BM_ChunkAndBuildDag);

// --- scheduler backends: timer wheel vs. reference binary heap -------
//
// The three workloads that dominate simulation runs: pure scheduling
// throughput, schedule-then-cancel churn (every network timeout that
// never fires), and full drain in timestamp order. Arg(1) selects the
// backend: 0 = timer wheel, 1 = binary heap.

sim::SchedulerBackend backend_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? sim::SchedulerBackend::kTimerWheel
                             : sim::SchedulerBackend::kBinaryHeap;
}

void BM_SchedulerSchedule(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator(backend_arg(state));
    sim::Rng rng(11);
    for (std::size_t i = 0; i < n; ++i) {
      simulator.schedule_after(
          sim::milliseconds(rng.uniform(0.0, 30'000.0)), [] {});
    }
    benchmark::DoNotOptimize(simulator.pending_events());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerSchedule)
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerCancel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::Timer> timers;
  timers.reserve(n);
  for (auto _ : state) {
    sim::Simulator simulator(backend_arg(state));
    sim::Rng rng(12);
    timers.clear();
    for (std::size_t i = 0; i < n; ++i) {
      timers.push_back(simulator.schedule_after(
          sim::milliseconds(rng.uniform(0.0, 30'000.0)), [] {}));
    }
    for (auto& timer : timers) timer.cancel();
    benchmark::DoNotOptimize(simulator.foreground_pending());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancel)
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerDrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator(backend_arg(state));
    sim::Rng rng(13);
    for (std::size_t i = 0; i < n; ++i) {
      simulator.schedule_after(
          sim::milliseconds(rng.uniform(0.0, 30'000.0)), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerDrain)
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond);

// --- sharded parallel event core (src/sim/parallel) ------------------
//
// Drain throughput of the sharded engine at 1/2/4/8 shards against the
// legacy Simulator (Arg 0). Same synthetic workload as the scheduler
// drain: events spread over 1024 origins and a 30 s horizon, each a
// trivial callback, so the number measures pure event-core overhead
// (slab allocation, heap merge, window barriers).

void BM_ShardEngineDrain(benchmark::State& state) {
  constexpr std::size_t kEvents = 100'000;
  constexpr std::uint32_t kOrigins = 1024;
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Rng rng(14);
    if (shards == 0) {
      sim::Simulator simulator;
      for (std::size_t i = 0; i < kEvents; ++i) {
        simulator.schedule_after(
            sim::milliseconds(rng.uniform(0.0, 30'000.0)), [] {});
      }
      benchmark::DoNotOptimize(simulator.run());
    } else {
      sim::parallel::ShardEngine engine(shards, sim::milliseconds(15),
                                        nullptr);
      for (std::size_t i = 0; i < kEvents; ++i) {
        const auto origin = static_cast<std::uint32_t>(i % kOrigins);
        engine.post(origin, origin % shards,
                    sim::milliseconds(rng.uniform(0.0, 30'000.0)),
                    /*daemon=*/false, [] {});
      }
      benchmark::DoNotOptimize(engine.run());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_ShardEngineDrain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WorldConstruction(benchmark::State& state) {
  for (auto _ : state) {
    const auto world = scenario::ScenarioBuilder()
                           .peers(static_cast<std::size_t>(state.range(0)))
                           .seed(1)
                           .build_world();
    benchmark::DoNotOptimize(world->size());
  }
}
BENCHMARK(BM_WorldConstruction)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
