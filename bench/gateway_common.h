// Shared setup for the gateway benches (Figures 4b, 6, 11a/b, Table 5):
// a world, a gateway in the US (where the sampled ipfs.io instance
// lives), a handful of content-host nodes serving the catalog, and one
// simulated day of client traffic.
#pragma once

#include <memory>
#include <vector>

#include "common.h"
#include "gateway/fleet.h"
#include "gateway/gateway.h"
#include "workload/gateway_workload.h"

namespace ipfs::bench {

struct GatewayExperiment {
  std::unique_ptr<world::World> world;
  std::unique_ptr<gateway::Gateway> gateway;
  std::vector<std::unique_ptr<node::IpfsNode>> hosts;
  std::unique_ptr<workload::GatewayWorkload> workload;
};

struct FleetExperiment {
  std::unique_ptr<world::World> world;
  std::unique_ptr<gateway::GatewayFleet> fleet;
  std::vector<std::unique_ptr<node::IpfsNode>> hosts;
  std::unique_ptr<workload::GatewayWorkload> workload;
};

// Seeds provider records for `key` directly onto the 20 closest world
// peers — the steady state after a (re)publication, without simulating
// hundreds of publication walks the gateway figures do not measure.
inline void seed_provider_records(world::World& world, const dht::Key& key,
                                  const dht::PeerRef& provider) {
  struct Scored {
    std::array<std::uint8_t, 32> distance;
    std::size_t index;
  };
  std::vector<Scored> scored;
  scored.reserve(world.size());
  for (std::size_t i = 0; i < world.size(); ++i) {
    scored.push_back(
        {dht::Key::for_peer(world.ref(i).id).distance_to(key), i});
  }
  const std::size_t take = std::min<std::size_t>(dht::kReplication,
                                                 scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.distance < b.distance;
                    });
  const sim::Time now = world.simulator().now();
  for (std::size_t i = 0; i < take; ++i) {
    world.dht(scored[i].index)
        .record_store()
        .add_provider(key, dht::ProviderRecord{provider, now});
  }
}

inline GatewayExperiment setup_gateway_experiment(
    std::size_t world_peers, std::size_t catalog_size,
    std::uint64_t requests, sim::Duration duration = sim::hours(24)) {
  GatewayExperiment experiment;
  experiment.world = scenario_builder(world_peers).build_world();
  auto& world = *experiment.world;

  // The gateway benches read the gateway.* instruments and instants; keep
  // a simulated day of ambient world traffic out of the trace recorder.
  world.network().metrics().set_trace_filter([](const std::string& name) {
    return name.starts_with("gateway.");
  });

  // The gateway: a beefy, reliable US node (Section 4.2: the sampled
  // instance is located in the US).
  gateway::GatewayConfig gateway_config;
  gateway_config.node.net.region = world::kUsEast;
  gateway_config.node.net.upload_bytes_per_sec = 200.0 * 1024 * 1024;
  gateway_config.node.net.download_bytes_per_sec = 200.0 * 1024 * 1024;
  gateway_config.node.identity_seed = 0x6A7E;
  gateway_config.node.provide_after_fetch = false;
  gateway_config.nginx_cache_bytes = 18ull * 1024 * 1024;
  experiment.gateway = std::make_unique<gateway::Gateway>(world.network(),
                                                          gateway_config);

  workload::GatewayWorkloadConfig workload_config;
  workload_config.catalog_size = catalog_size;
  workload_config.requests_total = requests;
  workload_config.duration = duration;
  experiment.workload = std::make_unique<workload::GatewayWorkload>(
      workload_config, sim::Rng(run_seed()).fork("gateway-workload"));

  // Content hosts spread over the world's regions.
  const int host_regions[] = {world::kUsEast, world::kEuCentral,
                              world::kAsiaEast, world::kUsWest};
  for (int i = 0; i < 4; ++i) {
    node::IpfsNodeConfig host_config;
    host_config.net.region = host_regions[i];
    host_config.net.upload_bytes_per_sec = 30.0 * 1024 * 1024;
    host_config.net.download_bytes_per_sec = 30.0 * 1024 * 1024;
    host_config.identity_seed = 0x405700 + i;
    experiment.hosts.push_back(
        std::make_unique<node::IpfsNode>(world.network(), host_config));
  }

  experiment.gateway->bootstrap(world.bootstrap_refs(), [](bool) {});
  for (auto& host : experiment.hosts)
    host->bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  // Import the catalog: hosts hold everything; the pinned share also
  // lives in the gateway's node store (Web3/NFT Storage content).
  auto& catalog = experiment.workload->catalog();
  for (std::size_t rank = 0; rank < catalog.size(); ++rank) {
    const auto bytes = experiment.workload->object_bytes(rank);
    auto& host = *experiment.hosts[rank % experiment.hosts.size()];
    const auto import = host.add(bytes);
    catalog[rank].cid = import.root;
    catalog[rank].host = rank % experiment.hosts.size();
    if (catalog[rank].pinned) experiment.gateway->pin_object(bytes);

    // Provider records as a fresh publication would have left them,
    // refreshed again mid-day (the 12 h republish).
    const dht::Key key = dht::Key::for_cid(import.root);
    seed_provider_records(world, key, host.self());
    world.simulator().schedule_daemon_after(
        sim::hours(11.5), [&world, key, ref = host.self()] {
          seed_provider_records(world, key, ref);
        });
  }

  return experiment;
}

// Same world/hosts/catalog scaffolding, but serving through a
// GatewayFleet: `replicas` consistent-hash-routed gateways, each with
// the single instance's 18 MiB edge cache (TinyLFU-admitted), over one
// shared origin tier. Pinned catalog objects land on their ring owner.
inline FleetExperiment setup_fleet_experiment(
    std::size_t world_peers, std::size_t catalog_size, std::uint64_t requests,
    std::size_t replicas, sim::Duration duration = sim::hours(24)) {
  FleetExperiment experiment;
  experiment.world = scenario_builder(world_peers).build_world();
  auto& world = *experiment.world;

  world.network().metrics().set_trace_filter([](const std::string& name) {
    return name.starts_with("gateway.");
  });

  gateway::FleetConfig fleet_config;
  fleet_config.replicas = replicas;
  fleet_config.replica.node.net.region = world::kUsEast;
  fleet_config.replica.node.net.upload_bytes_per_sec = 200.0 * 1024 * 1024;
  fleet_config.replica.node.net.download_bytes_per_sec = 200.0 * 1024 * 1024;
  fleet_config.replica.node.identity_seed = 0x6A7E;
  fleet_config.replica.node.provide_after_fetch = false;
  fleet_config.replica.nginx_cache_bytes = 18ull * 1024 * 1024;
  fleet_config.origin_cache_bytes = 64ull * 1024 * 1024;
  experiment.fleet = std::make_unique<gateway::GatewayFleet>(world.network(),
                                                             fleet_config);

  workload::GatewayWorkloadConfig workload_config;
  workload_config.catalog_size = catalog_size;
  workload_config.requests_total = requests;
  workload_config.duration = duration;
  experiment.workload = std::make_unique<workload::GatewayWorkload>(
      workload_config, sim::Rng(run_seed()).fork("gateway-workload"));

  const int host_regions[] = {world::kUsEast, world::kEuCentral,
                              world::kAsiaEast, world::kUsWest};
  for (int i = 0; i < 4; ++i) {
    node::IpfsNodeConfig host_config;
    host_config.net.region = host_regions[i];
    host_config.net.upload_bytes_per_sec = 30.0 * 1024 * 1024;
    host_config.net.download_bytes_per_sec = 30.0 * 1024 * 1024;
    host_config.identity_seed = 0x405700 + i;
    experiment.hosts.push_back(
        std::make_unique<node::IpfsNode>(world.network(), host_config));
  }

  experiment.fleet->bootstrap(world.bootstrap_refs(), [](bool) {});
  for (auto& host : experiment.hosts)
    host->bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  auto& catalog = experiment.workload->catalog();
  for (std::size_t rank = 0; rank < catalog.size(); ++rank) {
    const auto bytes = experiment.workload->object_bytes(rank);
    auto& host = *experiment.hosts[rank % experiment.hosts.size()];
    const auto import = host.add(bytes);
    catalog[rank].cid = import.root;
    catalog[rank].host = rank % experiment.hosts.size();
    if (catalog[rank].pinned) experiment.fleet->pin_object(bytes);

    const dht::Key key = dht::Key::for_cid(import.root);
    seed_provider_records(world, key, host.self());
    world.simulator().schedule_daemon_after(
        sim::hours(11.5), [&world, key, ref = host.self()] {
          seed_provider_records(world, key, ref);
        });
  }

  return experiment;
}

}  // namespace ipfs::bench
