// Table 1: number of publication and retrieval operations per AWS
// region in the controlled performance experiment.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 1: publication and retrieval counts per AWS region",
      "547 publications and 2047-2708 retrievals per region "
      "(3281 / 14564 total)");

  auto run = bench::run_perf_experiment(bench::scaled(1200, 300),
                                        bench::scaled(24, 6));
  const auto& results = run.experiment->results();

  std::printf("%-16s %14s %12s\n", "AWS Region", "Publications",
              "Retrievals");
  for (const auto& region : workload::aws_regions()) {
    const auto pub = results.publishes.find(region.name);
    const auto ret = results.retrievals.find(region.name);
    std::printf("%-16s %14zu %12zu\n", region.name.c_str(),
                pub == results.publishes.end() ? 0 : pub->second.size(),
                ret == results.retrievals.end() ? 0 : ret->second.size());
  }
  std::printf("%-16s %14zu %12zu\n", "Total", results.publish_count(),
              results.retrieval_count());
  std::printf("\nretrieval success rate: %.1f%% (paper: 100%%)\n",
              100.0 * static_cast<double>(results.retrieval_successes()) /
                  static_cast<double>(results.retrieval_count()));
  return 0;
}
