// Figure 8: churn — CDFs of DHT peer session lengths (uptime) per
// region, from adaptive uptime probing with long-session handling.
#include <cstdio>

#include "common.h"
#include "crawler/census.h"
#include "crawler/uptime_prober.h"
#include "stats/stats.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 8: session-length CDFs by region",
      "87.6 % of sessions < 8 h, 2.5 % > 24 h; median HK 24.2 min, "
      "DE roughly double that");

  world::World world(bench::default_world_config(bench::scaled(1800, 350)));
  const auto crawl = bench::crawl_world(world);

  sim::NodeConfig prober_config;
  prober_config.region = world::kEuCentral;
  prober_config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  prober_config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  const sim::NodeId prober_node = world.network().add_node(prober_config);

  crawler::UptimeProber prober(world.network(), prober_node);
  for (const auto& obs : crawl.observations) prober.track(obs.peer);

  const sim::Time window_start = world.simulator().now();
  const sim::Duration window = sim::hours(bench::scaled(14, 3));
  world.simulator().run_until(window_start + window);
  prober.finish();

  const auto by_country = crawler::session_lengths_by_country(
      prober.sessions(), world.geodb(), window_start,
      world.simulator().now());

  // Aggregate shape checks.
  std::vector<double> all_hours;
  for (const auto& [code, sessions] : by_country)
    all_hours.insert(all_hours.end(), sessions.begin(), sessions.end());
  if (all_hours.empty()) {
    std::printf("no sessions observed -- window too short\n");
    return 1;
  }
  const stats::Cdf all_cdf(all_hours);
  std::printf("sessions observed: %zu (probes sent: %llu)\n",
              all_hours.size(),
              static_cast<unsigned long long>(prober.probes_sent()));
  std::printf("share of sessions under 8 h: %.1f%% (paper 87.6%%)\n",
              all_cdf.at(8.0) * 100.0);
  std::printf("median session: %.1f min\n\n",
              all_cdf.percentile(50) * 60.0);

  std::printf("%-8s %8s %12s %12s %12s\n", "region", "n", "median",
              "p90", "under 8h");
  for (const auto code : {"HK", "DE", "US", "CN", "FR", "TW", "KR"}) {
    const auto it = by_country.find(code);
    if (it == by_country.end() || it->second.size() < 5) continue;
    const stats::Cdf cdf(it->second);
    std::printf("%-8s %8zu %9.1f min %9.1f min %11.1f%%\n", code,
                it->second.size(), cdf.percentile(50) * 60.0,
                cdf.percentile(90) * 60.0, cdf.at(8.0) * 100.0);
  }

  std::printf("\nCDF series (hours vs cumulative fraction):\n");
  for (const auto code : {"HK", "DE", "US", "CN"}) {
    const auto it = by_country.find(code);
    if (it == by_country.end() || it->second.size() < 5) continue;
    std::printf("%s", stats::render_cdf_series(code, stats::Cdf(it->second),
                                               10)
                          .c_str());
  }
  return 0;
}
