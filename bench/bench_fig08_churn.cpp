// Figure 8: churn — CDFs of DHT peer session lengths (uptime) per
// region, from adaptive uptime probing with long-session handling.
// Trials shard across cores (IPFS_BENCH_TRIALS); per-trial session
// samples fold in seed order (stats::fold_trials) before the aggregate
// CDF is computed, so the multi-threaded output is byte-stable.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "crawler/census.h"
#include "crawler/uptime_prober.h"
#include "perf_common.h"
#include "stats/stats.h"

using namespace ipfs;

namespace {

struct ChurnTrial {
  std::string rendered;
  std::vector<double> session_hours;
  std::uint64_t probes_sent = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: session-length CDFs by region",
      "87.6 % of sessions < 8 h, 2.5 % > 24 h; median HK 24.2 min, "
      "DE roughly double that");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(1800, 350));
  const std::size_t trials = bench::bench_trials(1);

  const auto results = bench::run_trials(
      trials, bench::run_seed(), [&](std::uint64_t seed) {
        const auto world = bench::scenario_builder(peers, seed).build_world();
        const auto crawl = bench::crawl_world(*world);
        ChurnTrial trial;

        const sim::NodeId prober_node = world->network().add_node(
            sim::NodeConfig()
                .with_region(world::kEuCentral)
                .with_bandwidth(100.0 * 1024 * 1024, 100.0 * 1024 * 1024));
        crawler::UptimeProber prober(world->network(), prober_node);
        for (const auto& obs : crawl.observations) prober.track(obs.peer);

        const sim::Time window_start = world->simulator().now();
        const sim::Duration window = sim::hours(bench::scaled(14, 3));
        world->simulator().run_until(window_start + window);
        prober.finish();
        trial.probes_sent = prober.probes_sent();

        const auto by_country = crawler::session_lengths_by_country(
            prober.sessions(), world->geodb(), window_start,
            world->simulator().now());
        for (const auto& [code, sessions] : by_country)
          trial.session_hours.insert(trial.session_hours.end(),
                                     sessions.begin(), sessions.end());

        std::ostringstream out;
        char line[128];
        std::snprintf(line, sizeof(line), "%-8s %8s %12s %12s %12s\n",
                      "region", "n", "median", "p90", "under 8h");
        out << line;
        for (const auto code : {"HK", "DE", "US", "CN", "FR", "TW", "KR"}) {
          const auto it = by_country.find(code);
          if (it == by_country.end() || it->second.size() < 5) continue;
          const stats::Cdf cdf(it->second);
          std::snprintf(line, sizeof(line),
                        "%-8s %8zu %9.1f min %9.1f min %11.1f%%\n", code,
                        it->second.size(), cdf.percentile(50) * 60.0,
                        cdf.percentile(90) * 60.0, cdf.at(8.0) * 100.0);
          out << line;
        }
        out << "\nCDF series (hours vs cumulative fraction):\n";
        for (const auto code : {"HK", "DE", "US", "CN"}) {
          const auto it = by_country.find(code);
          if (it == by_country.end() || it->second.size() < 5) continue;
          out << stats::render_cdf_series(code, stats::Cdf(it->second), 10);
        }
        trial.rendered = out.str();
        return trial;
      });

  // Fold all trials' session samples in seed order; with one trial this
  // is exactly the single-world aggregate.
  std::vector<stats::TrialSamples> folds;
  std::uint64_t probes_sent = 0;
  for (const auto& trial : results) {
    folds.push_back({trial.seed, trial.result.session_hours});
    probes_sent += trial.result.probes_sent;
  }
  const std::vector<double> all_hours = stats::fold_trials(std::move(folds));
  if (all_hours.empty()) {
    std::printf("no sessions observed -- window too short\n");
    return 1;
  }
  const stats::Cdf all_cdf(all_hours);
  std::printf("sessions observed: %zu (probes sent: %llu, %zu trial(s))\n",
              all_hours.size(), static_cast<unsigned long long>(probes_sent),
              trials);
  std::printf("share of sessions under 8 h: %.1f%% (paper 87.6%%)\n",
              all_cdf.at(8.0) * 100.0);
  std::printf("median session: %.1f min\n\n",
              all_cdf.percentile(50) * 60.0);

  std::printf("%s", results[0].result.rendered.c_str());
  return 0;
}
