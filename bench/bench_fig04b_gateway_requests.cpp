// Figure 4b: request count at the gateway over one day (5-minute bins
// in the paper; 30-minute bins here to keep the output readable).
#include <cstdio>

#include "gateway_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 4b: gateway request rate over one day",
      "7.1 M requests/day at ipfs.io with a clear diurnal swing "
      "(volume scaled down in simulation)");

  auto experiment = bench::setup_gateway_experiment(
      bench::scaled(900, 250), bench::scaled(160, 40),
      bench::scaled(12000, 1500));
  auto& world = *experiment.world;

  experiment.workload->run(*experiment.gateway);
  world.simulator().run_until(sim::hours(24) + world.simulator().now());
  world.simulator().run();

  const auto& log = experiment.workload->log();
  std::printf("requests served: %zu\n\n", log.size());

  constexpr int kBins = 48;  // 30-minute bins
  std::vector<std::size_t> bins(kBins, 0);
  for (const auto& entry : log) {
    const auto bin = static_cast<std::size_t>(
        (entry.timestamp % sim::hours(24)) / sim::minutes(30));
    ++bins[std::min<std::size_t>(bin, kBins - 1)];
  }

  const std::size_t peak = *std::max_element(bins.begin(), bins.end());
  std::printf("%-8s %8s  histogram\n", "time", "requests");
  for (int i = 0; i < kBins; ++i) {
    const int hour = i / 2;
    const int minute = (i % 2) * 30;
    const int bar = peak == 0 ? 0 : static_cast<int>(bins[i] * 40 / peak);
    std::printf("%02d:%02d    %8zu  %s\n", hour, minute, bins[i],
                std::string(bar, '#').c_str());
  }

  const std::size_t trough = *std::min_element(bins.begin(), bins.end());
  std::printf("\npeak/trough ratio: %.2f (paper shows a pronounced "
              "diurnal swing)\n",
              trough == 0 ? 0.0
                          : static_cast<double>(peak) /
                                static_cast<double>(trough));
  return 0;
}
