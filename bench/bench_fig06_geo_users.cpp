// Figure 6: geographical distribution of users requesting content via
// the gateway.
#include <cstdio>

#include "gateway_common.h"
#include "world/geography.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 6: gateway users by country",
      "US 50.4 %, CN 31.9 %, HK 6.6 %, CA 4.6 %, JP 1.7 % "
      "(the sampled instance is in the US)");

  auto experiment = bench::setup_gateway_experiment(
      bench::scaled(700, 250), bench::scaled(120, 40),
      bench::scaled(8000, 1500));
  auto& world = *experiment.world;

  experiment.workload->run(*experiment.gateway);
  world.simulator().run_until(world.simulator().now() + sim::hours(24));
  world.simulator().run();

  const auto& log = experiment.workload->log();
  std::map<std::string, std::size_t> by_country;
  for (const auto& entry : log)
    ++by_country[std::string(
        world::countries()[entry.user_country].code)];

  const std::map<std::string, double> paper = {{"US", 0.504},
                                               {"CN", 0.319},
                                               {"HK", 0.066},
                                               {"CA", 0.046},
                                               {"JP", 0.017}};

  std::vector<std::pair<std::string, std::size_t>> sorted(by_country.begin(),
                                                          by_country.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });

  std::printf("%-10s %10s %12s %10s\n", "country", "requests", "measured",
              "paper");
  for (const auto& [code, count] : sorted) {
    const double share =
        static_cast<double>(count) / static_cast<double>(log.size());
    const auto it = paper.find(code);
    if (share < 0.005 && it == paper.end()) continue;
    std::printf("%-10s %10zu %11.1f%% %9s\n", code.c_str(), count,
                share * 100.0,
                it == paper.end()
                    ? "-"
                    : (std::to_string(it->second * 100.0).substr(0, 4) + "%")
                          .c_str());
  }
  return 0;
}
