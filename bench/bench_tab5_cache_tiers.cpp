// Table 5: traffic and latencies by serving tier — nginx cache, the
// gateway node's store (pinned content), and the P2P network.
#include <cstdio>

#include "gateway_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 5: gateway serving tiers",
      "nginx: 0 s median / 46.0 % of requests; node store: 8 ms / 40.2 %; "
      "non-cached: 4.04 s / 13.8 %");

  auto experiment = bench::setup_gateway_experiment(
      bench::scaled(1000, 250), bench::scaled(180, 40),
      bench::scaled(14000, 1500));
  auto& world = *experiment.world;

  experiment.workload->run(*experiment.gateway);
  world.simulator().run_until(world.simulator().now() + sim::hours(24));
  world.simulator().run();

  const auto& log = experiment.workload->log();

  struct Tier {
    const char* name;
    gateway::ServedFrom source;
  };
  const Tier tiers[] = {
      {"nginx cache", gateway::ServedFrom::kNginxCache},
      {"IPFS node store", gateway::ServedFrom::kNodeStore},
      {"Non-cached (P2P)", gateway::ServedFrom::kP2p},
  };

  std::uint64_t total_bytes = 0;
  std::size_t total_requests = 0;
  for (const auto& entry : log) {
    if (entry.source == gateway::ServedFrom::kFailed) continue;
    total_bytes += entry.bytes;
    ++total_requests;
  }

  std::printf("%-18s %14s %16s %16s\n", "", "latency p50", "traffic served",
              "requests served");
  for (const auto& tier : tiers) {
    std::vector<double> latencies;
    std::uint64_t bytes = 0;
    std::size_t requests = 0;
    for (const auto& entry : log) {
      if (entry.source != tier.source) continue;
      latencies.push_back(sim::to_seconds(entry.latency));
      bytes += entry.bytes;
      ++requests;
    }
    if (latencies.empty()) {
      std::printf("%-18s %14s %15.1f%% %15.1f%%\n", tier.name, "-", 0.0, 0.0);
      continue;
    }
    std::printf("%-18s %14s %15.1f%% %15.1f%%\n", tier.name,
                bench::secs(stats::percentile(latencies, 50)).c_str(),
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(total_bytes),
                100.0 * static_cast<double>(requests) /
                    static_cast<double>(total_requests));
  }

  const double hit_requests =
      static_cast<double>(experiment.gateway->stats(
                              gateway::ServedFrom::kNginxCache).requests +
                          experiment.gateway->stats(
                              gateway::ServedFrom::kNodeStore).requests);
  std::printf("\ncombined cache hit rate: %.1f%% (paper: >80%% of requests)\n",
              100.0 * hit_requests /
                  static_cast<double>(experiment.gateway->total_requests()));
  std::printf("nginx cache evictions: %llu\n",
              static_cast<unsigned long long>(
                  experiment.gateway->nginx_cache().evictions()));
  return 0;
}
