// Table 5: traffic and latencies by serving tier — nginx cache, the
// gateway node's store (pinned content), and the P2P network.
//
// The breakdown is derived from the metrics registry the gateway's single
// accounting point feeds (gateway.tier.<name>.{requests,bytes} counters
// and gateway.latency.<name> histograms), not from the workload's own
// request log; the conservation identity sum(tier requests) ==
// gateway.requests is checked in passing.
#include <cstdio>

#include "gateway_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 5: gateway serving tiers",
      "nginx: 0 s median / 46.0 % of requests; node store: 8 ms / 40.2 %; "
      "non-cached: 4.04 s / 13.8 %");

  auto experiment = bench::setup_gateway_experiment(
      bench::scaled(1000, 250), bench::scaled(180, 40),
      bench::scaled(14000, 1500));
  auto& world = *experiment.world;

  experiment.workload->run(*experiment.gateway);
  world.simulator().run_until(world.simulator().now() + sim::hours(24));
  world.simulator().run();

  const metrics::Registry& registry = world.network().metrics();

  struct Tier {
    const char* label;
    const char* metric;  // tier segment of the metric names
  };
  const Tier tiers[] = {
      {"nginx cache", "nginx_cache"},
      {"IPFS node store", "node_store"},
      {"Non-cached (P2P)", "p2p"},
  };

  // Shares are over served requests; failures are excluded from the
  // denominator (the paper's table reports delivered traffic).
  std::uint64_t total_bytes = 0, total_served = 0;
  for (const Tier& tier : tiers) {
    total_bytes += registry.counter_value(
        std::string("gateway.tier.") + tier.metric + ".bytes");
    total_served += registry.counter_value(
        std::string("gateway.tier.") + tier.metric + ".requests");
  }

  std::printf("%-18s %14s %16s %16s\n", "", "latency p50", "traffic served",
              "requests served");
  for (const Tier& tier : tiers) {
    const std::string prefix = std::string("gateway.tier.") + tier.metric;
    const std::uint64_t requests =
        registry.counter_value(prefix + ".requests");
    const std::uint64_t bytes = registry.counter_value(prefix + ".bytes");
    const auto& histogram = registry.histograms().find(
        std::string("gateway.latency.") + tier.metric);
    if (requests == 0 || histogram == registry.histograms().end()) {
      std::printf("%-18s %14s %15.1f%% %15.1f%%\n", tier.label, "-", 0.0, 0.0);
      continue;
    }
    const stats::Cdf latency(histogram->second.samples_seconds());
    std::printf("%-18s %14s %15.1f%% %15.1f%%\n", tier.label,
                bench::secs(latency.percentile(50)).c_str(),
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(total_bytes),
                100.0 * static_cast<double>(requests) /
                    static_cast<double>(total_served));
  }

  // Conservation: every request accounted in exactly one tier.
  const std::uint64_t failed =
      registry.counter_value("gateway.tier.failed.requests");
  const std::uint64_t total = registry.counter_value("gateway.requests");
  std::printf("\ntier conservation: %llu served + %llu failed = %llu total "
              "(gateway reports %llu) %s\n",
              static_cast<unsigned long long>(total_served),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(total_served + failed),
              static_cast<unsigned long long>(total),
              total_served + failed == total &&
                      total == experiment.gateway->total_requests()
                  ? "OK"
                  : "VIOLATED");

  const double hit_requests = static_cast<double>(
      registry.counter_value("gateway.tier.nginx_cache.requests") +
      registry.counter_value("gateway.tier.node_store.requests"));
  std::printf("combined cache hit rate: %.1f%% (paper: >80%% of requests)\n",
              100.0 * hit_requests / static_cast<double>(total));
  std::printf("nginx cache evictions: %llu\n",
              static_cast<unsigned long long>(
                  experiment.gateway->nginx_cache().evictions()));
  return 0;
}
