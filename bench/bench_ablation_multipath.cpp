// Ablation: multi-path Bitswap sessions (the optimization of the
// paper's reference [20], "Accelerating Content Routing with Bitswap: A
// Multi-Path File Transfer Protocol in IPFS and Filecoin").
//
// Once several peers hold an object (every retriever becomes a
// temporary provider, Section 3.1), striping block requests across them
// aggregates their uplinks. This bench fetches objects of growing size
// from 1, 2 and 4 providers.
#include <cstdio>

#include "bitswap/session.h"
#include "common.h"
#include "merkledag/merkledag.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Ablation: multi-path Bitswap sessions (paper ref [20])",
      "hypothesis: provider uplinks aggregate; large objects download "
      "roughly providers-times faster");

  scenario::Scenario scenario = bench::scenario_builder(0)
                                    .world_geography()
                                    .build();
  sim::Simulator& simulator = scenario.simulator();
  sim::Network& network = scenario.network();

  // A well-connected requester; home-grade providers (3 MiB/s up).
  const sim::NodeId requester_node = network.add_node(
      sim::NodeConfig()
          .with_region(world::kEuCentral)
          .with_download(100.0 * 1024 * 1024));
  constexpr int kProviders = 4;
  sim::NodeId provider_nodes[kProviders];
  blockstore::BlockStore provider_stores[kProviders];
  std::vector<std::unique_ptr<bitswap::Bitswap>> provider_bitswaps;
  const int provider_regions[] = {world::kEuCentral, world::kUsEast,
                                  world::kAsiaEast, world::kUsWest};
  for (int i = 0; i < kProviders; ++i) {
    provider_nodes[i] = network.add_node(
        sim::NodeConfig()
            .with_region(provider_regions[i])
            .with_upload(3.0 * 1024 * 1024));
    provider_bitswaps.push_back(std::make_unique<bitswap::Bitswap>(
        network, provider_nodes[i], provider_stores[i]));
    bitswap::Bitswap* bs = provider_bitswaps.back().get();
    network.set_request_handler(
        provider_nodes[i],
        [bs](sim::NodeId from, const sim::MessagePtr& message, auto respond) {
          bs->handle_request(from, message, respond);
        });
    network.connect(requester_node, provider_nodes[i],
                    [](bool, sim::Duration) {});
  }
  simulator.run();

  std::printf("%-12s %14s %14s %14s %14s\n", "object", "1 provider",
              "2 providers", "4 providers", "speedup x4");
  sim::Rng content_rng(bench::run_seed() ^ 0x333);
  for (const std::size_t mib : {1, 4, 16}) {
    std::vector<std::uint8_t> data(mib * 1024 * 1024);
    for (auto& b : data) b = static_cast<std::uint8_t>(content_rng.next());
    multiformats::Cid root;
    for (int i = 0; i < kProviders; ++i)
      root = merkledag::import_bytes(provider_stores[i], data).root;

    double elapsed_seconds[3] = {0, 0, 0};
    const int provider_counts[3] = {1, 2, 4};
    for (int run = 0; run < 3; ++run) {
      blockstore::BlockStore store;
      bitswap::Bitswap requester(network, requester_node, store);
      bitswap::Session session(requester);
      for (int i = 0; i < provider_counts[run]; ++i)
        session.add_peer(provider_nodes[i]);
      bitswap::SessionFetchStats stats;
      session.fetch_dag(root, [&](bitswap::SessionFetchStats s) {
        stats = s;
      });
      simulator.run();
      if (!stats.ok) {
        std::printf("fetch failed for %zu MiB with %d providers\n", mib,
                    provider_counts[run]);
        return 1;
      }
      elapsed_seconds[run] = sim::to_seconds(stats.elapsed);
    }

    std::printf("%9zu MiB %13.2fs %13.2fs %13.2fs %13.2fx\n", mib,
                elapsed_seconds[0], elapsed_seconds[1], elapsed_seconds[2],
                elapsed_seconds[0] / elapsed_seconds[2]);
  }

  std::printf("\nshape check: for bandwidth-bound objects the speedup "
              "approaches the\nprovider count; tiny objects stay "
              "latency-bound.\n");
  return 0;
}
