// Figure 9: CDFs of content publication (a: total, b: DHT walk, c: RPC
// batch) and retrieval (d: total, e: DHT walks, f: fetch) per region.
//
// The panels are derived from the metrics/trace layer: the span stream is
// exported to JSONL, parsed back, and decomposed by span name and parent
// (retrieve.total spans own their phase children), rather than read from
// the hand-carried trace structs.
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "perf_common.h"
#include "stats/jsonl.h"

using namespace ipfs;

namespace {

void print_cdf_block(
    const char* title,
    const std::map<std::string, std::vector<double>>& by_region,
    const char* paper_note) {
  std::printf("\n--- %s ---\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("%-16s %6s %10s %10s %10s\n", "region", "n", "p50", "p90",
              "p95");
  std::vector<double> all;
  for (const auto& [region, samples] : by_region) {
    if (samples.empty()) continue;
    all.insert(all.end(), samples.begin(), samples.end());
    std::printf("%-16s %6zu %10s %10s %10s\n", region.c_str(), samples.size(),
                bench::secs(stats::percentile(samples, 50)).c_str(),
                bench::secs(stats::percentile(samples, 90)).c_str(),
                bench::secs(stats::percentile(samples, 95)).c_str());
  }
  if (!all.empty()) {
    std::printf("%-16s %6zu %10s %10s %10s\n", "ALL", all.size(),
                bench::secs(stats::percentile(all, 50)).c_str(),
                bench::secs(stats::percentile(all, 90)).c_str(),
                bench::secs(stats::percentile(all, 95)).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 9: publication and retrieval delay decomposition",
      "publish p50 33.8 s (walk ~88 % of it; RPC batch spikes at 5 s/45 s); "
      "retrieve p50 2.90 s (single walk median 622 ms; fetch <1.26 s for "
      "99 %)");

  auto run = bench::run_perf_experiment(bench::scaled(1500, 300),
                                        bench::scaled(30, 6));

  // Round-trip the span stream through its JSONL wire format — the same
  // artifact a measurement pipeline would archive — and analyze the
  // parsed events.
  std::stringstream jsonl;
  stats::export_trace_jsonl(run.world->network().metrics(), jsonl);
  const auto events = stats::parse_trace_jsonl(jsonl);
  const auto region_of = bench::region_by_node(run);

  // Decompose span ends into the six panels. Publication phases are
  // top-level spans; retrieval phases are children of their
  // retrieve.total span, so walks (provider + peer record) and fetch
  // (dial + transfer) sum per retrieval before feeding the CDFs.
  std::map<std::string, std::vector<double>> publish_total, publish_walk,
      publish_batch, retrieve_total, retrieve_walks, retrieve_fetch;
  struct RetrievalPhases {
    std::string region;
    double walks = 0;
    double fetch = 0;
  };
  std::unordered_map<metrics::SpanId, RetrievalPhases> retrievals;
  for (const auto& event : events) {
    if (event.kind != metrics::EventKind::kSpanEnd) continue;
    const auto region_it = region_of.find(event.node);
    const double seconds = sim::to_seconds(event.duration);
    if (event.name == "publish.total" && region_it != region_of.end()) {
      publish_total[region_it->second].push_back(seconds);
    } else if (event.name == "publish.walk" && region_it != region_of.end()) {
      publish_walk[region_it->second].push_back(seconds);
    } else if (event.name == "publish.rpc_batch" &&
               region_it != region_of.end()) {
      publish_batch[region_it->second].push_back(seconds);
    } else if (event.name == "retrieve.total" && event.ok &&
               region_it != region_of.end()) {
      retrieve_total[region_it->second].push_back(seconds);
      retrievals[event.span].region = region_it->second;
    } else if (event.name == "retrieve.provider_walk" ||
               event.name == "retrieve.peer_walk") {
      // Phase spans end before their retrieve.total parent, so the
      // region (set by the parent's end) resolves afterwards; entries
      // whose parent never ends ok are discarded below.
      retrievals[event.parent].walks += seconds;
    } else if (event.name == "retrieve.dial" ||
               event.name == "retrieve.fetch") {
      retrievals[event.parent].fetch += seconds;
    }
  }
  for (const auto& [span, phases] : retrievals) {
    if (phases.region.empty()) continue;  // failed or unattributed parent
    retrieve_walks[phases.region].push_back(phases.walks);
    retrieve_fetch[phases.region].push_back(phases.fetch);
  }

  const auto& results = run.experiment->results();
  std::size_t publish_spans = 0, retrieval_spans = 0;
  for (const auto& [region, samples] : publish_total)
    publish_spans += samples.size();
  for (const auto& [region, samples] : retrieve_total)
    retrieval_spans += samples.size();
  std::printf("trace-derived samples: %zu publish spans, %zu ok retrieval "
              "spans (experiment recorded %zu / %zu)\n",
              publish_spans, retrieval_spans, results.publish_count(),
              results.retrieval_successes());

  print_cdf_block("(a) overall publication delay", publish_total,
                  "33.8 s / 112.3 s / 138.1 s at p50/p90/p95");
  print_cdf_block("(b) publication DHT walk", publish_walk,
                  "~87.9 % of the overall publication delay");
  print_cdf_block("(c) provider-record RPC batch", publish_batch,
                  "43.3 % under 2 s, 53.7 % over 5 s, 11.3 % over 20 s");
  print_cdf_block("(d) overall retrieval delay", retrieve_total,
                  "2.90 s / 4.34 s / 4.74 s at p50/p90/p95");
  print_cdf_block("(e) retrieval DHT walks (provider + peer record)",
                  retrieve_walks,
                  "both walks < 2 s for 50 % of retrievals");
  print_cdf_block("(f) content fetch (dial + negotiate + transfer)",
                  retrieve_fetch, "99 % under 1.26 s for 0.5 MB objects");

  // Walk share of publication (the 87.9 % claim).
  double walk_sum = 0, total_sum = 0;
  for (const auto& [region, samples] : publish_walk)
    for (const auto v : samples) walk_sum += v;
  for (const auto& [region, samples] : publish_total)
    for (const auto v : samples) total_sum += v;
  std::printf("\nDHT walk share of publication delay: %.1f%% (paper 87.9%%)\n",
              100.0 * walk_sum / total_sum);

  // RPC batch shape (Figure 9c's timeout spikes).
  std::vector<double> all_batches;
  for (const auto& [region, samples] : publish_batch)
    all_batches.insert(all_batches.end(), samples.begin(), samples.end());
  if (!all_batches.empty()) {
    const stats::Cdf cdf(all_batches);
    std::printf("RPC batches under 2 s: %.1f%% (paper 43.3%%)\n",
                cdf.at(2.0) * 100.0);
    std::printf("RPC batches over 5 s:  %.1f%% (paper 53.7%%)\n",
                (1.0 - cdf.at(5.0)) * 100.0);
    std::printf("RPC batches over 20 s: %.1f%% (paper 11.3%%)\n",
                (1.0 - cdf.at(20.0)) * 100.0);
  }
  return 0;
}
