// Ablation: the DHT client/server distinction (paper Sections 2.3, 6.4).
//
// The paper credits much of IPFS's lookup performance to keeping
// unreachable (NAT'ed) peers out of routing tables. This bench sweeps
// the share of unreachable peers that nevertheless act as DHT servers —
// 0 % is the ideal post-v0.5 world, larger shares emulate the pre-v0.5
// world where NAT'ed peers polluted routing tables.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Ablation: unreachable peers acting as DHT servers",
      "Section 6.4: the client/server split 'has given a significant "
      "boost to the performance of IPFS' by avoiding NAT timeout costs");

  const double shares[] = {0.0, 0.15, 0.30, 0.45};
  std::printf("%-22s %14s %14s %14s\n", "undialable servers",
              "publish p50", "retrieve p50", "retrieval ok");

  for (const double share : shares) {
    const auto world_ptr = bench::scenario_builder(bench::scaled(1200, 300))
                               .undialable_fraction(share)
                               .build_world();
    world::World& world = *world_ptr;

    workload::PerfExperimentConfig perf_config;
    perf_config.cycles = bench::scaled(18, 6);
    workload::PerfExperiment experiment(world, perf_config);
    bool done = false;
    experiment.run([&] { done = true; });
    world.simulator().run();
    if (!done) {
      std::printf("%-22.0f experiment did not finish\n", share * 100);
      continue;
    }

    const auto publish = experiment.results().all_publish_totals_seconds();
    const auto retrieve = experiment.results().all_retrieval_totals_seconds();
    const double success =
        100.0 *
        static_cast<double>(experiment.results().retrieval_successes()) /
        static_cast<double>(experiment.results().retrieval_count());
    std::printf("%20.0f %% %14s %14s %13.1f%%\n", share * 100.0,
                publish.empty()
                    ? "-"
                    : bench::secs(stats::percentile(publish, 50)).c_str(),
                retrieve.empty()
                    ? "-"
                    : bench::secs(stats::percentile(retrieve, 50)).c_str(),
                success);
  }

  std::printf("\nshape check: both publish and retrieve latencies grow "
              "steeply with the\nshare of unreachable routing-table "
              "entries — the cost the client/server\nsplit avoids.\n");
  return 0;
}
