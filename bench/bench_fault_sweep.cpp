// Fault sweep: retrieval success and latency vs. injected fault intensity.
//
// Runs batches of seeded fuzz schedules (sim/fuzz_harness.h) at growing
// fault scales and reports, per level: publish/retrieval success rates,
// retrieval latency percentiles, and the latency CDF series. The paper's
// live measurements (Sections 5-6) see retrieval degrade gracefully as
// the network gets hostile — dead routing entries, unreachable peers,
// resets; this sweep reproduces that degradation curve in simulation.
#include <cstdio>
#include <vector>

#include "common.h"
#include "perf_common.h"
#include "sim/fuzz_harness.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Fault sweep: retrieval success vs. injected fault intensity",
      "hypothesis: success degrades gracefully with fault rate; failures "
      "are typed, never hangs");

  const std::size_t schedules_per_level = bench::scaled(20, 4);
  const double levels[] = {0.0, 0.1, 0.2, 0.4};

  stats::TextTable table({"fault scale", "publish ok", "retrieve ok",
                          "attempted", "p50", "p90", "p99", "faults/run"});
  std::vector<std::pair<double, stats::Cdf>> cdfs;

  for (const double scale : levels) {
    // Schedules are independent seeded trials: shard them across cores
    // and fold the per-schedule results in seed order, so the sweep's
    // output is byte-identical to the serial run.
    struct ScheduleOutcome {
      std::size_t publishes = 0, publishes_ok = 0;
      std::size_t attempted = 0, ok = 0;
      std::uint64_t faults = 0;
      std::vector<double> latencies;
      std::string violation;
    };
    const auto outcomes = bench::run_trials(
        schedules_per_level, bench::run_seed(), [&](std::uint64_t seed) {
          simfuzz::ScheduleParams params = simfuzz::make_schedule(seed);
          // Sweep the fault dimension only: pin the intensity, keep the
          // world/workload randomization from the seed, stay on the short
          // horizon so every level runs the same schedule shapes.
          params.long_horizon = false;
          params.fault_scale = scale;
          params.faults = simfuzz::faults_for_scale(scale, false);

          const simfuzz::ScheduleReport report =
              simfuzz::run_schedule(params);
          ScheduleOutcome outcome;
          if (!report.ok()) {
            outcome.violation = report.failure_summary();
            return outcome;
          }
          outcome.publishes = params.publish_count;
          outcome.publishes_ok = report.stats.publishes_ok();
          outcome.attempted = report.stats.retrievals_attempted();
          outcome.ok = report.stats.retrievals_ok();
          outcome.faults = report.stats.faults.total_injected();
          for (const auto& op : report.stats.ops) {
            if (op.kind == simfuzz::OpRecord::Kind::kRetrieve &&
                op.completed && op.ok)
              outcome.latencies.push_back(sim::to_seconds(op.elapsed));
          }
          return outcome;
        });

    std::size_t publishes = 0, publishes_ok = 0;
    std::size_t attempted = 0, ok = 0;
    std::uint64_t faults = 0;
    std::vector<stats::TrialSamples> folds;
    for (const auto& trial : outcomes) {
      if (!trial.result.violation.empty()) {
        std::printf("INVARIANT VIOLATION\n%s\n",
                    trial.result.violation.c_str());
        return 1;
      }
      publishes += trial.result.publishes;
      publishes_ok += trial.result.publishes_ok;
      attempted += trial.result.attempted;
      ok += trial.result.ok;
      faults += trial.result.faults;
      folds.push_back({trial.seed, trial.result.latencies});
    }
    std::vector<double> latencies = stats::fold_trials(std::move(folds));

    if (latencies.empty()) latencies.push_back(0.0);
    const stats::Cdf cdf(std::move(latencies));
    table.add_row({stats::format_percent(scale, 0),
                   bench::pct(static_cast<double>(publishes_ok) /
                              static_cast<double>(publishes)),
                   bench::pct(static_cast<double>(ok) /
                              static_cast<double>(attempted)),
                   std::to_string(attempted),
                   bench::secs(cdf.percentile(50)),
                   bench::secs(cdf.percentile(90)),
                   bench::secs(cdf.percentile(99)),
                   std::to_string(faults / schedules_per_level)});
    cdfs.emplace_back(scale, cdf);
  }

  std::printf("%s\n", table.render().c_str());
  for (const auto& [scale, cdf] : cdfs) {
    std::printf("%s", stats::render_cdf_series(
                          "retrieval_seconds@scale=" +
                              stats::format_percent(scale, 0),
                          cdf)
                          .c_str());
  }
  return 0;
}
