// Table 4: latency percentiles of the overall DHT publication and
// retrieval operations from each AWS region.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 4: publication / retrieval percentiles per AWS region",
      "publish p50 27.7-42.3 s; retrieve p50 1.81 s (eu_central_1) to "
      "3.76 s (ap_southeast_2)");

  auto run = bench::run_perf_experiment(bench::scaled(1500, 300),
                                        bench::scaled(30, 6));
  const auto& results = run.experiment->results();

  std::printf("%-16s | %9s %9s %9s | %9s %9s %9s\n", "", "pub p50",
              "pub p90", "pub p95", "ret p50", "ret p90", "ret p95");
  for (const auto& region : workload::aws_regions()) {
    std::vector<double> pub, ret;
    if (const auto it = results.publishes.find(region.name);
        it != results.publishes.end()) {
      for (const auto& trace : it->second)
        pub.push_back(sim::to_seconds(trace.total));
    }
    if (const auto it = results.retrievals.find(region.name);
        it != results.retrievals.end()) {
      for (const auto& trace : it->second)
        if (trace.ok) ret.push_back(sim::to_seconds(trace.total));
    }
    if (pub.empty() || ret.empty()) continue;
    std::printf("%-16s | %9s %9s %9s | %9s %9s %9s\n", region.name.c_str(),
                bench::secs(stats::percentile(pub, 50)).c_str(),
                bench::secs(stats::percentile(pub, 90)).c_str(),
                bench::secs(stats::percentile(pub, 95)).c_str(),
                bench::secs(stats::percentile(ret, 50)).c_str(),
                bench::secs(stats::percentile(ret, 90)).c_str(),
                bench::secs(stats::percentile(ret, 95)).c_str());
  }

  // The paper's headline ordering: eu_central_1 retrieves fastest,
  // af_south_1 / ap_southeast_2 slowest.
  std::printf("\nshape check: eu_central_1 should show the lowest retrieval "
              "p50,\nwith af_south_1 and ap_southeast_2 at the high end "
              "(Section 6.2).\n");
  return 0;
}
