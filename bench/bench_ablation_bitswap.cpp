// Ablation: the serial 1 s Bitswap window (paper Sections 6.2, 6.4).
//
// Compares three retrieval strategies:
//   serial       — go-ipfs behaviour: Bitswap probe, full 1 s timeout,
//                  then the DHT walk (every miss pays the second),
//   early-exit   — end the window as soon as all connected peers said
//                  DONT_HAVE,
//   parallel     — the paper's proposed optimization: race the DHT walk
//                  against the Bitswap window.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

namespace {

struct Strategy {
  const char* name;
  bool early_exit;
  bool parallel;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: Bitswap/DHT retrieval strategies",
      "Section 6.4: 'running DHT lookups in parallel to Bitswap could be "
      "superior, by trading additional network requests for faster "
      "retrieval times'");

  const Strategy strategies[] = {
      {"serial (go-ipfs)", false, false},
      {"early-exit", true, false},
      {"parallel (proposed)", false, true},
  };

  std::printf("%-22s %12s %12s %12s %14s\n", "strategy", "ret p50",
              "ret p90", "stretch p50", "retrieval ok");
  for (const auto& strategy : strategies) {
    const auto world_ptr = bench::standard_world(bench::scaled(1200, 300));
    world::World& world = *world_ptr;

    workload::PerfExperimentConfig perf_config;
    perf_config.cycles = bench::scaled(18, 6);
    perf_config.bitswap_early_exit = strategy.early_exit;
    perf_config.parallel_dht_lookup = strategy.parallel;
    workload::PerfExperiment experiment(world, perf_config);
    bool done = false;
    experiment.run([&] { done = true; });
    world.simulator().run();
    (void)done;

    std::vector<double> totals, stretches;
    std::size_t ok = 0, all = 0;
    for (const auto& [region, traces] : experiment.results().retrievals) {
      for (const auto& trace : traces) {
        ++all;
        if (!trace.ok) continue;
        ++ok;
        totals.push_back(sim::to_seconds(trace.total));
        stretches.push_back(trace.stretch());
      }
    }
    if (totals.empty()) continue;
    std::printf("%-22s %12s %12s %12.2f %13.1f%%\n", strategy.name,
                bench::secs(stats::percentile(totals, 50)).c_str(),
                bench::secs(stats::percentile(totals, 90)).c_str(),
                stats::percentile(stretches, 50),
                100.0 * static_cast<double>(ok) / static_cast<double>(all));
  }

  std::printf("\nshape check: parallel lookups shave roughly the 1 s "
              "Bitswap window off\nevery DHT-resolved retrieval.\n");
  return 0;
}
