// Figure 5: geographical distribution of peers, recovered by crawling
// the DHT and geolocating each discovered address ("multihoming" peers
// counted once per country, as in the paper). Trials shard across cores
// (IPFS_BENCH_TRIALS) and fold by summing per-country counts in seed
// order.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "crawler/census.h"
#include "perf_common.h"

using namespace ipfs;

namespace {

struct GeoTrial {
  std::vector<crawler::CountryShare> shares;
  std::size_t total = 0;
  std::size_t unique_ips = 0;
  std::size_t multiaddresses = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 5: geographical distribution of peers",
      "US 28.5 %, CN 24.2 %, FR 8.3 %, TW 7.2 %, KR 6.7 % (top five)");

  const std::size_t peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(4000, 500));
  const std::size_t trials = bench::bench_trials(1);

  const auto results = bench::run_trials(
      trials, bench::run_seed(), [&](std::uint64_t seed) {
        const auto world = bench::scenario_builder(peers, seed).build_world();
        const auto crawl = bench::crawl_world(*world);
        GeoTrial trial;
        trial.shares = crawler::country_distribution(crawl, world->geodb());
        trial.total = crawl.total();
        trial.unique_ips = crawl.unique_ip_count();
        trial.multiaddresses = crawl.multiaddress_count();
        return trial;
      });

  // Fold: sum counts per country. Trials are already in seed order, and
  // std::map iterates codes alphabetically, so the merged rows are
  // deterministic no matter which thread finished first.
  std::map<std::string, std::size_t> counts;
  std::size_t grand_total = 0, unique_ips = 0, multiaddresses = 0;
  for (const auto& trial : results) {
    for (const auto& share : trial.result.shares)
      counts[share.code] += share.count;
    grand_total += trial.result.total;
    unique_ips += trial.result.unique_ips;
    multiaddresses += trial.result.multiaddresses;
  }
  std::vector<std::pair<std::string, std::size_t>> rows(counts.begin(),
                                                        counts.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  // Paper values for the countries it names.
  const std::map<std::string, double> paper = {
      {"US", 0.285}, {"CN", 0.242}, {"FR", 0.083}, {"TW", 0.072},
      {"KR", 0.067}};

  std::printf("%-10s %10s %12s %12s\n", "country", "peers", "measured",
              "paper");
  for (const auto& [code, count] : rows) {
    const auto it = paper.find(code);
    std::printf("%-10s %10zu %11.1f%% %11s\n", code.c_str(), count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(grand_total),
                it == paper.end()
                    ? "-"
                    : (std::to_string(it->second * 100.0).substr(0, 4) + " %")
                          .c_str());
  }

  std::printf("\ncrawl: %zu peers, %zu unique IPs, %zu multiaddresses"
              " (%zu trial(s))\n",
              grand_total, unique_ips, multiaddresses, trials);
  return 0;
}
