// Figure 5: geographical distribution of peers, recovered by crawling
// the DHT and geolocating each discovered address ("multihoming" peers
// counted once per country, as in the paper).
#include <cstdio>

#include "common.h"
#include "crawler/census.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Figure 5: geographical distribution of peers",
      "US 28.5 %, CN 24.2 %, FR 8.3 %, TW 7.2 %, KR 6.7 % (top five)");

  world::World world(bench::default_world_config(bench::scaled(4000, 500)));
  const auto crawl = bench::crawl_world(world);
  const auto shares = crawler::country_distribution(crawl, world.geodb());

  // Paper values for the countries it names.
  const std::map<std::string, double> paper = {
      {"US", 0.285}, {"CN", 0.242}, {"FR", 0.083}, {"TW", 0.072},
      {"KR", 0.067}};

  std::printf("%-10s %10s %12s %12s\n", "country", "peers", "measured",
              "paper");
  for (const auto& share : shares) {
    const auto it = paper.find(share.code);
    std::printf("%-10s %10zu %11.1f%% %11s\n", share.code.c_str(),
                share.count, share.share * 100.0,
                it == paper.end()
                    ? "-"
                    : (std::to_string(it->second * 100.0).substr(0, 4) + " %")
                          .c_str());
  }

  std::printf("\ncrawl: %zu peers, %zu unique IPs, %zu multiaddresses\n",
              crawl.total(), crawl.unique_ip_count(),
              crawl.multiaddress_count());
  return 0;
}
