// Table 2: the autonomous systems covering the largest share of all
// found IP addresses.
#include <cstdio>

#include "common.h"
#include "crawler/census.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Table 2: top autonomous systems by share of found IP addresses",
      "CHINANET 18.9 %, CHINA169 12.8 %, HKT 9.6 %, TELEFONICA BR 6.9 %, "
      "HINET 5.3 % — five ASes cover >50 %");

  const auto world_ptr = bench::standard_world(bench::scaled(4000, 500));
  world::World& world = *world_ptr;
  const auto crawl = bench::crawl_world(world);
  const auto ases = crawler::as_distribution(crawl, world.geodb());

  std::printf("%-8s %-10s %-32s %10s %9s\n", "share", "ASN", "AS name",
              "IPs", "rank");
  double cumulative = 0.0;
  std::size_t rows = 0;
  for (const auto& entry : ases) {
    cumulative += entry.share;
    std::printf("%6.1f%%  %-10u %-32s %10zu %9d\n", entry.share * 100.0,
                entry.asn, entry.name.c_str(), entry.ip_count,
                entry.caida_rank);
    if (++rows >= 8) break;
  }
  std::printf("\ncumulative share of the rows above: %.1f%% "
              "(paper: top five >50%%)\n",
              cumulative * 100.0);
  return 0;
}
