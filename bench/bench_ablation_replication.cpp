// Ablation: the replication factor k = 20 under churn (paper
// Sections 2.3, 5.3).
//
// The paper justifies replicating provider records on 20 peers by the
// high churn it measures ("only 2.5 % of peers stay online for more
// than 24 h... this helps explain our design decision to replicate
// records on a relatively large number of peers"). This bench publishes
// with k in {2, 5, 10, 20}, lets the world churn with republishing
// disabled, and measures how often the records can still be found.
#include <cstdio>
#include <map>

#include "common.h"
#include "node/ipfs_node.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Ablation: provider-record replication factor vs churn",
      "k = 20 chosen as 'a compromise between excessive replication "
      "overhead and risking record deletion because of peer churn'");

  const std::size_t replication_levels[] = {1, 2, 5, 20};
  const int objects_per_level = static_cast<int>(bench::scaled(8, 3));
  // Probe availability repeatedly across a churny afternoon: records
  // survive on a holder's disk across its offline periods, so what k
  // buys is the chance that AT LEAST ONE holder is online (and thus the
  // record findable) at any given moment.
  const int probe_rounds = static_cast<int>(bench::scaled(6, 2));
  const sim::Duration probe_gap = sim::hours(1.5);

  const auto world_ptr = bench::standard_world(bench::scaled(1200, 300));
  world::World& world = *world_ptr;

  node::IpfsNodeConfig publisher_config;
  publisher_config.net.region = world::kEuCentral;
  publisher_config.identity_seed = 0xAB1;
  node::IpfsNode publisher(world.network(), publisher_config);

  node::IpfsNodeConfig prober_config;
  prober_config.net.region = world::kUsEast;
  prober_config.identity_seed = 0xAB2;
  node::IpfsNode prober(world.network(), prober_config);

  publisher.bootstrap(world.bootstrap_refs(), [](bool) {});
  prober.bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  // Publish objects_per_level fresh objects at each replication level.
  struct Published {
    std::size_t k;
    multiformats::Cid cid;
  };
  std::vector<Published> published;
  sim::Rng content_rng(bench::run_seed() ^ 0xAB1A7104);

  for (const std::size_t k : replication_levels) {
    for (int i = 0; i < objects_per_level; ++i) {
      std::vector<std::uint8_t> content(64 * 1024);
      for (auto& b : content) b = static_cast<std::uint8_t>(content_rng.next());
      const auto import = publisher.add(content);
      bool ok = false;
      publisher.provide(
          import.root, [&](node::PublishTrace trace) { ok = trace.ok; }, k);
      world.simulator().run();
      // No republishing: we want to watch the records decay.
      publisher.dht().stop_reproviding(dht::Key::for_cid(import.root));
      if (ok) published.push_back({k, import.root});
    }
  }

  // Probe each object repeatedly as the network churns; records are NOT
  // refreshed (republishing disabled above).
  std::map<std::size_t, std::pair<int, int>> availability;  // k -> {hits, probes}
  for (int round = 0; round < probe_rounds; ++round) {
    world.simulator().run_until(world.simulator().now() + probe_gap);
    for (const auto& entry : published) {
      bool resolvable = false;
      prober.dht().find_providers(
          dht::Key::for_cid(entry.cid),
          [&](dht::LookupResult result) {
            resolvable = !result.providers.empty();
          });
      world.simulator().run();
      auto& [hits, probes] = availability[entry.k];
      ++probes;
      if (resolvable) ++hits;
    }
  }

  std::printf("%-6s %12s %12s %16s\n", "k", "objects", "probes",
              "availability");
  for (const std::size_t k : replication_levels) {
    const auto [hits, probes] = availability[k];
    std::printf("%-6zu %12d %12d %15.1f%%\n", k, objects_per_level, probes,
                probes == 0 ? 0.0 : 100.0 * hits / probes);
  }

  std::printf("\nshape check: availability over %.0f h of churn grows with "
              "k; with one\nreplica a record vanishes whenever its single "
              "holder is offline, while\nthe paper's k = 20 keeps lookups "
              "reliable throughout the republish window.\n",
              probe_rounds * sim::to_seconds(probe_gap) / 3600.0);
  return 0;
}
