// Ablation: Hydra boosters (paper Section 8 future work: "we plan to
// expand our studies to components such as the Hydra boosters").
//
// Hydras add swarms of always-on DHT server heads over a shared record
// store. This bench measures their effect on publication and retrieval
// latency: stable heads displace churned-out entries in routing tables,
// so walks hit fewer dial timeouts.
#include <cstdio>

#include "perf_common.h"

using namespace ipfs;

int main() {
  bench::print_header(
      "Ablation: Hydra boosters",
      "paper future work; hypothesis: stable many-headed DHT servers "
      "shorten walks by reducing dead routing-table entries");

  struct Config {
    std::size_t hydras;
    std::size_t heads;
  };
  const Config configs[] = {{0, 0}, {4, 10}, {8, 25}};

  std::printf("%-18s %10s %14s %14s %14s\n", "hydras x heads", "heads",
              "publish p50", "publish p90", "retrieve p50");
  for (const auto& config : configs) {
    const auto world_ptr = bench::scenario_builder(bench::scaled(1200, 300))
                               .hydra(config.hydras, config.heads)
                               .build_world();
    world::World& world = *world_ptr;

    workload::PerfExperimentConfig perf_config;
    perf_config.cycles = bench::scaled(18, 6);
    workload::PerfExperiment experiment(world, perf_config);
    bool done = false;
    experiment.run([&] { done = true; });
    world.simulator().run();
    (void)done;

    const auto publish = experiment.results().all_publish_totals_seconds();
    const auto retrieve = experiment.results().all_retrieval_totals_seconds();
    if (publish.empty() || retrieve.empty()) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu x %zu", config.hydras,
                  config.heads);
    std::printf("%-18s %10zu %14s %14s %14s\n", label,
                config.hydras * config.heads,
                bench::secs(stats::percentile(publish, 50)).c_str(),
                bench::secs(stats::percentile(publish, 90)).c_str(),
                bench::secs(stats::percentile(retrieve, 50)).c_str());
  }

  std::printf("\nshape check: stable heads dilute dead routing-table "
              "entries, nudging walk\nlatency down. The effect is modest "
              "until heads are a large share of the\nswarm — consistent "
              "with the paper deferring Hydra analysis due to their\n"
              "'limited adoption' (Section 8).\n");
  return 0;
}
