// Ablation: gateway fleet — consistent-hash replicas and two-tier
// caching vs the single ipfs.io-style instance.
//
// The Section 6.3 day of traffic (diurnal double-peak, Zipf catalog) is
// replayed at 10x request volume through a GatewayFleet: N replicas
// behind a bounded-load consistent-hash router, each with the single
// instance's 18 MiB TinyLFU-admitted edge cache, sharing one origin
// tier. Measured per replica: the Table 5 tier breakdown; fleet-wide:
// the centralization metric of Balduf et al. — the share of requests
// absorbed inside the fleet (edge + node store + origin) vs forwarded
// to the P2P network.
//
// Acceptance gates: the fleet's cache tiers (edge + origin) hit at
// least as often as the single gateway's nginx cache on its 1x day;
// >80 % of fleet requests are absorbed without touching the P2P network
// (the paper's combined-cache bound); per-replica tier shares stay
// within 15 points of the fleet aggregate (consistent hashing splits
// the catalog evenly); per-replica labeled counters sum exactly to the
// aggregate instruments; removing a replica moves at most ~1/N of the
// key space and only keys the removed replica owned; and a reduced
// fleet replay produces byte-identical trace streams under the
// timer-wheel and binary-heap schedulers.
//
// Writes a JSONL artifact (one sample per line); path overridable via
// IPFS_BENCH_ARTIFACT.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gateway_common.h"
#include "stats/jsonl.h"

using namespace ipfs;

namespace {

std::vector<std::uint8_t> deterministic_bytes(std::size_t n,
                                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return bytes;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Tier request counts for one gateway (or, summed, for the fleet).
struct TierShares {
  std::uint64_t nginx = 0;
  std::uint64_t node_store = 0;
  std::uint64_t origin = 0;
  std::uint64_t p2p = 0;
  std::uint64_t failed = 0;

  std::uint64_t served() const { return nginx + node_store + origin + p2p; }
  double share(std::uint64_t tier) const {
    return served() == 0 ? 0.0
                         : static_cast<double>(tier) /
                               static_cast<double>(served());
  }
};

TierShares shares_of(const gateway::Gateway& g) {
  TierShares s;
  s.nginx = g.stats(gateway::ServedFrom::kNginxCache).requests;
  s.node_store = g.stats(gateway::ServedFrom::kNodeStore).requests;
  s.origin = g.stats(gateway::ServedFrom::kOriginCache).requests;
  s.p2p = g.stats(gateway::ServedFrom::kP2p).requests;
  s.failed = g.stats(gateway::ServedFrom::kFailed).requests;
  return s;
}

// ---- Consistent-hash rebalance panel --------------------------------------
// Pure ring math: sample the key space, remove one replica, and measure
// which keys changed owner. Consistent hashing promises only the removed
// replica's ~1/N share moves; re-adding it must restore the original
// assignment exactly (vnode points are deterministic).
struct RebalancePanel {
  std::size_t keys = 0;
  std::size_t moved = 0;
  std::size_t illegal_moves = 0;  // owner changed but was not the removed one
  double removed_share = 0.0;     // key share the removed replica owned
  bool restored = false;
};

RebalancePanel run_rebalance_panel(std::size_t replicas, std::size_t vnodes,
                                   std::size_t keys) {
  gateway::HashRing ring(gateway::HashRingConfig{vnodes, 1.25});
  for (std::size_t i = 0; i < replicas; ++i) ring.add_replica(i);

  RebalancePanel panel;
  panel.keys = keys;
  std::vector<std::size_t> before(keys);
  std::size_t removed_owned = 0;
  for (std::size_t k = 0; k < keys; ++k) {
    before[k] = *ring.owner(mix64(k));
    if (before[k] == 0) ++removed_owned;
  }
  panel.removed_share =
      static_cast<double>(removed_owned) / static_cast<double>(keys);

  ring.remove_replica(0);
  for (std::size_t k = 0; k < keys; ++k) {
    const std::size_t after = *ring.owner(mix64(k));
    if (after == before[k]) continue;
    ++panel.moved;
    if (before[k] != 0) ++panel.illegal_moves;
  }

  ring.add_replica(0);
  panel.restored = true;
  for (std::size_t k = 0; k < keys; ++k)
    if (*ring.owner(mix64(k)) != before[k]) panel.restored = false;
  return panel;
}

// ---- Backend determinism probe --------------------------------------------
// A reduced fleet replay on the proven-deterministic Scenario fabric:
// two replicas via the .gateway_fleet() knob, a publisher, pinned and
// P2P-fetched objects, staggered GETs. Exports the full registry (trace
// stream included) for byte comparison across scheduler backends.
std::string run_determinism_probe(std::uint64_t seed,
                                  sim::SchedulerBackend backend) {
  gateway::FleetConfig fleet_config;
  fleet_config.replicas = 2;
  fleet_config.vnodes = 16;
  fleet_config.replica.node.identity_seed = 0x6A7E;
  fleet_config.replica.node.provide_after_fetch = false;
  fleet_config.replica.nginx_cache_bytes = 4ull * 1024 * 1024;
  fleet_config.origin_cache_bytes = 8ull * 1024 * 1024;

  scenario::Scenario s = scenario::ScenarioBuilder()
                             .peers(24)
                             .seed(seed)
                             .single_region(25.0)
                             .scheduler(backend)
                             .trace_capacity(200'000)
                             .dht_servers(true)
                             .gateway_fleet(fleet_config)
                             .build();
  gateway::GatewayFleet& fleet = *s.gateway_fleet();

  node::IpfsNodeConfig publisher_config;
  publisher_config.identity_seed = 0x9AB;
  publisher_config.provide_after_fetch = false;
  node::IpfsNode publisher(s.network(), publisher_config);

  std::vector<dht::PeerRef> seeds;
  for (std::size_t i = 0; i < 6; ++i) seeds.push_back(s.ref(i));
  fleet.bootstrap(seeds, [](bool) {});
  publisher.bootstrap(seeds, [](bool) {});
  s.simulator().run();

  std::vector<multiformats::Cid> cids;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto content =
        deterministic_bytes(32 * 1024 + 8 * 1024 * i, seed ^ (0xFEE7 + i));
    if (i % 2 == 0) {
      cids.push_back(fleet.pin_object(content));
    } else {
      publisher.publish(content, [&](node::PublishTrace trace) {
        if (trace.ok) cids.push_back(trace.cid);
      });
      s.simulator().run();
    }
  }

  for (std::size_t k = 0; k < 32; ++k) {
    s.simulator().schedule_after(
        sim::milliseconds(250.0 * static_cast<double>(k)), [&fleet, &cids, k] {
          fleet.handle_get(cids[k % cids.size()],
                           [](gateway::GatewayResponse) {});
        });
  }
  s.simulator().run();

  std::ostringstream dump;
  stats::export_registry_jsonl(s.network().metrics(), dump);
  return dump.str();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: gateway fleet — consistent-hash replicas, two-tier "
      "TinyLFU caching vs the single instance",
      "Table 5 tiers per replica at 10x traffic; Balduf et al.: the "
      "fleet absorbs the load, deepening gateway centralization");

  const std::uint64_t seed = bench::run_seed();
  const std::size_t replicas = bench::env_size("IPFS_BENCH_REPLICAS", 4);
  const std::size_t world_peers =
      bench::env_size("IPFS_BENCH_PEERS", bench::scaled(1000, 250));
  const std::size_t catalog_size = bench::scaled(180, 40);
  const std::uint64_t base_requests = bench::scaled(6000, 800);
  const std::uint64_t fleet_requests = 10 * base_requests;

  // ---- Arm 1: the single ipfs.io-style gateway at 1x -----------------------
  TierShares baseline;
  std::uint64_t baseline_total = 0;
  {
    auto experiment = bench::setup_gateway_experiment(
        world_peers, catalog_size, base_requests);
    experiment.workload->run(*experiment.gateway);
    auto& simulator = experiment.world->simulator();
    simulator.run_until(simulator.now() + sim::hours(24));
    simulator.run();
    baseline = shares_of(*experiment.gateway);
    baseline_total = experiment.gateway->total_requests();
  }
  std::printf("baseline (1 gateway, %llu requests): nginx=%.1f%% "
              "node_store=%.1f%% p2p=%.1f%%\n",
              static_cast<unsigned long long>(baseline_total),
              100.0 * baseline.share(baseline.nginx),
              100.0 * baseline.share(baseline.node_store),
              100.0 * baseline.share(baseline.p2p));

  // ---- Arm 2: the fleet at 10x ---------------------------------------------
  TierShares fleet_shares;
  std::vector<TierShares> replica_shares(replicas);
  std::vector<std::uint64_t> replica_totals(replicas, 0);
  std::uint64_t fleet_total = 0, fleet_spills = 0;
  std::uint64_t origin_used = 0, admission_rejections = 0, sketch_halvings = 0;
  double absorbed_share = 0.0;
  bool labels_conserve = true;
  {
    auto experiment = bench::setup_fleet_experiment(
        world_peers, catalog_size, fleet_requests, replicas);
    experiment.workload->run(*experiment.fleet);
    auto& simulator = experiment.world->simulator();
    simulator.run_until(simulator.now() + sim::hours(24));
    simulator.run();

    gateway::GatewayFleet& fleet = *experiment.fleet;
    for (std::size_t r = 0; r < replicas; ++r) {
      replica_shares[r] = shares_of(fleet.replica(r));
      replica_totals[r] = fleet.replica(r).total_requests();
      admission_rejections +=
          fleet.replica(r).nginx_cache().admission_rejections();
      if (const auto* sketch = fleet.replica(r).nginx_cache().sketch())
        sketch_halvings += sketch->halvings();
    }
    fleet_shares.nginx = fleet.aggregate(gateway::ServedFrom::kNginxCache).requests;
    fleet_shares.node_store = fleet.aggregate(gateway::ServedFrom::kNodeStore).requests;
    fleet_shares.origin = fleet.aggregate(gateway::ServedFrom::kOriginCache).requests;
    fleet_shares.p2p = fleet.aggregate(gateway::ServedFrom::kP2p).requests;
    fleet_shares.failed = fleet.aggregate(gateway::ServedFrom::kFailed).requests;
    fleet_total = fleet.total_requests();
    fleet_spills = fleet.routed_spills();
    origin_used = fleet.origin().used_bytes();
    absorbed_share = fleet.fleet_absorbed_share();

    // Per-replica labeled counters must sum exactly to the aggregate
    // instruments — the registry-level tier conservation identity.
    const metrics::Registry& registry = experiment.world->network().metrics();
    const char* tier_names[] = {"nginx_cache", "node_store", "origin_cache",
                                "p2p", "failed"};
    for (const char* tier : tier_names) {
      std::uint64_t labeled = 0;
      for (std::size_t r = 0; r < replicas; ++r)
        labeled += registry.counter_value("gateway.r" + std::to_string(r) +
                                         ".tier." + tier + ".requests");
      const std::uint64_t aggregate =
          registry.counter_value(std::string("gateway.tier.") + tier +
                                 ".requests");
      if (labeled != aggregate) labels_conserve = false;
    }
  }

  std::printf("\nfleet (%zu replicas, %llu requests, %llu spills):\n",
              replicas, static_cast<unsigned long long>(fleet_total),
              static_cast<unsigned long long>(fleet_spills));
  std::printf("%-10s %10s %8s %8s %8s %8s %8s\n", "", "requests", "nginx",
              "node", "origin", "p2p", "failed");
  const auto print_shares = [](const char* label, const TierShares& s,
                               std::uint64_t total) {
    std::printf("%-10s %10llu %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                label, static_cast<unsigned long long>(total),
                100.0 * s.share(s.nginx), 100.0 * s.share(s.node_store),
                100.0 * s.share(s.origin), 100.0 * s.share(s.p2p),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(s.failed) /
                                 static_cast<double>(total));
  };
  print_shares("aggregate", fleet_shares, fleet_total);
  for (std::size_t r = 0; r < replicas; ++r)
    print_shares(("r" + std::to_string(r)).c_str(), replica_shares[r],
                 replica_totals[r]);
  std::printf("origin cache: %.1f MiB used; TinyLFU: %llu admission "
              "rejections, %llu sketch halvings\n",
              static_cast<double>(origin_used) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(admission_rejections),
              static_cast<unsigned long long>(sketch_halvings));
  std::printf("centralization: fleet absorbs %.1f%% of completed requests "
              "(P2P sees %.1f%%)\n",
              100.0 * absorbed_share, 100.0 * (1.0 - absorbed_share));

  // ---- Rebalance + determinism panels --------------------------------------
  const RebalancePanel rebalance =
      run_rebalance_panel(replicas, 64, 20'000);
  std::printf("\nrebalance: removing 1 of %zu replicas moved %zu/%zu keys "
              "(%.1f%%; removed owned %.1f%%), %zu illegal, re-add "
              "restored=%s\n",
              replicas, rebalance.moved, rebalance.keys,
              100.0 * static_cast<double>(rebalance.moved) /
                  static_cast<double>(rebalance.keys),
              100.0 * rebalance.removed_share, rebalance.illegal_moves,
              rebalance.restored ? "yes" : "NO");

  std::string dumps[2];
  dumps[0] = run_determinism_probe(seed, sim::SchedulerBackend::kTimerWheel);
  dumps[1] = run_determinism_probe(seed, sim::SchedulerBackend::kBinaryHeap);
  const bool deterministic = !dumps[0].empty() && dumps[0] == dumps[1];
  std::printf("determinism probe (wheel vs heap trace bytes): %s\n",
              deterministic ? "identical" : "MISMATCH");

  // ---- Artifact ------------------------------------------------------------
  const char* artifact_env = std::getenv("IPFS_BENCH_ARTIFACT");
  const std::string artifact_path =
      artifact_env != nullptr && artifact_env[0] != '\0'
          ? artifact_env
          : "bench_ablation_gateway_fleet.jsonl";
  std::ofstream artifact(artifact_path, std::ios::trunc);
  const auto dump_shares = [&](const std::string& series, const TierShares& s,
                               std::uint64_t total) {
    artifact << "{\"bench\":\"ablation_gateway_fleet\",\"series\":\"" << series
             << "\",\"requests\":" << total << ",\"nginx\":" << s.nginx
             << ",\"node_store\":" << s.node_store << ",\"origin\":" << s.origin
             << ",\"p2p\":" << s.p2p << ",\"failed\":" << s.failed << "}\n";
  };
  dump_shares("baseline", baseline, baseline_total);
  dump_shares("fleet", fleet_shares, fleet_total);
  for (std::size_t r = 0; r < replicas; ++r)
    dump_shares("replica_r" + std::to_string(r), replica_shares[r],
                replica_totals[r]);
  artifact << "{\"bench\":\"ablation_gateway_fleet\",\"series\":\"summary\","
           << "\"absorbed_share\":" << absorbed_share
           << ",\"spills\":" << fleet_spills
           << ",\"admission_rejections\":" << admission_rejections
           << ",\"rebalance_moved\":" << rebalance.moved
           << ",\"rebalance_keys\":" << rebalance.keys
           << ",\"deterministic\":" << (deterministic ? 1 : 0) << "}\n";

  // ---- Gates ---------------------------------------------------------------
  bool pass = true;
  const auto gate = [&](bool ok, const char* desc) {
    std::printf("%s %s\n", ok ? "gate:    " : "FAIL:    ", desc);
    if (!ok) pass = false;
  };

  std::printf("\n");
  gate(baseline_total == base_requests && fleet_total == fleet_requests,
       "both arms completed their full request volume");
  const double baseline_cache = baseline.share(baseline.nginx);
  const double fleet_cache =
      fleet_shares.share(fleet_shares.nginx + fleet_shares.origin);
  std::printf("cache hit share: baseline nginx=%.1f%% fleet edge+origin="
              "%.1f%%\n",
              100.0 * baseline_cache, 100.0 * fleet_cache);
  gate(fleet_cache >= baseline_cache,
       "fleet edge+origin hit share >= single-gateway nginx share at 10x");
  gate(absorbed_share >= 0.80,
       "fleet absorbs >80% of completed requests (paper's combined-cache "
       "bound)");
  bool replica_uniform = true, all_routed = true;
  for (std::size_t r = 0; r < replicas; ++r) {
    if (replica_totals[r] == 0) all_routed = false;
    if (replica_totals[r] < fleet_total / (replicas * 20)) continue;
    if (std::abs(replica_shares[r].share(replica_shares[r].nginx) -
                 fleet_shares.share(fleet_shares.nginx)) > 0.15 ||
        std::abs(replica_shares[r].share(replica_shares[r].p2p) -
                 fleet_shares.share(fleet_shares.p2p)) > 0.15)
      replica_uniform = false;
  }
  gate(all_routed, "every replica served routed traffic");
  gate(replica_uniform,
       "per-replica tier shares within 15 points of the fleet aggregate");
  gate(labels_conserve,
       "per-replica labeled counters sum exactly to the aggregate tiers");
  gate(rebalance.illegal_moves == 0 &&
           static_cast<double>(rebalance.moved) <=
               1.5 * static_cast<double>(rebalance.keys) /
                   static_cast<double>(replicas),
       "replica removal moves <= ~1/N of keys, all owned by the removed "
       "replica");
  gate(rebalance.restored, "re-adding the replica restores the exact "
       "pre-removal assignment");
  gate(deterministic,
       "wheel and heap schedulers produce byte-identical fleet traces");

  std::printf("artifact: %s\n", artifact_path.c_str());
  return pass ? 0 : 1;
}
