// Deterministic fault injection for the simulator.
//
// A FaultPlan composes onto sim::Network through the FaultInjector hook
// and adds the failure modes the paper's live measurements are dominated
// by (Sections 5-6: dead routing entries, unreachable peers, flaky
// transports): message drop/duplication/reordering, per-link latency
// spikes, dial failures, mid-transfer connection resets, and peer
// crash/restart cycles. Everything is driven by named forks of a single
// seed, so a failing fuzz schedule replays bit-for-bit from its seed.
//
// Crash vs. churn: sim::ChurnProcess models voluntary session cycling
// (peers leave and later rejoin with their state intact at the network
// level). A FaultPlan crash is harsher — the process dies, losing soft
// state (routing table, in-flight lookups, wantlists) while keeping the
// blockstore on disk. The protocol-level consequences are applied by
// crash listeners (see dht::DhtNode::handle_crash / node::IpfsNode).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipfs::sim {

struct FaultConfig {
  // --- Message-level faults, applied per message on live connections ----
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double reorder_prob = 0.0;
  Duration reorder_max_delay = milliseconds(250);

  // Extra per-dial failure probability on top of the fabric's own
  // dial_success_prob model. Injected failures hang until the transport
  // timeout (half-broken NAT mapping, not a fast RST).
  double dial_failure_prob = 0.0;

  // --- Background Poisson processes (armed via arm()) ------------------
  // Network-wide latency spikes: a random node's links slow down by
  // latency_spike_factor for latency_spike_duration.
  double latency_spikes_per_hour = 0.0;
  double latency_spike_factor = 8.0;
  Duration latency_spike_duration = seconds(10);

  // Mid-transfer connection resets: a random live connection is torn down
  // and every in-flight request on it fails with RpcStatus::kReset.
  double connection_resets_per_hour = 0.0;

  // Crash/restart cycling for nodes under manage_crashes(). Rate is per
  // managed node; downtime is uniform in [min_downtime, max_downtime].
  double crashes_per_hour_per_node = 0.0;
  Duration min_downtime = seconds(10);
  Duration max_downtime = minutes(2);

  bool any_message_faults() const {
    return drop_prob > 0 || duplicate_prob > 0 || reorder_prob > 0 ||
           dial_failure_prob > 0;
  }
};

class FaultPlan : public FaultInjector {
 public:
  // Notified after the network state changed: (node, false) on crash,
  // (node, true) on restart.
  using CrashListener = std::function<void(NodeId, bool online)>;

  FaultPlan(Network& network, FaultConfig config, std::uint64_t seed);
  ~FaultPlan() override;

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // Puts `node` under crash/restart management (takes effect on arm()).
  void manage_crashes(NodeId node);
  void add_crash_listener(CrashListener listener);

  // Installs the injector on the network and starts the background
  // processes.
  void arm();

  // Stops the background processes and revives any node still down from
  // an injected crash (notifying listeners), so a subsequent run() drains
  // instead of chasing an endless crash/restart cycle. The message-level
  // injector stays installed; call detach() to remove it too.
  void disarm();

  // Removes the injector from the network (implies disarm()).
  void detach();

  bool armed() const { return armed_; }
  const FaultConfig& config() const { return config_; }

  // FaultInjector interface (consulted by the network fabric).
  bool drop_message(NodeId from, NodeId to) override;
  bool duplicate_message(NodeId from, NodeId to) override;
  Duration reorder_delay(NodeId from, NodeId to) override;
  bool fail_dial(NodeId from, NodeId to) override;
  double latency_factor(NodeId a, NodeId b) override;

  struct Counters {
    std::uint64_t messages_dropped = 0;
    std::uint64_t messages_duplicated = 0;
    std::uint64_t messages_reordered = 0;
    std::uint64_t dials_failed = 0;
    std::uint64_t latency_spikes = 0;
    std::uint64_t connection_resets = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;

    std::uint64_t total_injected() const {
      return messages_dropped + messages_duplicated + messages_reordered +
             dials_failed + latency_spikes + connection_resets + crashes;
    }
  };
  const Counters& counters() const { return counters_; }

  // Nodes currently offline because of an injected crash.
  std::size_t crashed_count() const;

 private:
  void schedule_spike();
  void schedule_reset();
  void schedule_crash(std::size_t index);
  void restart(std::size_t index);
  void notify(NodeId node, bool online);

  Network& network_;
  FaultConfig config_;
  Rng msg_rng_;   // drop/duplicate/reorder draws
  Rng dial_rng_;  // injected dial failures
  Rng proc_rng_;  // background process scheduling
  bool armed_ = false;
  bool installed_ = false;
  Counters counters_;

  std::vector<NodeId> managed_;
  std::vector<bool> down_;       // parallel to managed_: crashed right now
  std::vector<Timer> crash_timers_;  // parallel: next crash OR pending restart
  std::vector<CrashListener> listeners_;

  Timer spike_timer_;
  Timer reset_timer_;
  std::unordered_map<NodeId, Time> spike_until_;
};

}  // namespace ipfs::sim
