#include "sim/faults.h"

#include <algorithm>

namespace ipfs::sim {

namespace {

// Mean wait for a Poisson process of `per_hour` events.
Duration poisson_wait(Rng& rng, double per_hour) {
  return static_cast<Duration>(rng.exponential(3600e6 / per_hour));
}

}  // namespace

FaultPlan::FaultPlan(Network& network, FaultConfig config, std::uint64_t seed)
    : network_(network),
      config_(config),
      msg_rng_(Rng(seed).fork("fault-msg")),
      dial_rng_(Rng(seed).fork("fault-dial")),
      proc_rng_(Rng(seed).fork("fault-proc")) {}

FaultPlan::~FaultPlan() {
  // Kill background timers without reviving nodes (the world is being
  // torn down anyway), then detach from the fabric.
  spike_timer_.cancel();
  reset_timer_.cancel();
  for (auto& timer : crash_timers_) timer.cancel();
  if (installed_) network_.set_fault_injector(nullptr);
}

void FaultPlan::manage_crashes(NodeId node) {
  managed_.push_back(node);
  down_.push_back(false);
  crash_timers_.emplace_back();
  if (armed_ && config_.crashes_per_hour_per_node > 0)
    schedule_crash(managed_.size() - 1);
}

void FaultPlan::add_crash_listener(CrashListener listener) {
  listeners_.push_back(std::move(listener));
}

void FaultPlan::arm() {
  if (armed_) return;
  armed_ = true;
  network_.set_fault_injector(this);
  installed_ = true;
  if (config_.latency_spikes_per_hour > 0) schedule_spike();
  if (config_.connection_resets_per_hour > 0) schedule_reset();
  if (config_.crashes_per_hour_per_node > 0)
    for (std::size_t i = 0; i < managed_.size(); ++i) schedule_crash(i);
}

void FaultPlan::disarm() {
  if (!armed_) return;
  armed_ = false;
  spike_timer_.cancel();
  reset_timer_.cancel();
  for (auto& timer : crash_timers_) timer.cancel();
  // Revive crashed nodes so the remaining workload can drain to a stable
  // end state; listeners run their normal restart path.
  for (std::size_t i = 0; i < managed_.size(); ++i) {
    if (!down_[i]) continue;
    down_[i] = false;
    ++counters_.restarts;
    network_.set_online(managed_[i], true);
    notify(managed_[i], true);
  }
}

void FaultPlan::detach() {
  disarm();
  if (installed_) {
    network_.set_fault_injector(nullptr);
    installed_ = false;
  }
}

std::size_t FaultPlan::crashed_count() const {
  return static_cast<std::size_t>(
      std::count(down_.begin(), down_.end(), true));
}

// --------------------------------------------------------------------------
// FaultInjector interface
// --------------------------------------------------------------------------

bool FaultPlan::drop_message(NodeId, NodeId) {
  if (config_.drop_prob <= 0) return false;
  if (!msg_rng_.chance(config_.drop_prob)) return false;
  ++counters_.messages_dropped;
  return true;
}

bool FaultPlan::duplicate_message(NodeId, NodeId) {
  if (config_.duplicate_prob <= 0) return false;
  if (!msg_rng_.chance(config_.duplicate_prob)) return false;
  ++counters_.messages_duplicated;
  return true;
}

Duration FaultPlan::reorder_delay(NodeId, NodeId) {
  if (config_.reorder_prob <= 0) return 0;
  if (!msg_rng_.chance(config_.reorder_prob)) return 0;
  ++counters_.messages_reordered;
  return static_cast<Duration>(msg_rng_.uniform(
      1.0, static_cast<double>(config_.reorder_max_delay)));
}

bool FaultPlan::fail_dial(NodeId, NodeId) {
  if (config_.dial_failure_prob <= 0) return false;
  if (!dial_rng_.chance(config_.dial_failure_prob)) return false;
  ++counters_.dials_failed;
  return true;
}

double FaultPlan::latency_factor(NodeId a, NodeId b) {
  if (spike_until_.empty()) return 1.0;
  const Time now = network_.now();
  const auto spiking = [&](NodeId node) {
    const auto it = spike_until_.find(node);
    return it != spike_until_.end() && it->second > now;
  };
  return (spiking(a) || spiking(b)) ? config_.latency_spike_factor : 1.0;
}

// --------------------------------------------------------------------------
// Background processes
// --------------------------------------------------------------------------

void FaultPlan::notify(NodeId node, bool online) {
  for (const auto& listener : listeners_) listener(node, online);
}

void FaultPlan::schedule_spike() {
  spike_timer_ = network_.schedule_daemon_after(
      poisson_wait(proc_rng_, config_.latency_spikes_per_hour), [this] {
        if (!armed_) return;
        const NodeId victim = static_cast<NodeId>(proc_rng_.uniform_int(
            0, static_cast<std::int64_t>(network_.slot_count()) - 1));
        spike_until_[victim] =
            network_.now() + config_.latency_spike_duration;
        ++counters_.latency_spikes;
        schedule_spike();
      });
}

void FaultPlan::schedule_reset() {
  reset_timer_ = network_.schedule_daemon_after(
      poisson_wait(proc_rng_, config_.connection_resets_per_hour), [this] {
        if (!armed_) return;
        const NodeId victim = static_cast<NodeId>(proc_rng_.uniform_int(
            0, static_cast<std::int64_t>(network_.slot_count()) - 1));
        const auto connections = network_.connections_of(victim);
        if (!connections.empty()) {
          // Pick deterministically among the victim's sorted peers.
          auto sorted = connections;
          std::sort(sorted.begin(), sorted.end());
          const auto pick = static_cast<std::size_t>(proc_rng_.uniform_int(
              0, static_cast<std::int64_t>(sorted.size()) - 1));
          network_.reset_connection(victim, sorted[pick]);
          ++counters_.connection_resets;
        }
        schedule_reset();
      });
}

void FaultPlan::schedule_crash(std::size_t index) {
  crash_timers_[index] = network_.schedule_daemon_for(
      managed_[index], poisson_wait(proc_rng_, config_.crashes_per_hour_per_node),
      [this, index] {
        if (!armed_) return;
        const NodeId node = managed_[index];
        if (!network_.online(node)) {
          // Already offline for another reason; try again later.
          schedule_crash(index);
          return;
        }
        ++counters_.crashes;
        down_[index] = true;
        network_.set_online(node, false);
        notify(node, false);
        const Duration downtime = static_cast<Duration>(proc_rng_.uniform(
            static_cast<double>(config_.min_downtime),
            static_cast<double>(config_.max_downtime)));
        crash_timers_[index] = network_.schedule_daemon_for(
            node, downtime, [this, index] { restart(index); });
      });
}

void FaultPlan::restart(std::size_t index) {
  if (!down_[index]) return;
  down_[index] = false;
  ++counters_.restarts;
  const NodeId node = managed_[index];
  network_.set_online(node, true);
  notify(node, true);
  if (armed_ && config_.crashes_per_hour_per_node > 0) schedule_crash(index);
}

}  // namespace ipfs::sim
