// Deterministic random number generation for the simulator.
//
// Every source of randomness forks a named stream from the run seed, so
// adding a new consumer never perturbs the draws of existing ones and every
// experiment is exactly reproducible from its printed seed.
#pragma once

#include <cstdint>
#include <string_view>

namespace ipfs::sim {

// xoshiro256** seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool chance(double probability);

  double exponential(double mean);
  double normal(double mean, double stddev);
  // Log-normal parameterized by the median and sigma of log-space.
  double lognormal_median(double median, double sigma);
  // Bounded Pareto (power law) on [lo, hi] with shape alpha.
  double pareto(double lo, double hi, double alpha);

  // Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  std::uint64_t zipf(std::uint64_t n, double s);

  // Derives an independent stream for `name`; deterministic in (seed, name).
  Rng fork(std::string_view name) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
  bool have_gauss_ = false;
  double gauss_spare_ = 0.0;
};

}  // namespace ipfs::sim
