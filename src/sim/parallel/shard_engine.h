// Sharded event core: the simulator partitioned into per-shard event
// queues with conservative-lookahead windows and a deterministic
// cross-shard merge.
//
// Peers map to shards by id (node % shards). Each shard owns a slab
// arena of events and a binary min-heap of 24-byte (when, key, slot)
// records. Execution proceeds in lookahead windows derived from the
// region latency-matrix floor: a message crossing shards cannot arrive
// sooner than the minimum one-way latency L, so events a shard emits for
// another shard with delay >= L are staged in the destination's inbox
// and merged at the window barrier instead of touching the destination
// heap mid-window. Within a window the engine executes the globally
// minimal (when, key) head across all shard heaps, where
//
//   key = (origin node id << 32) | per-origin sequence number
//
// i.e. events are totally ordered by (timestamp, sender id, sequence).
// Because the heap merge respects this total order, the executed event
// sequence — and therefore every rng draw, counter and trace record —
// is byte-identical at any shard count. That is the determinism
// contract: the 1-shard engine is the oracle for the N-shard engine
// (docs/SCALING.md, "Sharded core").
//
// Execution is single-threaded: shards structure the event space (per-
// shard arenas, windowed barriers, batched cross-shard merges) rather
// than the thread space. The window/inbox seam is exactly where worker
// threads would detach — each shard's intra-window events touch only
// state reachable from its own nodes once sub-lookahead cross-shard
// fast-path inserts (counted in par.xshard.fast) are eliminated.
//
// The engine is dramatically cheaper per event than sim::Simulator:
// events live in recycled slab slots (no per-event shared_ptr control
// block; cancellable timers are the only events that allocate a
// Timer::State), and callbacks are stored in an 80-byte in-place task
// buffer instead of std::function (libstdc++ heap-allocates any capture
// over 16 bytes — nearly every fabric closure).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"

namespace ipfs::metrics {
class Registry;
class Counter;
}  // namespace ipfs::metrics

namespace ipfs::sim::parallel {

// Origin id used for events not attributable to a node (harness drivers,
// fault processes). Sorts after all real nodes at equal timestamps.
constexpr std::uint32_t kVirtualOrigin = 0xffffffffu;

// Move-free callable with in-place storage. Events never move once
// slotted (heap records carry slot indices, the slab has stable
// addresses), so only invoke + destroy are needed. Captures larger than
// the buffer fall back to one heap allocation.
class InlineTask {
 public:
  static constexpr std::size_t kInlineBytes = 80;

  InlineTask() = default;
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;
  ~InlineTask() { reset(); }

  template <typename F>
  void bind(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(fn));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      destroy_ = [](void* p) { delete *static_cast<Fn**>(p); };
    }
  }

  void operator()() { invoke_(buf_); }

  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

class ShardEngine {
 public:
  // `lookahead` must be >= 1 µs (the caller derives it from the latency
  // matrix floor and falls back to a single shard when the floor is 0).
  // `registry` (optional) receives the par.* counters on run end.
  ShardEngine(std::size_t shards, Duration lookahead,
              metrics::Registry* registry);
  ~ShardEngine();

  Time now() const { return now_; }
  std::size_t shard_count() const { return shards_.size(); }
  Duration lookahead() const { return lookahead_; }
  std::size_t foreground_pending() const { return foreground_pending_; }
  std::size_t pending_events() const;  // includes cancelled + staged

  // Shard currently executing (0 outside run). Node-less schedules land
  // here so delay-0 continuations stay in causal order.
  std::size_t current_shard() const { return cur_shard_; }

  // Runs until no live non-daemon event remains. Returns events executed.
  std::uint64_t run();
  // Runs every event (daemons included) up to `deadline` inclusive, then
  // advances the clock to it (matching sim::Simulator::run_until).
  std::uint64_t run_until(Time deadline);

  // Fire-and-forget event: no Timer handle, no Timer::State allocation.
  // This is the fabric's hot path (message/dial deliveries discard their
  // handles). `origin` orders the event among same-timestamp peers;
  // `dest_shard` picks the owning heap.
  template <typename F>
  void post(std::uint32_t origin, std::size_t dest_shard, Time when,
            bool daemon, F&& fn) {
    Slot s = allocate(dest_shard);
    s.event->daemon = daemon;
    s.event->task.bind(std::forward<F>(fn));
    enqueue(dest_shard, s.index, origin, when, daemon);
  }

  // Cancellable variant: allocates the shared Timer::State.
  Timer schedule(std::uint32_t origin, std::size_t dest_shard, Time when,
                 bool daemon, std::function<void()> fn);

  // Emits an `par.xshard` instant (node = origin, value = dest shard) for
  // every inbox-routed cross-shard event. Off by default: the markers
  // legitimately differ across shard counts, so determinism comparisons
  // strip or disable them.
  void set_emit_xshard_markers(bool on) { emit_xshard_markers_ = on; }

  // Introspection for tests and benches (totals since construction).
  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t windows() const { return windows_; }
  std::uint64_t cross_shard_batched() const { return xshard_batched_; }
  std::uint64_t cross_shard_fast() const { return xshard_fast_; }
  std::uint64_t shard_events(std::size_t shard) const {
    return shards_[shard].executed;
  }

  // Heap record: everything the merge needs without touching the slab.
  struct Item {
    Time when;
    std::uint64_t key;
    std::uint32_t slot;
  };

 private:
  struct PEvent {
    InlineTask task;
    std::shared_ptr<Timer::State> state;  // null for post()ed events
    bool daemon = false;
  };
  static constexpr std::size_t kChunkShift = 9;  // 512 events per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  struct Shard {
    std::vector<Item> heap;                        // min-heap by (when, key)
    std::vector<std::unique_ptr<PEvent[]>> slab;   // stable-address chunks
    std::vector<std::uint32_t> free_slots;
    std::vector<Item> inbox;  // cross-shard arrivals staged until barrier
    std::uint64_t executed = 0;
    std::uint64_t flushed_executed = 0;  // already exported to registry
  };

  struct Slot {
    PEvent* event;
    std::uint32_t index;
  };

  Slot allocate(std::size_t shard);
  void enqueue(std::size_t shard, std::uint32_t slot, std::uint32_t origin,
               Time when, bool daemon);
  PEvent& at(Shard& shard, std::uint32_t slot) {
    return shard.slab[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  std::uint64_t next_key(std::uint32_t origin);
  void merge_inboxes();
  // Index of the shard holding the globally minimal live head, pruning
  // cancelled entries; -1 when every heap is empty.
  int min_shard();
  // Executes heads with when < window_end (and <= deadline when
  // bounded); returns executed count. Stops early once the foreground
  // drains if `until_drained`.
  std::uint64_t run_window(Time window_end, Time deadline, bool bounded,
                           bool until_drained);
  void flush_stats();

  std::vector<Shard> shards_;
  Duration lookahead_;
  metrics::Registry* registry_;
  Time now_ = 0;
  std::size_t cur_shard_ = 0;
  std::size_t foreground_pending_ = 0;
  bool running_ = false;
  Time window_end_ = 0;  // valid only while running_
  std::vector<std::uint32_t> seq_;  // per-origin sequence numbers
  std::uint32_t virtual_seq_ = 0;
  bool emit_xshard_markers_ = false;

  std::uint64_t events_executed_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t xshard_batched_ = 0;
  std::uint64_t xshard_fast_ = 0;
  std::uint64_t flushed_events_ = 0;
  std::uint64_t flushed_windows_ = 0;
  std::uint64_t flushed_batched_ = 0;
  std::uint64_t flushed_fast_ = 0;
};

}  // namespace ipfs::sim::parallel
