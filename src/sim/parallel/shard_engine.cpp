#include "sim/parallel/shard_engine.h"

#include <algorithm>
#include <limits>

#include "metrics/metrics.h"

namespace ipfs::sim::parallel {

namespace {

// Min-heap comparator over (when, key): std::push_heap et al. build a
// max-heap, so "after" inverts the order.
struct After {
  bool operator()(const ShardEngine::Item& a,
                  const ShardEngine::Item& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.key > b.key;
  }
};

constexpr Time kNoDeadline = std::numeric_limits<Time>::max();

}  // namespace

ShardEngine::ShardEngine(std::size_t shards, Duration lookahead,
                         metrics::Registry* registry)
    : shards_(std::max<std::size_t>(1, shards)),
      lookahead_(std::max<Duration>(1, lookahead)),
      registry_(registry) {}

ShardEngine::~ShardEngine() = default;

std::size_t ShardEngine::pending_events() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_)
    total += shard.heap.size() + shard.inbox.size();
  return total;
}

ShardEngine::Slot ShardEngine::allocate(std::size_t shard) {
  Shard& s = shards_[shard];
  std::uint32_t index;
  if (!s.free_slots.empty()) {
    index = s.free_slots.back();
    s.free_slots.pop_back();
  } else {
    index = static_cast<std::uint32_t>(s.slab.size() * kChunkSize);
    s.slab.push_back(std::make_unique<PEvent[]>(kChunkSize));
    // Hand out the rest of the fresh chunk through the free list.
    for (std::uint32_t i = static_cast<std::uint32_t>(kChunkSize) - 1; i >= 1;
         --i)
      s.free_slots.push_back(index + i);
  }
  return Slot{&at(s, index), index};
}

std::uint64_t ShardEngine::next_key(std::uint32_t origin) {
  if (origin == kVirtualOrigin)
    return (std::uint64_t{kVirtualOrigin} << 32) | virtual_seq_++;
  if (origin >= seq_.size()) seq_.resize(origin + 1, 0);
  return (std::uint64_t{origin} << 32) | seq_[origin]++;
}

void ShardEngine::enqueue(std::size_t shard, std::uint32_t slot,
                          std::uint32_t origin, Time when, bool daemon) {
  assert(when >= now_ && "cannot schedule into the past");
  const Item item{when, next_key(origin), slot};
  Shard& dest = shards_[shard];
  if (running_ && shard != cur_shard_ && when >= window_end_) {
    // Beyond the lookahead horizon: stage in the destination's inbox and
    // merge at the window barrier. The (when, key) total order makes the
    // merge independent of emission order across shards.
    dest.inbox.push_back(item);
    ++xshard_batched_;
    if (emit_xshard_markers_ && registry_ != nullptr)
      registry_->instant("par.xshard", origin, {}, shard);
  } else {
    // Same shard, not running, or a sub-lookahead cross-shard event. The
    // last case would deadlock a truly parallel executor; under the
    // single-threaded merge it is a plain insert, counted so the future
    // threading work knows how often the conservative bound is violated
    // by synchronous cross-node calls (drivers invoking another shard's
    // node directly).
    if (running_ && shard != cur_shard_) ++xshard_fast_;
    dest.heap.push_back(item);
    std::push_heap(dest.heap.begin(), dest.heap.end(), After{});
  }
  if (!daemon) ++foreground_pending_;
}

Timer ShardEngine::schedule(std::uint32_t origin, std::size_t dest_shard,
                            Time when, bool daemon,
                            std::function<void()> fn) {
  Slot s = allocate(dest_shard);
  auto state = std::make_shared<Timer::State>();
  state->daemon = daemon;
  state->foreground_pending = &foreground_pending_;
  s.event->daemon = daemon;
  s.event->state = state;
  s.event->task.bind(std::move(fn));
  enqueue(dest_shard, s.index, origin, when, daemon);
  return Timer(std::move(state));
}

void ShardEngine::merge_inboxes() {
  for (Shard& shard : shards_) {
    if (shard.inbox.empty()) continue;
    for (const Item& item : shard.inbox) {
      shard.heap.push_back(item);
      std::push_heap(shard.heap.begin(), shard.heap.end(), After{});
    }
    shard.inbox.clear();
  }
}

int ShardEngine::min_shard() {
  int best = -1;
  Time best_when = 0;
  std::uint64_t best_key = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    // Prune cancelled heads lazily, releasing their slots.
    while (!shard.heap.empty()) {
      PEvent& head = at(shard, shard.heap.front().slot);
      if (head.state == nullptr || head.state->alive) break;
      head.task.reset();
      head.state.reset();
      shard.free_slots.push_back(shard.heap.front().slot);
      std::pop_heap(shard.heap.begin(), shard.heap.end(), After{});
      shard.heap.pop_back();
    }
    if (shard.heap.empty()) continue;
    const Item& top = shard.heap.front();
    if (best < 0 || top.when < best_when ||
        (top.when == best_when && top.key < best_key)) {
      best = static_cast<int>(i);
      best_when = top.when;
      best_key = top.key;
    }
  }
  return best;
}

std::uint64_t ShardEngine::run_window(Time window_end, Time deadline,
                                      bool bounded, bool until_drained) {
  std::uint64_t executed = 0;
  window_end_ = window_end;
  for (;;) {
    const int s = min_shard();
    if (s < 0) break;
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    const Item top = shard.heap.front();
    if (top.when >= window_end) break;
    if (bounded && top.when > deadline) break;
    std::pop_heap(shard.heap.begin(), shard.heap.end(), After{});
    shard.heap.pop_back();

    PEvent& event = at(shard, top.slot);
    if (event.state != nullptr) event.state->alive = false;  // consumed
    if (!event.daemon) --foreground_pending_;
    now_ = top.when;
    cur_shard_ = static_cast<std::size_t>(s);
    ++shard.executed;
    ++executed;
    event.task();
    // Release the slot only after the callback returns: the slab is
    // chunked (stable addresses), so callbacks scheduling new events
    // cannot invalidate `event` mid-call.
    event.task.reset();
    event.state.reset();
    shard.free_slots.push_back(top.slot);

    if (until_drained && foreground_pending_ == 0) break;
  }
  cur_shard_ = 0;
  events_executed_ += executed;
  return executed;
}

std::uint64_t ShardEngine::run() {
  std::uint64_t executed = 0;
  running_ = true;
  while (foreground_pending_ > 0) {
    merge_inboxes();
    const int s = min_shard();
    if (s < 0) break;  // only cancelled entries remained
    const Time gvt = shards_[static_cast<std::size_t>(s)].heap.front().when;
    ++windows_;
    executed += run_window(gvt + lookahead_, 0, /*bounded=*/false,
                           /*until_drained=*/true);
  }
  running_ = false;
  flush_stats();
  return executed;
}

std::uint64_t ShardEngine::run_until(Time deadline) {
  std::uint64_t executed = 0;
  running_ = true;
  for (;;) {
    merge_inboxes();
    const int s = min_shard();
    if (s < 0) break;
    const Time gvt = shards_[static_cast<std::size_t>(s)].heap.front().when;
    if (gvt > deadline) break;
    ++windows_;
    executed += run_window(gvt + lookahead_, deadline, /*bounded=*/true,
                           /*until_drained=*/false);
  }
  running_ = false;
  if (now_ < deadline && deadline != kNoDeadline) now_ = deadline;
  flush_stats();
  return executed;
}

void ShardEngine::flush_stats() {
  if (registry_ == nullptr) return;
  const auto delta = [](std::uint64_t& flushed, std::uint64_t total) {
    const std::uint64_t d = total - flushed;
    flushed = total;
    return d;
  };
  if (const auto d = delta(flushed_events_, events_executed_); d > 0)
    registry_->counter("par.events").inc(d);
  if (const auto d = delta(flushed_windows_, windows_); d > 0)
    registry_->counter("par.windows").inc(d);
  if (const auto d = delta(flushed_batched_, xshard_batched_); d > 0)
    registry_->counter("par.xshard.batched").inc(d);
  if (const auto d = delta(flushed_fast_, xshard_fast_); d > 0)
    registry_->counter("par.xshard.fast").inc(d);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (const auto d = delta(shard.flushed_executed, shard.executed); d > 0)
      registry_->counter("par.shard" + std::to_string(i) + ".events").inc(d);
  }
}

}  // namespace ipfs::sim::parallel
