#include "sim/simulator.h"

#include <cassert>
#include <limits>
#include <utility>

namespace ipfs::sim {

void Timer::cancel() {
  if (!state_ || !state_->alive) return;
  state_->alive = false;
  if (!state_->daemon && state_->foreground_pending != nullptr)
    --*state_->foreground_pending;
}

bool Timer::active() const { return state_ && state_->alive; }

Timer Simulator::schedule_event(Time when, std::function<void()> fn,
                                bool daemon) {
  assert(when >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<Timer::State>();
  state->daemon = daemon;
  state->foreground_pending = &foreground_pending_;
  Event event{when, next_sequence_++, std::move(fn), state};
  if (backend_ == SchedulerBackend::kTimerWheel)
    wheel_.insert(std::move(event));
  else
    heap_.push(std::move(event));
  if (!daemon) ++foreground_pending_;
  return Timer(std::move(state));
}

Timer Simulator::schedule_at(Time when, std::function<void()> fn) {
  return schedule_event(when, std::move(fn), /*daemon=*/false);
}

Timer Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_event(now_ + delay, std::move(fn), /*daemon=*/false);
}

Timer Simulator::schedule_daemon_at(Time when, std::function<void()> fn) {
  return schedule_event(when, std::move(fn), /*daemon=*/true);
}

Timer Simulator::schedule_daemon_after(Duration delay,
                                       std::function<void()> fn) {
  return schedule_event(now_ + delay, std::move(fn), /*daemon=*/true);
}

Event* Simulator::peek_next() {
  if (backend_ == SchedulerBackend::kTimerWheel) return wheel_.peek();
  while (!heap_.empty()) {
    if (heap_.top().state->alive) return &heap_.top();
    heap_.pop();  // cancelled: prune lazily
  }
  return nullptr;
}

Event Simulator::pop_next() {
  if (backend_ == SchedulerBackend::kTimerWheel) return wheel_.pop();
  return heap_.pop();
}

bool Simulator::step() {
  if (peek_next() == nullptr) return false;
  Event event = pop_next();
  event.state->alive = false;  // consumed
  if (!event.state->daemon) --foreground_pending_;
  now_ = event.when;
  event.fn();
  return true;
}

std::uint64_t Simulator::run() {
  // Run until only daemon events (periodic maintenance) remain.
  std::uint64_t executed = 0;
  while (foreground_pending_ > 0) {
    if (!step()) break;
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t executed = 0;
  for (;;) {
    // peek_next() prunes cancelled entries, so a cancelled entry at
    // t <= deadline never unmasks a live event scheduled past the
    // deadline.
    Event* next = peek_next();
    if (next == nullptr || next->when > deadline) break;
    if (step()) ++executed;
  }
  if (now_ < deadline && deadline != std::numeric_limits<Time>::max())
    now_ = deadline;
  return executed;
}

}  // namespace ipfs::sim
