#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace ipfs::sim {

Duration dial_timeout(Transport transport) {
  switch (transport) {
    case Transport::kTcp:
    case Transport::kQuic:
      return seconds(5);  // transport-level dial timeout (paper Section 6.1)
    case Transport::kWebSocket:
      return seconds(45);  // websocket handshake timeout (paper Section 6.1)
  }
  return seconds(5);
}

int handshake_round_trips(Transport transport) {
  switch (transport) {
    case Transport::kTcp:
      return 2;  // TCP + Noise/TLS1.3; muxer piggybacks on the last flight
    case Transport::kQuic:
      return 1;  // combined transport/crypto handshake
    case Transport::kWebSocket:
      return 3;  // TCP + TLS + HTTP upgrade
  }
  return 2;
}

LatencyModel::LatencyModel(std::vector<std::vector<double>> one_way_ms,
                           double jitter_low, double jitter_high)
    : matrix_(std::move(one_way_ms)),
      jitter_low_(jitter_low),
      jitter_high_(jitter_high) {
  assert(!matrix_.empty());
  for (const auto& row : matrix_) {
    assert(row.size() == matrix_.size());
    (void)row;
  }
}

Duration LatencyModel::sample(int region_a, int region_b, Rng& rng) const {
  const double base = matrix_[region_a][region_b];
  const double jitter = rng.uniform(jitter_low_, jitter_high_);
  return milliseconds(base * jitter);
}

Network::Network(Simulator& simulator, const LatencyModel& latency,
                 std::uint64_t seed)
    : simulator_(simulator),
      latency_(latency),
      rng_(Rng(seed).fork("network")),
      metrics_([this] { return simulator_.now(); }) {}

NodeId Network::add_node(const NodeConfig& config) {
  assert(config.region >= 0 && config.region < latency_.regions());
  nodes_.push_back(NodeState{config, true, 0, nullptr, nullptr, {}});
  uplink_free_at_.push_back(0);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_online(NodeId id, bool online) {
  NodeState& node = nodes_[id];
  if (node.online == online) return;
  node.online = online;
  if (!online) {
    ++node.epoch;  // mute callbacks the node still has in flight
    // Tear down connections from both sides.
    const auto connections = node.connections;
    for (const NodeId peer : connections) {
      nodes_[peer].connections.erase(id);
    }
    node.connections.clear();
  }
}

void Network::set_responsive(NodeId id, bool responsive) {
  nodes_[id].config.responsive = responsive;
}

void Network::set_dialable(NodeId id, bool dialable) {
  nodes_[id].config.dialable = dialable;
}

void Network::set_request_handler(NodeId id, RequestHandler handler) {
  nodes_[id].request_handler = std::move(handler);
}

void Network::set_message_handler(NodeId id, MessageHandler handler) {
  nodes_[id].message_handler = std::move(handler);
}

Duration Network::one_way(NodeId a, NodeId b) {
  Duration sampled = latency_.sample(nodes_[a].config.region,
                                     nodes_[b].config.region, rng_);
  if (injector_ != nullptr) {
    const double factor = injector_->latency_factor(a, b);
    if (factor != 1.0)
      sampled = static_cast<Duration>(static_cast<double>(sampled) * factor);
  }
  return sampled;
}

Duration Network::sample_latency(NodeId a, NodeId b) { return one_way(a, b); }

Duration Network::transfer_time(NodeId from, NodeId to,
                                std::size_t bytes) const {
  const double rate = std::min(nodes_[from].config.upload_bytes_per_sec,
                               nodes_[to].config.download_bytes_per_sec);
  return seconds(static_cast<double>(bytes) / rate);
}

Duration Network::queued_transfer_delay(NodeId from, NodeId to,
                                        std::size_t bytes) {
  const Duration service = transfer_time(from, to, bytes);
  const Time start = std::max(simulator_.now(), uplink_free_at_[from]);
  uplink_free_at_[from] = start + service;
  return (start + service) - simulator_.now();
}

void Network::connect(NodeId from, NodeId to, DialCallback cb) {
  assert(from != to);
  ++dials_attempted_;
  metrics_.counter("net.dials_attempted").inc();
  NodeState& src = nodes_[from];
  if (!src.online) return;  // an offline node cannot observe anything

  if (connected(from, to)) {
    // Reusing an existing connection: a zero-length dial span keeps the
    // trace complete without pretending a handshake happened.
    metrics_.end_span(metrics_.begin_span("net.dial", from, {}, 0, to));
    cb(true, 0);
    return;
  }

  const metrics::SpanId dial_span =
      metrics_.begin_span("net.dial", from, {}, 0, to);

  const NodeState& dst = nodes_[to];
  const Transport transport = dst.config.transport;
  const std::uint64_t epoch = src.epoch;
  const Time start = simulator_.now();

  // NAT'ed peers with a relay are reachable via the relay (DCUtR): the
  // dial traverses both legs, then tries to hole-punch a direct path.
  if (!dst.config.dialable && dst.online &&
      dst.config.relay != kInvalidNode && nodes_[dst.config.relay].online) {
    const NodeId relay = dst.config.relay;
    const Duration via_relay =
        (one_way(from, relay) + one_way(relay, to)) * 2 *
        handshake_round_trips(transport);
    const bool upgraded = rng_.chance(dst.config.dcutr_success_prob);
    // A failed hole punch still yields a (relayed) connection; only the
    // latency differs. Model both as a connection after the setup time,
    // with an extra round of coordination when the punch succeeds.
    const Duration setup =
        via_relay + (upgraded ? one_way(from, to) * 2 : 0);
    simulator_.schedule_after(
        setup, [this, from, to, epoch, cb, start, dial_span] {
          // The dial outcome is real telemetry even when the requester has
          // since churned out, so the span ends before the liveness check.
          const bool ok = nodes_[to].online;
          metrics_.end_span(dial_span, ok);
          if (!callback_alive(from, epoch)) return;
          if (!ok) {
            ++dials_failed_;
            metrics_.counter("net.dials_failed").inc();
            cb(false, simulator_.now() - start);
            return;
          }
          nodes_[from].connections.insert(to);
          nodes_[to].connections.insert(from);
          cb(true, simulator_.now() - start);
        });
    return;
  }

  // Injected dial failures short-circuit before the fabric's own flaky-
  // reachability draw so a no-injector run consumes the same rng stream.
  if (!dst.online || !dst.config.dialable ||
      (injector_ != nullptr && injector_->fail_dial(from, to)) ||
      !rng_.chance(dst.config.dial_success_prob)) {
    ++dials_failed_;
    metrics_.counter("net.dials_failed").inc();
    // Offline-but-dialable hosts usually refuse quickly (RST / ICMP);
    // NAT'ed and flaky targets hang until the transport gives up.
    Duration fail_after =
        dial_timeout(transport) +
        milliseconds(rng_.uniform(20, 150));  // scheduler/teardown slack
    if (!dst.online && dst.config.dialable &&
        rng_.chance(kFastFailProbability)) {
      fail_after = one_way(from, to) * 2;  // one round trip to the RST
    }
    simulator_.schedule_after(fail_after,
                              [this, from, epoch, cb, start, dial_span] {
                                metrics_.end_span(dial_span, false);
                                if (!callback_alive(from, epoch)) return;
                                cb(false, simulator_.now() - start);
                              });
    return;
  }

  const Duration rtt = one_way(from, to) * 2;
  const Duration handshake = rtt * handshake_round_trips(transport);
  simulator_.schedule_after(
      handshake, [this, from, to, epoch, cb, start, dial_span] {
        const bool ok = nodes_[to].online;
        metrics_.end_span(dial_span, ok);
        if (!callback_alive(from, epoch)) return;
        if (!ok) {
          // Peer churned out mid-handshake; surface as a (slow) failure.
          ++dials_failed_;
          metrics_.counter("net.dials_failed").inc();
          cb(false, simulator_.now() - start);
          return;
        }
        nodes_[from].connections.insert(to);
        nodes_[to].connections.insert(from);
        cb(true, simulator_.now() - start);
      });
}

void Network::disconnect(NodeId from, NodeId to) {
  nodes_[from].connections.erase(to);
  nodes_[to].connections.erase(from);
}

bool Network::connected(NodeId a, NodeId b) const {
  return nodes_[a].connections.contains(b);
}

std::vector<NodeId> Network::connections_of(NodeId id) const {
  const auto& set = nodes_[id].connections;
  return std::vector<NodeId>(set.begin(), set.end());
}

void Network::send(NodeId from, NodeId to, MessagePtr message,
                   std::size_t bytes) {
  if (!nodes_[from].online || !connected(from, to)) return;
  // Bytes hit the wire even when the injector then loses them in transit.
  metrics_.counter("net.messages_sent").inc();
  metrics_.counter("net.bytes_sent").inc(bytes);
  if (injector_ != nullptr && injector_->drop_message(from, to)) return;
  Duration delay = one_way(from, to) + queued_transfer_delay(from, to, bytes);
  bool duplicate = false;
  if (injector_ != nullptr) {
    delay += injector_->reorder_delay(from, to);
    duplicate = injector_->duplicate_message(from, to);
  }
  auto deliver = [this, from, to, message = std::move(message)] {
    const NodeState& dst = nodes_[to];
    if (!dst.online || !dst.config.responsive) return;
    ++messages_delivered_;
    if (dst.message_handler) dst.message_handler(from, message);
  };
  if (duplicate)
    simulator_.schedule_after(delay + milliseconds(1), deliver);
  simulator_.schedule_after(delay, std::move(deliver));
}

void Network::request(NodeId from, NodeId to, MessagePtr request,
                      std::size_t request_bytes, Duration timeout,
                      ResponseCallback cb) {
  NodeState& src = nodes_[from];
  if (!src.online) return;
  if (!connected(from, to)) {
    metrics_.counter("net.rpcs_sent").inc();
    metrics_.counter("net.rpcs_unreachable").inc();
    metrics_.end_span(metrics_.begin_span("net.rpc", from, {}, 0, to), false);
    cb(RpcStatus::kUnreachable, nullptr);
    return;
  }

  metrics_.counter("net.rpcs_sent").inc();
  metrics_.counter("net.bytes_sent").inc(request_bytes);
  const std::uint64_t request_id = next_request_id_++;
  PendingRequest pending;
  pending.from = from;
  pending.to = to;
  pending.from_epoch = src.epoch;
  pending.cb = std::move(cb);
  pending.span = metrics_.begin_span("net.rpc", from, {}, 0, to);
  pending.timeout_timer =
      simulator_.schedule_after(timeout, [this, request_id] {
        const auto it = pending_.find(request_id);
        if (it == pending_.end()) return;
        PendingRequest entry = std::move(it->second);
        pending_.erase(it);
        metrics_.counter("net.rpc_timeouts").inc();
        metrics_.end_span(entry.span, false);
        if (!callback_alive(entry.from, entry.from_epoch)) return;
        entry.cb(RpcStatus::kTimeout, nullptr);
      });
  pending_.emplace(request_id, std::move(pending));

  // A dropped request leg still leaves the pending entry armed: the
  // requester cannot tell a lost request from a slow peer, so the normal
  // timeout fires.
  if (injector_ != nullptr && injector_->drop_message(from, to)) return;

  Duration delay =
      one_way(from, to) + queued_transfer_delay(from, to, request_bytes);
  bool duplicate = false;
  if (injector_ != nullptr) {
    delay += injector_->reorder_delay(from, to);
    duplicate = injector_->duplicate_message(from, to);
  }
  auto deliver = [this, from, to, request_id, request = std::move(request)] {
    const NodeState& dst = nodes_[to];
    // Offline or stalled peers swallow the request; the timeout fires.
    if (!dst.online || !dst.config.responsive || !dst.request_handler)
      return;
    ++messages_delivered_;
    auto respond = [this, to, from, request_id](MessagePtr response,
                                                std::size_t bytes) {
      // Response travels back if the responder is still online.
      if (!nodes_[to].online) return;
      metrics_.counter("net.bytes_sent").inc(bytes);
      if (injector_ != nullptr && injector_->drop_message(to, from)) return;
      Duration back =
          one_way(to, from) + queued_transfer_delay(to, from, bytes);
      if (injector_ != nullptr) back += injector_->reorder_delay(to, from);
      simulator_.schedule_after(
          back, [this, request_id, response = std::move(response)] {
            const auto it = pending_.find(request_id);
            if (it == pending_.end()) return;  // already timed out
            PendingRequest entry = std::move(it->second);
            pending_.erase(it);
            entry.timeout_timer.cancel();
            metrics_.end_span(entry.span, true);
            if (!callback_alive(entry.from, entry.from_epoch)) return;
            entry.cb(RpcStatus::kOk, response);
          });
    };
    dst.request_handler(from, request, std::move(respond));
  };
  // A duplicated request reaches the handler twice; the second respond()
  // finds the pending entry consumed and is ignored, but the responder's
  // side effects (ledger counts, record stores) happen twice — exactly
  // the at-least-once delivery real retransmissions produce.
  if (duplicate)
    simulator_.schedule_after(delay + milliseconds(1), deliver);
  simulator_.schedule_after(delay, std::move(deliver));
}

void Network::reset_connection(NodeId a, NodeId b) {
  disconnect(a, b);
  // Collect in deterministic order: the pending_ map's iteration order is
  // not part of the simulation contract.
  std::vector<std::uint64_t> hit;
  for (const auto& [id, entry] : pending_) {
    if ((entry.from == a && entry.to == b) ||
        (entry.from == b && entry.to == a))
      hit.push_back(id);
  }
  std::sort(hit.begin(), hit.end());
  for (const std::uint64_t id : hit) {
    const auto it = pending_.find(id);
    PendingRequest entry = std::move(it->second);
    pending_.erase(it);
    entry.timeout_timer.cancel();
    metrics_.counter("net.rpc_resets").inc();
    metrics_.end_span(entry.span, false);
    simulator_.schedule_after(0, [this, entry]() {
      if (!callback_alive(entry.from, entry.from_epoch)) return;
      entry.cb(RpcStatus::kReset, nullptr);
    });
  }
}

}  // namespace ipfs::sim
