#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace ipfs::sim {

Duration dial_timeout(Transport transport) {
  switch (transport) {
    case Transport::kTcp:
    case Transport::kQuic:
      return seconds(5);  // transport-level dial timeout (paper Section 6.1)
    case Transport::kWebSocket:
      return seconds(45);  // websocket handshake timeout (paper Section 6.1)
  }
  return seconds(5);
}

int handshake_round_trips(Transport transport) {
  switch (transport) {
    case Transport::kTcp:
      return 2;  // TCP + Noise/TLS1.3; muxer piggybacks on the last flight
    case Transport::kQuic:
      return 1;  // combined transport/crypto handshake
    case Transport::kWebSocket:
      return 3;  // TCP + TLS + HTTP upgrade
  }
  return 2;
}

LatencyModel::LatencyModel(std::vector<std::vector<double>> one_way_ms,
                           double jitter_low, double jitter_high)
    : regions_(static_cast<int>(one_way_ms.size())),
      jitter_low_(jitter_low),
      jitter_high_(jitter_high) {
  assert(!one_way_ms.empty());
  flat_.reserve(static_cast<std::size_t>(regions_) *
                static_cast<std::size_t>(regions_));
  for (const auto& row : one_way_ms) {
    assert(row.size() == one_way_ms.size());
    flat_.insert(flat_.end(), row.begin(), row.end());
  }
}

Network::Network(Simulator& simulator, const LatencyModel& latency,
                 std::uint64_t seed)
    : simulator_(simulator),
      latency_(latency),
      rng_(Rng(seed).fork("network")),
      metrics_([this] { return now(); }) {}

void Network::enable_sharding(std::size_t shards) {
  if (shards == 0) return;  // 0 = legacy sequential scheduler
  assert(engine_ == nullptr && "sharding already enabled");
  assert(simulator_.now() == 0 && simulator_.pending_events() == 0 &&
         "enable_sharding must precede any scheduling");
  // Conservative lookahead: no sampled one-way latency is below the
  // matrix floor times the jitter floor. A zero floor (tests with
  // zero-latency matrices) leaves no safe window, so fall back to a
  // single shard — still the engine, but with no cross-shard traffic.
  const Duration floor =
      milliseconds(latency_.min_base_ms() * latency_.jitter_low());
  if (floor <= 0) shards = 1;
  engine_ = std::make_unique<parallel::ShardEngine>(
      shards, std::max<Duration>(floor, 1), &metrics_);
}

Timer Network::schedule_for(NodeId node, Duration delay,
                            std::function<void()> fn) {
  if (engine_)
    return engine_->schedule(node, shard_of(node), engine_->now() + delay,
                             /*daemon=*/false, std::move(fn));
  return simulator_.schedule_after(delay, std::move(fn));
}

Timer Network::schedule_daemon_for(NodeId node, Duration delay,
                                   std::function<void()> fn) {
  if (engine_)
    return engine_->schedule(node, shard_of(node), engine_->now() + delay,
                             /*daemon=*/true, std::move(fn));
  return simulator_.schedule_daemon_after(delay, std::move(fn));
}

Timer Network::schedule_daemon_at_for(NodeId node, Time when,
                                      std::function<void()> fn) {
  if (engine_)
    return engine_->schedule(node, shard_of(node), when, /*daemon=*/true,
                             std::move(fn));
  return simulator_.schedule_daemon_at(when, std::move(fn));
}

Timer Network::schedule_at(Time when, std::function<void()> fn) {
  if (engine_)
    return engine_->schedule(parallel::kVirtualOrigin,
                             engine_->current_shard(), when,
                             /*daemon=*/false, std::move(fn));
  return simulator_.schedule_at(when, std::move(fn));
}

Timer Network::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now() + delay, std::move(fn));
}

Timer Network::schedule_daemon_at(Time when, std::function<void()> fn) {
  if (engine_)
    return engine_->schedule(parallel::kVirtualOrigin,
                             engine_->current_shard(), when,
                             /*daemon=*/true, std::move(fn));
  return simulator_.schedule_daemon_at(when, std::move(fn));
}

Timer Network::schedule_daemon_after(Duration delay,
                                     std::function<void()> fn) {
  return schedule_daemon_at(now() + delay, std::move(fn));
}

NodeId Network::add_node(const NodeConfig& config) {
  assert(config.region >= 0 && config.region < latency_.regions());
  NodeId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    configs_[id] = config;
    online_[id] = 1;
    // The epoch was bumped on removal, so callbacks belonging to the
    // slot's previous occupant stay muted for the new one.
    connections_[id].clear();
    uplink_free_at_[id] = 0;
  } else {
    id = static_cast<NodeId>(configs_.size());
    configs_.push_back(config);
    online_.push_back(1);
    epochs_.push_back(0);
    request_handlers_.emplace_back();
    message_handlers_.emplace_back();
    connections_.emplace_back();
    uplink_free_at_.push_back(0);
    in_use_.push_back(0);
  }
  in_use_[id] = 1;
  ++live_nodes_;
  return id;
}

void Network::remove_node(NodeId id) {
  assert(in_use_[id] != 0);
  set_online(id, false);  // tears down connections, bumps the epoch
  request_handlers_[id] = nullptr;
  message_handlers_[id] = nullptr;
  in_use_[id] = 0;
  --live_nodes_;
  free_ids_.push_back(id);
}

void Network::set_online(NodeId id, bool online) {
  if ((online_[id] != 0) == online) return;
  online_[id] = online ? 1 : 0;
  if (!online) {
    ++epochs_[id];  // mute callbacks the node still has in flight
    // Tear down connections from both sides.
    for (const NodeId peer : connections_[id]) {
      std::erase(connections_[peer], id);
    }
    connections_[id].clear();
  }
}

void Network::set_responsive(NodeId id, bool responsive) {
  configs_[id].responsive = responsive;
}

void Network::set_dialable(NodeId id, bool dialable) {
  configs_[id].dialable = dialable;
}

void Network::set_request_handler(NodeId id, RequestHandler handler) {
  request_handlers_[id] = std::move(handler);
}

void Network::set_message_handler(NodeId id, MessageHandler handler) {
  message_handlers_[id] = std::move(handler);
}

Duration Network::one_way(NodeId a, NodeId b) {
  Duration sampled =
      latency_.sample(configs_[a].region, configs_[b].region, rng_);
  if (injector_ != nullptr) {
    const double factor = injector_->latency_factor(a, b);
    if (factor != 1.0)
      sampled = static_cast<Duration>(static_cast<double>(sampled) * factor);
  }
  return sampled;
}

Duration Network::sample_latency(NodeId a, NodeId b) { return one_way(a, b); }

Duration Network::transfer_time(NodeId from, NodeId to,
                                std::size_t bytes) const {
  const double rate = std::min(configs_[from].upload_bytes_per_sec,
                               configs_[to].download_bytes_per_sec);
  return seconds(static_cast<double>(bytes) / rate);
}

Duration Network::queued_transfer_delay(NodeId from, NodeId to,
                                        std::size_t bytes) {
  const Duration service = transfer_time(from, to, bytes);
  const Time start = std::max(now(), uplink_free_at_[from]);
  uplink_free_at_[from] = start + service;
  return (start + service) - now();
}

void Network::link(NodeId a, NodeId b) {
  connections_[a].push_back(b);
  connections_[b].push_back(a);
}

void Network::unlink(NodeId a, NodeId b) {
  std::erase(connections_[a], b);
  std::erase(connections_[b], a);
}

void Network::connect(NodeId from, NodeId to, DialCallback cb) {
  assert(from != to);
  ++dials_attempted_;
  hot_counter(c_dials_attempted_, "net.dials_attempted").inc();
  if (online_[from] == 0) return;  // an offline node observes nothing

  if (connected(from, to)) {
    // Reusing an existing connection: a zero-length dial span keeps the
    // trace complete without pretending a handshake happened.
    metrics_.end_span(metrics_.begin_span("net.dial", from, {}, 0, to));
    cb(true, 0);
    return;
  }

  const metrics::SpanId dial_span =
      metrics_.begin_span("net.dial", from, {}, 0, to);

  const NodeConfig& dst = configs_[to];
  const Transport transport = dst.transport;
  const std::uint64_t epoch = epochs_[from];
  const Time start = now();

  // NAT'ed peers with a relay are reachable via the relay (DCUtR): the
  // dial traverses both legs, then tries to hole-punch a direct path.
  if (!dst.dialable && online_[to] != 0 && dst.relay != kInvalidNode &&
      online_[dst.relay] != 0) {
    const NodeId relay = dst.relay;
    const Duration via_relay = (one_way(from, relay) + one_way(relay, to)) *
                               2 * handshake_round_trips(transport);
    const bool upgraded = rng_.chance(dst.dcutr_success_prob);
    // A failed hole punch still yields a (relayed) connection; only the
    // latency differs. Model both as a connection after the setup time,
    // with an extra round of coordination when the punch succeeds.
    const Duration setup = via_relay + (upgraded ? one_way(from, to) * 2 : 0);
    post_for(from, from,
        setup, [this, from, to, epoch, cb, start, dial_span] {
          // The dial outcome is real telemetry even when the requester has
          // since churned out, so the span ends before the liveness check.
          const bool ok = online_[to] != 0;
          metrics_.end_span(dial_span, ok);
          if (!callback_alive(from, epoch)) return;
          if (!ok) {
            ++dials_failed_;
            hot_counter(c_dials_failed_, "net.dials_failed").inc();
            cb(false, now() - start);
            return;
          }
          link(from, to);
          cb(true, now() - start);
        });
    return;
  }

  // Injected dial failures short-circuit before the fabric's own flaky-
  // reachability draw so a no-injector run consumes the same rng stream.
  if (online_[to] == 0 || !dst.dialable ||
      (injector_ != nullptr && injector_->fail_dial(from, to)) ||
      !rng_.chance(dst.dial_success_prob)) {
    ++dials_failed_;
    hot_counter(c_dials_failed_, "net.dials_failed").inc();
    // Offline-but-dialable hosts usually refuse quickly (RST / ICMP);
    // NAT'ed and flaky targets hang until the transport gives up.
    Duration fail_after =
        dial_timeout(transport) +
        milliseconds(rng_.uniform(20, 150));  // scheduler/teardown slack
    if (online_[to] == 0 && dst.dialable &&
        rng_.chance(kFastFailProbability)) {
      fail_after = one_way(from, to) * 2;  // one round trip to the RST
    }
    post_for(from, from, fail_after,
             [this, from, epoch, cb, start, dial_span] {
               metrics_.end_span(dial_span, false);
               if (!callback_alive(from, epoch)) return;
               cb(false, now() - start);
             });
    return;
  }

  const Duration rtt = one_way(from, to) * 2;
  const Duration handshake = rtt * handshake_round_trips(transport);
  post_for(from, from,
      handshake, [this, from, to, epoch, cb, start, dial_span] {
        const bool ok = online_[to] != 0;
        metrics_.end_span(dial_span, ok);
        if (!callback_alive(from, epoch)) return;
        if (!ok) {
          // Peer churned out mid-handshake; surface as a (slow) failure.
          ++dials_failed_;
          hot_counter(c_dials_failed_, "net.dials_failed").inc();
          cb(false, now() - start);
          return;
        }
        link(from, to);
        cb(true, now() - start);
      });
}

void Network::disconnect(NodeId from, NodeId to) { unlink(from, to); }

bool Network::connected(NodeId a, NodeId b) const {
  const auto& peers = connections_[a];
  return std::find(peers.begin(), peers.end(), b) != peers.end();
}

void Network::send(NodeId from, NodeId to, MessagePtr message,
                   std::size_t bytes) {
  if (online_[from] == 0 || !connected(from, to)) return;
  // Bytes hit the wire even when the injector then loses them in transit.
  hot_counter(c_messages_sent_, "net.messages_sent").inc();
  hot_counter(c_bytes_sent_, "net.bytes_sent").inc(bytes);
  hot_counter(c_tx_messages_, "transport.tx.messages").inc();
  hot_counter(c_tx_bytes_, "transport.tx.bytes").inc(bytes);
  if (injector_ != nullptr && injector_->drop_message(from, to)) return;
  Duration delay = one_way(from, to) + queued_transfer_delay(from, to, bytes);
  bool duplicate = false;
  if (injector_ != nullptr) {
    delay += injector_->reorder_delay(from, to);
    duplicate = injector_->duplicate_message(from, to);
  }
  auto deliver = [this, from, to, bytes, message = std::move(message)] {
    if (online_[to] == 0 || !configs_[to].responsive) return;
    ++messages_delivered_;
    hot_counter(c_rx_messages_, "transport.rx.messages").inc();
    hot_counter(c_rx_bytes_, "transport.rx.bytes").inc(bytes);
    if (message_handlers_[to]) message_handlers_[to](from, message);
  };
  if (duplicate) post_for(from, to, delay + milliseconds(1), deliver);
  post_for(from, to, delay, std::move(deliver));
}

void Network::request(NodeId from, NodeId to, MessagePtr request,
                      std::size_t request_bytes, Duration timeout,
                      ResponseCallback cb) {
  if (online_[from] == 0) return;
  if (!connected(from, to)) {
    hot_counter(c_rpcs_sent_, "net.rpcs_sent").inc();
    hot_counter(c_rpcs_unreachable_, "net.rpcs_unreachable").inc();
    metrics_.end_span(metrics_.begin_span("net.rpc", from, {}, 0, to), false);
    cb(RpcStatus::kUnreachable, nullptr);
    return;
  }

  hot_counter(c_rpcs_sent_, "net.rpcs_sent").inc();
  hot_counter(c_bytes_sent_, "net.bytes_sent").inc(request_bytes);
  hot_counter(c_tx_messages_, "transport.tx.messages").inc();
  hot_counter(c_tx_bytes_, "transport.tx.bytes").inc(request_bytes);
  const std::uint64_t request_id = next_request_id_++;
  PendingRequest pending;
  pending.from = from;
  pending.to = to;
  pending.from_epoch = epochs_[from];
  pending.cb = std::move(cb);
  pending.span = metrics_.begin_span("net.rpc", from, {}, 0, to);
  pending.timeout_timer =
      schedule_for(from, timeout, [this, request_id] {
        const auto it = pending_.find(request_id);
        if (it == pending_.end()) return;
        PendingRequest entry = std::move(it->second);
        pending_.erase(it);
        hot_counter(c_rpc_timeouts_, "net.rpc_timeouts").inc();
        metrics_.end_span(entry.span, false);
        if (!callback_alive(entry.from, entry.from_epoch)) return;
        entry.cb(RpcStatus::kTimeout, nullptr);
      });
  pending_.emplace(request_id, std::move(pending));

  // A dropped request leg still leaves the pending entry armed: the
  // requester cannot tell a lost request from a slow peer, so the normal
  // timeout fires.
  if (injector_ != nullptr && injector_->drop_message(from, to)) return;

  Duration delay =
      one_way(from, to) + queued_transfer_delay(from, to, request_bytes);
  bool duplicate = false;
  if (injector_ != nullptr) {
    delay += injector_->reorder_delay(from, to);
    duplicate = injector_->duplicate_message(from, to);
  }
  auto deliver = [this, from, to, request_id, request_bytes,
                  request = std::move(request)] {
    // Offline or stalled peers swallow the request; the timeout fires.
    if (online_[to] == 0 || !configs_[to].responsive ||
        !request_handlers_[to])
      return;
    ++messages_delivered_;
    hot_counter(c_rx_messages_, "transport.rx.messages").inc();
    hot_counter(c_rx_bytes_, "transport.rx.bytes").inc(request_bytes);
    auto respond = [this, to, from, request_id](MessagePtr response,
                                                std::size_t bytes) {
      // Response travels back if the responder is still online.
      if (online_[to] == 0) return;
      hot_counter(c_bytes_sent_, "net.bytes_sent").inc(bytes);
      hot_counter(c_tx_messages_, "transport.tx.messages").inc();
      hot_counter(c_tx_bytes_, "transport.tx.bytes").inc(bytes);
      if (injector_ != nullptr && injector_->drop_message(to, from)) return;
      Duration back =
          one_way(to, from) + queued_transfer_delay(to, from, bytes);
      if (injector_ != nullptr) back += injector_->reorder_delay(to, from);
      post_for(to, from,
          back, [this, request_id, bytes, response = std::move(response)] {
            const auto it = pending_.find(request_id);
            if (it == pending_.end()) return;  // already timed out
            hot_counter(c_rx_messages_, "transport.rx.messages").inc();
            hot_counter(c_rx_bytes_, "transport.rx.bytes").inc(bytes);
            PendingRequest entry = std::move(it->second);
            pending_.erase(it);
            entry.timeout_timer.cancel();
            metrics_.end_span(entry.span, true);
            if (!callback_alive(entry.from, entry.from_epoch)) return;
            entry.cb(RpcStatus::kOk, response);
          });
    };
    request_handlers_[to](from, request, std::move(respond));
  };
  // A duplicated request reaches the handler twice; the second respond()
  // finds the pending entry consumed and is ignored, but the responder's
  // side effects (ledger counts, record stores) happen twice — exactly
  // the at-least-once delivery real retransmissions produce.
  if (duplicate) post_for(from, to, delay + milliseconds(1), deliver);
  post_for(from, to, delay, std::move(deliver));
}

void Network::reset_connection(NodeId a, NodeId b) {
  disconnect(a, b);
  // Collect in deterministic order: the pending_ map's iteration order is
  // not part of the simulation contract.
  std::vector<std::uint64_t> hit;
  for (const auto& [id, entry] : pending_) {
    if ((entry.from == a && entry.to == b) ||
        (entry.from == b && entry.to == a))
      hit.push_back(id);
  }
  std::sort(hit.begin(), hit.end());
  for (const std::uint64_t id : hit) {
    const auto it = pending_.find(id);
    PendingRequest entry = std::move(it->second);
    pending_.erase(it);
    entry.timeout_timer.cancel();
    hot_counter(c_rpc_resets_, "net.rpc_resets").inc();
    metrics_.end_span(entry.span, false);
    post_for(entry.to, entry.from, 0, [this, entry]() {
      if (!callback_alive(entry.from, entry.from_epoch)) return;
      entry.cb(RpcStatus::kReset, nullptr);
    });
  }
}

}  // namespace ipfs::sim
