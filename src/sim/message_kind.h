// One registry for protocol message kinds. The numeric values double as
// the wire tags of transport/codec.cpp ([tag u16][body] frames), so a
// new message type registers exactly once: add an enumerator here, an
// override of sim::Message::kind() on the struct, and the codec body.
//
// Dispatch sites (Bitswap::handle_request, codec encode/decode) switch
// on kind() instead of walking a dynamic_cast chain — O(1) per message
// and impossible to update in one place but not the other.
//
// Stable wire constants: append only, never renumber.
#pragma once

#include <cstdint>

namespace ipfs::sim {

enum class MessageKind : std::uint16_t {
  kUnknown = 0,  // default for test-local structs; never on the wire

  // DHT (dht/messages.h)
  kFindNodeRequest = 1,
  kFindNodeResponse = 2,
  kGetProvidersRequest = 3,
  kGetProvidersResponse = 4,
  kAddProviderRequest = 5,
  kPutValueRequest = 6,
  kGetValueRequest = 7,
  kGetValueResponse = 8,
  kListBucketsRequest = 9,
  kListBucketsResponse = 10,
  kDialBackRequest = 11,
  kDialBackResponse = 12,

  // Bitswap 1.2.0 (bitswap/bitswap.h)
  kWantHaveRequest = 20,
  kHaveResponse = 21,
  kWantBlockRequest = 22,
  kBlockResponse = 23,

  // GossipSub (pubsub/pubsub.h)
  kGossipRpc = 30,

  // Network indexers (indexer/messages.h)
  kAdvertiseMessage = 40,
  kQueryRequest = 41,
  kQueryResponse = 42,
};

}  // namespace ipfs::sim
