// Simulated time. All simulator timestamps are integer microseconds from
// the start of the run; helpers convert from human units.
#pragma once

#include <cstdint>

namespace ipfs::sim {

using Time = std::int64_t;      // microseconds since simulation start
using Duration = std::int64_t;  // microseconds

constexpr Duration microseconds(std::int64_t us) { return us; }
constexpr Duration milliseconds(double ms) {
  return static_cast<Duration>(ms * 1e3);
}
constexpr Duration seconds(double s) { return static_cast<Duration>(s * 1e6); }
constexpr Duration minutes(double m) {
  return static_cast<Duration>(m * 60e6);
}
constexpr Duration hours(double h) {
  return static_cast<Duration>(h * 3600e6);
}

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e3; }

}  // namespace ipfs::sim
