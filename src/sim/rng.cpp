#include "sim/rng.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

namespace ipfs::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over the stream name, mixed into the fork seed.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

bool Rng::chance(double probability) { return uniform() < probability; }

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  // Box–Muller.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  gauss_spare_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(normal(0.0, sigma));
}

double Rng::pareto(double lo, double hi, double alpha) {
  // Inverse-CDF sampling of a bounded Pareto.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Inverse of the continuous approximation of the Zipf CDF. Exact enough
  // for workload popularity modelling; handles s == 1 as a special case.
  const double u = uniform();
  double x;
  if (std::abs(s - 1.0) < 1e-9) {
    x = std::pow(static_cast<double>(n) + 1.0, u);
  } else {
    const double total =
        (std::pow(static_cast<double>(n) + 1.0, 1.0 - s) - 1.0) / (1.0 - s);
    x = std::pow(1.0 + u * total * (1.0 - s), 1.0 / (1.0 - s));
  }
  const auto rank = static_cast<std::uint64_t>(x);
  return std::clamp<std::uint64_t>(rank, 1, n);
}

Rng Rng::fork(std::string_view name) const {
  return Rng(seed_ ^ hash_name(name) ^ 0x5851f42d4c957f2dULL);
}

}  // namespace ipfs::sim
