// Seeded simulation-fuzz harness for the full publish -> provide ->
// resolve -> Bitswap-fetch pipeline.
//
// A *schedule* is one randomized end-to-end run: a world (regions, NAT'ed
// and flaky tails), a fault plan (sim/faults.h), and a workload of
// publishes and retrievals, all derived from a single seed. After the run
// drains, global invariants are checked:
//
//   1. Content integrity: every successful retrieval reassembles exactly
//      the published bytes; anything else fails with a typed error
//      (RetrievalTrace.ok == false), never silently.
//   2. Completion: every attempted operation completes exactly once, OR
//      its requester crashed after the operation started (a crashed
//      process takes its callbacks with it).
//   3. No leaks: zero live foreground events and zero pending
//      request/response exchanges after the drain.
//   4. Routing hygiene: no routing table contains its own peer or a
//      duplicate entry.
//   5. Record expiry: no provider record outlives its expiry by more than
//      one sweep interval plus the maximum crash downtime.
//   6. Conservation: for every ordered node pair, blocks (and bytes)
//      received from a peer never exceed what that peer's ledger sent.
//   7. Pubsub at-most-once: no subscriber delivers the same message id
//      twice. The per-subscriber ledger resets when that subscriber
//      crashes — a crash legitimately wipes the dedup cache, so one
//      post-restart redelivery is correct behaviour, not a violation.
//   8. Pubsub delivery: on clean schedules (fault scale 0, so no drops
//      and no crashes), every subscriber of a topic delivers every
//      message published to it exactly once by the end of the drain.
//      Faulty schedules can partition a mesh for longer than the run
//      lasts, so there only invariant 7 binds.
//   9. Routing equivalence: a retrieval served via the delegated indexer
//      path reassembles exactly the published bytes — the indexer may
//      only change *where* providers are found, never *what* Bitswap
//      fetches.
//  10. Indexer crashes are non-fatal: on schedules whose only faults are
//      harness-scheduled indexer crashes (fault scale 0, no population
//      crashes), every attempted retrieval still succeeds — the race
//      router must degrade to the DHT path, so no fetch fails that a
//      DHT-only configuration would have served.
//  11. Eclipse resilience: on eclipse schedules (which force at least one
//      healthy indexer and no other faults), every retrieval of the
//      eclipsed CID that starts after the indexer ingest settles still
//      succeeds — the indexer race is the escape hatch the poisoned XOR
//      neighborhood cannot block.
//  12. Flash-crowd accounting: the crowd hits an HTTP gateway (the
//      entity a real flash crowd melts); every fired flash request
//      completes exactly once, and a crowd chasing a never-published CID
//      gets a typed failure, never a hang or a phantom success. On
//      dead-CID schedules each client retries 5 s after its failure —
//      inside the gateway's negative-result TTL — and the repeat wave
//      must also complete exactly once, never ok, with the negative
//      cache absorbing at least part of it (the dead-CID stampede
//      shield). (Block conservation, invariant 6, covers the
//      at-most-once accounting underneath.)
//  13. Sybil containment: with a per-bucket diversity cap D armed, no
//      routing-table bucket on any node holds more than D adversarial
//      entries — the flood is bounded by the defense, not by luck.
//  14. Acked-put durability: IpfsNode::add flushes the block store before
//      returning, so a locally published object is acked. Every acked
//      object must still reassemble from its publisher's store at the end
//      of the run — no matter how many crash/restart cycles the publisher
//      went through, and (on persist_stores schedules) how much unsynced
//      write-behind data each crash tore off the log.
//
// Any violation message embeds ScheduleParams::describe(), which includes
// the seed and a one-command replay line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "sim/network.h"
#include "sim/time.h"

namespace ipfs::simfuzz {

struct ScheduleParams {
  std::uint64_t seed = 0;

  // Event scheduler backend; the legacy binary heap stays selectable so
  // a schedule can be replayed under both and fingerprint-compared.
  sim::SchedulerBackend scheduler = sim::SchedulerBackend::kTimerWheel;

  // Sharded parallel engine (src/sim/parallel): 0 keeps the sequential
  // Simulator; N >= 1 partitions the fabric into N per-shard event
  // queues with lookahead windows. The shard-determinism test replays
  // every schedule at shards=1 vs shards=4 and asserts byte-identical
  // fingerprints and (par.*-stripped) trace streams.
  std::size_t shards = 0;

  // Serialize the trace stream into ScheduleReport::trace_jsonl even on
  // clean runs (normally only violations pay the serialization cost).
  // The backend-determinism test compares these byte-for-byte.
  bool capture_trace = false;

  // World shape.
  std::size_t node_count = 16;
  double nat_fraction = 0.2;    // NAT'ed (undialable, relayed) tail
  double flaky_fraction = 0.1;  // dial_success_prob < 1 tail

  // Workload.
  std::size_t publish_count = 4;
  std::size_t retrievals_per_object = 3;
  std::size_t min_object_bytes = 1 * 1024;
  std::size_t max_object_bytes = 512 * 1024;
  sim::Duration workload_window = sim::minutes(2);

  // Pubsub workload: every node runs the GossipSub engine; each topic
  // gets a random subscriber set (at least two members) and the
  // publishes land at random points inside the workload window, from
  // random nodes — subscribed or not, so the fanout path is exercised
  // alongside the mesh. All pubsub randomness comes from dedicated rng
  // forks, leaving the pre-existing schedule streams bit-identical.
  std::size_t pubsub_topics = 2;
  double pubsub_subscriber_fraction = 0.5;
  std::size_t pubsub_publish_count = 5;

  // Delegated content routing (docs/ROUTING.md): when indexer_count > 0
  // the schedule appends that many indexer nodes and every IPFS node
  // routes provider discovery through a RaceRouter over them. With
  // indexer_crashes set, each indexer is crashed once at a random point
  // inside the workload window and restarted after a short downtime, all
  // from a dedicated rng fork (invariant 10 above). indexer_count = 0
  // reproduces the pre-indexer schedules bit-identically.
  std::size_t indexer_count = 0;
  sim::Duration indexer_ingest_lag = sim::seconds(30);
  bool indexer_crashes = false;
  // Stretch the run past provider-record expiry (26 h simulated) with
  // retrievals spread across the horizon, exercising the 12 h republish
  // and the expiry sweeps under faults.
  bool long_horizon = false;

  // Persistent data plane (docs/BLOCKSTORE.md): when set, every
  // population node runs the log-structured store behind the async
  // write-behind queue (over in-memory Storage, so FaultPlan crashes
  // exercise the drop-unsynced truncation + log-replay recovery path,
  // invariant 14). Drawn from a dedicated "schedule-persist" fork, so
  // persist-off seeds replay their pre-persist schedules bit-identically.
  bool persist_stores = false;
  std::size_t persist_flush_batch = 64;
  // Periodic write-behind drain cadence for the node daemon tick
  // (StoreConfig::flush_interval_us); 0 leaves only batch-size flushes.
  std::int64_t persist_flush_interval_us = 0;

  // Fault intensity in [0, 1]; the derived per-fault rates live in
  // `faults`. 0 means a clean run (the injector is installed but draws
  // nothing).
  double fault_scale = 0.0;
  sim::FaultConfig faults;

  // Adversarial attack schedule (docs/ADVERSARY.md). At most one attack
  // family runs per schedule, as an adversary::AttackPlan layered over
  // the fault plan; the controller parameters are fixed by the harness
  // while the defense knobs below feed every node's IpfsNodeConfig.
  // kNone forces the defenses off too, so historical seeds replay their
  // pre-adversary schedules bit-identically. All adversary knobs draw
  // from their own "schedule-adversary" fork.
  enum class Attack { kNone, kSybil, kEclipse, kFlashCrowd, kChurnStorm,
                      kPartition };
  Attack attack = Attack::kNone;
  std::size_t diversity_cap = 0;    // per-bucket /16 cap, 0 = defense off
  std::size_t provider_quorum = 1;  // GetProviders termination quorum
  std::size_t flash_requests = 0;   // flash-crowd burst size
  bool flash_dead_cid = false;      // the crowd chases an unpublished CID

  // Human- and machine-readable parameter dump, including the seed and a
  // replay command. Embedded in every violation message.
  std::string describe() const;
};

// Derives the fault rates for `scale`, capped for long-horizon runs so a
// 26 h schedule stays tractable.
sim::FaultConfig faults_for_scale(double scale, bool long_horizon);

// Randomizes a full schedule from `seed` (deterministic: same seed, same
// schedule).
ScheduleParams make_schedule(std::uint64_t seed);

// Normalizes the attack knobs into the self-consistent shape invariants
// 11-13 rely on (eclipse schedules force a healthy indexer and no other
// faults, flash/storm schedules keep FaultPlan crashes out of the way,
// kNone switches every defense off). make_schedule applies this after
// drawing; sweep tests that force an attack type must re-apply it.
void apply_attack_constraints(ScheduleParams& params);

// Short attack-type name ("none", "sybil", ...), for logs and describe().
const char* attack_name(ScheduleParams::Attack attack);

// One publish or retrieval in the op table.
struct OpRecord {
  enum class Kind { kPublish, kRetrieve };
  Kind kind = Kind::kPublish;
  std::size_t object = 0;            // object index within the schedule
  sim::NodeId node = sim::kInvalidNode;
  sim::Time start = 0;               // when the op fired (0 if never)
  bool attempted = false;            // false: requester was offline
  bool completed = false;
  bool ok = false;
  sim::Duration elapsed = 0;
};

struct ScheduleStats {
  std::vector<OpRecord> ops;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t events_executed = 0;
  sim::FaultPlan::Counters faults;

  // Pubsub workload totals (part of the fingerprint, so backend and
  // replay determinism cover the gossip overlay too).
  std::uint64_t pubsub_publishes = 0;    // publish calls that fired
  std::uint64_t pubsub_deliveries = 0;   // subscriber callbacks invoked
  std::uint64_t pubsub_duplicates = 0;   // dedup-cache suppressions

  // Delegated-routing workload totals.
  std::uint64_t indexer_crashes = 0;     // harness-scheduled indexer crashes
  std::uint64_t indexer_routed = 0;      // retrievals won by the indexer path

  // Adversarial workload totals (docs/ADVERSARY.md).
  std::uint64_t attack_events = 0;       // AttackPlan counter grand total
  std::uint64_t flash_fired = 0;         // flash-crowd requests launched
  std::uint64_t flash_completions = 0;   // their completions (invariant 12)
  std::uint64_t flash_repeat_fired = 0;  // dead-CID retry wave launched
  std::uint64_t flash_repeat_completions = 0;  // retry completions
  std::uint64_t flash_negative_hits = 0;  // gateway negative-cache hits
  std::uint64_t sybil_rejections = 0;    // diversity-cap upsert refusals

  std::size_t publishes_ok() const;
  std::size_t retrievals_attempted() const;
  std::size_t retrievals_ok() const;

  // Canonical serialization of everything above. Two runs of the same
  // schedule must produce byte-identical fingerprints (the seeded-
  // determinism regression test diffs them).
  std::string fingerprint() const;
};

struct ScheduleReport {
  ScheduleParams params;
  ScheduleStats stats;
  std::vector<std::string> violations;
  // On any invariant violation, the full metrics registry (counters,
  // histograms, and the span/instant trace stream) serialized as JSONL —
  // the flight recording of the failing seeded schedule. Empty on clean
  // runs, so green fuzz sweeps pay no serialization cost. Also written to
  // `trace_dump_path` (simfuzz_trace_<seed>.jsonl in the working
  // directory) so a failing CI run leaves an artifact.
  std::string trace_jsonl;
  std::string trace_dump_path;

  bool ok() const { return violations.empty(); }
  // Violations plus the replay info; suitable as a gtest failure message.
  std::string failure_summary() const;
};

// Runs one schedule to completion and checks every invariant.
ScheduleReport run_schedule(const ScheduleParams& params);

}  // namespace ipfs::simfuzz
