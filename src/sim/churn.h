// Churn process: drives nodes through online/offline session cycles
// (paper Section 5.3). Session lengths are drawn per node from pluggable
// distributions, typically log-normal with a per-region median (Figure 8).
#pragma once

#include <functional>
#include <vector>

#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ipfs::sim {

class ChurnProcess {
 public:
  using DurationSampler = std::function<Duration(Rng&)>;
  // Notified after the network state has been updated.
  using Listener = std::function<void(NodeId, bool online)>;

  ChurnProcess(Simulator& simulator, Network& network, std::uint64_t seed);

  // Puts `node` under churn management. The node starts in its current
  // network state; the first transition is scheduled from a uniformly
  // random point of the first session (stationary start).
  void manage(NodeId node, DurationSampler session_length,
              DurationSampler offline_length);

  void add_listener(Listener listener);

  std::uint64_t transitions() const { return transitions_; }

 private:
  struct Managed {
    NodeId node;
    DurationSampler session_length;
    DurationSampler offline_length;
  };

  void schedule_next(std::size_t index, bool currently_online,
                     bool stationary_start);
  void transition(std::size_t index, bool go_online);

  Simulator& simulator_;
  Network& network_;
  Rng rng_;
  std::vector<Managed> managed_;
  std::vector<Listener> listeners_;
  std::uint64_t transitions_ = 0;
};

}  // namespace ipfs::sim
