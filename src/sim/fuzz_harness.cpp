#include "sim/fuzz_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "adversary/adversary.h"
#include "blockstore/blockstore.h"
#include "dht/record_store.h"
#include "gateway/gateway.h"
#include "indexer/indexer.h"
#include "merkledag/merkledag.h"
#include "node/ipfs_node.h"
#include "pubsub/pubsub.h"
#include "routing/router.h"
#include "scenario/scenario.h"
#include "stats/jsonl.h"

namespace ipfs::simfuzz {

namespace {

// The first nodes are the bootstrap set: always dialable, never flaky,
// never crash-managed (real bootstrap infrastructure is the stable core
// the rest of the network re-joins through). Four of them, because
// AutoNAT upgrades a peer to DHT server only with more than
// dht::kAutonatThreshold (3) reachable dial-back probes, and in a cold
// world the bootstrap servers are the only peers whose dial-backs count.
constexpr std::size_t kBootstrapCount = 4;
constexpr int kRegions = 3;

std::vector<std::vector<double>> fuzz_latency_matrix() {
  // Three regions with asymmetric one-way latencies (ms), default jitter.
  return {{20.0, 60.0, 120.0}, {60.0, 15.0, 90.0}, {120.0, 90.0, 25.0}};
}

std::vector<std::uint8_t> deterministic_bytes(std::size_t n, sim::Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

const char* kind_name(OpRecord::Kind kind) {
  return kind == OpRecord::Kind::kPublish ? "publish" : "retrieve";
}

}  // namespace

sim::FaultConfig faults_for_scale(double scale, bool long_horizon) {
  sim::FaultConfig faults;
  if (scale <= 0.0) return faults;
  faults.drop_prob = 0.08 * scale;
  faults.duplicate_prob = 0.05 * scale;
  faults.reorder_prob = 0.10 * scale;
  faults.reorder_max_delay = sim::milliseconds(300);
  faults.dial_failure_prob = 0.15 * scale;
  faults.latency_spike_factor = 6.0;
  faults.latency_spike_duration = sim::seconds(15);
  if (long_horizon) {
    // Rates capped so a 26 h horizon stays a few thousand fault events.
    faults.latency_spikes_per_hour = 120.0 * scale;
    faults.connection_resets_per_hour = 120.0 * scale;
    faults.crashes_per_hour_per_node = 1.0 * scale;
    faults.min_downtime = sim::minutes(10);
    faults.max_downtime = sim::hours(2);
  } else {
    faults.latency_spikes_per_hour = 300.0 * scale;
    faults.connection_resets_per_hour = 400.0 * scale;
    faults.crashes_per_hour_per_node = 15.0 * scale;
    faults.min_downtime = sim::seconds(5);
    faults.max_downtime = sim::seconds(40);
  }
  return faults;
}

ScheduleParams make_schedule(std::uint64_t seed) {
  ScheduleParams params;
  params.seed = seed;
  sim::Rng rng = sim::Rng(seed).fork("schedule");
  params.node_count = static_cast<std::size_t>(rng.uniform_int(10, 24));
  params.nat_fraction = rng.uniform(0.0, 0.4);
  params.flaky_fraction = rng.uniform(0.0, 0.2);
  params.long_horizon = rng.chance(0.2);
  params.publish_count =
      static_cast<std::size_t>(rng.uniform_int(2, params.long_horizon ? 3 : 5));
  params.retrievals_per_object =
      static_cast<std::size_t>(rng.uniform_int(1, 4));
  params.min_object_bytes = 1 * 1024;
  params.max_object_bytes =
      static_cast<std::size_t>(rng.uniform_int(64, 512)) * 1024;
  params.workload_window = sim::minutes(rng.uniform(1.0, 3.0));
  params.fault_scale = rng.chance(0.2) ? 0.0 : rng.uniform(0.05, 1.0);
  params.faults = faults_for_scale(params.fault_scale, params.long_horizon);

  // Dedicated fork: adding the pubsub knobs must not shift any draw of
  // the pre-existing "schedule" stream, or every historical replay seed
  // would describe a different schedule.
  sim::Rng pubsub_rng = sim::Rng(seed).fork("schedule-pubsub");
  params.pubsub_topics =
      static_cast<std::size_t>(pubsub_rng.uniform_int(1, 3));
  params.pubsub_subscriber_fraction = pubsub_rng.uniform(0.2, 0.8);
  params.pubsub_publish_count = static_cast<std::size_t>(
      pubsub_rng.uniform_int(2, params.long_horizon ? 4 : 10));

  // Same deal for the delegated-routing knobs: their own fork, appended
  // after the earlier ones, so historical seeds keep their schedules.
  sim::Rng indexer_rng = sim::Rng(seed).fork("schedule-indexer");
  params.indexer_count =
      indexer_rng.chance(0.5)
          ? static_cast<std::size_t>(indexer_rng.uniform_int(1, 2))
          : 0;
  params.indexer_ingest_lag = sim::seconds(indexer_rng.uniform(1.0, 45.0));
  params.indexer_crashes = indexer_rng.chance(0.5);

  // Adversary knobs: own fork, appended after every earlier one. Every
  // draw happens unconditionally so the stream stays stable across knob
  // combinations; apply_attack_constraints then normalizes the result
  // (kNone switches the defenses off, keeping historical seeds
  // bit-identical to their pre-adversary schedules).
  // Persistent-store knobs: own fork, same bit-identical-replay rule.
  sim::Rng persist_rng = sim::Rng(seed).fork("schedule-persist");
  params.persist_stores = persist_rng.chance(0.5);
  params.persist_flush_batch =
      static_cast<std::size_t>(persist_rng.uniform_int(1, 128));

  // Write-behind drain cadence: own fork, appended after every earlier
  // one (bit-identical historical replays). Half the persist schedules
  // arm the periodic daemon flush; the rest rely on batch-size flushes
  // alone so that path stays covered too.
  sim::Rng flush_rng = sim::Rng(seed).fork("schedule-flush");
  params.persist_flush_interval_us =
      flush_rng.chance(0.5) ? flush_rng.uniform_int(50'000, 500'000) : 0;

  sim::Rng adversary_rng = sim::Rng(seed).fork("schedule-adversary");
  const bool attacked = adversary_rng.chance(0.4);
  const auto attack_draw = adversary_rng.uniform_int(1, 5);
  params.attack = attacked ? static_cast<ScheduleParams::Attack>(attack_draw)
                           : ScheduleParams::Attack::kNone;
  params.diversity_cap =
      static_cast<std::size_t>(adversary_rng.uniform_int(0, 3));
  params.flash_requests =
      static_cast<std::size_t>(adversary_rng.uniform_int(6, 20));
  params.flash_dead_cid = adversary_rng.chance(0.5);
  apply_attack_constraints(params);
  return params;
}

const char* attack_name(ScheduleParams::Attack attack) {
  switch (attack) {
    case ScheduleParams::Attack::kNone:
      return "none";
    case ScheduleParams::Attack::kSybil:
      return "sybil";
    case ScheduleParams::Attack::kEclipse:
      return "eclipse";
    case ScheduleParams::Attack::kFlashCrowd:
      return "flash";
    case ScheduleParams::Attack::kChurnStorm:
      return "storm";
    case ScheduleParams::Attack::kPartition:
      return "partition";
  }
  return "none";
}

void apply_attack_constraints(ScheduleParams& params) {
  using Attack = ScheduleParams::Attack;
  switch (params.attack) {
    case Attack::kNone:
      // Defenses off: a no-attack schedule must stay bit-identical to
      // the pre-adversary harness.
      params.diversity_cap = 0;
      params.provider_quorum = 1;
      params.flash_requests = 0;
      params.flash_dead_cid = false;
      break;
    case Attack::kSybil:
      // The drawn cap stays (0 = defense off; invariant 13 binds when
      // it is armed). Sybil floods compose with any fault schedule.
      params.provider_quorum = 1;
      params.flash_requests = 0;
      break;
    case Attack::kEclipse:
      // Invariant 11 needs the indexer escape hatch to exist and nothing
      // else degrading retrievals: at least one healthy indexer with a
      // short ingest lag, no population faults, full defenses.
      params.long_horizon = false;
      params.fault_scale = 0.0;
      params.faults = faults_for_scale(0.0, false);
      params.indexer_count = std::max<std::size_t>(params.indexer_count, 1);
      params.indexer_crashes = false;
      params.indexer_ingest_lag =
          std::min<sim::Duration>(params.indexer_ingest_lag, sim::seconds(2));
      params.diversity_cap = std::max<std::size_t>(params.diversity_cap, 2);
      params.provider_quorum = 3;
      params.flash_requests = 0;
      break;
    case Attack::kFlashCrowd:
      // Invariant 12 (exactly-once completion) must not be masked by a
      // crashed requester taking its callback with it.
      params.long_horizon = false;
      params.faults = faults_for_scale(params.fault_scale, false);
      params.faults.crashes_per_hour_per_node = 0.0;
      params.diversity_cap = 0;
      params.provider_quorum = 1;
      params.flash_requests = std::max<std::size_t>(params.flash_requests, 4);
      break;
    case Attack::kChurnStorm:
      // The storm is the only crash source — FaultPlan and AttackPlan
      // must never double-manage one node's process lifecycle.
      params.long_horizon = false;
      params.faults = faults_for_scale(params.fault_scale, false);
      params.faults.crashes_per_hour_per_node = 0.0;
      params.diversity_cap = 0;
      params.provider_quorum = 1;
      params.flash_requests = 0;
      break;
    case Attack::kPartition:
      params.long_horizon = false;
      params.faults = faults_for_scale(params.fault_scale, false);
      params.diversity_cap = 0;
      params.provider_quorum = 1;
      params.flash_requests = 0;
      break;
  }
}

std::string ScheduleParams::describe() const {
  std::ostringstream out;
  out << "schedule{seed=" << seed << " nodes=" << node_count
      << " nat=" << nat_fraction << " flaky=" << flaky_fraction
      << " publishes=" << publish_count
      << " retrievals_per_object=" << retrievals_per_object
      << " object_bytes=[" << min_object_bytes << "," << max_object_bytes
      << "] window_s=" << sim::to_seconds(workload_window)
      << " long_horizon=" << (long_horizon ? 1 : 0)
      << " fault_scale=" << fault_scale << " drop=" << faults.drop_prob
      << " dup=" << faults.duplicate_prob << " reorder=" << faults.reorder_prob
      << " dial_fail=" << faults.dial_failure_prob
      << " spikes_per_h=" << faults.latency_spikes_per_hour
      << " resets_per_h=" << faults.connection_resets_per_hour
      << " crashes_per_h_per_node=" << faults.crashes_per_hour_per_node
      << " downtime_s=[" << sim::to_seconds(faults.min_downtime) << ","
      << sim::to_seconds(faults.max_downtime) << "]"
      << " pubsub_topics=" << pubsub_topics
      << " pubsub_sub_frac=" << pubsub_subscriber_fraction
      << " pubsub_publishes=" << pubsub_publish_count
      << " indexers=" << indexer_count
      << " indexer_ingest_lag_s=" << sim::to_seconds(indexer_ingest_lag)
      << " indexer_crashes=" << (indexer_crashes ? 1 : 0)
      << " persist_stores=" << (persist_stores ? 1 : 0)
      << " persist_flush_batch=" << persist_flush_batch
      << " persist_flush_interval_us=" << persist_flush_interval_us
      << " shards=" << shards
      << " attack=" << attack_name(attack)
      << " diversity_cap=" << diversity_cap
      << " provider_quorum=" << provider_quorum
      << " flash_requests=" << flash_requests
      << " flash_dead_cid=" << (flash_dead_cid ? 1 : 0) << "}\n"
      << "replay: IPFS_FUZZ_SEED=" << seed
      << " IPFS_FUZZ_SCHEDULES=1 ./tests/simfuzz_test";
  return out.str();
}

std::size_t ScheduleStats::publishes_ok() const {
  std::size_t count = 0;
  for (const auto& op : ops)
    if (op.kind == OpRecord::Kind::kPublish && op.completed && op.ok) ++count;
  return count;
}

std::size_t ScheduleStats::retrievals_attempted() const {
  std::size_t count = 0;
  for (const auto& op : ops)
    if (op.kind == OpRecord::Kind::kRetrieve && op.attempted) ++count;
  return count;
}

std::size_t ScheduleStats::retrievals_ok() const {
  std::size_t count = 0;
  for (const auto& op : ops)
    if (op.kind == OpRecord::Kind::kRetrieve && op.completed && op.ok) ++count;
  return count;
}

std::string ScheduleStats::fingerprint() const {
  std::ostringstream out;
  out << "bytes=" << bytes_fetched << " events=" << events_executed
      << " faults{drop=" << faults.messages_dropped
      << " dup=" << faults.messages_duplicated
      << " reorder=" << faults.messages_reordered
      << " dial=" << faults.dials_failed << " spike=" << faults.latency_spikes
      << " reset=" << faults.connection_resets
      << " crash=" << faults.crashes << " restart=" << faults.restarts
      << "}\n"
      << "pubsub{publishes=" << pubsub_publishes
      << " deliveries=" << pubsub_deliveries
      << " dedup=" << pubsub_duplicates << "}\n"
      << "indexer{crashes=" << indexer_crashes
      << " routed=" << indexer_routed << "}\n"
      << "attack{events=" << attack_events << " flash_fired=" << flash_fired
      << " flash_done=" << flash_completions
      << " flash_retry_fired=" << flash_repeat_fired
      << " flash_retry_done=" << flash_repeat_completions
      << " flash_negative_hits=" << flash_negative_hits
      << " sybil_rejected=" << sybil_rejections << "}\n";
  auto sorted = ops;
  std::sort(sorted.begin(), sorted.end(),
            [](const OpRecord& a, const OpRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.node != b.node) return a.node < b.node;
              return a.object < b.object;
            });
  for (const auto& op : sorted) {
    out << kind_name(op.kind) << " obj=" << op.object << " node=" << op.node
        << " start_us=" << op.start << " attempted=" << op.attempted
        << " completed=" << op.completed << " ok=" << op.ok
        << " elapsed_us=" << op.elapsed << "\n";
  }
  return out.str();
}

std::string ScheduleReport::failure_summary() const {
  std::ostringstream out;
  out << params.describe() << "\n";
  if (violations.empty()) {
    out << "no invariant violations";
    return out.str();
  }
  out << violations.size() << " invariant violation(s):";
  for (const auto& violation : violations) out << "\n  - " << violation;
  if (!trace_jsonl.empty()) {
    out << "\ntrace dump: " << trace_jsonl.size() << " bytes of JSONL";
    if (!trace_dump_path.empty()) out << " written to " << trace_dump_path;
  }
  return out.str();
}

ScheduleReport run_schedule(const ScheduleParams& params) {
  ScheduleReport report;
  report.params = params;
  std::vector<std::string>& violations = report.violations;
  ScheduleStats& stats = report.stats;

  sim::Rng base_rng(params.seed);
  sim::Rng world_rng = base_rng.fork("fuzz-world");
  sim::Rng workload_rng = base_rng.fork("fuzz-workload");

  // Keep the flight recorder bounded: a 26 h long-horizon schedule emits
  // far more trace events than a post-mortem needs, and the registry
  // counts what it drops (trace_dropped) so the dump is honest about it.
  scenario::Scenario fabric =
      scenario::ScenarioBuilder()
          .seed(params.seed)
          .scheduler(params.scheduler)
          .shards(params.shards)
          .regions(fuzz_latency_matrix())
          .trace_capacity(200'000)
          .indexers(params.indexer_count)
          .indexer_config(indexer::IndexerConfig().with_ingest_lag(
              params.indexer_ingest_lag))
          .routing(routing::RoutingConfig::Mode::kRace)
          .build();
  sim::Network& network = fabric.network();

  // The builder appends indexer nodes before the population below, so
  // the world's NodeIds start past them; node_index maps back to the
  // `nodes` vector (identity when the schedule has no indexers).
  const std::size_t node_id_offset = fabric.indexer_count();
  const auto node_index = [node_id_offset](sim::NodeId id) {
    return static_cast<std::size_t>(id) - node_id_offset;
  };

  // ---- World -------------------------------------------------------------
  const std::size_t node_count = std::max(params.node_count, kBootstrapCount + 2);
  std::vector<std::unique_ptr<node::IpfsNode>> nodes;
  std::vector<bool> is_stable(node_count, false);  // dialable and not flaky
  nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    node::IpfsNodeConfig config;
    config.net.region = static_cast<int>(world_rng.uniform_int(0, kRegions - 1));
    config.identity_seed = params.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    config.net.transport =
        world_rng.chance(0.3) ? sim::Transport::kQuic : sim::Transport::kTcp;
    config.enable_pubsub = true;
    // 26 simulated hours at the default 1 s heartbeat would swamp the
    // event count with idle mesh maintenance; long-horizon schedules
    // coarsen the heartbeat instead (mesh repair just converges slower).
    if (params.long_horizon) config.pubsub.with_heartbeat(sim::seconds(30));
    if (fabric.indexer_count() > 0) config.routing = fabric.routing_config();
    // Defense knobs (docs/ADVERSARY.md): kNone schedules carry the
    // defaults (cap 0, quorum 1), so the config stays bit-identical.
    config.provider_quorum = params.provider_quorum;
    config.bucket_diversity_cap = params.diversity_cap;
    if (params.persist_stores) {
      config.store.backend = blockstore::StoreConfig::Backend::kPersistentAsync;
      config.store.flush_batch_blocks = params.persist_flush_batch;
      config.store.flush_interval_us = params.persist_flush_interval_us;
      // Small segments so crash replays walk several files, and a
      // per-node crash seed so each restart tears a different tail.
      config.store.segment_bytes = 256 * 1024;
      config.store.crash_seed =
          params.seed ^ (0xda3e39cb94b95bdbULL * (i + 1));
    }
    bool stable = true;
    if (i >= kBootstrapCount) {
      if (world_rng.chance(params.nat_fraction)) {
        config.net.dialable = false;
        // NAT'ed peers keep a relay to a bootstrap node (DCUtR), so they
        // can still serve as temporary providers after a fetch.
        config.net.relay = static_cast<std::uint32_t>(i % kBootstrapCount);
        stable = false;
      } else if (world_rng.chance(params.flaky_fraction)) {
        config.net.dial_success_prob = 0.6;
        stable = false;
      }
    }
    is_stable[i] = stable;
    nodes.push_back(std::make_unique<node::IpfsNode>(network, config));
  }

  std::vector<std::size_t> stable_nodes;
  for (std::size_t i = 0; i < node_count; ++i)
    if (is_stable[i]) stable_nodes.push_back(i);

  // The bootstrap trio is configured as DHT servers and knows about each
  // other from the start (real bootstrap infrastructure does not discover
  // itself via AutoNAT).
  for (std::size_t i = 0; i < kBootstrapCount; ++i) {
    nodes[i]->dht().force_mode(dht::DhtNode::Mode::kServer);
    for (std::size_t j = 0; j < kBootstrapCount; ++j)
      if (j != i) nodes[i]->dht().routing_table().upsert(nodes[j]->self());
  }

  // Seed set: the four bootstrap servers plus at most one stable extra.
  // AutoNAT probes at most 5 connected seeds and only server-mode peers
  // vouch for reachability, so the bootstrap quorum must dominate the
  // probe set for dialable peers to upgrade to server mode.
  const auto seeds_for = [&](std::size_t index) {
    std::vector<dht::PeerRef> seeds;
    for (std::size_t i = 0; i < kBootstrapCount; ++i)
      if (i != index) seeds.push_back(nodes[i]->self());
    for (const std::size_t i : stable_nodes) {
      if (i < kBootstrapCount || i == index) continue;
      seeds.push_back(nodes[i]->self());
      break;
    }
    return seeds;
  };

  // ---- Phase 1: faultless bootstrap --------------------------------------
  // Bootstrap servers only dial each other (a DHT bootstrap would run
  // AutoNAT against too few servers and downgrade them to clients); the
  // rest join through them, staggered 200 ms apart.
  std::vector<int> bootstrap_ok(node_count, -1);
  for (std::size_t i = 0; i < kBootstrapCount; ++i) {
    bootstrap_ok[i] = 1;
    for (std::size_t j = i + 1; j < kBootstrapCount; ++j)
      network.connect(nodes[i]->node(), nodes[j]->node(),
                      [](bool, sim::Duration) {});
  }
  for (std::size_t i = kBootstrapCount; i < node_count; ++i) {
    network.schedule_after(
        sim::milliseconds(200.0 * static_cast<double>(i)), [&, i] {
          nodes[i]->bootstrap(seeds_for(i), [&, i](bool ok) {
            bootstrap_ok[i] = ok ? 1 : 0;
          });
        });
  }
  stats.events_executed += network.run();
  for (std::size_t i = 0; i < node_count; ++i) {
    if (bootstrap_ok[i] != 1) {
      std::ostringstream out;
      out << "node " << i << " failed to bootstrap in the faultless phase "
          << "(result=" << bootstrap_ok[i] << ")";
      violations.push_back(out.str());
    }
  }

  // ---- Pubsub overlay ----------------------------------------------------
  // Dedicated workload fork: the gossip overlay draws nothing from the
  // pre-existing world/workload streams.
  sim::Rng pubsub_rng = base_rng.fork("fuzz-pubsub");
  const std::size_t topic_count = params.pubsub_topics;

  // Subscriber sets. Every topic needs at least two members for a mesh
  // to exist; top up from the bootstrap set when the draw comes short.
  std::vector<std::vector<std::size_t>> topic_subscribers(topic_count);
  std::vector<std::vector<std::size_t>> node_topics(node_count);
  for (std::size_t t = 0; t < topic_count; ++t) {
    auto& subs = topic_subscribers[t];
    for (std::size_t i = 0; i < node_count; ++i)
      if (pubsub_rng.chance(params.pubsub_subscriber_fraction))
        subs.push_back(i);
    for (std::size_t i = 0; subs.size() < 2 && i < kBootstrapCount; ++i)
      if (std::find(subs.begin(), subs.end(), i) == subs.end())
        subs.push_back(i);
    for (const std::size_t i : subs) node_topics[i].push_back(t);
  }

  // Ambient peer discovery: a random candidate sample per node, plus a
  // ring over each topic's subscribers so the announce graph is always
  // connected (a subscriber whose random sample contains no co-subscriber
  // would otherwise never learn of the mesh). Kept per node so the
  // restart path can re-add the same candidates, like a real daemon
  // re-reading its address book.
  std::vector<std::vector<std::size_t>> pubsub_candidates(node_count);
  const auto add_candidate = [&](std::size_t i, std::size_t peer) {
    if (peer == i) return;
    auto& list = pubsub_candidates[i];
    if (std::find(list.begin(), list.end(), peer) == list.end())
      list.push_back(peer);
  };
  const std::size_t candidate_target = std::min<std::size_t>(8, node_count - 1);
  for (std::size_t i = 0; i < node_count; ++i)
    while (pubsub_candidates[i].size() < candidate_target)
      add_candidate(i, static_cast<std::size_t>(pubsub_rng.uniform_int(
                           0, static_cast<std::int64_t>(node_count) - 1)));
  for (std::size_t t = 0; t < topic_count; ++t) {
    const auto& subs = topic_subscribers[t];
    if (subs.size() < 2) continue;
    for (std::size_t k = 0; k < subs.size(); ++k)
      add_candidate(subs[k], subs[(k + 1) % subs.size()]);
  }

  const auto topic_name = [](std::size_t t) {
    return pubsub::Topic("fuzz/topic-") + std::to_string(t);
  };

  // Per-(subscriber, topic) delivery counts: invariant 7 (at-most-once)
  // is checked inline at delivery time, so a duplicate is caught even if
  // a later crash would have wiped the ledger.
  std::vector<std::vector<std::map<pubsub::MessageId, int>>> pubsub_seen(
      node_count, std::vector<std::map<pubsub::MessageId, int>>(topic_count));
  const auto subscribe_node = [&](std::size_t i, std::size_t t) {
    nodes[i]->pubsub()->subscribe(
        topic_name(t), [&, i, t](const pubsub::PubsubMessage& message) {
          ++stats.pubsub_deliveries;
          const int count = ++pubsub_seen[i][t][message.id];
          if (count > 1) {
            std::ostringstream out;
            out << "pubsub at-most-once violated: node " << i
                << " delivered " << message.topic << " id{origin="
                << message.id.origin << " seqno=" << message.id.seqno
                << "} " << count << " times";
            violations.push_back(out.str());
          }
        });
  };

  for (std::size_t i = 0; i < node_count; ++i)
    for (const std::size_t peer : pubsub_candidates[i])
      nodes[i]->pubsub()->add_candidate_peer(nodes[peer]->node());
  for (std::size_t t = 0; t < topic_count; ++t)
    for (const std::size_t i : topic_subscribers[t]) subscribe_node(i, t);
  // Faultless mesh formation, mirroring the faultless DHT bootstrap: the
  // fault plan then exercises repair of a formed mesh, not formation.
  // Grafting happens on heartbeats (daemon events), which a plain run()
  // never reaches once the announces drain — drive the clock through a
  // few heartbeat rounds explicitly.
  const sim::Duration mesh_settle =
      4 * nodes[0]->pubsub()->config().heartbeat_interval + sim::seconds(5);
  stats.events_executed += network.run_until(network.now() + mesh_settle);
  stats.events_executed += network.run();
  if (std::getenv("IPFS_FUZZ_DEBUG_PUBSUB") != nullptr) {
    for (std::size_t i = 0; i < node_count; ++i) {
      std::fprintf(stderr, "node %2zu id=%u stable=%d topics:", i,
                   nodes[i]->node(), static_cast<int>(is_stable[i]));
      for (std::size_t t = 0; t < topic_count; ++t) {
        std::fprintf(stderr, " [t%zu sub=%d peers=%zu mesh=%zu]", t,
                     static_cast<int>(
                         nodes[i]->pubsub()->subscribed(topic_name(t))),
                     nodes[i]->pubsub()->topic_peers(topic_name(t)).size(),
                     nodes[i]->pubsub()->mesh_peers(topic_name(t)).size());
      }
      std::fprintf(stderr, " candidates:");
      for (const std::size_t peer : pubsub_candidates[i])
        std::fprintf(stderr, " %zu", peer);
      std::fprintf(stderr, "\n");
    }
  }

  // ---- Fault plan + crash wiring -----------------------------------------
  sim::FaultPlan plan(network, params.faults, params.seed);
  std::vector<std::vector<sim::Time>> crash_times(node_count);
  // Shared between the fault plan and the attack plan's churn storm: a
  // crash is a crash, whichever controller caused it.
  const auto on_crash_transition = [&](sim::NodeId node_id, bool online) {
    const std::size_t index = node_index(node_id);
    if (!online) {
      crash_times[index].push_back(network.now());
      nodes[index]->handle_crash();
      // The crash wiped the engine's dedup cache, so one redelivery of
      // anything seen before the crash is legitimate: reset the
      // at-most-once ledger along with it.
      for (auto& per_topic : pubsub_seen[index]) per_topic.clear();
    } else {
      nodes[index]->handle_restart(seeds_for(index), [](bool) {});
      // Like a real daemon, the restarted process re-reads its address
      // book and topic list and re-joins its meshes.
      for (const std::size_t peer : pubsub_candidates[index])
        nodes[index]->pubsub()->add_candidate_peer(nodes[peer]->node());
      for (const std::size_t t : node_topics[index]) subscribe_node(index, t);
    }
  };
  plan.add_crash_listener(on_crash_transition);
  for (std::size_t i = kBootstrapCount; i < node_count; ++i)
    plan.manage_crashes(nodes[i]->node());

  // ---- Indexer crash schedule --------------------------------------------
  // Harness-scheduled (not FaultPlan-drawn) so the dedicated fork leaves
  // every pre-existing fault stream bit-identical: each indexer crashes
  // once at a random point in the workload window and restarts after a
  // short downtime with an empty index — the soft state only refills via
  // fresh advertisements, so the race router must carry the fetches on
  // its DHT arm meanwhile (invariant 10).
  sim::Rng indexer_rng = base_rng.fork("fuzz-indexer");
  if (params.indexer_crashes) {
    for (std::size_t i = 0; i < fabric.indexer_count(); ++i) {
      const sim::Duration crash_at = sim::seconds(indexer_rng.uniform(
          0.0, sim::to_seconds(params.workload_window)));
      const sim::Duration downtime =
          sim::seconds(indexer_rng.uniform(10.0, 60.0));
      network.schedule_after(crash_at, [&, i, downtime] {
        const sim::NodeId id = fabric.indexer(i).node();
        network.set_online(id, false);
        fabric.indexer(i).handle_crash();
        ++stats.indexer_crashes;
        network.schedule_after(downtime, [&, i, id] {
          network.set_online(id, true);
          fabric.indexer(i).handle_restart();
        });
      });
    }
  }

  // ---- Workload construction ---------------------------------------------
  struct FuzzObject {
    std::vector<std::uint8_t> data;
    multiformats::Cid cid;  // filled at publish time (add() is deterministic)
    std::size_t publisher = 0;
    bool published_locally = false;
  };
  std::vector<FuzzObject> objects(params.publish_count);
  const std::size_t retrievals_total =
      params.publish_count * params.retrievals_per_object;
  // Pre-sized op table: callbacks index into it, so it must never
  // reallocate while the simulation runs.
  stats.ops.assign(params.publish_count + retrievals_total, OpRecord{});

  struct PlannedRetrieval {
    std::size_t op_index;
    std::size_t retriever;
    sim::Duration delay_after_publish;
  };
  std::vector<std::vector<PlannedRetrieval>> planned(params.publish_count);

  const sim::Duration window = params.workload_window;
  const sim::Time workload_start = network.now();
  for (std::size_t oi = 0; oi < params.publish_count; ++oi) {
    FuzzObject& object = objects[oi];
    const auto size = static_cast<std::size_t>(workload_rng.uniform_int(
        static_cast<std::int64_t>(params.min_object_bytes),
        static_cast<std::int64_t>(params.max_object_bytes)));
    object.data = deterministic_bytes(size, workload_rng);
    object.publisher = stable_nodes[static_cast<std::size_t>(
        workload_rng.uniform_int(0,
                                 static_cast<std::int64_t>(stable_nodes.size()) - 1))];

    OpRecord& publish_op = stats.ops[oi];
    publish_op.kind = OpRecord::Kind::kPublish;
    publish_op.object = oi;
    publish_op.node = nodes[object.publisher]->node();

    for (std::size_t r = 0; r < params.retrievals_per_object; ++r) {
      PlannedRetrieval retrieval;
      retrieval.op_index = params.publish_count +
                           oi * params.retrievals_per_object + r;
      do {
        retrieval.retriever = static_cast<std::size_t>(workload_rng.uniform_int(
            0, static_cast<std::int64_t>(node_count) - 1));
      } while (retrieval.retriever == object.publisher);
      const double max_delay_s =
          params.long_horizon ? 25.0 * 3600.0 : sim::to_seconds(window) / 2.0;
      retrieval.delay_after_publish =
          sim::seconds(workload_rng.uniform(1.0, max_delay_s));
      OpRecord& op = stats.ops[retrieval.op_index];
      op.kind = OpRecord::Kind::kRetrieve;
      op.object = oi;
      op.node = nodes[retrieval.retriever]->node();
      planned[oi].push_back(retrieval);
    }

    const sim::Duration publish_offset =
        sim::seconds(workload_rng.uniform(0.0, sim::to_seconds(window) / 4.0));
    network.schedule_at(workload_start + publish_offset, [&, oi] {
      FuzzObject& obj = objects[oi];
      OpRecord& op = stats.ops[oi];
      op.start = network.now();
      if (!network.online(nodes[obj.publisher]->node())) return;  // crashed
      op.attempted = true;
      obj.cid = nodes[obj.publisher]->add(obj.data).root;
      obj.published_locally = true;
      nodes[obj.publisher]->provide(obj.cid, [&, oi](node::PublishTrace trace) {
        OpRecord& publish_op = stats.ops[oi];
        if (publish_op.completed) {
          std::ostringstream out;
          out << "publish obj=" << oi << " completed twice";
          violations.push_back(out.str());
          return;
        }
        publish_op.completed = true;
        publish_op.ok = trace.ok;
        publish_op.elapsed = network.now() - publish_op.start;

        // Retrievals chase the publish (never race it): schedule them
        // only once the provider records are out.
        for (const PlannedRetrieval& retrieval : planned[oi]) {
          network.schedule_after(retrieval.delay_after_publish, [&, oi,
                                                                   retrieval] {
            OpRecord& op = stats.ops[retrieval.op_index];
            op.start = network.now();
            const auto& node = nodes[retrieval.retriever];
            if (!network.online(node->node())) return;  // crashed right now
            op.attempted = true;
            node->retrieve(objects[oi].cid, [&, oi,
                                             retrieval](node::RetrievalTrace trace) {
              OpRecord& op = stats.ops[retrieval.op_index];
              if (op.completed) {
                std::ostringstream out;
                out << "retrieval obj=" << oi << " op=" << retrieval.op_index
                    << " completed twice";
                violations.push_back(out.str());
                return;
              }
              op.completed = true;
              op.ok = trace.ok;
              op.elapsed = network.now() - op.start;
              stats.bytes_fetched += trace.bytes;
              const bool via_indexer =
                  trace.routing_source == routing::Source::kIndexer;
              if (trace.ok && via_indexer) ++stats.indexer_routed;
              if (trace.ok) {
                const auto reassembled = merkledag::cat(
                    nodes[retrieval.retriever]->store(), objects[oi].cid);
                if (!reassembled || *reassembled != objects[oi].data) {
                  // (9) An indexer-routed fetch must be byte-identical to
                  // the DHT path: delegation changes provider discovery,
                  // never the fetched content.
                  std::ostringstream out;
                  out << (via_indexer ? "indexer-routed content mismatch"
                                      : "content mismatch")
                      << ": retrieval obj=" << oi << " node=" << op.node
                      << " reported ok but bytes differ";
                  violations.push_back(out.str());
                }
              }
            });
          });
        }
      });
    });
  }

  // ---- Attack plan (docs/ADVERSARY.md) -----------------------------------
  // Constructed after every honest node so attacker NodeIds append last
  // (a no-attack schedule keeps its ids and rng streams bit-identical),
  // and armed only after the fault plan arms — the partition decorator
  // wraps whatever injector is installed at that moment.
  std::unique_ptr<adversary::AttackPlan> attack;
  // Flash crowds are driven through an HTTP gateway (the entity a real
  // crowd melts), so invariant 12 checks the singleflight and the
  // negative-result shield on the path they actually protect. Only flash
  // schedules construct one, keeping every other schedule's node ids and
  // rng streams bit-identical.
  std::unique_ptr<gateway::Gateway> flash_gateway;
  multiformats::Cid flash_cid;
  std::vector<int> flash_fired(params.flash_requests, 0);
  std::vector<int> flash_completed(params.flash_requests, 0);
  std::vector<int> flash_ok(params.flash_requests, 0);
  // Dead-CID retry wave: each client re-requests 5 s after its failure,
  // inside the gateway's 30 s negative TTL.
  std::vector<int> flash_repeat_fired(params.flash_requests, 0);
  std::vector<int> flash_repeat_completed(params.flash_requests, 0);
  std::vector<int> flash_repeat_ok(params.flash_requests, 0);
  if (params.attack != ScheduleParams::Attack::kNone) {
    adversary::AttackConfig attack_config;
    switch (params.attack) {
      case ScheduleParams::Attack::kSybil: {
        adversary::SybilConfig sybil;
        sybil.per_victim = 6;
        sybil.target_cpl = 6;
        sybil.start = sim::seconds(1);
        sybil.rounds = 2;
        sybil.interval = sim::seconds(20);
        attack_config.sybil = sybil;
        break;
      }
      case ScheduleParams::Attack::kEclipse: {
        // The eclipsed CID is the schedule's first object. add() is
        // deterministic, so a scratch import yields the exact CID the
        // publisher will produce mid-run.
        blockstore::BlockStore scratch;
        attack_config.eclipse_target = dht::Key::for_cid(
            merkledag::import_bytes(scratch, objects[0].data).root);
        // A full replication set of attackers absorbs the entire store
        // batch; min_cpl 8 out-distances any honest peer in these small
        // worlds at 1/16th the default mining cost.
        attack_config.eclipse.min_cpl = 8;
        attack_config.eclipse.announce_at = 0;
        break;
      }
      case ScheduleParams::Attack::kFlashCrowd: {
        adversary::FlashCrowdConfig flash;
        flash.requests = params.flash_requests;
        flash.start = sim::seconds(5);
        flash.window = std::max<sim::Duration>(sim::seconds(1), window / 2);
        attack_config.flash_crowd = flash;
        blockstore::BlockStore scratch;
        if (params.flash_dead_cid) {
          sim::Rng dead_rng = base_rng.fork("fuzz-adversary-dead");
          flash_cid = merkledag::import_bytes(
                          scratch, deterministic_bytes(2048, dead_rng))
                          .root;
        } else {
          flash_cid = merkledag::import_bytes(scratch, objects[0].data).root;
        }
        break;
      }
      case ScheduleParams::Attack::kChurnStorm: {
        adversary::ChurnStormConfig storm;
        storm.fraction = 0.4;
        storm.start = sim::seconds(1);
        storm.window = std::min<sim::Duration>(window, sim::seconds(45));
        storm.min_downtime = sim::seconds(10);
        storm.max_downtime = sim::seconds(40);
        attack_config.churn_storm = storm;
        break;
      }
      case ScheduleParams::Attack::kPartition: {
        adversary::PartitionConfig partition;
        partition.groups = {{0}, {1, 2}};
        partition.start = sim::seconds(5);
        partition.heal_at = sim::seconds(5) + window / 2;
        attack_config.partition = partition;
        break;
      }
      case ScheduleParams::Attack::kNone:
        break;
    }
    attack = std::make_unique<adversary::AttackPlan>(network, attack_config,
                                                     params.seed);
    for (const auto& node : nodes) attack->add_victim(node->self());
    attack->add_crash_listener(on_crash_transition);
    for (std::size_t i = kBootstrapCount; i < node_count; ++i)
      attack->manage_storm(nodes[i]->node());
    if (attack_config.flash_crowd) {
      // The gateway node appends after every honest and attacker node and
      // draws no schedule randomness; its bootstrap drains in the still-
      // faultless window (nothing is armed yet).
      gateway::GatewayConfig gateway_config;
      gateway_config.node.identity_seed =
          params.seed ^ 0xF1A5C0DE9E3779B9ULL;
      if (fabric.indexer_count() > 0)
        gateway_config.node.routing = fabric.routing_config();
      flash_gateway =
          std::make_unique<gateway::Gateway>(network, gateway_config);
      flash_gateway->bootstrap(seeds_for(node_count), [](bool) {});
      stats.events_executed += network.run();

      attack->set_flash_request_handler([&](std::size_t slot) {
        flash_fired[slot] = 1;
        ++stats.flash_fired;
        flash_gateway->handle_get(
            flash_cid, [&, slot](gateway::GatewayResponse response) {
              ++flash_completed[slot];
              ++stats.flash_completions;
              if (response.source != gateway::ServedFrom::kFailed)
                flash_ok[slot] = 1;
              if (!params.flash_dead_cid || flash_repeat_fired[slot]) return;
              // The retry: same client, 5 s later — squarely inside the
              // negative TTL, so the shield (not a second doomed
              // pipeline) should answer it.
              flash_repeat_fired[slot] = 1;
              ++stats.flash_repeat_fired;
              network.schedule_after(sim::seconds(5), [&, slot] {
                flash_gateway->handle_get(
                    flash_cid, [&, slot](gateway::GatewayResponse repeat) {
                      ++flash_repeat_completed[slot];
                      ++stats.flash_repeat_completions;
                      if (repeat.source != gateway::ServedFrom::kFailed)
                        flash_repeat_ok[slot] = 1;
                    });
              });
            });
      });
    }
  }

  // Pubsub publishes land anywhere in the workload window, from any node:
  // non-subscribed publishers exercise the fanout path, subscribed ones
  // the mesh. All draws happen up front so the op table never mutates the
  // rng mid-run.
  struct PubsubPublishOp {
    std::size_t publisher = 0;
    std::size_t topic = 0;
    sim::Duration offset = 0;
    std::vector<std::uint8_t> data;
    bool attempted = false;           // false: publisher was offline
    bool publisher_subscribed = false;
    std::size_t peers_at_publish = 0; // router's topic peers when it fired
    pubsub::MessageId id;             // filled when the publish fires
  };
  std::vector<PubsubPublishOp> pubsub_ops(
      topic_count == 0 ? 0 : params.pubsub_publish_count);
  for (auto& op : pubsub_ops) {
    op.publisher = static_cast<std::size_t>(pubsub_rng.uniform_int(
        0, static_cast<std::int64_t>(node_count) - 1));
    op.topic = static_cast<std::size_t>(pubsub_rng.uniform_int(
        0, static_cast<std::int64_t>(topic_count) - 1));
    op.offset = sim::seconds(pubsub_rng.uniform(0.0, sim::to_seconds(window)));
    op.data = deterministic_bytes(
        static_cast<std::size_t>(pubsub_rng.uniform_int(16, 256)), pubsub_rng);
  }
  for (std::size_t pi = 0; pi < pubsub_ops.size(); ++pi) {
    network.schedule_at(workload_start + pubsub_ops[pi].offset, [&, pi] {
      PubsubPublishOp& op = pubsub_ops[pi];
      if (!network.online(nodes[op.publisher]->node())) return;  // crashed
      op.attempted = true;
      ++stats.pubsub_publishes;
      op.publisher_subscribed =
          nodes[op.publisher]->pubsub()->subscribed(topic_name(op.topic));
      op.peers_at_publish =
          nodes[op.publisher]->pubsub()->topic_peers(topic_name(op.topic)).size();
      op.id =
          nodes[op.publisher]->pubsub()->publish(topic_name(op.topic), op.data);
    });
  }

  // ---- Phase 2: run the workload under faults ----------------------------
  plan.arm();
  if (attack) attack->arm();  // after plan.arm(): the decorator wraps it
  const sim::Time horizon =
      params.long_horizon
          ? workload_start + sim::hours(26)
          : workload_start + window + sim::seconds(60);
  stats.events_executed += network.run_until(horizon);

  // ---- Phase 3: disarm background faults and drain -----------------------
  if (attack) attack->disarm();
  plan.disarm();
  stats.events_executed += network.run();
  stats.faults = plan.counters();
  const std::uint64_t storm_crashes =
      attack ? attack->counters().storm_crashes : 0;

  // ---- Invariant checks ---------------------------------------------------
  const sim::Time end = network.now();

  // (2) Completion: attempted ops completed exactly once unless the
  // requester crashed after the op started. (Double completion is caught
  // inline above.)
  for (const auto& op : stats.ops) {
    if (!op.attempted || op.completed) continue;
    const auto& crashes = crash_times[node_index(op.node)];
    const bool crashed_after_start = std::any_of(
        crashes.begin(), crashes.end(),
        [&](sim::Time t) { return t >= op.start; });
    if (!crashed_after_start) {
      std::ostringstream out;
      out << kind_name(op.kind) << " obj=" << op.object << " node=" << op.node
          << " started at t=" << op.start
          << "us never completed and the node never crashed";
      violations.push_back(out.str());
    }
  }

  // (3) No leaked simulator events or pending exchanges.
  if (network.foreground_pending() != 0) {
    std::ostringstream out;
    out << network.foreground_pending()
        << " live foreground event(s) leaked after the drain";
    violations.push_back(out.str());
  }
  if (network.pending_request_count() != 0) {
    std::ostringstream out;
    out << network.pending_request_count()
        << " pending request/response exchange(s) leaked after the drain";
    violations.push_back(out.str());
  }

  // (4) Routing hygiene: no self entries, no duplicates.
  for (std::size_t i = 0; i < node_count; ++i) {
    const auto peers = nodes[i]->dht().routing_table().all_peers();
    std::set<multiformats::PeerId> seen;
    for (const auto& peer : peers) {
      if (peer.id == nodes[i]->self().id) {
        std::ostringstream out;
        out << "node " << i << " holds itself in its routing table";
        violations.push_back(out.str());
      }
      if (!seen.insert(peer.id).second) {
        std::ostringstream out;
        out << "node " << i << " holds a duplicate routing entry";
        violations.push_back(out.str());
      }
    }
  }

  // (5) Provider records expire on schedule (one sweep interval of slack,
  // plus the worst-case crash downtime during which no sweep can run).
  const sim::Duration expiry_slack =
      dht::kExpirySweepInterval + params.faults.max_downtime + sim::minutes(1);
  for (std::size_t i = 0; i < node_count; ++i) {
    const std::size_t stale =
        nodes[i]->dht().record_store().stale_provider_count(end, expiry_slack);
    if (stale != 0) {
      std::ostringstream out;
      out << "node " << i << " holds " << stale
          << " provider record(s) past expiry + slack at t=" << end << "us";
      violations.push_back(out.str());
    }
  }

  // (6) Conservation: received(a <- b) <= sent(b -> a), blocks and bytes.
  // The ledger graph spans the population plus the flash gateway's node
  // (it Bitswap-fetches from population providers on flash schedules).
  std::vector<node::IpfsNode*> bitswap_nodes;
  bitswap_nodes.reserve(node_count + 1);
  for (const auto& node : nodes) bitswap_nodes.push_back(node.get());
  if (flash_gateway) bitswap_nodes.push_back(&flash_gateway->node());
  const auto bitswap_peer = [&](sim::NodeId id) -> node::IpfsNode* {
    if (flash_gateway && id == flash_gateway->node().node())
      return &flash_gateway->node();
    const std::size_t index = node_index(id);
    return index < node_count ? nodes[index].get() : nullptr;
  };
  for (node::IpfsNode* a : bitswap_nodes) {
    for (const auto& [peer, ledger] : a->bitswap().ledgers()) {
      node::IpfsNode* peer_node = bitswap_peer(peer);
      if (peer_node == nullptr) continue;  // non-Bitswap peer (defensive)
      const auto& peer_ledgers = peer_node->bitswap().ledgers();
      const auto it = peer_ledgers.find(a->node());
      const std::uint64_t sent_blocks =
          it == peer_ledgers.end() ? 0 : it->second.blocks_sent;
      const std::uint64_t sent_bytes =
          it == peer_ledgers.end() ? 0 : it->second.bytes_sent;
      if (ledger.blocks_received > sent_blocks ||
          ledger.bytes_received > sent_bytes) {
        std::ostringstream out;
        out << "conservation violated: node " << a->node() << " received "
            << ledger.blocks_received << " blocks/" << ledger.bytes_received
            << " bytes from node " << peer << " which only sent "
            << sent_blocks << "/" << sent_bytes;
        violations.push_back(out.str());
      }
    }
  }

  // (7) Pubsub at-most-once is checked inline at delivery time (see
  // subscribe_node above).

  // (8) Pubsub eventual delivery, clean schedules only: no injected
  // faults and no crashes means nothing could partition a mesh, so every
  // subscriber must hold every published message exactly once. Faulty
  // schedules can legitimately end mid-repair; there only (7) binds.
  // Storm crashes and partitions disturb meshes the same way FaultPlan
  // crashes do (a partitioned-away publish ages out of the gossip
  // window), so those schedules are exempt too.
  if (params.fault_scale == 0.0 && stats.faults.crashes == 0 &&
      storm_crashes == 0 &&
      params.attack != ScheduleParams::Attack::kPartition) {
    for (const auto& op : pubsub_ops) {
      if (!op.attempted) continue;
      // A fanout publisher that knows no topic peer drops the message by
      // design (go-libp2p's Publish reports NoPeersFound): nobody ever
      // announced the topic to it, so the router has nowhere to send.
      // Subscribed publishers are never exempt — the subscriber ring in
      // the candidate wiring guarantees they learn at least one peer.
      if (op.peers_at_publish == 0 && !op.publisher_subscribed) continue;
      for (const std::size_t i : topic_subscribers[op.topic]) {
        const auto& counts = pubsub_seen[i][op.topic];
        const auto it = counts.find(op.id);
        const int count = it == counts.end() ? 0 : it->second;
        if (count != 1) {
          std::ostringstream out;
          out << "pubsub delivery violated: subscriber " << i << " of "
              << topic_name(op.topic) << " delivered id{origin="
              << op.id.origin << " seqno=" << op.id.seqno << "} " << count
              << " time(s) on a clean schedule (mesh="
              << nodes[i]->pubsub()->mesh_peers(topic_name(op.topic)).size()
              << " peers="
              << nodes[i]->pubsub()->topic_peers(topic_name(op.topic)).size()
              << " publisher_known_peers="
              << nodes[op.publisher]
                     ->pubsub()
                     ->topic_peers(topic_name(op.topic))
                     .size()
              << ")";
          violations.push_back(out.str());
        }
      }
    }
  }

  // (10) Indexer crashes are non-fatal: when the harness-scheduled
  // indexer crashes were the only faults in the schedule, the race
  // router's DHT arm must have carried every fetch — a retrieval that
  // fails here is one a DHT-only configuration would have served.
  if (params.fault_scale == 0.0 && stats.faults.crashes == 0 &&
      storm_crashes == 0 &&
      params.attack != ScheduleParams::Attack::kPartition &&
      stats.indexer_crashes > 0) {
    for (const auto& op : stats.ops) {
      if (op.kind != OpRecord::Kind::kRetrieve || !op.attempted) continue;
      if (op.completed && op.ok) continue;
      std::ostringstream out;
      out << "indexer crash degraded retrieval: obj=" << op.object
          << " node=" << op.node << " (completed=" << op.completed
          << " ok=" << op.ok << ") on a schedule whose only faults were "
          << stats.indexer_crashes << " indexer crash(es)";
      violations.push_back(out.str());
    }
  }

  // (11) Eclipse resilience: the eclipsed CID (the schedule's first
  // object) must still be retrievable via the indexer race once the
  // indexer has ingested the publisher's advertisement. Eclipse
  // schedules force fault scale 0, healthy indexers and full defenses
  // (apply_attack_constraints), so nothing but the eclipse itself could
  // degrade these retrievals. Binds only when the defenses are actually
  // armed — tests pin defenses-off eclipse schedules to prove the attack
  // itself works, and those are expected to lose the object.
  if (params.attack == ScheduleParams::Attack::kEclipse &&
      params.indexer_count > 0 && params.provider_quorum > 1 &&
      params.fault_scale == 0.0 && !params.indexer_crashes) {
    const sim::Duration settle = params.indexer_ingest_lag + sim::seconds(5);
    for (const PlannedRetrieval& retrieval : planned[0]) {
      const OpRecord& op = stats.ops[retrieval.op_index];
      if (!op.attempted) continue;
      if (retrieval.delay_after_publish < settle) continue;
      if (op.completed && op.ok) continue;
      std::ostringstream out;
      out << "eclipse defeated retrieval: the eclipsed CID (obj=0) was not"
          << " retrievable via the indexer race (node=" << op.node
          << " completed=" << op.completed << " ok=" << op.ok << " delay_s="
          << sim::to_seconds(retrieval.delay_after_publish) << ")";
      violations.push_back(out.str());
    }
  }

  // (12) Flash-crowd accounting: every fired flash request completes
  // exactly once, and a crowd chasing a never-published CID gets a typed
  // failure. (Invariant 6 covers the block accounting underneath.)
  if (params.attack == ScheduleParams::Attack::kFlashCrowd) {
    for (std::size_t slot = 0; slot < params.flash_requests; ++slot) {
      if (!flash_fired[slot]) continue;
      if (flash_completed[slot] != 1) {
        std::ostringstream out;
        out << "flash-crowd request slot=" << slot << " completed "
            << flash_completed[slot] << " time(s), expected exactly once";
        violations.push_back(out.str());
      }
      if (params.flash_dead_cid && flash_ok[slot]) {
        std::ostringstream out;
        out << "flash-crowd request slot=" << slot
            << " reported ok for a CID that was never published";
        violations.push_back(out.str());
      }
      // The dead-CID retry wave obeys the same exactly-once, never-ok
      // contract as the first wave.
      if (!flash_repeat_fired[slot]) continue;
      if (flash_repeat_completed[slot] != 1) {
        std::ostringstream out;
        out << "flash-crowd retry slot=" << slot << " completed "
            << flash_repeat_completed[slot] << " time(s), expected exactly once";
        violations.push_back(out.str());
      }
      if (flash_repeat_ok[slot]) {
        std::ostringstream out;
        out << "flash-crowd retry slot=" << slot
            << " reported ok for a CID that was never published";
        violations.push_back(out.str());
      }
    }
    if (flash_gateway) {
      stats.flash_negative_hits = flash_gateway->negative_hits();
      // At least the leader's own retry lands 5 s after the failure that
      // stored the negative entry (TTL 30 s), so a fired retry wave with
      // zero negative hits means every retry re-paid the doomed pipeline
      // — the dead-CID stampede the shield exists to absorb.
      if (stats.flash_repeat_fired > 0 && stats.flash_negative_hits == 0) {
        std::ostringstream out;
        out << "dead-CID stampede not absorbed: " << stats.flash_repeat_fired
            << " retry request(s) fired inside the negative TTL but the "
            << "gateway's negative-result cache served none of them";
        violations.push_back(out.str());
      }
    }
  }

  // (13) Sybil containment: with the diversity cap armed, no bucket on
  // any node may hold more adversarial entries than the cap — every
  // forged identity advertises an address in the attacker's one /16.
  if (attack && params.diversity_cap > 0) {
    for (std::size_t i = 0; i < node_count; ++i) {
      const dht::Key self_key = dht::Key::for_peer(nodes[i]->self().id);
      std::map<int, std::size_t> adversarial_per_bucket;
      for (const auto& peer : nodes[i]->dht().routing_table().all_peers())
        if (attack->is_adversarial_id(peer.id))
          ++adversarial_per_bucket[self_key.common_prefix_len(
              dht::Key::for_peer(peer.id))];
      for (const auto& [cpl, count] : adversarial_per_bucket) {
        if (count <= params.diversity_cap) continue;
        std::ostringstream out;
        out << "sybil containment violated: node " << i << " bucket cpl="
            << cpl << " holds " << count << " adversarial entries (cap="
            << params.diversity_cap << ")";
        violations.push_back(out.str());
      }
    }
  }

  // (14) Acked-put durability: add() flushed the publisher's store
  // before the publish op was recorded as locally published, so the
  // object's blocks are acked — they must survive every crash/restart
  // cycle (and, on persist schedules, every torn write-behind tail).
  for (std::size_t oi = 0; oi < params.publish_count; ++oi) {
    const FuzzObject& object = objects[oi];
    if (!object.published_locally) continue;
    const auto bytes =
        merkledag::cat(nodes[object.publisher]->store(), object.cid);
    if (!bytes || *bytes != object.data) {
      std::ostringstream out;
      out << "acked put lost: publisher " << object.publisher << " of obj="
          << oi << " (" << object.data.size() << " bytes, "
          << crash_times[object.publisher].size()
          << " crash(es)) cannot reassemble its own published object "
          << (bytes ? "(bytes differ)" : "(blocks missing)");
      violations.push_back(out.str());
    }
  }

  // Engine-level dedup totals feed the determinism fingerprint.
  for (std::size_t i = 0; i < node_count; ++i)
    stats.pubsub_duplicates += nodes[i]->pubsub()->duplicates_suppressed();
  if (attack) stats.attack_events = attack->counters().total_attack_events();
  for (std::size_t i = 0; i < node_count; ++i)
    stats.sybil_rejections +=
        nodes[i]->dht().routing_table().diversity_rejections();

  if (attack) attack->detach();  // before plan.detach(): reverse arm order
  plan.detach();

  // Any violation dumps the schedule's flight recording: every counter,
  // histogram, and span/instant event the run produced, keyed by the
  // replay seed. Clean runs skip the serialization entirely.
  if (!violations.empty() || params.capture_trace) {
    std::ostringstream dump;
    stats::export_registry_jsonl(network.metrics(), dump);
    report.trace_jsonl = dump.str();
  }
  if (!violations.empty()) {
    std::ostringstream path;
    path << "simfuzz_trace_" << params.seed << ".jsonl";
    std::ofstream file(path.str(), std::ios::trunc);
    if (file) {
      file << report.trace_jsonl;
      report.trace_dump_path = path.str();
    }
  }
  return report;
}

}  // namespace ipfs::simfuzz
