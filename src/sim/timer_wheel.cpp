#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ipfs::sim {

namespace {

bool by_sequence(const Event& a, const Event& b) {
  return a.sequence < b.sequence;
}

}  // namespace

int TimerWheel::level_for(Time diff) {
  assert(diff >= 0 && diff < kHorizon);
  if (diff == 0) return 0;
  const int highest_bit =
      63 - std::countl_zero(static_cast<std::uint64_t>(diff));
  return highest_bit / kLevelBits;
}

void TimerWheel::insert(Event event) {
  ++size_;
  source_ = Source::kNone;
  if (event.when < cursor_) {
    // The cursor already advanced past this timestamp (run_until stopped
    // in the gap before the next pending event, then new work was
    // scheduled inside that gap). The front heap keeps such events exact.
    front_.push(std::move(event));
    return;
  }
  place(std::move(event));
}

void TimerWheel::place(Event event) {
  const Time diff = event.when ^ cursor_;
  if (diff >= kHorizon) {
    overflow_.push(std::move(event));
    return;
  }
  const int level = level_for(diff);
  const auto slot = static_cast<std::size_t>(
      (event.when >> (level * kLevelBits)) & (kSlotsPerLevel - 1));
  slots_[static_cast<std::size_t>(level)][slot].push_back(std::move(event));
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
}

bool TimerWheel::refill_current_tick() {
  // The level-0 slot indexed by the cursor can only hold events whose
  // timestamp equals the cursor exactly (any other timestamp in the slot
  // would differ above bit 5 and live at a higher level).
  const auto slot = static_cast<std::size_t>(cursor_ & (kSlotsPerLevel - 1));
  if ((occupied_[0] >> slot & 1) == 0) return false;
  auto& bucket = slots_[0][slot];
  ready_.swap(bucket);
  bucket.clear();
  occupied_[0] &= ~(std::uint64_t{1} << slot);
  ready_pos_ = 0;
  // Direct inserts and cascades append in arbitrary sequence order;
  // restore the FIFO tie-break the binary heap guarantees.
  std::sort(ready_.begin(), ready_.end(), by_sequence);
  return !ready_.empty();
}

bool TimerWheel::advance() {
  for (;;) {
    // Overflow events whose timestamps now share the cursor's horizon
    // frame belong in the wheel. Re-checked after every cursor move so an
    // overflow event can even join the current tick's batch (and still
    // fire in sequence order).
    while (!overflow_.empty() &&
           ((overflow_.top().when ^ cursor_) < kHorizon)) {
      Event event = overflow_.pop();
      if (!event.state->alive) {
        --size_;
        continue;
      }
      place(std::move(event));
    }

    bool any = false;
    for (int level = 0; level < kLevels; ++level) {
      const auto l = static_cast<std::size_t>(level);
      if (occupied_[l] == 0) continue;
      any = true;
      const auto cursor_index = static_cast<std::size_t>(
          (cursor_ >> (level * kLevelBits)) & (kSlotsPerLevel - 1));
      const std::uint64_t mask =
          occupied_[l] & (~std::uint64_t{0} << cursor_index);
      if (mask == 0) continue;
      const auto slot = static_cast<std::size_t>(std::countr_zero(mask));
      if (level == 0) {
        if (slot == cursor_index) return true;  // arrived: refill picks it up
        // Jump to the next populated tick in this frame.
        cursor_ = (cursor_ & ~Time{kSlotsPerLevel - 1}) |
                  static_cast<Time>(slot);
        break;  // re-pull overflow against the new cursor, then rescan
      }
      // Cascade: empty the slot, advance the cursor to its earliest live
      // event, and re-file everything relative to the new cursor (each
      // entry drops at least one level, bounding total cascade work).
      auto& bucket = slots_[l][slot];
      std::vector<Event> batch;
      batch.swap(bucket);
      occupied_[l] &= ~(std::uint64_t{1} << slot);
      Time earliest = -1;
      for (auto& event : batch) {
        if (!event.state->alive) continue;
        if (earliest < 0 || event.when < earliest) earliest = event.when;
      }
      if (earliest < 0) {  // slot held only cancelled entries
        size_ -= batch.size();
        break;
      }
      assert(earliest >= cursor_);
      cursor_ = earliest;
      for (auto& event : batch) {
        if (!event.state->alive) {
          --size_;
          continue;
        }
        place(std::move(event));
      }
      break;
    }
    if (any) continue;

    if (overflow_.empty()) return false;
    // Wheel empty: jump straight to the overflow minimum; the pull loop
    // above files it on the next iteration.
    cursor_ = overflow_.top().when;
  }
}

Event* TimerWheel::peek() {
  for (;;) {
    // Events stranded before the cursor fire first: everything in the
    // wheel is at or after the cursor, so the front heap's minimum is the
    // global minimum whenever it is non-empty.
    while (!front_.empty()) {
      if (front_.top().state->alive) {
        source_ = Source::kFront;
        return &front_.top();
      }
      front_.pop();
      --size_;
    }
    while (ready_pos_ < ready_.size()) {
      Event& event = ready_[ready_pos_];
      if (event.state->alive) {
        source_ = Source::kReady;
        return &event;
      }
      ++ready_pos_;
      --size_;
    }
    ready_.clear();
    ready_pos_ = 0;
    // Events scheduled at the tick being drained land in its level-0
    // slot with sequence numbers above the drained batch; re-checking
    // here keeps same-tick FIFO order exact.
    if (refill_current_tick()) continue;
    if (!advance()) {
      source_ = Source::kNone;
      return nullptr;
    }
  }
}

Event TimerWheel::pop() {
  if (source_ == Source::kNone) peek();
  assert(source_ != Source::kNone && "pop() without a pending event");
  --size_;
  if (source_ == Source::kFront) {
    source_ = Source::kNone;
    return front_.pop();
  }
  source_ = Source::kNone;
  Event event = std::move(ready_[ready_pos_]);
  ++ready_pos_;
  return event;
}

}  // namespace ipfs::sim
