// Discrete-event scheduler driving all simulated IPFS activity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ipfs::sim {

class Simulator;

// Handle for cancelling a scheduled event.
//
// Cancellation semantics (relied on by the fault-injection harness):
//   - cancel() before the event fires guarantees the callback never runs,
//     under run(), run_until() and step() alike.
//   - cancel() after the event fired (or on a default-constructed handle)
//     is a no-op; active() is false in both cases.
//   - Cancelling a foreground event may let run() return earlier, since
//     run() only waits for live non-daemon events.
class Timer {
 public:
  Timer() = default;

  void cancel();
  bool active() const;

 private:
  friend class Simulator;
  struct State {
    bool alive = true;
    bool daemon = false;
    Simulator* simulator = nullptr;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Time now() const { return now_; }

  Timer schedule_at(Time when, std::function<void()> fn);
  Timer schedule_after(Duration delay, std::function<void()> fn);

  // Daemon events (periodic maintenance: record expiry sweeps, churn
  // transitions, republishes) do not keep run() alive: run() returns once
  // only daemon events remain. run_until() executes them normally.
  Timer schedule_daemon_at(Time when, std::function<void()> fn);
  Timer schedule_daemon_after(Duration delay, std::function<void()> fn);

  // Runs until no live non-daemon event remains. Returns events executed.
  std::uint64_t run();

  // Runs every event (daemons included) up to `deadline`, then advances
  // the clock to it.
  std::uint64_t run_until(Time deadline);

  // Executes the single next event; false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

  // Live (non-cancelled) non-daemon events still queued. Zero after a
  // drained run(); the fuzz harness checks this to detect leaked events.
  std::size_t foreground_pending() const { return foreground_pending_; }

 private:
  friend class Timer;

  struct Event {
    Time when;
    std::uint64_t sequence;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    std::shared_ptr<Timer::State> state;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return sequence > other.sequence;
    }
  };

  Timer schedule_event(Time when, std::function<void()> fn, bool daemon);

  Time now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::size_t foreground_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace ipfs::sim
