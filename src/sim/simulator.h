// Discrete-event scheduler driving all simulated IPFS activity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace ipfs::sim {

// Event-queue backend. The hierarchical timer wheel is the default;
// the binary heap is the reference implementation, kept selectable so
// determinism tests can assert both produce identical seeded traces.
enum class SchedulerBackend {
  kTimerWheel,
  kBinaryHeap,
};

class Simulator {
 public:
  explicit Simulator(SchedulerBackend backend = SchedulerBackend::kTimerWheel)
      : backend_(backend) {}

  Time now() const { return now_; }
  SchedulerBackend backend() const { return backend_; }

  Timer schedule_at(Time when, std::function<void()> fn);
  Timer schedule_after(Duration delay, std::function<void()> fn);

  // Daemon events (periodic maintenance: record expiry sweeps, churn
  // transitions, republishes) do not keep run() alive: run() returns once
  // only daemon events remain. run_until() executes them normally.
  Timer schedule_daemon_at(Time when, std::function<void()> fn);
  Timer schedule_daemon_after(Duration delay, std::function<void()> fn);

  // Runs until no live non-daemon event remains. Returns events executed.
  std::uint64_t run();

  // Runs every event (daemons included) up to `deadline`, then advances
  // the clock to it.
  std::uint64_t run_until(Time deadline);

  // Executes the single next event; false if the queue is empty.
  bool step();

  // Queued entries, including cancelled ones not yet lazily pruned.
  std::size_t pending_events() const {
    return backend_ == SchedulerBackend::kTimerWheel ? wheel_.size()
                                                     : heap_.size();
  }

  // Live (non-cancelled) non-daemon events still queued. Zero after a
  // drained run(); the fuzz harness checks this to detect leaked events.
  std::size_t foreground_pending() const { return foreground_pending_; }

 private:
  friend class Timer;

  Timer schedule_event(Time when, std::function<void()> fn, bool daemon);
  // Next live event in (when, sequence) order; prunes cancelled entries.
  Event* peek_next();
  Event pop_next();

  SchedulerBackend backend_;
  Time now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::size_t foreground_pending_ = 0;
  TimerWheel wheel_;
  EventHeap heap_;
};

}  // namespace ipfs::sim
