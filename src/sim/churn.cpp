#include "sim/churn.h"

namespace ipfs::sim {

ChurnProcess::ChurnProcess(Simulator& simulator, Network& network,
                           std::uint64_t seed)
    : simulator_(simulator), network_(network), rng_(Rng(seed).fork("churn")) {}

void ChurnProcess::manage(NodeId node, DurationSampler session_length,
                          DurationSampler offline_length) {
  managed_.push_back(
      Managed{node, std::move(session_length), std::move(offline_length)});
  schedule_next(managed_.size() - 1, network_.online(node),
                /*stationary_start=*/true);
}

void ChurnProcess::add_listener(Listener listener) {
  listeners_.push_back(std::move(listener));
}

void ChurnProcess::schedule_next(std::size_t index, bool currently_online,
                                 bool stationary_start) {
  const Managed& managed = managed_[index];
  Duration length = currently_online ? managed.session_length(rng_)
                                     : managed.offline_length(rng_);
  if (length < seconds(1)) length = seconds(1);
  if (stationary_start) {
    // Start mid-session so the population is in steady state from t=0.
    length = static_cast<Duration>(static_cast<double>(length) *
                                   rng_.uniform());
    if (length < seconds(1)) length = seconds(1);
  }
  network_.schedule_daemon_for(managed.node, length,
                               [this, index, currently_online] {
                                 transition(index, !currently_online);
                               });
}

void ChurnProcess::transition(std::size_t index, bool go_online) {
  const Managed& managed = managed_[index];
  network_.set_online(managed.node, go_online);
  ++transitions_;
  for (const auto& listener : listeners_) listener(managed.node, go_online);
  schedule_next(index, go_online, /*stationary_start=*/false);
}

}  // namespace ipfs::sim
