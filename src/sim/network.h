// Message-level network fabric for the simulator.
//
// Models the parts of the real Internet the paper's measurements depend on:
//   - per-region one-way latencies with jitter (a global RTT matrix),
//   - bandwidth-limited transfers (publication is size-independent, content
//     fetch is not),
//   - dial + security/mux negotiation handshakes per transport, with the
//     transport-specific timeouts that produce the 5 s and 45 s spikes in
//     paper Figure 9c,
//   - NAT'ed (undialable) peers and unresponsive peers,
//   - connection state (Bitswap broadcasts to *connected* peers only).
//
// Node state is stored in dense structure-of-arrays vectors indexed by
// NodeId, with freed ids recycled, so 100k+ add_node/remove_node churn
// cycles neither fragment the heap nor grow the id space without bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"
#include "sim/message_kind.h"
#include "sim/parallel/shard_engine.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipfs::sim {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

enum class Transport { kTcp, kQuic, kWebSocket };

// Dial timeout observed by a peer trying to reach an unresponsive address
// (paper Section 6.1: 5 s TCP/QUIC dial timeouts, 45 s WebSocket handshake).
Duration dial_timeout(Transport transport);

// Dials to a churned-out peer usually fail fast (the host answers with a
// TCP RST or an ICMP unreachable); only a minority hang until the
// transport timeout. NAT'ed peers always hang: their packets vanish.
constexpr double kFastFailProbability = 0.7;

// Round trips needed to establish a secured, multiplexed connection.
int handshake_round_trips(Transport transport);

struct NodeConfig {
  int region = 0;
  bool dialable = true;      // false models NAT'ed peers (DHT clients)
  bool responsive = true;    // false models stalled peers that never reply
  Transport transport = Transport::kTcp;
  double upload_bytes_per_sec = 4.0 * 1024 * 1024;
  double download_bytes_per_sec = 12.0 * 1024 * 1024;
  // Probability that a dial to this (online, dialable) peer succeeds.
  // Below 1.0 models flaky reachability: overloaded hosts, half-broken
  // NAT setups, relay addresses. Failed dials hang until the transport
  // timeout — the mechanism behind the 5 s / 45 s spikes in Figure 9c.
  double dial_success_prob = 1.0;
  // Relay support for NAT'ed peers (DCUtR, the hole-punching upgrade the
  // paper notes as under test). kInvalidNode = no relay: dials to an
  // undialable peer simply time out. With a relay, dials reach the peer
  // through it (both legs' latency), then attempt a hole-punched direct
  // upgrade that succeeds with dcutr_success_prob.
  std::uint32_t relay = 0xffffffffu;  // NodeId of the relay, if any
  double dcutr_success_prob = 0.7;

  // Named-parameter setters: the preferred way to build configs at call
  // sites. Unlike positional aggregate initialization, adding a field
  // can never silently reorder an existing config.
  NodeConfig& with_region(int r) {
    region = r;
    return *this;
  }
  NodeConfig& with_dialable(bool d) {
    dialable = d;
    return *this;
  }
  NodeConfig& with_responsive(bool r) {
    responsive = r;
    return *this;
  }
  NodeConfig& with_transport(Transport t) {
    transport = t;
    return *this;
  }
  NodeConfig& with_upload(double bytes_per_sec) {
    upload_bytes_per_sec = bytes_per_sec;
    return *this;
  }
  NodeConfig& with_download(double bytes_per_sec) {
    download_bytes_per_sec = bytes_per_sec;
    return *this;
  }
  NodeConfig& with_bandwidth(double up_bytes_per_sec,
                             double down_bytes_per_sec) {
    upload_bytes_per_sec = up_bytes_per_sec;
    download_bytes_per_sec = down_bytes_per_sec;
    return *this;
  }
  NodeConfig& with_dial_success(double p) {
    dial_success_prob = p;
    return *this;
  }
  NodeConfig& with_relay(std::uint32_t node) {
    relay = node;
    return *this;
  }
  NodeConfig& with_dcutr_success(double p) {
    dcutr_success_prob = p;
    return *this;
  }
};

// Base class for all protocol messages exchanged over the fabric.
class Message {
 public:
  virtual ~Message() = default;

  // Wire tag of the concrete type (sim/message_kind.h). Dispatch and the
  // socket codec switch on this; kUnknown marks test-local structs that
  // never cross a real wire.
  virtual MessageKind kind() const { return MessageKind::kUnknown; }
};

using MessagePtr = std::shared_ptr<const Message>;

enum class RpcStatus { kOk, kTimeout, kUnreachable, kReset };

using ResponseCallback = std::function<void(RpcStatus, MessagePtr)>;
// respond() may be invoked at most once, synchronously or later.
using RequestHandler = std::function<void(
    NodeId from, const MessagePtr& request,
    std::function<void(MessagePtr, std::size_t bytes)> respond)>;
using MessageHandler =
    std::function<void(NodeId from, const MessagePtr& message)>;
using DialCallback = std::function<void(bool ok, Duration elapsed)>;

// One-way latency model over a region matrix (milliseconds), with
// multiplicative jitter per sample. The matrix is stored as one
// contiguous row-major vector so a lookup is a multiply-add away —
// no per-row pointer chase on the per-message hot path.
class LatencyModel {
 public:
  LatencyModel(std::vector<std::vector<double>> one_way_ms,
               double jitter_low = 0.95, double jitter_high = 1.25);

  Duration sample(int region_a, int region_b, Rng& rng) const {
    const double base =
        flat_[static_cast<std::size_t>(region_a) *
                  static_cast<std::size_t>(regions_) +
              static_cast<std::size_t>(region_b)];
    const double jitter = rng.uniform(jitter_low_, jitter_high_);
    return milliseconds(base * jitter);
  }

  int regions() const { return regions_; }

  // Smallest matrix entry (diagonal included) and the jitter floor: no
  // sampled one-way latency is ever below min_base_ms() * jitter_low(),
  // because milliseconds() truncation is monotonic. The sharded engine
  // derives its conservative lookahead window from this bound.
  double min_base_ms() const {
    return *std::min_element(flat_.begin(), flat_.end());
  }
  double jitter_low() const { return jitter_low_; }

 private:
  std::vector<double> flat_;  // row-major regions_ x regions_ matrix
  int regions_;
  double jitter_low_;
  double jitter_high_;
};

// Hook interface for deterministic fault injection (see sim/faults.h for
// the seeded implementation). The fabric consults the injector at every
// decision point but never touches its own rng stream on the injector's
// behalf, so runs without an injector draw exactly the same randomness as
// before one existed.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Message-level faults on established connections (datagrams and both
  // legs of request/response). A dropped request or response surfaces to
  // the requester as RpcStatus::kTimeout.
  virtual bool drop_message(NodeId from, NodeId to) = 0;
  virtual bool duplicate_message(NodeId from, NodeId to) = 0;
  // Extra delivery delay for this message; > 0 reorders it behind later
  // traffic on the same link.
  virtual Duration reorder_delay(NodeId from, NodeId to) = 0;
  // Forces a dial from->to to fail (hangs until the transport timeout,
  // like a half-broken NAT mapping).
  virtual bool fail_dial(NodeId from, NodeId to) = 0;
  // Multiplier (>= 1.0) applied to sampled one-way latency: per-link
  // latency spikes.
  virtual double latency_factor(NodeId a, NodeId b) = 0;
};

class Network {
 public:
  Network(Simulator& simulator, const LatencyModel& latency,
          std::uint64_t seed);

  // Adds a node, recycling the lowest-order freed id if one exists.
  NodeId add_node(const NodeConfig& config);

  // Removes a node: tears down its connections, mutes its in-flight
  // callbacks (epoch bump), clears its handlers and returns its id to the
  // free list for the next add_node. Safe under 100k+ churn cycles.
  void remove_node(NodeId id);

  // Nodes currently allocated (excludes removed ones).
  std::size_t node_count() const { return live_nodes_; }
  // Size of the id space, including freed slots: ids are always
  // < slot_count(). Iterate [0, slot_count()) and check in_use(id).
  std::size_t slot_count() const { return configs_.size(); }
  bool in_use(NodeId id) const { return in_use_[id] != 0; }

  const NodeConfig& config(NodeId id) const { return configs_[id]; }
  bool online(NodeId id) const { return online_[id] != 0; }

  // Toggles liveness. Going offline tears down all connections and mutes
  // any pending callbacks owned by the node.
  void set_online(NodeId id, bool online);
  void set_responsive(NodeId id, bool responsive);
  void set_dialable(NodeId id, bool dialable);

  void set_request_handler(NodeId id, RequestHandler handler);
  void set_message_handler(NodeId id, MessageHandler handler);

  // Installs (or removes, with nullptr) the fault injector. Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // The currently installed injector (nullptr when none). Lets a second
  // fault source (adversary::AttackPlan's partition) wrap whatever is
  // already installed instead of silently replacing it.
  FaultInjector* fault_injector() const { return injector_; }

  // Tears down the a<->b connection and fails every in-flight request
  // between the pair, in both directions, with RpcStatus::kReset. The
  // reset callbacks fire asynchronously (a reset is observed on the next
  // read, not instantaneously).
  void reset_connection(NodeId a, NodeId b);

  // Establishes a connection (dial + negotiate). Invokes cb exactly once:
  // immediately if already connected, after the handshake on success, or
  // after the transport's dial timeout on failure.
  void connect(NodeId from, NodeId to, DialCallback cb);
  void disconnect(NodeId from, NodeId to);
  bool connected(NodeId a, NodeId b) const;
  const std::vector<NodeId>& connections_of(NodeId id) const {
    return connections_[id];
  }

  // One-shot datagram over an established connection ("fire and forget").
  // Silently dropped if the connection is gone or the receiver is offline.
  void send(NodeId from, NodeId to, MessagePtr message, std::size_t bytes);

  // Request/response over an established connection. The callback fires
  // exactly once unless the requester goes offline first.
  void request(NodeId from, NodeId to, MessagePtr request,
               std::size_t request_bytes, Duration timeout,
               ResponseCallback cb);

  // Sampled one-way latency between two nodes (for tests / diagnostics).
  Duration sample_latency(NodeId a, NodeId b);

  // Transfer time of `bytes` between the pair, excluding latency and
  // queueing.
  Duration transfer_time(NodeId from, NodeId to, std::size_t bytes) const;

  // Transfer delay including sender-uplink queueing: concurrent
  // transfers from one node serialize on its uplink (so fetching many
  // blocks from a single provider is bottlenecked by that provider,
  // while multi-path sessions aggregate bandwidth across providers).
  Duration queued_transfer_delay(NodeId from, NodeId to, std::size_t bytes);

  Simulator& simulator() { return simulator_; }
  Rng& rng() { return rng_; }

  // --- Sharded execution ---------------------------------------------------
  //
  // enable_sharding(n) swaps the fabric's scheduler for the sharded
  // parallel engine (src/sim/parallel): peers map to shards by id
  // (node % n), and the lookahead window is derived from the latency
  // matrix floor. Must be called before any event is scheduled. With a
  // zero-latency matrix there is no safe lookahead, so the engine falls
  // back to a single shard. n == 0 keeps the legacy sequential
  // Simulator (the default; simulator() keeps driving the run).
  //
  // Once sharded, the fabric schedules through the engine, so drivers
  // must use the now()/run()/run_until()/schedule_* dispatchers below
  // instead of talking to simulator() directly.
  void enable_sharding(std::size_t shards);
  bool sharded() const { return engine_ != nullptr; }
  std::size_t shard_count() const {
    return engine_ ? engine_->shard_count() : 1;
  }
  std::size_t shard_of(NodeId id) const {
    return engine_ ? id % engine_->shard_count() : 0;
  }
  parallel::ShardEngine* engine() { return engine_.get(); }

  // Scheduler dispatchers: route to the sharded engine when enabled,
  // the sequential Simulator otherwise. The *_for variants attribute the
  // event to `node` (its shard's queue and its id in the merge order);
  // the node-less variants run on the currently executing shard under a
  // virtual origin that sorts after all real nodes.
  Time now() const { return engine_ ? engine_->now() : simulator_.now(); }
  std::uint64_t run() {
    return engine_ ? engine_->run() : simulator_.run();
  }
  std::uint64_t run_until(Time deadline) {
    return engine_ ? engine_->run_until(deadline)
                   : simulator_.run_until(deadline);
  }
  std::size_t foreground_pending() const {
    return engine_ ? engine_->foreground_pending()
                   : simulator_.foreground_pending();
  }
  std::size_t pending_events() const {
    return engine_ ? engine_->pending_events() : simulator_.pending_events();
  }
  Timer schedule_for(NodeId node, Duration delay, std::function<void()> fn);
  Timer schedule_daemon_for(NodeId node, Duration delay,
                            std::function<void()> fn);
  Timer schedule_daemon_at_for(NodeId node, Time when,
                               std::function<void()> fn);
  Timer schedule_at(Time when, std::function<void()> fn);
  Timer schedule_after(Duration delay, std::function<void()> fn);
  Timer schedule_daemon_at(Time when, std::function<void()> fn);
  Timer schedule_daemon_after(Duration delay, std::function<void()> fn);

  // Per-simulation observability substrate. The fabric instruments its own
  // dials/RPCs here, and every component holding a Network reference uses
  // the same registry for its phase spans and counters.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  // Counters for tests and benches.
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t dials_attempted() const { return dials_attempted_; }
  std::uint64_t dials_failed() const { return dials_failed_; }

  // In-flight request/response exchanges. Zero once the simulator has
  // drained (every request either answered, timed out, or reset) — the
  // fuzz harness checks this to detect leaked pending entries.
  std::size_t pending_request_count() const { return pending_.size(); }

 private:
  struct PendingRequest {
    NodeId from;
    NodeId to;
    std::uint64_t from_epoch;
    ResponseCallback cb;
    Timer timeout_timer;
    metrics::SpanId span = 0;  // net.rpc span, ended on every outcome
  };

  bool callback_alive(NodeId id, std::uint64_t epoch) const {
    return online_[id] != 0 && epochs_[id] == epoch;
  }

  void link(NodeId a, NodeId b);
  void unlink(NodeId a, NodeId b);

  Duration one_way(NodeId a, NodeId b);

  // Fire-and-forget foreground event attributed to `origin`, executing
  // on `dest`'s shard. The fabric's hot path: under the engine this
  // costs a slab slot, not a shared_ptr control block + std::function
  // heap closure.
  template <typename F>
  void post_for(NodeId origin, NodeId dest, Duration delay, F&& fn) {
    if (engine_) {
      engine_->post(origin, dest % engine_->shard_count(),
                    engine_->now() + delay, /*daemon=*/false,
                    std::forward<F>(fn));
    } else {
      simulator_.schedule_after(delay, std::forward<F>(fn));
    }
  }

  // Lazily cached counter handle: first use creates the map entry (so
  // exports look exactly as before), later uses skip the by-name lookup
  // that used to dominate the per-message metrics cost.
  metrics::Counter& hot_counter(metrics::Counter*& slot, const char* name) {
    if (slot == nullptr) slot = &metrics_.counter(name);
    return *slot;
  }

  Simulator& simulator_;
  const LatencyModel& latency_;
  Rng rng_;
  metrics::Registry metrics_;
  FaultInjector* injector_ = nullptr;
  std::unique_ptr<parallel::ShardEngine> engine_;

  // Hot-path counter handles (see hot_counter()).
  metrics::Counter* c_messages_sent_ = nullptr;
  metrics::Counter* c_bytes_sent_ = nullptr;
  metrics::Counter* c_tx_messages_ = nullptr;
  metrics::Counter* c_tx_bytes_ = nullptr;
  metrics::Counter* c_rx_messages_ = nullptr;
  metrics::Counter* c_rx_bytes_ = nullptr;
  metrics::Counter* c_rpcs_sent_ = nullptr;
  metrics::Counter* c_rpc_timeouts_ = nullptr;
  metrics::Counter* c_rpc_resets_ = nullptr;
  metrics::Counter* c_rpcs_unreachable_ = nullptr;
  metrics::Counter* c_dials_attempted_ = nullptr;
  metrics::Counter* c_dials_failed_ = nullptr;

  // Per-node state, structure-of-arrays, indexed by NodeId. Epochs
  // increment when a node goes offline (or is removed); callbacks
  // captured under an older epoch are muted — including callbacks left
  // over from a previous occupant of a recycled id.
  std::vector<NodeConfig> configs_;
  std::vector<std::uint8_t> online_;
  std::vector<std::uint64_t> epochs_;
  std::vector<RequestHandler> request_handlers_;
  std::vector<MessageHandler> message_handlers_;
  std::vector<std::vector<NodeId>> connections_;  // insertion-ordered
  std::vector<Time> uplink_free_at_;  // per-node uplink availability
  std::vector<std::uint8_t> in_use_;
  std::vector<NodeId> free_ids_;
  std::size_t live_nodes_ = 0;

  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t dials_attempted_ = 0;
  std::uint64_t dials_failed_ = 0;
};

}  // namespace ipfs::sim
