// Message-level network fabric for the simulator.
//
// Models the parts of the real Internet the paper's measurements depend on:
//   - per-region one-way latencies with jitter (a global RTT matrix),
//   - bandwidth-limited transfers (publication is size-independent, content
//     fetch is not),
//   - dial + security/mux negotiation handshakes per transport, with the
//     transport-specific timeouts that produce the 5 s and 45 s spikes in
//     paper Figure 9c,
//   - NAT'ed (undialable) peers and unresponsive peers,
//   - connection state (Bitswap broadcasts to *connected* peers only).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipfs::sim {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

enum class Transport { kTcp, kQuic, kWebSocket };

// Dial timeout observed by a peer trying to reach an unresponsive address
// (paper Section 6.1: 5 s TCP/QUIC dial timeouts, 45 s WebSocket handshake).
Duration dial_timeout(Transport transport);

// Dials to a churned-out peer usually fail fast (the host answers with a
// TCP RST or an ICMP unreachable); only a minority hang until the
// transport timeout. NAT'ed peers always hang: their packets vanish.
constexpr double kFastFailProbability = 0.7;

// Round trips needed to establish a secured, multiplexed connection.
int handshake_round_trips(Transport transport);

struct NodeConfig {
  int region = 0;
  bool dialable = true;      // false models NAT'ed peers (DHT clients)
  bool responsive = true;    // false models stalled peers that never reply
  Transport transport = Transport::kTcp;
  double upload_bytes_per_sec = 4.0 * 1024 * 1024;
  double download_bytes_per_sec = 12.0 * 1024 * 1024;
  // Probability that a dial to this (online, dialable) peer succeeds.
  // Below 1.0 models flaky reachability: overloaded hosts, half-broken
  // NAT setups, relay addresses. Failed dials hang until the transport
  // timeout — the mechanism behind the 5 s / 45 s spikes in Figure 9c.
  double dial_success_prob = 1.0;
  // Relay support for NAT'ed peers (DCUtR, the hole-punching upgrade the
  // paper notes as under test). kInvalidNode = no relay: dials to an
  // undialable peer simply time out. With a relay, dials reach the peer
  // through it (both legs' latency), then attempt a hole-punched direct
  // upgrade that succeeds with dcutr_success_prob.
  std::uint32_t relay = 0xffffffffu;  // NodeId of the relay, if any
  double dcutr_success_prob = 0.7;
};

// Base class for all protocol messages exchanged over the fabric.
class Message {
 public:
  virtual ~Message() = default;
};

using MessagePtr = std::shared_ptr<const Message>;

enum class RpcStatus { kOk, kTimeout, kUnreachable, kReset };

using ResponseCallback = std::function<void(RpcStatus, MessagePtr)>;
// respond() may be invoked at most once, synchronously or later.
using RequestHandler = std::function<void(
    NodeId from, const MessagePtr& request,
    std::function<void(MessagePtr, std::size_t bytes)> respond)>;
using MessageHandler =
    std::function<void(NodeId from, const MessagePtr& message)>;
using DialCallback = std::function<void(bool ok, Duration elapsed)>;

// One-way latency model over a region matrix (milliseconds), with
// multiplicative jitter per sample.
class LatencyModel {
 public:
  LatencyModel(std::vector<std::vector<double>> one_way_ms,
               double jitter_low = 0.95, double jitter_high = 1.25);

  Duration sample(int region_a, int region_b, Rng& rng) const;
  int regions() const { return static_cast<int>(matrix_.size()); }

 private:
  std::vector<std::vector<double>> matrix_;
  double jitter_low_;
  double jitter_high_;
};

// Hook interface for deterministic fault injection (see sim/faults.h for
// the seeded implementation). The fabric consults the injector at every
// decision point but never touches its own rng stream on the injector's
// behalf, so runs without an injector draw exactly the same randomness as
// before one existed.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Message-level faults on established connections (datagrams and both
  // legs of request/response). A dropped request or response surfaces to
  // the requester as RpcStatus::kTimeout.
  virtual bool drop_message(NodeId from, NodeId to) = 0;
  virtual bool duplicate_message(NodeId from, NodeId to) = 0;
  // Extra delivery delay for this message; > 0 reorders it behind later
  // traffic on the same link.
  virtual Duration reorder_delay(NodeId from, NodeId to) = 0;
  // Forces a dial from->to to fail (hangs until the transport timeout,
  // like a half-broken NAT mapping).
  virtual bool fail_dial(NodeId from, NodeId to) = 0;
  // Multiplier (>= 1.0) applied to sampled one-way latency: per-link
  // latency spikes.
  virtual double latency_factor(NodeId a, NodeId b) = 0;
};

class Network {
 public:
  Network(Simulator& simulator, const LatencyModel& latency,
          std::uint64_t seed);

  NodeId add_node(const NodeConfig& config);
  std::size_t node_count() const { return nodes_.size(); }

  const NodeConfig& config(NodeId id) const { return nodes_[id].config; }
  bool online(NodeId id) const { return nodes_[id].online; }

  // Toggles liveness. Going offline tears down all connections and mutes
  // any pending callbacks owned by the node.
  void set_online(NodeId id, bool online);
  void set_responsive(NodeId id, bool responsive);
  void set_dialable(NodeId id, bool dialable);

  void set_request_handler(NodeId id, RequestHandler handler);
  void set_message_handler(NodeId id, MessageHandler handler);

  // Installs (or removes, with nullptr) the fault injector. Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Tears down the a<->b connection and fails every in-flight request
  // between the pair, in both directions, with RpcStatus::kReset. The
  // reset callbacks fire asynchronously (a reset is observed on the next
  // read, not instantaneously).
  void reset_connection(NodeId a, NodeId b);

  // Establishes a connection (dial + negotiate). Invokes cb exactly once:
  // immediately if already connected, after the handshake on success, or
  // after the transport's dial timeout on failure.
  void connect(NodeId from, NodeId to, DialCallback cb);
  void disconnect(NodeId from, NodeId to);
  bool connected(NodeId a, NodeId b) const;
  std::vector<NodeId> connections_of(NodeId id) const;

  // One-shot datagram over an established connection ("fire and forget").
  // Silently dropped if the connection is gone or the receiver is offline.
  void send(NodeId from, NodeId to, MessagePtr message, std::size_t bytes);

  // Request/response over an established connection. The callback fires
  // exactly once unless the requester goes offline first.
  void request(NodeId from, NodeId to, MessagePtr request,
               std::size_t request_bytes, Duration timeout,
               ResponseCallback cb);

  // Sampled one-way latency between two nodes (for tests / diagnostics).
  Duration sample_latency(NodeId a, NodeId b);

  // Transfer time of `bytes` between the pair, excluding latency and
  // queueing.
  Duration transfer_time(NodeId from, NodeId to, std::size_t bytes) const;

  // Transfer delay including sender-uplink queueing: concurrent
  // transfers from one node serialize on its uplink (so fetching many
  // blocks from a single provider is bottlenecked by that provider,
  // while multi-path sessions aggregate bandwidth across providers).
  Duration queued_transfer_delay(NodeId from, NodeId to, std::size_t bytes);

  Simulator& simulator() { return simulator_; }
  Rng& rng() { return rng_; }

  // Per-simulation observability substrate. The fabric instruments its own
  // dials/RPCs here, and every component holding a Network reference uses
  // the same registry for its phase spans and counters.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  // Counters for tests and benches.
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t dials_attempted() const { return dials_attempted_; }
  std::uint64_t dials_failed() const { return dials_failed_; }

  // In-flight request/response exchanges. Zero once the simulator has
  // drained (every request either answered, timed out, or reset) — the
  // fuzz harness checks this to detect leaked pending entries.
  std::size_t pending_request_count() const { return pending_.size(); }

 private:
  struct NodeState {
    NodeConfig config;
    bool online = true;
    // Epoch increments when the node goes offline; callbacks captured under
    // an older epoch are muted.
    std::uint64_t epoch = 0;
    RequestHandler request_handler;
    MessageHandler message_handler;
    std::unordered_set<NodeId> connections;
  };

  struct PendingRequest {
    NodeId from;
    NodeId to;
    std::uint64_t from_epoch;
    ResponseCallback cb;
    Timer timeout_timer;
    metrics::SpanId span = 0;  // net.rpc span, ended on every outcome
  };

  bool callback_alive(NodeId id, std::uint64_t epoch) const {
    return nodes_[id].online && nodes_[id].epoch == epoch;
  }

  Duration one_way(NodeId a, NodeId b);

  Simulator& simulator_;
  const LatencyModel& latency_;
  Rng rng_;
  metrics::Registry metrics_;
  FaultInjector* injector_ = nullptr;
  std::vector<NodeState> nodes_;
  std::vector<Time> uplink_free_at_;  // per-node uplink availability
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t dials_attempted_ = 0;
  std::uint64_t dials_failed_ = 0;
};

}  // namespace ipfs::sim
