// Hierarchical timer wheel: the default event-queue backend for the
// discrete-event Simulator.
//
// Layout: kLevels levels of kSlotsPerLevel slots, 6 bits of the absolute
// microsecond timestamp per level (level 0 = 1 us ticks, level L covers
// 64^L us per slot). An event is filed under the highest 6-bit group in
// which its timestamp differs from the wheel cursor, so schedule and
// cancel are O(1) and each event cascades to a lower level at most
// kLevels - 1 times before firing. Per-level occupancy bitmaps let the
// cursor jump straight to the next populated slot instead of ticking
// through empty time.
//
// Two side structures keep the wheel exact rather than approximate:
//   - an overflow min-heap for events beyond the wheel horizon
//     (64^kLevels us ~ 51 simulated days), drained back into the wheel
//     as the cursor approaches them;
//   - a "front" min-heap for events scheduled before the cursor. The
//     cursor may legitimately sit ahead of the visible clock after
//     run_until() stops between events; anything scheduled into that gap
//     fires from the front heap in (when, sequence) order.
//
// Events that share a tick are sorted by sequence number when the tick's
// slot is drained, and the slot is re-checked after each drained batch,
// so execution order is exactly the (when, sequence) order a binary heap
// would produce. Determinism tests assert identical trace streams from
// both backends on seeded schedules.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"

namespace ipfs::sim {

class TimerWheel {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;
  static constexpr int kLevels = 7;
  // Events at cursor + kHorizon or beyond go to the overflow heap.
  static constexpr Time kHorizon = Time{1}
                                   << (kLevelBits * kLevels);  // ~51 days

  void insert(Event event);

  // Next live event in (when, sequence) order, or nullptr when nothing
  // but cancelled entries remain. Prunes cancelled entries it walks past
  // and may advance the internal cursor; never executes anything.
  Event* peek();

  // Removes and returns the event peek() currently points at. Must be
  // preceded by a successful peek() with no intervening mutation.
  Event pop();

  // Stored entries, including not-yet-pruned cancelled ones (matches the
  // lazy-deletion accounting of the binary-heap backend).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  enum class Source { kNone, kFront, kReady };

  void place(Event event);
  bool refill_current_tick();
  bool advance();
  static int level_for(Time diff);

  std::array<std::array<std::vector<Event>, kSlotsPerLevel>, kLevels> slots_;
  std::array<std::uint64_t, kLevels> occupied_{};
  // No stored event precedes the cursor except those in front_. The
  // cursor trails the earliest pending event, never the visible clock.
  Time cursor_ = 0;
  std::vector<Event> ready_;  // current tick's batch, sequence-sorted
  std::size_t ready_pos_ = 0;
  EventHeap front_;     // events scheduled before the cursor
  EventHeap overflow_;  // events beyond the wheel horizon
  std::size_t size_ = 0;
  Source source_ = Source::kNone;
};

}  // namespace ipfs::sim
