// Scheduled-event primitives shared by the scheduler backends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace ipfs::sim {

class Simulator;
namespace parallel {
class ShardEngine;
}

// Handle for cancelling a scheduled event.
//
// Cancellation semantics (relied on by the fault-injection harness):
//   - cancel() before the event fires guarantees the callback never runs,
//     under run(), run_until() and step() alike.
//   - cancel() after the event fired (or on a default-constructed handle)
//     is a no-op; active() is false in both cases.
//   - Cancelling a foreground event may let run() return earlier, since
//     run() only waits for live non-daemon events.
class Timer {
 public:
  Timer() = default;

  void cancel();
  bool active() const;

 private:
  friend class Simulator;
  friend class TimerWheel;
  friend class parallel::ShardEngine;
  friend struct Event;
  struct State {
    bool alive = true;
    bool daemon = false;
    // Owning scheduler's live-foreground-event count, decremented when a
    // non-daemon event is cancelled. A plain pointer (not a Simulator*)
    // so the sharded engine's per-run accounting reuses the same handle
    // type without the schedulers knowing about each other.
    std::size_t* foreground_pending = nullptr;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

// One scheduled callback. Events are totally ordered by (when, sequence);
// the sequence number gives FIFO ordering for equal timestamps. Every
// scheduler backend must execute live events in exactly this order, so a
// seeded simulation produces an identical trace on either backend.
struct Event {
  Time when = 0;
  std::uint64_t sequence = 0;
  std::function<void()> fn;
  std::shared_ptr<Timer::State> state;

  bool operator>(const Event& other) const {
    if (when != other.when) return when > other.when;
    return sequence > other.sequence;
  }
};

// Binary min-heap of events ordered by (when, sequence). Unlike
// std::priority_queue this exposes a mutable top() so entries can be
// moved out on pop without copying the closure.
class EventHeap {
 public:
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  void push(Event event) {
    events_.push_back(std::move(event));
    std::push_heap(events_.begin(), events_.end(), After{});
  }

  Event& top() { return events_.front(); }
  const Event& top() const { return events_.front(); }

  Event pop() {
    std::pop_heap(events_.begin(), events_.end(), After{});
    Event event = std::move(events_.back());
    events_.pop_back();
    return event;
  }

 private:
  struct After {
    bool operator()(const Event& a, const Event& b) const { return a > b; }
  };
  std::vector<Event> events_;
};

}  // namespace ipfs::sim
