// Unified observability substrate for the simulation: one per-simulation
// Registry of named counters, gauges and duration histograms, plus a
// structured trace-event stream (span begin/end with phase labels, node
// id, CID, and simulated timestamps).
//
// Everything the paper's evaluation tabulates — publication/retrieval
// phase breakdowns (Figs. 9-10), gateway cache-tier shares (Table 5),
// fault-sweep CDFs — is derived from this layer rather than from ad-hoc
// per-subsystem fields. The Registry is owned by sim::Network, so every
// component holding a Network reference reaches the same instance.
//
// The layer is observation-only: it never touches the simulation's rng
// streams or schedules events, so instrumented and uninstrumented runs
// execute identically (the seeded-determinism fuzz tests rely on this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace ipfs::metrics {

// Mirrors sim::NodeId / sim::kInvalidNode without pulling in the network
// layer (which sits above this one in the dependency graph).
using NodeId = std::uint32_t;
constexpr NodeId kNoNode = 0xffffffffu;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Duration histogram retaining raw samples (in seconds), so consumers can
// compute exact percentiles/CDFs with the stats helpers.
class DurationHistogram {
 public:
  void record(sim::Duration d);

  std::size_t count() const { return samples_.size(); }
  sim::Duration sum() const { return sum_; }
  const std::vector<double>& samples_seconds() const { return samples_; }

 private:
  std::vector<double> samples_;
  sim::Duration sum_ = 0;
};

enum class EventKind { kSpanBegin, kSpanEnd, kInstant };

using SpanId = std::uint64_t;

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  SpanId span = 0;    // 0 for instants
  SpanId parent = 0;  // enclosing span, 0 at top level
  std::string name;   // phase label, e.g. "retrieve.provider_walk"
  sim::Time time = 0;
  NodeId node = kNoNode;  // observing node
  NodeId peer = kNoNode;  // remote party, when the event names one
  std::string cid;        // printable CID, empty when not content-bound
  bool ok = true;         // outcome, meaningful on kSpanEnd
  std::uint64_t value = 0;         // generic payload (bytes, counts)
  sim::Duration duration = 0;      // kSpanEnd only
};

class Registry {
 public:
  // `clock` supplies simulated timestamps (normally the simulator's now).
  explicit Registry(std::function<sim::Time()> clock);

  // Named instruments, created on first use. References stay valid for
  // the registry's lifetime (node-based map storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  DurationHistogram& histogram(const std::string& name);

  // Convenience read: 0 when the counter was never touched.
  std::uint64_t counter_value(const std::string& name) const;

  // --- Tracing -------------------------------------------------------------

  // Opens a span; emits a kSpanBegin event. `parent` links phases to the
  // operation that contains them (e.g. retrieve.fetch -> retrieve.total).
  SpanId begin_span(const std::string& name, NodeId node = kNoNode,
                    std::string cid = {}, SpanId parent = 0,
                    NodeId peer = kNoNode);

  // Closes a span: emits a kSpanEnd carrying the duration and feeds the
  // duration histogram of the same name. Returns the span's duration so
  // callers can derive their timing fields from the trace layer instead
  // of keeping hand-maintained clocks. Unknown/already-ended ids are a
  // no-op returning 0 (a crashed requester may abandon spans; ending one
  // twice must stay harmless).
  sim::Duration end_span(SpanId id, bool ok = true, std::uint64_t value = 0);

  // Point event without duration. `parent` links the instant to an open
  // (or recently closed) span, so per-operation facts — e.g. which
  // routing path won a retrieval — stay attached to the operation's span
  // tree in the exported trace.
  void instant(const std::string& name, NodeId node = kNoNode,
               std::string cid = {}, std::uint64_t value = 0,
               NodeId peer = kNoNode, SpanId parent = 0);

  // --- Introspection -------------------------------------------------------

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t open_span_count() const { return open_spans_.size(); }

  // The event stream is bounded; once `capacity` events are recorded,
  // further events are counted in trace_dropped() instead of stored.
  // Instruments (counters/histograms) are unaffected by the cap.
  void set_trace_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t trace_dropped() const { return dropped_; }

  // Restricts the recorded event stream to names accepted by `filter`
  // (nullptr records everything again). Only the stream is gated:
  // instruments and span timing — including end_span's return value and
  // the duration histograms — still see every operation. Benches install
  // a phase-name filter so a thousand-peer world's ambient DHT traffic
  // does not evict the spans they analyze. Filtered events are not
  // counted in trace_dropped().
  void set_trace_filter(std::function<bool(const std::string&)> filter) {
    filter_ = std::move(filter);
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, DurationHistogram>& histograms() const {
    return histograms_;
  }

 private:
  struct OpenSpan {
    std::string name;
    SpanId parent = 0;
    sim::Time begin = 0;
    NodeId node = kNoNode;
    NodeId peer = kNoNode;
    std::string cid;
  };

  void push_event(TraceEvent event);

  std::function<sim::Time()> clock_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, DurationHistogram> histograms_;
  std::unordered_map<SpanId, OpenSpan> open_spans_;
  std::vector<TraceEvent> events_;
  std::function<bool(const std::string&)> filter_;
  // ~260k events bounds the stream's memory footprint even for benches
  // that run thousand-peer worlds for a simulated day without filtering.
  std::size_t capacity_ = 1u << 18;
  std::size_t dropped_ = 0;
  SpanId next_span_ = 1;
};

}  // namespace ipfs::metrics
