#include "metrics/metrics.h"

#include <utility>

namespace ipfs::metrics {

void DurationHistogram::record(sim::Duration d) {
  samples_.push_back(sim::to_seconds(d));
  sum_ += d;
}

Registry::Registry(std::function<sim::Time()> clock)
    : clock_(std::move(clock)) {}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

DurationHistogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Registry::push_event(TraceEvent event) {
  if (filter_ && !filter_(event.name)) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

SpanId Registry::begin_span(const std::string& name, NodeId node,
                            std::string cid, SpanId parent, NodeId peer) {
  const SpanId id = next_span_++;
  const sim::Time now = clock_();
  open_spans_.emplace(id, OpenSpan{name, parent, now, node, peer, cid});

  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.span = id;
  event.parent = parent;
  event.name = name;
  event.time = now;
  event.node = node;
  event.peer = peer;
  event.cid = std::move(cid);
  push_event(std::move(event));
  return id;
}

sim::Duration Registry::end_span(SpanId id, bool ok, std::uint64_t value) {
  const auto it = open_spans_.find(id);
  if (it == open_spans_.end()) return 0;
  OpenSpan span = std::move(it->second);
  open_spans_.erase(it);

  const sim::Time now = clock_();
  const sim::Duration duration = now - span.begin;
  histogram(span.name).record(duration);

  TraceEvent event;
  event.kind = EventKind::kSpanEnd;
  event.span = id;
  event.parent = span.parent;
  event.name = std::move(span.name);
  event.time = now;
  event.node = span.node;
  event.peer = span.peer;
  event.cid = std::move(span.cid);
  event.ok = ok;
  event.value = value;
  event.duration = duration;
  push_event(std::move(event));
  return duration;
}

void Registry::instant(const std::string& name, NodeId node, std::string cid,
                       std::uint64_t value, NodeId peer, SpanId parent) {
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.parent = parent;
  event.name = name;
  event.time = clock_();
  event.node = node;
  event.peer = peer;
  event.cid = std::move(cid);
  event.value = value;
  push_event(std::move(event));
}

}  // namespace ipfs::metrics
