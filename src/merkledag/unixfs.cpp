#include "merkledag/unixfs.h"

#include <algorithm>
#include <map>

#include "multiformats/varint.h"

namespace ipfs::merkledag {
namespace {

// First byte of DagNode::data distinguishing node flavours. File interior
// nodes keep empty data; leaves are raw blocks, so the marker is
// unambiguous.
constexpr std::uint8_t kDirectoryMarker = 0xD1;

bool valid_name(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos;
}

}  // namespace

std::optional<Cid> make_directory(BlockStore& store,
                                  std::vector<DirectoryEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const DirectoryEntry& a, const DirectoryEntry& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!valid_name(entries[i].name)) return std::nullopt;
    if (i > 0 && entries[i].name == entries[i - 1].name) return std::nullopt;
  }

  DagNode node;
  node.data.push_back(kDirectoryMarker);
  multiformats::varint_encode(entries.size(), node.data);
  for (const auto& entry : entries) {
    multiformats::varint_encode(entry.name.size(), node.data);
    node.data.insert(node.data.end(), entry.name.begin(), entry.name.end());
    node.links.push_back(DagLink{entry.cid, entry.size});
  }

  blockstore::Block block = blockstore::Block::from_data(
      multiformats::Multicodec::kDagPb, node.encode());
  const Cid cid = block.cid;
  store.put(std::move(block));
  return cid;
}

std::optional<std::vector<DirectoryEntry>> read_directory(
    const BlockStore& store, const Cid& cid) {
  if (cid.content_codec() != multiformats::Multicodec::kDagPb)
    return std::nullopt;
  const auto block = store.get(cid);
  if (!block) return std::nullopt;
  const auto node = DagNode::decode(*block);
  if (!node || node->data.empty() || node->data[0] != kDirectoryMarker)
    return std::nullopt;

  std::span<const std::uint8_t> data(node->data);
  data = data.subspan(1);
  const auto count = multiformats::varint_decode(data);
  if (!count || count->value != node->links.size()) return std::nullopt;
  data = data.subspan(count->consumed);

  std::vector<DirectoryEntry> entries;
  entries.reserve(node->links.size());
  for (std::size_t i = 0; i < node->links.size(); ++i) {
    const auto name_len = multiformats::varint_decode(data);
    if (!name_len) return std::nullopt;
    data = data.subspan(name_len->consumed);
    if (data.size() < name_len->value) return std::nullopt;
    entries.push_back(DirectoryEntry{
        std::string(data.begin(), data.begin() + name_len->value),
        node->links[i].cid, node->links[i].content_size});
    data = data.subspan(name_len->value);
  }
  return entries;
}

bool is_directory(const BlockStore& store, const Cid& cid) {
  return read_directory(store, cid).has_value();
}

std::optional<Cid> resolve_path(const BlockStore& store, const Cid& root,
                                std::string_view path) {
  Cid current = root;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    if (pos >= path.size()) break;
    const std::size_t end = std::min(path.find('/', pos), path.size());
    const std::string_view segment = path.substr(pos, end - pos);
    pos = end;

    const auto entries = read_directory(store, current);
    if (!entries) return std::nullopt;  // path descends into a file
    const auto it = std::find_if(entries->begin(), entries->end(),
                                 [&](const DirectoryEntry& entry) {
                                   return entry.name == segment;
                                 });
    if (it == entries->end()) return std::nullopt;
    current = it->cid;
  }
  return current;
}

std::optional<Cid> import_tree(BlockStore& store,
                               const std::vector<TreeFile>& files) {
  // Group files by their top-level segment; recurse per subdirectory.
  std::vector<DirectoryEntry> entries;
  std::map<std::string, std::vector<TreeFile>> subdirs;

  for (const auto& file : files) {
    std::string_view path = file.path;
    while (!path.empty() && path.front() == '/') path.remove_prefix(1);
    if (path.empty()) return std::nullopt;
    const std::size_t slash = path.find('/');
    if (slash == std::string_view::npos) {
      const auto import = import_bytes(store, file.content);
      entries.push_back(DirectoryEntry{std::string(path), import.root,
                                       import.content_bytes});
    } else {
      TreeFile nested;
      nested.path = std::string(path.substr(slash + 1));
      nested.content = file.content;
      subdirs[std::string(path.substr(0, slash))].push_back(
          std::move(nested));
    }
  }

  for (const auto& [name, nested_files] : subdirs) {
    const auto subdir = import_tree(store, nested_files);
    if (!subdir) return std::nullopt;
    std::uint64_t size = 0;
    if (const auto sub_entries = read_directory(store, *subdir)) {
      for (const auto& entry : *sub_entries) size += entry.size;
    }
    entries.push_back(DirectoryEntry{name, *subdir, size});
  }

  return make_directory(store, std::move(entries));
}

}  // namespace ipfs::merkledag
