// Merkle-DAG layer (paper Section 2.1): content is split into chunks
// (default 256 kB), each chunk gets its own CID, and a balanced DAG of
// dag-pb-like nodes links them, with the root CID naming the whole object.
// Identical chunks deduplicate through the content-addressed block store.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "blockstore/blockstore.h"
#include "multiformats/cid.h"

namespace ipfs::merkledag {

using blockstore::Block;
using blockstore::BlockStore;
using multiformats::Cid;

// Default chunk size used when content is added to IPFS (Section 2.1).
constexpr std::size_t kDefaultChunkSize = 256 * 1024;

// Maximum children per internal DAG node (the go-ipfs balanced builder
// default of 174 links).
constexpr std::size_t kMaxLinkDegree = 174;

struct DagLink {
  Cid cid;
  std::uint64_t content_size = 0;  // cumulative payload below this link
};

// A node of the DAG: either a leaf (raw chunk, no links) or an internal
// node (links only). Encoded with a compact deterministic binary format
// standing in for dag-pb.
struct DagNode {
  std::vector<DagLink> links;
  std::vector<std::uint8_t> data;

  std::vector<std::uint8_t> encode() const;
  static std::optional<DagNode> decode(std::span<const std::uint8_t> bytes);

  std::uint64_t total_content_size() const;
};

struct ImportResult {
  Cid root;
  std::size_t chunk_count = 0;
  std::size_t new_blocks = 0;          // blocks actually written
  std::size_t deduplicated_blocks = 0; // chunks that already existed
  std::uint64_t content_bytes = 0;
};

// Splits `data` into fixed-size chunks. Exposed separately for tests.
std::vector<std::span<const std::uint8_t>> chunk(
    std::span<const std::uint8_t> data, std::size_t chunk_size);

// Imports content into `store`, building the Merkle DAG and returning its
// root CID. Single-chunk content becomes one raw block (raw-leaves style).
ImportResult import_bytes(BlockStore& store, std::span<const std::uint8_t> data,
                          std::size_t chunk_size = kDefaultChunkSize);

// Reassembles the full content below `root`, or nullopt if any block is
// missing or fails verification.
std::optional<std::vector<std::uint8_t>> cat(const BlockStore& store,
                                             const Cid& root);

// All block CIDs reachable from `root` (root first, depth-first), or
// nullopt if the DAG is incomplete in `store`.
std::optional<std::vector<Cid>> enumerate(const BlockStore& store,
                                          const Cid& root);

}  // namespace ipfs::merkledag
