// Merkle-DAG layer (paper Section 2.1): content is split into chunks
// (default 256 kB), each chunk gets its own CID, and a balanced DAG of
// dag-pb-like nodes links them, with the root CID naming the whole object.
// Identical chunks deduplicate through the content-addressed block store.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "blockstore/blockstore.h"
#include "multiformats/cid.h"

namespace ipfs::merkledag {

using blockstore::Block;
using blockstore::BlockStore;
using multiformats::Cid;

// Default chunk size used when content is added to IPFS (Section 2.1).
constexpr std::size_t kDefaultChunkSize = 256 * 1024;

// Maximum children per internal DAG node (the go-ipfs balanced builder
// default of 174 links).
constexpr std::size_t kMaxLinkDegree = 174;

struct DagLink {
  Cid cid;
  std::uint64_t content_size = 0;  // cumulative payload below this link
};

// A node of the DAG: either a leaf (raw chunk, no links) or an internal
// node (links only). Encoded with a compact deterministic binary format
// standing in for dag-pb.
struct DagNode {
  std::vector<DagLink> links;
  std::vector<std::uint8_t> data;

  std::vector<std::uint8_t> encode() const;
  static std::optional<DagNode> decode(std::span<const std::uint8_t> bytes);

  std::uint64_t total_content_size() const;
};

struct ImportResult {
  Cid root;
  std::size_t chunk_count = 0;
  std::size_t new_blocks = 0;          // blocks actually written
  std::size_t deduplicated_blocks = 0; // chunks that already existed
  std::uint64_t content_bytes = 0;
};

// Splits `data` into fixed-size chunks. Exposed separately for tests.
std::vector<std::span<const std::uint8_t>> chunk(
    std::span<const std::uint8_t> data, std::size_t chunk_size);

// Incremental DAG builder: feed bytes in arbitrary-size pieces via
// write(), close with finish(). Blocks stream into the store as soon as
// a chunk or a full 174-link level fills, so a multi-GB import holds at
// most one chunk plus O(log n) levels of pending links in memory — the
// whole object is never materialized.
//
// The resulting DAG (and root CID) is byte-identical to import_bytes on
// the concatenated input: chunk boundaries are positional and the
// balanced builder groups consecutive links, so cascading eagerly
// produces exactly the batch grouping.
class StreamingImporter {
 public:
  explicit StreamingImporter(BlockStore& store,
                             std::size_t chunk_size = kDefaultChunkSize);

  void write(std::span<const std::uint8_t> data);

  // Flushes the partial tail chunk and collapses the pending levels into
  // the root. Call exactly once; write() is invalid afterwards.
  ImportResult finish();

 private:
  void emit_leaf(std::span<const std::uint8_t> piece);
  void push_link(std::size_t level, DagLink link);
  // Builds one internal node from the pending links of `level`.
  void collapse_level(std::size_t level);

  BlockStore& store_;
  std::size_t chunk_size_;
  std::vector<std::uint8_t> buffer_;  // partial chunk, < chunk_size_
  std::vector<std::vector<DagLink>> levels_;  // [0] = leaves, ascending
  ImportResult result_;
  bool finished_ = false;
};

// Imports content into `store`, building the Merkle DAG and returning its
// root CID. Single-chunk content becomes one raw block (raw-leaves style).
// One-shot convenience over StreamingImporter.
ImportResult import_bytes(BlockStore& store, std::span<const std::uint8_t> data,
                          std::size_t chunk_size = kDefaultChunkSize);

// Reassembles the full content below `root`, or nullopt if any block is
// missing or fails verification.
std::optional<std::vector<std::uint8_t>> cat(const BlockStore& store,
                                             const Cid& root);

// All block CIDs reachable from `root` (root first, depth-first), or
// nullopt if the DAG is incomplete in `store`.
std::optional<std::vector<Cid>> enumerate(const BlockStore& store,
                                          const Cid& root);

}  // namespace ipfs::merkledag
