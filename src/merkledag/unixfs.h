// UnixFS-style directories: DAG nodes whose links carry names, so whole
// file trees share one root CID and gateway URLs can address
// /ipfs/{CID}/path/to/file.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "merkledag/merkledag.h"

namespace ipfs::merkledag {

struct DirectoryEntry {
  std::string name;
  Cid cid;
  std::uint64_t size = 0;  // cumulative content size below the entry

  bool operator==(const DirectoryEntry&) const = default;
};

// Builds a directory node over `entries` (sorted by name for a canonical
// CID) and stores it. Entry names must be non-empty, unique, and free of
// '/'; returns nullopt otherwise.
std::optional<Cid> make_directory(BlockStore& store,
                                  std::vector<DirectoryEntry> entries);

// Reads a directory node; nullopt if `cid` is missing or not a directory.
std::optional<std::vector<DirectoryEntry>> read_directory(
    const BlockStore& store, const Cid& cid);

bool is_directory(const BlockStore& store, const Cid& cid);

// Resolves a slash-separated path ("a/b/c.txt", leading/trailing slashes
// ignored) below `root`. An empty path resolves to `root` itself.
std::optional<Cid> resolve_path(const BlockStore& store, const Cid& root,
                                std::string_view path);

// Convenience: import a whole file tree. Each input file becomes a
// chunked file DAG; directories are built bottom-up from the paths.
struct TreeFile {
  std::string path;  // "docs/readme.md"
  std::vector<std::uint8_t> content;
};

std::optional<Cid> import_tree(BlockStore& store,
                               const std::vector<TreeFile>& files);

}  // namespace ipfs::merkledag
