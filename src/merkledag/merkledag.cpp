#include "merkledag/merkledag.h"

#include "multiformats/varint.h"

namespace ipfs::merkledag {

using multiformats::Multicodec;
using multiformats::varint_decode;
using multiformats::varint_encode;

std::vector<std::uint8_t> DagNode::encode() const {
  std::vector<std::uint8_t> out;
  varint_encode(links.size(), out);
  for (const auto& link : links) {
    const auto cid_bytes = link.cid.encode();
    varint_encode(cid_bytes.size(), out);
    out.insert(out.end(), cid_bytes.begin(), cid_bytes.end());
    varint_encode(link.content_size, out);
  }
  varint_encode(data.size(), out);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<DagNode> DagNode::decode(std::span<const std::uint8_t> bytes) {
  DagNode node;
  const auto link_count = varint_decode(bytes);
  if (!link_count) return std::nullopt;
  bytes = bytes.subspan(link_count->consumed);

  for (std::uint64_t i = 0; i < link_count->value; ++i) {
    const auto cid_len = varint_decode(bytes);
    if (!cid_len) return std::nullopt;
    bytes = bytes.subspan(cid_len->consumed);
    if (bytes.size() < cid_len->value) return std::nullopt;
    auto cid = Cid::decode(bytes.subspan(0, cid_len->value));
    if (!cid) return std::nullopt;
    bytes = bytes.subspan(cid_len->value);
    const auto size = varint_decode(bytes);
    if (!size) return std::nullopt;
    bytes = bytes.subspan(size->consumed);
    node.links.push_back(DagLink{std::move(*cid), size->value});
  }

  const auto data_len = varint_decode(bytes);
  if (!data_len) return std::nullopt;
  bytes = bytes.subspan(data_len->consumed);
  if (bytes.size() != data_len->value) return std::nullopt;
  node.data.assign(bytes.begin(), bytes.end());
  return node;
}

std::uint64_t DagNode::total_content_size() const {
  std::uint64_t total = data.size();
  for (const auto& link : links) total += link.content_size;
  return total;
}

std::vector<std::span<const std::uint8_t>> chunk(
    std::span<const std::uint8_t> data, std::size_t chunk_size) {
  std::vector<std::span<const std::uint8_t>> chunks;
  if (data.empty()) {
    chunks.push_back(data);
    return chunks;
  }
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size)
    chunks.push_back(data.subspan(offset, std::min(chunk_size,
                                                   data.size() - offset)));
  return chunks;
}

namespace {

// Stores a block; counts whether it was new or deduplicated.
void store_block(BlockStore& store, Block block, ImportResult& result) {
  switch (store.put(std::move(block))) {
    case blockstore::PutStatus::kStored:
      ++result.new_blocks;
      break;
    case blockstore::PutStatus::kAlreadyPresent:
      ++result.deduplicated_blocks;
      break;
    case blockstore::PutStatus::kCidMismatch:
      // Impossible: we derived the CID from the data ourselves.
      break;
  }
}

}  // namespace

ImportResult import_bytes(BlockStore& store,
                          std::span<const std::uint8_t> data,
                          std::size_t chunk_size) {
  ImportResult result;
  result.content_bytes = data.size();

  const auto chunks = chunk(data, chunk_size);
  result.chunk_count = chunks.size();

  // Leaf level: each chunk is a raw block.
  std::vector<DagLink> level;
  level.reserve(chunks.size());
  for (const auto& piece : chunks) {
    Block block = Block::from_data(Multicodec::kRaw, piece);
    level.push_back(DagLink{block.cid, piece.size()});
    store_block(store, std::move(block), result);
  }

  // Single chunk: the raw block itself is the object (raw-leaves style).
  if (level.size() == 1) {
    result.root = level[0].cid;
    return result;
  }

  // Build the balanced tree bottom-up, kMaxLinkDegree links per node.
  while (level.size() > 1) {
    std::vector<DagLink> parents;
    parents.reserve((level.size() + kMaxLinkDegree - 1) / kMaxLinkDegree);
    for (std::size_t i = 0; i < level.size(); i += kMaxLinkDegree) {
      DagNode node;
      const std::size_t end = std::min(i + kMaxLinkDegree, level.size());
      node.links.assign(level.begin() + i, level.begin() + end);
      const std::uint64_t subtree_size = node.total_content_size();
      Block block = Block::from_data(Multicodec::kDagPb, node.encode());
      parents.push_back(DagLink{block.cid, subtree_size});
      store_block(store, std::move(block), result);
    }
    level = std::move(parents);
  }

  result.root = level[0].cid;
  return result;
}

namespace {

bool cat_recursive(const BlockStore& store, const Cid& cid,
                   std::vector<std::uint8_t>& out) {
  const auto block = store.get(cid);
  if (!block) return false;
  if (cid.content_codec() == Multicodec::kRaw) {
    out.insert(out.end(), block->data.begin(), block->data.end());
    return true;
  }
  const auto node = DagNode::decode(block->data);
  if (!node) return false;
  out.insert(out.end(), node->data.begin(), node->data.end());
  for (const auto& link : node->links)
    if (!cat_recursive(store, link.cid, out)) return false;
  return true;
}

bool enumerate_recursive(const BlockStore& store, const Cid& cid,
                         std::vector<Cid>& out) {
  const auto block = store.get(cid);
  if (!block) return false;
  out.push_back(cid);
  if (cid.content_codec() == Multicodec::kRaw) return true;
  const auto node = DagNode::decode(block->data);
  if (!node) return false;
  for (const auto& link : node->links)
    if (!enumerate_recursive(store, link.cid, out)) return false;
  return true;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> cat(const BlockStore& store,
                                             const Cid& root) {
  std::vector<std::uint8_t> out;
  if (!cat_recursive(store, root, out)) return std::nullopt;
  return out;
}

std::optional<std::vector<Cid>> enumerate(const BlockStore& store,
                                          const Cid& root) {
  std::vector<Cid> out;
  if (!enumerate_recursive(store, root, out)) return std::nullopt;
  return out;
}

}  // namespace ipfs::merkledag
