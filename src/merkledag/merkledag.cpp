#include "merkledag/merkledag.h"

#include "multiformats/varint.h"

namespace ipfs::merkledag {

using multiformats::Multicodec;
using multiformats::varint_decode;
using multiformats::varint_encode;

std::vector<std::uint8_t> DagNode::encode() const {
  std::vector<std::uint8_t> out;
  varint_encode(links.size(), out);
  for (const auto& link : links) {
    const auto cid_bytes = link.cid.encode();
    varint_encode(cid_bytes.size(), out);
    out.insert(out.end(), cid_bytes.begin(), cid_bytes.end());
    varint_encode(link.content_size, out);
  }
  varint_encode(data.size(), out);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<DagNode> DagNode::decode(std::span<const std::uint8_t> bytes) {
  DagNode node;
  const auto link_count = varint_decode(bytes);
  if (!link_count) return std::nullopt;
  bytes = bytes.subspan(link_count->consumed);

  for (std::uint64_t i = 0; i < link_count->value; ++i) {
    const auto cid_len = varint_decode(bytes);
    if (!cid_len) return std::nullopt;
    bytes = bytes.subspan(cid_len->consumed);
    if (bytes.size() < cid_len->value) return std::nullopt;
    auto cid = Cid::decode(bytes.subspan(0, cid_len->value));
    if (!cid) return std::nullopt;
    bytes = bytes.subspan(cid_len->value);
    const auto size = varint_decode(bytes);
    if (!size) return std::nullopt;
    bytes = bytes.subspan(size->consumed);
    node.links.push_back(DagLink{std::move(*cid), size->value});
  }

  const auto data_len = varint_decode(bytes);
  if (!data_len) return std::nullopt;
  bytes = bytes.subspan(data_len->consumed);
  if (bytes.size() != data_len->value) return std::nullopt;
  node.data.assign(bytes.begin(), bytes.end());
  return node;
}

std::uint64_t DagNode::total_content_size() const {
  std::uint64_t total = data.size();
  for (const auto& link : links) total += link.content_size;
  return total;
}

std::vector<std::span<const std::uint8_t>> chunk(
    std::span<const std::uint8_t> data, std::size_t chunk_size) {
  std::vector<std::span<const std::uint8_t>> chunks;
  if (data.empty()) {
    chunks.push_back(data);
    return chunks;
  }
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size)
    chunks.push_back(data.subspan(offset, std::min(chunk_size,
                                                   data.size() - offset)));
  return chunks;
}

namespace {

// Stores a block; counts whether it was new or deduplicated.
void store_block(BlockStore& store, Block block, ImportResult& result) {
  switch (store.put(std::move(block))) {
    case blockstore::PutStatus::kStored:
      ++result.new_blocks;
      break;
    case blockstore::PutStatus::kAlreadyPresent:
      ++result.deduplicated_blocks;
      break;
    case blockstore::PutStatus::kCidMismatch:
      // Impossible: we derived the CID from the data ourselves.
      break;
  }
}

}  // namespace

StreamingImporter::StreamingImporter(BlockStore& store,
                                     std::size_t chunk_size)
    : store_(store), chunk_size_(chunk_size) {}

void StreamingImporter::write(std::span<const std::uint8_t> data) {
  while (!data.empty()) {
    // Fast path: with no partial chunk buffered, full chunks are emitted
    // straight from the caller's span — no copy into buffer_.
    if (buffer_.empty() && data.size() >= chunk_size_) {
      emit_leaf(data.first(chunk_size_));
      data = data.subspan(chunk_size_);
      continue;
    }
    const std::size_t take =
        std::min(chunk_size_ - buffer_.size(), data.size());
    buffer_.insert(buffer_.end(), data.begin(), data.begin() + take);
    data = data.subspan(take);
    if (buffer_.size() == chunk_size_) {
      emit_leaf(buffer_);
      buffer_.clear();
    }
  }
}

void StreamingImporter::emit_leaf(std::span<const std::uint8_t> piece) {
  result_.content_bytes += piece.size();
  ++result_.chunk_count;
  Block block = Block::from_data(Multicodec::kRaw, piece);
  const DagLink link{block.cid, piece.size()};
  store_block(store_, std::move(block), result_);
  push_link(0, link);
}

void StreamingImporter::push_link(std::size_t level, DagLink link) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  levels_[level].push_back(std::move(link));
  // Eager cascade at exactly kMaxLinkDegree links reproduces the batch
  // builder's consecutive grouping, level by level.
  if (levels_[level].size() == kMaxLinkDegree) collapse_level(level);
}

void StreamingImporter::collapse_level(std::size_t level) {
  DagNode node;
  node.links = std::move(levels_[level]);
  levels_[level].clear();
  const std::uint64_t subtree_size = node.total_content_size();
  Block block = Block::from_data(Multicodec::kDagPb, node.encode());
  const DagLink link{block.cid, subtree_size};
  store_block(store_, std::move(block), result_);
  push_link(level + 1, link);
}

ImportResult StreamingImporter::finish() {
  if (finished_) return result_;
  finished_ = true;

  // Tail chunk; empty content is one empty chunk (matches chunk()).
  if (!buffer_.empty() || result_.chunk_count == 0) {
    emit_leaf(buffer_);
    buffer_.clear();
  }

  // Single raw chunk: the block itself is the object (raw-leaves style).
  if (levels_.size() == 1 && levels_[0].size() == 1) {
    result_.root = levels_[0][0].cid;
    return result_;
  }

  // Collapse the pending remainder of each level bottom-up. A level's
  // remainder becomes one parent — even a single link gets a parent when
  // a higher level exists, exactly like the batch builder's last group.
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].empty()) continue;
    const bool top = level + 1 == levels_.size();
    if (top && levels_[level].size() == 1) {
      result_.root = levels_[level][0].cid;
      return result_;
    }
    collapse_level(level);
  }
  // Unreachable: collapse_level always extends levels_ with a final
  // single-link top level.
  return result_;
}

ImportResult import_bytes(BlockStore& store,
                          std::span<const std::uint8_t> data,
                          std::size_t chunk_size) {
  StreamingImporter importer(store, chunk_size);
  importer.write(data);
  return importer.finish();
}

namespace {

bool cat_recursive(const BlockStore& store, const Cid& cid,
                   std::vector<std::uint8_t>& out) {
  const auto block = store.get(cid);
  if (!block) return false;
  if (cid.content_codec() == Multicodec::kRaw) {
    out.insert(out.end(), block->begin(), block->end());
    return true;
  }
  const auto node = DagNode::decode(*block);
  if (!node) return false;
  out.insert(out.end(), node->data.begin(), node->data.end());
  for (const auto& link : node->links)
    if (!cat_recursive(store, link.cid, out)) return false;
  return true;
}

bool enumerate_recursive(const BlockStore& store, const Cid& cid,
                         std::vector<Cid>& out) {
  const auto block = store.get(cid);
  if (!block) return false;
  out.push_back(cid);
  if (cid.content_codec() == Multicodec::kRaw) return true;
  const auto node = DagNode::decode(*block);
  if (!node) return false;
  for (const auto& link : node->links)
    if (!enumerate_recursive(store, link.cid, out)) return false;
  return true;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> cat(const BlockStore& store,
                                             const Cid& root) {
  std::vector<std::uint8_t> out;
  if (!cat_recursive(store, root, out)) return std::nullopt;
  return out;
}

std::optional<std::vector<Cid>> enumerate(const BlockStore& store,
                                          const Cid& root) {
  std::vector<Cid> out;
  if (!enumerate_recursive(store, root, out)) return std::nullopt;
  return out;
}

}  // namespace ipfs::merkledag
