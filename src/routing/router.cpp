#include "routing/router.h"

#include <memory>
#include <utility>

namespace ipfs::routing {

const char* source_name(Source source) {
  switch (source) {
    case Source::kDht:
      return "dht";
    case Source::kIndexer:
      return "indexer";
    case Source::kNone:
      return "none";
  }
  return "none";
}

// --- DhtRouter --------------------------------------------------------------

DhtRouter::DhtRouter(dht::DhtNode& dht) : dht_(dht) {}

ContentRouter::RequestId DhtRouter::find_providers(const dht::Key& key,
                                                   Callback done,
                                                   metrics::SpanId parent_span) {
  const RequestId id = next_id_++;
  metrics::Registry& metrics = dht_.transport().metrics();
  const metrics::SpanId span =
      metrics.begin_span("routing.find.dht", dht_.node(), {}, parent_span);
  pending_.emplace(id, Pending{nullptr, span});
  // The walk may complete synchronously (no candidates), so the entry
  // must exist before the call and the handle is only stored if the
  // callback has not already settled the request.
  const dht::Lookup* walk = dht_.find_providers_cancellable(
      key,
      [this, id, done = std::move(done)](dht::LookupResult result) {
        const auto it = pending_.find(id);
        if (it == pending_.end()) return;  // cancelled
        FindResult out;
        out.providers = std::move(result.providers);
        out.ok = !out.providers.empty();
        out.source = out.ok ? Source::kDht : Source::kNone;
        dht_.transport().metrics().end_span(it->second.span, out.ok);
        auto finish = std::move(done);
        pending_.erase(it);
        finish(std::move(out));
      },
      span);
  if (const auto it = pending_.find(id); it != pending_.end())
    it->second.walk = walk;
  return id;
}

void DhtRouter::cancel(RequestId request) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  const Pending entry = it->second;
  pending_.erase(it);
  // Aborting the walk cancels its 3 min deadline timer; its in-flight
  // RPCs resolve via the fabric's own timeouts without reviving it.
  if (entry.walk != nullptr) dht_.cancel_lookup(entry.walk);
  dht_.transport().metrics().end_span(entry.span, false);
}

void DhtRouter::handle_crash() {
  for (auto& [id, entry] : pending_) {
    if (entry.walk != nullptr) dht_.cancel_lookup(entry.walk);
    dht_.transport().metrics().end_span(entry.span, false);
  }
  pending_.clear();
}

// --- IndexerRouter ----------------------------------------------------------

IndexerRouter::IndexerRouter(transport::Transport& transport,
                             RoutingConfig config)
    : transport_(transport),
      self_(transport.local()),
      config_(std::move(config)) {}

ContentRouter::RequestId IndexerRouter::find_providers(
    const dht::Key& key, Callback done, metrics::SpanId parent_span) {
  const RequestId id = next_id_++;
  const metrics::SpanId span = transport_.metrics().begin_span(
      "routing.find.indexer", self_, {}, parent_span);
  Pending pending;
  pending.key = key;
  pending.done = std::move(done);
  pending.span = span;
  pending_.emplace(id, std::move(pending));
  try_next(id);
  return id;
}

void IndexerRouter::try_next(RequestId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (it->second.next_indexer >= config_.indexers.size()) {
    settle(id, FindResult{});  // list exhausted: the delegated path failed
    return;
  }
  const sim::NodeId target = config_.indexers[it->second.next_indexer++];
  transport_.connect(target, [this, id, target](bool ok, sim::Duration) {
    const auto pending = pending_.find(id);
    if (pending == pending_.end()) return;  // cancelled while dialing
    if (!ok) {
      transport_.metrics().counter("routing.indexer.failover").inc();
      try_next(id);
      return;
    }
    auto query = std::make_shared<indexer::QueryRequest>();
    query->key = pending->second.key;
    transport_.request(
        target, std::move(query), indexer::kQueryBytes,
        config_.indexer_timeout,
        [this, id](sim::RpcStatus status, const sim::MessagePtr& message) {
          const auto pending = pending_.find(id);
          if (pending == pending_.end()) return;  // cancelled in flight
          const auto* response =
              dynamic_cast<const indexer::QueryResponse*>(message.get());
          if (status != sim::RpcStatus::kOk || response == nullptr ||
              response->providers.empty()) {
            // Timed out, reset, or the indexer has not (yet) ingested an
            // advertisement for this key: fail over to the next one.
            transport_.metrics().counter("routing.indexer.failover").inc();
            try_next(id);
            return;
          }
          FindResult out;
          out.ok = true;
          out.providers = response->providers;
          out.source = Source::kIndexer;
          settle(id, std::move(out));
        });
  });
}

void IndexerRouter::settle(RequestId id, FindResult result) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  transport_.metrics().end_span(it->second.span, result.ok);
  auto done = std::move(it->second.done);
  pending_.erase(it);
  done(std::move(result));
}

void IndexerRouter::cancel(RequestId request) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  transport_.metrics().end_span(it->second.span, false);
  // In-flight dial/RPC callbacks find no entry for the id and stand down;
  // the fabric resolves them within the per-indexer timeout.
  pending_.erase(it);
}

void IndexerRouter::handle_crash() {
  for (auto& [id, entry] : pending_)
    transport_.metrics().end_span(entry.span, false);
  pending_.clear();
}

// --- RaceRouter -------------------------------------------------------------

RaceRouter::RaceRouter(transport::Transport& transport, dht::DhtNode& dht,
                       RoutingConfig config)
    : metrics_(transport.metrics()),
      self_(transport.local()),
      dht_router_(dht),
      indexer_router_(transport, std::move(config)) {}

ContentRouter::RequestId RaceRouter::find_providers(const dht::Key& key,
                                                    Callback done,
                                                    metrics::SpanId parent_span) {
  const RequestId id = next_id_++;
  const metrics::SpanId span =
      metrics_.begin_span("routing.find.race", self_, {}, parent_span);
  Race race;
  race.done = std::move(done);
  race.span = span;
  races_.emplace(id, std::move(race));

  // Launch the indexer arm first (one RTT, the usual winner), then the
  // DHT walk. Either arm may settle synchronously, so the race is
  // re-looked-up after every launch before its request id is recorded.
  const RequestId indexer_req = indexer_router_.find_providers(
      key,
      [this, id](FindResult result) {
        on_arm(id, Source::kIndexer, std::move(result));
      },
      span);
  // Record the arm's request id only while the arm is still running: a
  // synchronous settle already retired the id inside on_arm, and writing
  // it back would hand the winner's cancel path a stale handle (the
  // eclipse schedules hit exactly this: attacker-saturated walks settle
  // synchronously far more often than benign ones).
  if (const auto it = races_.find(id); it != races_.end()) {
    if (!it->second.indexer_done) it->second.indexer_req = indexer_req;
  } else {
    return id;  // settled synchronously
  }

  const RequestId dht_req = dht_router_.find_providers(
      key,
      [this, id](FindResult result) {
        on_arm(id, Source::kDht, std::move(result));
      },
      span);
  if (const auto it = races_.find(id); it != races_.end()) {
    if (!it->second.dht_done) it->second.dht_req = dht_req;
  }
  return id;
}

void RaceRouter::on_arm(RequestId id, Source arm, FindResult result) {
  const auto it = races_.find(id);
  if (it == races_.end()) return;
  Race& race = it->second;
  if (arm == Source::kDht) {
    race.dht_done = true;
    race.dht_req = 0;
  } else {
    race.indexer_done = true;
    race.indexer_req = 0;
  }
  if (result.ok) {
    // First success wins; put down the losing arm so it leaves no
    // foreground timers behind.
    if (arm == Source::kDht && race.indexer_req != 0)
      indexer_router_.cancel(race.indexer_req);
    if (arm == Source::kIndexer && race.dht_req != 0)
      dht_router_.cancel(race.dht_req);
    settle(id, std::move(result));
    return;
  }
  if (race.dht_done && race.indexer_done) settle(id, FindResult{});
}

void RaceRouter::settle(RequestId id, FindResult result) {
  const auto it = races_.find(id);
  if (it == races_.end()) return;
  metrics_.end_span(it->second.span, result.ok);
  auto done = std::move(it->second.done);
  races_.erase(it);
  done(std::move(result));
}

void RaceRouter::cancel(RequestId request) {
  const auto it = races_.find(request);
  if (it == races_.end()) return;
  if (it->second.indexer_req != 0)
    indexer_router_.cancel(it->second.indexer_req);
  if (it->second.dht_req != 0) dht_router_.cancel(it->second.dht_req);
  metrics_.end_span(it->second.span, false);
  races_.erase(it);
}

void RaceRouter::handle_crash() {
  for (auto& [id, race] : races_) metrics_.end_span(race.span, false);
  races_.clear();
  indexer_router_.handle_crash();
  dht_router_.handle_crash();
}

// --- Factory / advertisement push -------------------------------------------

std::unique_ptr<ContentRouter> make_router(transport::Transport& transport,
                                           dht::DhtNode& dht,
                                           const RoutingConfig& config) {
  switch (config.mode) {
    case RoutingConfig::Mode::kDht:
      return std::make_unique<DhtRouter>(dht);
    case RoutingConfig::Mode::kIndexer:
      return std::make_unique<IndexerRouter>(transport, config);
    case RoutingConfig::Mode::kRace:
      return std::make_unique<RaceRouter>(transport, dht, config);
  }
  return std::make_unique<DhtRouter>(dht);
}

void advertise_to_indexers(transport::Transport& transport,
                           const RoutingConfig& config, const dht::Key& key,
                           const dht::PeerRef& provider) {
  for (const sim::NodeId target : config.indexers) {
    transport.connect(
        target, [&transport, target, key, provider](bool ok, sim::Duration) {
          if (!ok) return;
          auto ad = std::make_shared<indexer::AdvertiseMessage>();
          ad->key = key;
          ad->provider = provider;
          transport.send(target, std::move(ad), indexer::kAdvertiseBytes);
          transport.metrics().counter("routing.advertisements_sent").inc();
        });
  }
}

}  // namespace ipfs::routing
