// Pluggable content routing: who answers "which peers provide this CID?"
//
// The paper's retrieval breakdown (Section 6.2, Fig. 10) shows the DHT
// walk dominating fetch latency; the production network's answer is
// delegated routing to network indexers (cid.contact — see "The Cloud
// Strikes Back", Balduf et al., and docs/ROUTING.md for the
// centralization trade-off). This layer makes the choice a config knob:
//
//   DhtRouter      — the paper's baseline: an iterative dht::Lookup walk.
//   IndexerRouter  — one-RTT delegated query against a configured list of
//                    indexers, with per-indexer timeout and failover.
//   RaceRouter     — launches both and cancels the loser, first success
//                    wins (kubo's parallel router composition).
//
// Every implementation reports through metrics::Registry: a
// routing.find.<impl> span per lookup (parented under the caller's
// phase span), with the winning source surfaced to the caller so the
// retrieval layer can record routing.source.* counters and
// routing.latency.* histograms.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dht/dht_node.h"
#include "indexer/messages.h"
#include "metrics/metrics.h"
#include "transport/transport.h"

namespace ipfs::routing {

// Which routing path produced a result. kNone: the lookup failed.
enum class Source { kNone, kDht, kIndexer };

const char* source_name(Source source);

struct RoutingConfig {
  enum class Mode { kDht, kIndexer, kRace };

  Mode mode = Mode::kDht;
  // Delegated indexers in query order (IndexerRouter fails over down the
  // list). Empty with kIndexer/kRace means the indexer path always fails.
  std::vector<sim::NodeId> indexers;
  // Per-indexer RPC budget before failing over to the next one. Dials to
  // a dead indexer additionally pay the transport's dial timeout.
  sim::Duration indexer_timeout = sim::seconds(2);

  RoutingConfig& with_mode(Mode m) {
    mode = m;
    return *this;
  }
  RoutingConfig& with_indexers(std::vector<sim::NodeId> nodes) {
    indexers = std::move(nodes);
    return *this;
  }
  RoutingConfig& with_indexer_timeout(sim::Duration t) {
    indexer_timeout = t;
    return *this;
  }
};

struct FindResult {
  bool ok = false;
  std::vector<dht::ProviderRecord> providers;
  Source source = Source::kNone;
};

class ContentRouter {
 public:
  using Callback = std::function<void(FindResult)>;
  using RequestId = std::uint64_t;

  virtual ~ContentRouter() = default;

  // Starts a provider lookup. The callback fires exactly once — unless
  // the request is cancelled or the node crashes first, in which case it
  // never fires. Returns an id for cancel(); ids are never reused.
  virtual RequestId find_providers(const dht::Key& key, Callback done,
                                   metrics::SpanId parent_span) = 0;

  // Abandons the request WITHOUT invoking its callback, cancelling any
  // foreground timers it owns (a cancelled DHT walk must not keep
  // Simulator::run() alive until the 3 min lookup deadline). Unknown or
  // already-completed ids are a no-op.
  virtual void cancel(RequestId request) = 0;

  // Crash semantics (sim/faults.h): every in-flight request is abandoned
  // without its callback, and open spans are closed.
  virtual void handle_crash() = 0;
};

// The paper's baseline: wraps dht::DhtNode's iterative provider walk.
class DhtRouter : public ContentRouter {
 public:
  explicit DhtRouter(dht::DhtNode& dht);

  RequestId find_providers(const dht::Key& key, Callback done,
                           metrics::SpanId parent_span) override;
  void cancel(RequestId request) override;
  void handle_crash() override;

 private:
  struct Pending {
    const dht::Lookup* walk = nullptr;
    metrics::SpanId span = 0;
  };

  dht::DhtNode& dht_;
  std::unordered_map<RequestId, Pending> pending_;
  RequestId next_id_ = 1;
};

// One-RTT delegated lookup: dial an indexer, send a QueryRequest, use
// the records it returns. An unreachable, timed-out or empty-handed
// indexer triggers failover to the next in the configured list; the
// lookup fails once the list is exhausted.
class IndexerRouter : public ContentRouter {
 public:
  IndexerRouter(transport::Transport& transport, RoutingConfig config);

  RequestId find_providers(const dht::Key& key, Callback done,
                           metrics::SpanId parent_span) override;
  void cancel(RequestId request) override;
  void handle_crash() override;

 private:
  struct Pending {
    dht::Key key;
    Callback done;
    std::size_t next_indexer = 0;
    metrics::SpanId span = 0;
  };

  void try_next(RequestId id);
  void settle(RequestId id, FindResult result);

  transport::Transport& transport_;
  sim::NodeId self_;
  RoutingConfig config_;
  std::unordered_map<RequestId, Pending> pending_;
  RequestId next_id_ = 1;
};

// First-success race between the indexer path and the DHT walk; the
// loser is cancelled so it leaves no dangling timers. Both arms failing
// fails the lookup — so with every indexer down the race degrades to
// exactly the DHT baseline.
class RaceRouter : public ContentRouter {
 public:
  RaceRouter(transport::Transport& transport, dht::DhtNode& dht,
             RoutingConfig config);

  RequestId find_providers(const dht::Key& key, Callback done,
                           metrics::SpanId parent_span) override;
  void cancel(RequestId request) override;
  void handle_crash() override;

 private:
  struct Race {
    Callback done;
    metrics::SpanId span = 0;
    RequestId dht_req = 0;
    RequestId indexer_req = 0;
    bool dht_done = false;
    bool indexer_done = false;
  };

  void on_arm(RequestId id, Source arm, FindResult result);
  void settle(RequestId id, FindResult result);

  metrics::Registry& metrics_;
  sim::NodeId self_;
  DhtRouter dht_router_;
  IndexerRouter indexer_router_;
  std::unordered_map<RequestId, Race> races_;
  RequestId next_id_ = 1;
};

// Builds the router selected by `config.mode`.
std::unique_ptr<ContentRouter> make_router(transport::Transport& transport,
                                           dht::DhtNode& dht,
                                           const RoutingConfig& config);

// Provider-side advertisement push (provide/reprovide): dials every
// configured indexer and fires an AdvertiseMessage at it — fire and
// forget, like the DHT's ADD_PROVIDER. Records become queryable after
// the indexer's ingest lag.
void advertise_to_indexers(transport::Transport& transport,
                           const RoutingConfig& config, const dht::Key& key,
                           const dht::PeerRef& provider);

}  // namespace ipfs::routing
