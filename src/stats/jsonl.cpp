#include "stats/jsonl.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace ipfs::stats {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

const char* kind_name(metrics::EventKind kind) {
  switch (kind) {
    case metrics::EventKind::kSpanBegin:
      return "span_begin";
    case metrics::EventKind::kSpanEnd:
      return "span_end";
    case metrics::EventKind::kInstant:
      return "instant";
  }
  return "instant";
}

// --- minimal parsing helpers (we only ever read our own output) ------------

// Value of a numeric field `"key":<digits>` or 0 when absent.
std::uint64_t field_u64(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = pos + needle.size();
       i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
  }
  return value;
}

bool field_bool(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  return line.compare(pos + needle.size(), 4, "true") == 0;
}

std::string field_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::string value;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      if (next == 'n')
        value += '\n';
      else if (next == 't')
        value += '\t';
      else
        value += next;
      continue;
    }
    if (line[i] == '"') break;
    value += line[i];
  }
  return value;
}

}  // namespace

void export_metrics_jsonl(const metrics::Registry& registry,
                          std::ostream& out) {
  for (const auto& [name, counter] : registry.counters()) {
    out << "{\"type\":\"counter\",\"name\":";
    write_escaped(out, name);
    out << ",\"value\":" << counter.value() << "}\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    out << "{\"type\":\"gauge\",\"name\":";
    write_escaped(out, name);
    out << ",\"value\":" << gauge.value() << "}\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    out << "{\"type\":\"histogram\",\"name\":";
    write_escaped(out, name);
    out << ",\"count\":" << hist.count() << ",\"sum_us\":" << hist.sum()
        << ",\"samples_s\":[";
    bool first = true;
    for (const double s : hist.samples_seconds()) {
      if (!first) out << ',';
      first = false;
      out << s;
    }
    out << "]}\n";
  }
}

void export_trace_jsonl(const metrics::Registry& registry, std::ostream& out) {
  for (const metrics::TraceEvent& event : registry.events()) {
    out << "{\"type\":\"" << kind_name(event.kind) << "\"";
    if (event.kind != metrics::EventKind::kInstant) {
      out << ",\"span\":" << event.span << ",\"parent\":" << event.parent;
    }
    out << ",\"name\":";
    write_escaped(out, event.name);
    out << ",\"t_us\":" << event.time << ",\"node\":" << event.node
        << ",\"peer\":" << event.peer << ",\"cid\":";
    write_escaped(out, event.cid);
    if (event.kind == metrics::EventKind::kSpanEnd) {
      out << ",\"ok\":" << (event.ok ? "true" : "false")
          << ",\"value\":" << event.value << ",\"dur_us\":" << event.duration;
    }
    if (event.kind == metrics::EventKind::kInstant) {
      out << ",\"value\":" << event.value
          << ",\"parent\":" << event.parent;
    }
    out << "}\n";
  }
}

void export_registry_jsonl(const metrics::Registry& registry,
                           std::ostream& out) {
  export_metrics_jsonl(registry, out);
  export_trace_jsonl(registry, out);
}

std::vector<metrics::TraceEvent> parse_trace_jsonl(std::istream& in) {
  std::vector<metrics::TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string type = field_string(line, "type");
    metrics::TraceEvent event;
    if (type == "span_begin")
      event.kind = metrics::EventKind::kSpanBegin;
    else if (type == "span_end")
      event.kind = metrics::EventKind::kSpanEnd;
    else if (type == "instant")
      event.kind = metrics::EventKind::kInstant;
    else
      continue;  // instrument line (counter/gauge/histogram)
    event.span = field_u64(line, "span");
    event.parent = field_u64(line, "parent");
    event.name = field_string(line, "name");
    event.time = static_cast<sim::Time>(field_u64(line, "t_us"));
    event.node = static_cast<metrics::NodeId>(field_u64(line, "node"));
    event.peer = static_cast<metrics::NodeId>(field_u64(line, "peer"));
    event.cid = field_string(line, "cid");
    event.ok = event.kind != metrics::EventKind::kSpanEnd ||
               field_bool(line, "ok");
    event.value = field_u64(line, "value");
    event.duration = static_cast<sim::Duration>(field_u64(line, "dur_us"));
    events.push_back(std::move(event));
  }
  return events;
}

std::string fold_trials_jsonl(std::vector<TrialJsonl> trials) {
  std::stable_sort(trials.begin(), trials.end(),
                   [](const TrialJsonl& a, const TrialJsonl& b) {
                     return a.seed < b.seed;
                   });
  std::ostringstream out;
  for (const auto& trial : trials) {
    out << "{\"type\":\"trial\",\"seed\":" << trial.seed << "}\n";
    out << trial.jsonl;
    if (!trial.jsonl.empty() && trial.jsonl.back() != '\n') out << '\n';
  }
  return out.str();
}

}  // namespace ipfs::stats
