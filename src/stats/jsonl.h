// JSONL export (and re-import) of a metrics::Registry: one JSON object per
// line, so bench artifacts can be grepped, streamed, and diffed without a
// JSON library. Schema (see docs/OBSERVABILITY.md):
//
//   {"type":"counter","name":N,"value":V}
//   {"type":"gauge","name":N,"value":V}
//   {"type":"histogram","name":N,"count":C,"sum_us":S,"samples_s":[...]}
//   {"type":"span_begin","span":I,"parent":P,"name":N,"t_us":T,
//    "node":X,"peer":Y,"cid":C}
//   {"type":"span_end",...same...,"ok":B,"value":V,"dur_us":D}
//   {"type":"instant","name":N,"t_us":T,"node":X,"peer":Y,"cid":C,"value":V}
//
// node/peer are the raw NodeId values (0xffffffff = none); timestamps and
// durations are integer simulated microseconds.
#pragma once

#include <iosfwd>
#include <vector>

#include "metrics/metrics.h"

namespace ipfs::stats {

// Instruments only (counters, gauges, histograms), sorted by name.
void export_metrics_jsonl(const metrics::Registry& registry,
                          std::ostream& out);

// Trace-event stream, in recording order.
void export_trace_jsonl(const metrics::Registry& registry, std::ostream& out);

// Both: instruments first, then the trace.
void export_registry_jsonl(const metrics::Registry& registry,
                           std::ostream& out);

// Reads trace lines back (ignores instrument lines and blank lines). The
// inverse of export_trace_jsonl; used by tooling and the round-trip tests.
std::vector<metrics::TraceEvent> parse_trace_jsonl(std::istream& in);

// One trial's exported JSONL, tagged with the seed that produced it.
struct TrialJsonl {
  std::uint64_t seed = 0;
  std::string jsonl;
};

// Folds per-trial JSONL exports from the thread-parallel trial runner
// into one artifact: stable-sorts by seed (never completion order) and
// concatenates, prefixing each trial with a {"type":"trial","seed":S}
// marker line. Byte-identical output for the same trial set regardless
// of thread interleaving.
std::string fold_trials_jsonl(std::vector<TrialJsonl> trials);

}  // namespace ipfs::stats
