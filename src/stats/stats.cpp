#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ipfs::stats {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("p out of range");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("mismatched or tiny samples");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double value) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::percentile(double p) const {
  // Degrade like at()/curve() instead of throwing: empty distributions
  // are routine (a bench phase with zero failures still asks for p50).
  if (sorted_.empty()) return 0.0;
  return stats::percentile(sorted_, p);
}

std::vector<CdfPoint> Cdf::curve(std::size_t points) const {
  std::vector<CdfPoint> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = 100.0 * static_cast<double>(i) /
                     static_cast<double>(points);
    out.push_back({percentile(q), q / 100.0});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram");
}

void Histogram::add(double value) {
  // NaN survives std::clamp, and casting it to an index is UB; count it
  // separately rather than corrupting a bin.
  if (std::isnan(value)) {
    ++nan_count_;
    return;
  }
  const double span = hi_ - lo_;
  double idx = (value - lo_) / span * static_cast<double>(counts_.size());
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << ' ' << cells[i];
      out << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string render_cdf_series(const std::string& label, const Cdf& cdf,
                              std::size_t points) {
  std::ostringstream out;
  for (const auto& point : cdf.curve(points)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\t%.4f\t%.3f\n", label.c_str(),
                  point.value, point.cumulative_fraction);
    out << buf;
  }
  return out.str();
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes < 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else if (bytes < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f %%", decimals, fraction * 100.0);
  return buf;
}

std::vector<double> fold_trials(std::vector<TrialSamples> trials) {
  std::stable_sort(trials.begin(), trials.end(),
                   [](const TrialSamples& a, const TrialSamples& b) {
                     return a.seed < b.seed;
                   });
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& trial : trials) total += trial.samples.size();
  out.reserve(total);
  for (const auto& trial : trials)
    out.insert(out.end(), trial.samples.begin(), trial.samples.end());
  return out;
}

}  // namespace ipfs::stats
