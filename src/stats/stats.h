// Statistics helpers shared by the measurement tooling and benches:
// percentiles, empirical CDFs, histograms, correlation, and plain-text
// table/figure rendering.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ipfs::stats {

// Percentile via linear interpolation on the sorted sample (p in [0,100]).
double percentile(std::vector<double> samples, double p);

double mean(std::span<const double> samples);
double pearson_correlation(std::span<const double> x,
                           std::span<const double> y);

// Empirical CDF evaluated at the sample points.
struct CdfPoint {
  double value;
  double cumulative_fraction;
};

class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  // Fraction of samples <= value.
  double at(double value) const;
  double percentile(double p) const;
  std::size_t sample_count() const { return sorted_.size(); }

  // Evaluates the CDF at `points` evenly spaced quantiles for plotting.
  std::vector<CdfPoint> curve(std::size_t points = 50) const;

 private:
  std::vector<double> sorted_;
};

// Fixed-width histogram over [lo, hi); out-of-range values (including
// +/-inf) clamp to the edge bins. NaN is counted in nan_count() and does
// not land in any bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t nan_count() const { return nan_count_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic multi-trial folding. The thread-parallel trial runner
// (bench/perf_common.h) finishes trials in hardware order; folding in
// completion order would make every multi-threaded artifact unstable.
// These helpers re-establish the canonical order — ascending trial
// seed, stable for ties — before any downstream Cdf / percentile /
// JSONL export consumes the data, so merged outputs are byte-identical
// no matter how the threads interleaved.
// ---------------------------------------------------------------------------

struct TrialSamples {
  std::uint64_t seed = 0;
  std::vector<double> samples;
};

// Stable-sorts the trials by seed, then concatenates their samples.
std::vector<double> fold_trials(std::vector<TrialSamples> trials);

// ---------------------------------------------------------------------------
// Plain-text rendering. Benches print the same rows/series the paper's
// tables and figures report.
// ---------------------------------------------------------------------------

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a CDF curve as "value<TAB>fraction" lines prefixed by a label,
// the machine-readable series a figure would plot.
std::string render_cdf_series(const std::string& label, const Cdf& cdf,
                              std::size_t points = 20);

std::string format_seconds(double seconds);
std::string format_bytes(double bytes);
std::string format_percent(double fraction, int decimals = 1);

}  // namespace ipfs::stats
