#include "adversary/adversary.h"

#include <algorithm>
#include <string>
#include <utility>

#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace ipfs::adversary {

namespace {

sim::Duration uniform_duration(sim::Rng& rng, sim::Duration lo,
                               sim::Duration hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<sim::Duration>(rng.uniform(0.0, 1.0) *
                                         static_cast<double>(hi - lo));
}

}  // namespace

multiformats::PeerId AttackPlan::forged_peer_id(std::uint64_t n) {
  std::uint8_t seed[9];
  for (int i = 0; i < 8; ++i) seed[i] = static_cast<std::uint8_t>(n >> (8 * i));
  seed[8] = 0xad;  // domain tag: never aliases a synthetic honest identity
  const auto digest = crypto::sha256(std::span<const std::uint8_t>(seed, 9));
  crypto::Ed25519PublicKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return multiformats::PeerId::from_public_key(key);
}

multiformats::Multiaddr AttackPlan::attacker_address(std::uint32_t n) {
  const std::string ip = "66.6." + std::to_string((n >> 8) & 0xff) + "." +
                         std::to_string(n & 0xff);
  return multiformats::make_tcp_multiaddr(ip, 4001);
}

AttackPlan::AttackPlan(sim::Network& network, AttackConfig config,
                       std::uint64_t seed)
    : network_(network),
      config_(std::move(config)),
      flash_rng_(sim::Rng(seed).fork("adversary.flash")),
      storm_rng_(sim::Rng(seed).fork("adversary.storm")) {
  const auto install_handler = [this](sim::NodeId node) {
    network_.set_request_handler(
        node, [this, node](sim::NodeId from, const sim::MessagePtr& message,
                           auto respond) {
          handle_attacker_request(node, from, message, respond);
        });
    network_.set_message_handler(
        node, [this](sim::NodeId, const sim::MessagePtr& message) {
          if (dynamic_cast<const dht::AddProviderRequest*>(message.get()) !=
              nullptr)
            ++counters_.provider_records_swallowed;
        });
  };
  const sim::NodeConfig attacker_cfg =
      sim::NodeConfig{}.with_region(config_.attacker_region);

  if (config_.sybil) {
    config_.sybil_front_nodes = std::max<std::size_t>(config_.sybil_front_nodes, 1);
    for (std::size_t i = 0; i < config_.sybil_front_nodes; ++i) {
      const sim::NodeId node = network_.add_node(attacker_cfg);
      sybil_fronts_.push_back(node);
      attacker_nodes_.push_back(node);
      install_handler(node);
    }
  }
  if (config_.eclipse_target) {
    // Mining cost is ~2^(min_cpl) hashes per attacker; keep min_cpl
    // modest (the header's default beats any honest swarm below ~4096).
    const dht::Key& target = *config_.eclipse_target;
    for (std::size_t i = 0; i < config_.eclipse.attackers; ++i) {
      const sim::NodeId node = network_.add_node(attacker_cfg);
      attacker_nodes_.push_back(node);
      install_handler(node);
      eclipse_refs_.push_back(
          mint_ref(node, [this, &target](const dht::Key& key) {
            return key.common_prefix_len(target) >= config_.eclipse.min_cpl;
          }));
    }
    // The poisoned records' provider: a NAT'ed node that never answers a
    // dial, so victims burn the transport timeout before giving up.
    ghost_node_ = network_.add_node(
        sim::NodeConfig{}.with_region(config_.attacker_region).with_dialable(
            false));
    ghost_ref_ = mint_ref(ghost_node_, [](const dht::Key&) { return true; });
  }
  if (config_.partition) {
    for (std::size_t group = 0; group < config_.partition->groups.size();
         ++group)
      for (const int region : config_.partition->groups[group])
        region_group_[region] = static_cast<int>(group);
  }
}

AttackPlan::~AttackPlan() {
  for (auto& timer : event_timers_) timer.cancel();
  for (auto& timer : storm_timers_) timer.cancel();
  detach();
}

dht::PeerRef AttackPlan::mint_ref(
    sim::NodeId node, const std::function<bool(const dht::Key&)>& accept) {
  for (;;) {
    const std::uint64_t n = mint_counter_++;
    multiformats::PeerId id = forged_peer_id(n);
    const dht::Key key = dht::Key::for_peer(id);
    if (!accept(key)) continue;
    forged_keys_.insert(key);
    dht::PeerRef ref;
    ref.id = std::move(id);
    ref.node = node;
    ref.addresses.push_back(attacker_address(static_cast<std::uint32_t>(n)));
    return ref;
  }
}

void AttackPlan::add_victim(const dht::PeerRef& victim) {
  victims_.push_back(victim);
  victim_keys_.push_back(dht::Key::for_peer(victim.id));
  sybils_per_victim_.emplace_back();
}

void AttackPlan::manage_storm(sim::NodeId node) {
  storm_managed_.push_back(node);
}

void AttackPlan::add_crash_listener(CrashListener listener) {
  listeners_.push_back(std::move(listener));
}

void AttackPlan::set_flash_request_handler(FlashRequestHandler handler) {
  flash_handler_ = std::move(handler);
}

bool AttackPlan::is_adversarial_id(const multiformats::PeerId& id) const {
  return forged_keys_.contains(dht::Key::for_peer(id));
}

void AttackPlan::arm() {
  if (armed_) return;
  armed_ = true;
  armed_at_ = network_.now();

  if (config_.partition && !config_.partition->groups.empty()) {
    inner_ = network_.fault_injector();
    network_.set_fault_injector(this);
    installed_ = true;
  }

  if (config_.sybil) {
    const SybilConfig& sybil = *config_.sybil;
    for (std::size_t v = 0; v < victims_.size(); ++v) {
      if (!sybils_per_victim_[v].empty()) continue;  // re-arm after disarm
      for (std::size_t s = 0; s < sybil.per_victim; ++s) {
        const dht::Key& victim_key = victim_keys_[v];
        const sim::NodeId front = sybil_fronts_[s % sybil_fronts_.size()];
        sybils_per_victim_[v].push_back(mint_ref(
            front, [&victim_key, &sybil](const dht::Key& key) {
              return key.common_prefix_len(victim_key) == sybil.target_cpl;
            }));
        ++counters_.sybil_ids_minted;
      }
    }
    for (std::size_t round = 0; round < sybil.rounds; ++round)
      schedule_flood_round(round);
  }

  if (config_.eclipse_target) {
    event_timers_.push_back(network_.schedule_after(
        config_.eclipse.announce_at, [this] { announce_eclipse(); }));
  }

  if (config_.flash_crowd && config_.flash_crowd->requests > 0) {
    const FlashCrowdConfig& flash = *config_.flash_crowd;
    for (std::size_t slot = 0; slot < flash.requests; ++slot) {
      const sim::Duration at =
          flash.start + uniform_duration(flash_rng_, 0, flash.window);
      event_timers_.push_back(
          network_.schedule_after(at, [this, slot] {
            ++counters_.flash_requests;
            if (flash_handler_) flash_handler_(slot);
          }));
    }
  }

  if (config_.churn_storm) {
    const ChurnStormConfig& storm = *config_.churn_storm;
    storm_down_.assign(storm_managed_.size(), false);
    for (std::size_t i = 0; i < storm_managed_.size(); ++i) {
      if (!storm_rng_.chance(storm.fraction)) continue;
      const sim::Duration crash_at = uniform_duration(
          storm_rng_, storm.start, storm.start + storm.window);
      const sim::Duration downtime = uniform_duration(
          storm_rng_, storm.min_downtime, storm.max_downtime);
      storm_timers_.push_back(network_.schedule_daemon_for(
          storm_managed_[i], crash_at, [this, i, downtime] {
            const sim::NodeId node = storm_managed_[i];
            // Another fault source (an overlapping FaultPlan) may already
            // hold the node down; leave its bookkeeping alone.
            if (!network_.online(node)) return;
            network_.set_online(node, false);
            storm_down_[i] = true;
            ++counters_.storm_crashes;
            notify(node, false);
            storm_timers_.push_back(
                network_.schedule_daemon_for(
                    node, downtime, [this, i] {
                      if (!storm_down_[i]) return;
                      storm_down_[i] = false;
                      const sim::NodeId restored = storm_managed_[i];
                      if (network_.online(restored)) return;
                      network_.set_online(restored, true);
                      ++counters_.storm_restarts;
                      notify(restored, true);
                    }));
          }));
    }
  }
}

void AttackPlan::disarm() {
  if (!armed_) return;
  armed_ = false;
  for (auto& timer : event_timers_) timer.cancel();
  event_timers_.clear();
  for (auto& timer : storm_timers_) timer.cancel();
  storm_timers_.clear();
  for (std::size_t i = 0; i < storm_down_.size(); ++i) {
    if (!storm_down_[i]) continue;
    storm_down_[i] = false;
    const sim::NodeId node = storm_managed_[i];
    if (network_.online(node)) continue;
    network_.set_online(node, true);
    ++counters_.storm_restarts;
    notify(node, true);
  }
}

void AttackPlan::detach() {
  if (!installed_) return;
  network_.set_fault_injector(inner_);
  inner_ = nullptr;
  installed_ = false;
}

void AttackPlan::schedule_flood_round(std::size_t round) {
  const SybilConfig& sybil = *config_.sybil;
  const sim::Duration at =
      sybil.start + static_cast<sim::Duration>(round) * sybil.interval;
  event_timers_.push_back(network_.schedule_after(at, [this] {
    for (std::size_t v = 0; v < victims_.size(); ++v) {
      const dht::PeerRef& victim = victims_[v];
      if (victim.node == sim::kInvalidNode || !network_.online(victim.node))
        continue;
      for (const dht::PeerRef& sybil_ref : sybils_per_victim_[v]) {
        const sim::NodeId front = sybil_ref.node;
        const sim::NodeId target = victim.node;
        // The flood vehicle is an ordinary FIND_NODE stamped with the
        // forged server-mode requester: the victim's identify side
        // effect upserts the sybil into exactly the mined bucket.
        auto request = std::make_shared<dht::FindNodeRequest>();
        request->requester = sybil_ref;
        request->requester_is_server = true;
        request->target = dht::Key::for_peer(sybil_ref.id);
        network_.connect(
            front, target,
            [this, front, target, request = std::move(request)](
                bool ok, sim::Duration) {
              if (!ok || !armed_) return;
              ++counters_.flood_requests_sent;
              network_.request(front, target, request,
                               dht::response_size_for(0), dht::kRpcTimeout,
                               [](sim::RpcStatus, const sim::MessagePtr&) {});
            });
      }
    }
  }));
}

void AttackPlan::announce_eclipse() {
  for (const dht::PeerRef& ref : eclipse_refs_) {
    for (const dht::PeerRef& victim : victims_) {
      if (victim.node == sim::kInvalidNode || !network_.online(victim.node))
        continue;
      const sim::NodeId target = victim.node;
      auto request = std::make_shared<dht::FindNodeRequest>();
      request->requester = ref;
      request->requester_is_server = true;
      request->target = dht::Key::for_peer(ref.id);
      network_.connect(ref.node, target,
                       [this, from = ref.node, target,
                        request = std::move(request)](bool ok, sim::Duration) {
                         if (!ok || !armed_) return;
                         network_.request(
                             from, target, request, dht::response_size_for(0),
                             dht::kRpcTimeout,
                             [](sim::RpcStatus, const sim::MessagePtr&) {});
                       });
    }
  }
}

void AttackPlan::handle_attacker_request(
    sim::NodeId self, sim::NodeId from, const sim::MessagePtr& message,
    const std::function<void(sim::MessagePtr, std::size_t)>& respond) {
  (void)self;
  (void)from;
  if (const auto* find =
          dynamic_cast<const dht::FindNodeRequest*>(message.get())) {
    auto response = std::make_shared<dht::FindNodeResponse>();
    if (armed_ && config_.eclipse_target &&
        find->target == *config_.eclipse_target) {
      // Walks for the target never escape: every "closer" peer is a
      // fellow attacker, all mined closer than any honest node.
      response->closer = eclipse_refs_;
      ++counters_.eclipse_queries_answered;
    }
    const std::size_t bytes = dht::response_size_for(response->closer.size());
    respond(std::move(response), bytes);
    return;
  }
  if (const auto* get =
          dynamic_cast<const dht::GetProvidersRequest*>(message.get())) {
    auto response = std::make_shared<dht::GetProvidersResponse>();
    if (armed_ && config_.eclipse_target &&
        get->key == *config_.eclipse_target) {
      if (config_.eclipse.serve_poisoned_records) {
        dht::ProviderRecord record;
        record.provider = ghost_ref_;
        record.received_at = network_.now();
        response->providers.push_back(std::move(record));
        ++counters_.poisoned_records_served;
      }
      response->closer = eclipse_refs_;
      ++counters_.eclipse_queries_answered;
    }
    const std::size_t bytes =
        dht::response_size_for(response->closer.size(),
                               response->providers.size() * dht::kPeerRefBytes);
    respond(std::move(response), bytes);
    return;
  }
  if (dynamic_cast<const dht::AddProviderRequest*>(message.get()) != nullptr) {
    // Fire-and-forget on the honest side: swallowing it is invisible.
    ++counters_.provider_records_swallowed;
    return;
  }
  if (dynamic_cast<const dht::DialBackRequest*>(message.get()) != nullptr) {
    auto response = std::make_shared<dht::DialBackResponse>();
    response->reachable = true;
    respond(std::move(response), dht::kRequestBaseBytes);
    return;
  }
  // Anything else (GetValue, crawler sweeps, Bitswap probes): an empty
  // FindNodeResponse fails every caller's dynamic_cast and surfaces as a
  // clean miss, never a hang.
  respond(std::make_shared<dht::FindNodeResponse>(), dht::kRequestBaseBytes);
}

void AttackPlan::notify(sim::NodeId node, bool online) {
  for (const CrashListener& listener : listeners_) listener(node, online);
}

bool AttackPlan::partition_active() const {
  if (!armed_ || !config_.partition) return false;
  const sim::Time now = network_.now();
  return now >= armed_at_ + config_.partition->start &&
         now < armed_at_ + config_.partition->heal_at;
}

bool AttackPlan::partition_blocks(sim::NodeId from, sim::NodeId to) {
  if (!partition_active()) return false;
  const int a = group_of(from);
  const int b = group_of(to);
  return a >= 0 && b >= 0 && a != b;
}

int AttackPlan::group_of(sim::NodeId node) const {
  const auto it = region_group_.find(network_.config(node).region);
  return it == region_group_.end() ? -1 : it->second;
}

bool AttackPlan::drop_message(sim::NodeId from, sim::NodeId to) {
  if (partition_blocks(from, to)) {
    ++counters_.partition_messages_dropped;
    return true;
  }
  return inner_ != nullptr && inner_->drop_message(from, to);
}

bool AttackPlan::duplicate_message(sim::NodeId from, sim::NodeId to) {
  return inner_ != nullptr && inner_->duplicate_message(from, to);
}

sim::Duration AttackPlan::reorder_delay(sim::NodeId from, sim::NodeId to) {
  return inner_ != nullptr ? inner_->reorder_delay(from, to) : 0;
}

bool AttackPlan::fail_dial(sim::NodeId from, sim::NodeId to) {
  if (partition_blocks(from, to)) {
    ++counters_.partition_dials_blocked;
    return true;
  }
  return inner_ != nullptr && inner_->fail_dial(from, to);
}

double AttackPlan::latency_factor(sim::NodeId a, sim::NodeId b) {
  return inner_ != nullptr ? inner_->latency_factor(a, b) : 1.0;
}

}  // namespace ipfs::adversary
