// Adversarial scenario pack (docs/ADVERSARY.md): deterministic attack
// controllers woven through the event core, modeled on Henningsen et
// al.'s measurements of the public IPFS DHT ("Mapping the Interplanetary
// Filesystem"): the DHT is cheaply enumerable, node IDs are free, and a
// handful of machines can flood k-buckets or occupy the XOR neighborhood
// of a chosen key.
//
// An AttackPlan is the adversary twin of sim::FaultPlan: constructed over
// the network (appending its attacker nodes AFTER every honest node, so
// switched-off attacks leave node ids and seeded rng streams
// bit-identical), armed to start its event-driven behaviors, and fully
// replayable from (seed, config). Four attack families:
//
//  - Sybil flood: a few real attacker nodes front many forged PeerRefs
//    whose IDs are mined (generate-and-test) to land in a chosen bucket
//    of each victim, then pushed into victim routing tables through the
//    identify side effect of server-stamped FIND_NODE requests. All
//    forged identities advertise addresses in one /16 — the handle the
//    RoutingTable diversity cap grips.
//  - Eclipse: attacker nodes whose mined IDs sit closer to a target key
//    than any honest peer. They answer queries for the target with each
//    other as "closer", swallow AddProvider records, and (optionally)
//    serve a poisoned record pointing at an undialable ghost. Defenses:
//    diversity caps, LookupHost::provider_quorum, the indexer race.
//  - Flash crowd: a burst of requests for one (possibly dead) CID in a
//    narrow window. The plan owns the deterministic schedule and fires a
//    caller-provided handler per request slot (the harness maps slots to
//    gateway hits or node retrievals).
//  - Churn storm / partition: a synchronized crash wave over managed
//    nodes, and a region-scale partition with heal. The partition is a
//    FaultInjector *decorator*: it wraps whatever injector is already
//    installed (e.g. a FaultPlan) instead of replacing it. Arm after the
//    inner plan's arm(); detach in reverse order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/key.h"
#include "dht/lookup.h"
#include "dht/messages.h"
#include "dht/routing_table.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipfs::adversary {

struct SybilConfig {
  // Forged identities mined per victim. Each is mined so its key shares
  // exactly `target_cpl` prefix bits with the victim's key — all of one
  // victim's sybils land in the same (deep, mostly empty) k-bucket,
  // where classic Kademlia accepts every newcomer.
  std::size_t per_victim = dht::kBucketSize;
  int target_cpl = 8;
  // Flood schedule: `rounds` rounds of server-stamped FIND_NODE bursts,
  // the first at `start`, every `interval` thereafter.
  sim::Duration start = sim::seconds(1);
  std::size_t rounds = 3;
  sim::Duration interval = sim::seconds(30);
};

struct EclipseConfig {
  // Real attacker nodes mined into the target key's XOR neighborhood.
  // k of them suffice to absorb a full publication's store batch.
  std::size_t attackers = dht::kReplication;
  // Mined closeness: every attacker key shares >= min_cpl prefix bits
  // with the target. With n honest peers the closest honest peer sits at
  // ~log2(n) bits, so the default beats any honest swarm below ~4096.
  int min_cpl = 12;
  // When the attackers introduce themselves to the victims (the identify
  // side effect plants them in victim tables; from there every walk
  // towards the target discovers them as closest).
  sim::Duration announce_at = sim::seconds(0);
  // Serve a provider record pointing at the undialable ghost instead of
  // claiming ignorance — the harder variant: the walk terminates
  // "successfully" and the fetch then dies on a dead provider.
  bool serve_poisoned_records = true;
};

struct FlashCrowdConfig {
  std::size_t requests = 0;
  sim::Duration start = sim::seconds(1);
  sim::Duration window = sim::seconds(10);
};

struct ChurnStormConfig {
  // Each node under manage_storm() crashes with probability `fraction`,
  // at a time uniform in [start, start + window), staying down for a
  // uniform draw of [min_downtime, max_downtime).
  double fraction = 0.5;
  sim::Duration start = sim::seconds(1);
  sim::Duration window = sim::seconds(30);
  sim::Duration min_downtime = sim::seconds(20);
  sim::Duration max_downtime = sim::seconds(60);
};

struct PartitionConfig {
  // Region groups that can only talk within their group while the
  // partition holds. Regions not listed anywhere are unaffected.
  std::vector<std::vector<int>> groups;
  sim::Duration start = 0;
  sim::Duration heal_at = sim::minutes(5);
};

struct AttackConfig {
  std::optional<SybilConfig> sybil;
  // Eclipse is enabled by the presence of a target key.
  std::optional<dht::Key> eclipse_target;
  EclipseConfig eclipse;
  std::optional<FlashCrowdConfig> flash_crowd;
  std::optional<ChurnStormConfig> churn_storm;
  std::optional<PartitionConfig> partition;

  // Real nodes fronting the forged Sybil identities (dialable malicious
  // servers; the forged PeerRefs point at them).
  std::size_t sybil_front_nodes = 2;
  int attacker_region = 0;

  bool any() const {
    return sybil || eclipse_target || flash_crowd || churn_storm || partition;
  }
};

class AttackPlan : public sim::FaultInjector {
 public:
  using CrashListener = std::function<void(sim::NodeId, bool online)>;
  // Fired once per flash-crowd request slot at its scheduled time.
  using FlashRequestHandler = std::function<void(std::size_t slot)>;

  // Appends the attacker/ghost nodes to `network` (construct AFTER every
  // honest node so disabled attacks keep node ids bit-identical) and
  // mines the eclipse identities. No behavior starts until arm().
  AttackPlan(sim::Network& network, AttackConfig config, std::uint64_t seed);
  ~AttackPlan() override;

  AttackPlan(const AttackPlan&) = delete;
  AttackPlan& operator=(const AttackPlan&) = delete;

  // Sybil flood and eclipse-announce targets. Victim keys also drive the
  // per-victim Sybil ID mining, so add every victim before arm().
  void add_victim(const dht::PeerRef& victim);

  // Puts `node` under churn-storm management (takes effect on arm()).
  void manage_storm(sim::NodeId node);
  void add_crash_listener(CrashListener listener);
  void set_flash_request_handler(FlashRequestHandler handler);

  // Mines the per-victim Sybil identities, wraps the network's fault
  // injector when a partition is configured, and schedules every attack
  // event. Call after any FaultPlan::arm() (the decorator wraps the
  // injector installed at this moment).
  void arm();

  // Cancels pending attack events and revives nodes still down from the
  // storm (notifying listeners). The partition decorator stays installed;
  // detach() removes it. Detach before any inner FaultPlan::detach().
  void disarm();
  void detach();

  bool armed() const { return armed_; }
  const AttackConfig& config() const { return config_; }

  // --- Introspection -------------------------------------------------------

  // Real attacker nodes: sybil fronts first, then eclipse attackers.
  const std::vector<sim::NodeId>& attacker_nodes() const {
    return attacker_nodes_;
  }
  const std::vector<dht::PeerRef>& eclipse_refs() const {
    return eclipse_refs_;
  }
  // Sybil identities mined for victim i (parallel to add_victim order).
  const std::vector<dht::PeerRef>& sybil_refs(std::size_t victim) const {
    return sybils_per_victim_[victim];
  }
  std::size_t victim_count() const { return victims_.size(); }
  const dht::PeerRef& ghost_provider() const { return ghost_ref_; }

  // True for every identity this plan minted (sybils, eclipse attackers,
  // the ghost). The simfuzz occupancy invariant filters tables with this.
  bool is_adversarial_id(const multiformats::PeerId& id) const;
  bool is_adversarial_key(const dht::Key& key) const {
    return forged_keys_.contains(key);
  }

  bool partition_active() const;

  struct Counters {
    std::uint64_t sybil_ids_minted = 0;
    std::uint64_t flood_requests_sent = 0;
    std::uint64_t eclipse_queries_answered = 0;
    std::uint64_t poisoned_records_served = 0;
    std::uint64_t provider_records_swallowed = 0;
    std::uint64_t flash_requests = 0;
    std::uint64_t storm_crashes = 0;
    std::uint64_t storm_restarts = 0;
    std::uint64_t partition_messages_dropped = 0;
    std::uint64_t partition_dials_blocked = 0;

    std::uint64_t total_attack_events() const {
      return flood_requests_sent + eclipse_queries_answered +
             provider_records_swallowed + flash_requests + storm_crashes +
             partition_messages_dropped + partition_dials_blocked;
    }
  };
  const Counters& counters() const { return counters_; }

  // --- FaultInjector (partition decorator) ---------------------------------

  bool drop_message(sim::NodeId from, sim::NodeId to) override;
  bool duplicate_message(sim::NodeId from, sim::NodeId to) override;
  sim::Duration reorder_delay(sim::NodeId from, sim::NodeId to) override;
  bool fail_dial(sim::NodeId from, sim::NodeId to) override;
  double latency_factor(sim::NodeId a, sim::NodeId b) override;

  // Deterministic forged identity n — domain-separated from
  // scenario::synthetic_peer_id and world::synthetic_peer_id so attacker
  // identities never alias an honest peer's.
  static multiformats::PeerId forged_peer_id(std::uint64_t n);
  // Attacker addresses all live in 66.6.0.0/16: one operator's address
  // block, the diversity class the per-bucket cap counts.
  static multiformats::Multiaddr attacker_address(std::uint32_t n);

 private:
  dht::PeerRef mint_ref(sim::NodeId node,
                        const std::function<bool(const dht::Key&)>& accept);
  void handle_attacker_request(
      sim::NodeId self, sim::NodeId from, const sim::MessagePtr& message,
      const std::function<void(sim::MessagePtr, std::size_t)>& respond);
  void schedule_flood_round(std::size_t round);
  void announce_eclipse();
  void notify(sim::NodeId node, bool online);
  bool partition_blocks(sim::NodeId from, sim::NodeId to);
  int group_of(sim::NodeId node) const;

  sim::Network& network_;
  AttackConfig config_;
  sim::Rng flash_rng_;
  sim::Rng storm_rng_;
  std::uint64_t mint_counter_ = 0;

  bool armed_ = false;
  bool installed_ = false;
  sim::FaultInjector* inner_ = nullptr;  // wrapped by the partition
  sim::Time armed_at_ = 0;
  Counters counters_;

  std::vector<sim::NodeId> attacker_nodes_;  // sybil fronts + eclipse
  std::vector<sim::NodeId> sybil_fronts_;
  std::vector<dht::PeerRef> eclipse_refs_;
  dht::PeerRef ghost_ref_;
  sim::NodeId ghost_node_ = sim::kInvalidNode;

  std::vector<dht::PeerRef> victims_;
  std::vector<dht::Key> victim_keys_;
  std::vector<std::vector<dht::PeerRef>> sybils_per_victim_;
  std::unordered_set<dht::Key, dht::KeyHasher> forged_keys_;

  std::vector<sim::NodeId> storm_managed_;
  std::vector<bool> storm_down_;
  std::vector<sim::Timer> storm_timers_;
  std::vector<CrashListener> listeners_;
  FlashRequestHandler flash_handler_;
  std::vector<sim::Timer> event_timers_;  // flood rounds, announce, flash

  std::unordered_map<int, int> region_group_;
};

}  // namespace ipfs::adversary
