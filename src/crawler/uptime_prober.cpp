#include "crawler/uptime_prober.h"

#include <algorithm>

namespace ipfs::crawler {

UptimeProber::UptimeProber(sim::Network& network, sim::NodeId self)
    : network_(network), self_(self) {}

void UptimeProber::track(const dht::PeerRef& peer) {
  if (finished_) return;
  const auto key = peer.id.encode();
  if (index_by_peer_.contains(key)) return;
  index_by_peer_.emplace(key, tracked_.size());
  tracked_.push_back(Tracked{peer, false, 0, {}});
  probe(tracked_.size() - 1);
}

void UptimeProber::schedule_probe(std::size_t index) {
  if (finished_) return;
  Tracked& entry = tracked_[index];
  sim::Duration interval = kMinProbeInterval;
  if (entry.online) {
    const sim::Duration uptime =
        network_.now() - entry.session_start;
    interval = std::clamp(uptime / 2, kMinProbeInterval, kMaxProbeInterval);
  }
  entry.timer = network_.schedule_daemon_for(
      self_, interval, [this, index] { probe(index); });
}

void UptimeProber::probe(std::size_t index) {
  if (finished_) return;
  ++probes_sent_;
  const sim::NodeId target = tracked_[index].peer.node;
  network_.connect(self_, target, [this, index, target](bool ok,
                                                        sim::Duration) {
    if (ok) {
      network_.disconnect(self_, target);
      on_probe_result(index, true);
      return;
    }
    // One quick retry guards against flaky-dial noise chopping sessions.
    network_.connect(self_, target, [this, index, target](bool retry_ok,
                                                          sim::Duration) {
      if (retry_ok) network_.disconnect(self_, target);
      on_probe_result(index, retry_ok);
    });
  });
}

void UptimeProber::on_probe_result(std::size_t index, bool reachable) {
  if (finished_) return;
  Tracked& entry = tracked_[index];
  const sim::Time now = network_.now();
  if (reachable && !entry.online) {
    entry.online = true;
    entry.session_start = now;
  } else if (!reachable && entry.online) {
    entry.online = false;
    sessions_.push_back(
        SessionRecord{entry.peer, entry.session_start, now, false});
  }
  schedule_probe(index);
}

void UptimeProber::finish() {
  if (finished_) return;
  finished_ = true;
  const sim::Time now = network_.now();
  for (auto& entry : tracked_) {
    entry.timer.cancel();
    if (entry.online) {
      sessions_.push_back(
          SessionRecord{entry.peer, entry.session_start, now, true});
    }
  }
}

}  // namespace ipfs::crawler
