// Census analysis over crawl and probe data — the aggregations behind the
// paper's deployment figures: geography (Figure 5), reliable/unreachable
// splits (Figure 7a/b), PeerIDs per IP (Figure 7c), AS distribution
// (Figure 7d, Table 2), cloud share (Table 3) and churn (Figure 8).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crawler/crawler.h"
#include "crawler/uptime_prober.h"
#include "world/population.h"

namespace ipfs::crawler {

struct CountryShare {
  std::string code;
  std::size_t count = 0;
  double share = 0.0;
};

// Country distribution of crawled peers by geolocating their addresses;
// multihomed peers are counted once per country (Figure 5's note).
std::vector<CountryShare> country_distribution(
    const CrawlResult& crawl, const world::GeoDatabase& geodb);

// Same aggregation over an arbitrary peer subset (Figure 7a/7b use the
// reliable and never-reachable subsets).
std::vector<CountryShare> country_distribution_of(
    const std::vector<PeerObservation>& observations,
    const world::GeoDatabase& geodb);

// PeerIDs per IP address, descending (Figure 7c's CDF input).
std::vector<std::size_t> peers_per_ip(const CrawlResult& crawl);

struct AsShare {
  std::uint32_t asn = 0;
  std::string name;
  int caida_rank = 0;
  std::size_t ip_count = 0;
  double share = 0.0;
};

// Unique IPs per AS, heaviest first (Figure 7d, Table 2).
std::vector<AsShare> as_distribution(const CrawlResult& crawl,
                                     const world::GeoDatabase& geodb);

struct CloudShare {
  std::string provider;  // "Non-Cloud" for the remainder row
  std::size_t ip_count = 0;
  double share = 0.0;
};

// Cloud-provider share of unique IPs (Table 3).
std::vector<CloudShare> cloud_distribution(const CrawlResult& crawl,
                                           const world::GeoDatabase& geodb);

// --- Churn (Figure 8) ------------------------------------------------------

// Session-length samples per country, following the long-session handling
// of the paper's references: only sessions that STARTED in the first half
// of [window_start, window_end] are counted, and sessions still alive at
// the window end enter at their censored (observed) length.
std::map<std::string, std::vector<double>> session_lengths_by_country(
    const std::vector<SessionRecord>& sessions,
    const world::GeoDatabase& geodb, sim::Time window_start,
    sim::Time window_end);

// Peers seen online for more than `threshold` fraction of probes across
// the window — the "reliable" subset of Figure 7a.
std::vector<PeerObservation> reliable_peers(
    const CrawlResult& crawl, const std::vector<SessionRecord>& sessions,
    sim::Time window_start, sim::Time window_end, double threshold = 0.9);

}  // namespace ipfs::crawler
