// The DHT crawler (paper Section 4.1): starting from the bootstrap
// peers, recursively asks every reachable DHT server for the entries in
// its k-buckets until no new peers appear, recording reachability,
// addresses and timing per peer.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "dht/dht_node.h"
#include "sim/network.h"

namespace ipfs::crawler {

struct PeerObservation {
  dht::PeerRef peer;
  bool reached = false;             // connected AND answered the crawl RPC
  sim::Duration connect_duration = 0;
  sim::Duration crawl_duration = 0;  // RPC round trip after connecting
  std::vector<std::string> ip_addresses;  // extracted from multiaddrs
};

struct CrawlResult {
  sim::Time started_at = 0;
  sim::Time finished_at = 0;
  std::vector<PeerObservation> observations;

  std::size_t total() const { return observations.size(); }
  std::size_t dialable() const;
  std::size_t undialable() const { return total() - dialable(); }
  std::size_t unique_ip_count() const;
  std::size_t multiaddress_count() const;
};

class Crawler {
 public:
  // The crawler participates as a plain (client) node of the network.
  Crawler(sim::Network& network, sim::NodeId self,
          std::vector<dht::PeerRef> bootstrap, int concurrency = 16);

  // One full crawl round. `done` receives every discovered peer.
  void crawl(std::function<void(CrawlResult)> done);

 private:
  struct Run;

  sim::Network& network_;
  sim::NodeId self_;
  std::vector<dht::PeerRef> bootstrap_;
  int concurrency_;
};

// Extracts the textual IPv4 addresses of a peer's multiaddrs.
std::vector<std::string> extract_ips(const dht::PeerRef& peer);

}  // namespace ipfs::crawler
