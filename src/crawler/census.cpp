#include "crawler/census.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "world/geography.h"

namespace ipfs::crawler {
namespace {

std::vector<CountryShare> to_country_shares(
    const std::map<std::string, std::size_t>& counts) {
  std::size_t total = 0;
  for (const auto& [code, count] : counts) total += count;
  std::vector<CountryShare> out;
  for (const auto& [code, count] : counts) {
    out.push_back({code, count,
                   total == 0 ? 0.0
                              : static_cast<double>(count) /
                                    static_cast<double>(total)});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count > b.count;
  });
  return out;
}

}  // namespace

std::vector<CountryShare> country_distribution_of(
    const std::vector<PeerObservation>& observations,
    const world::GeoDatabase& geodb) {
  std::map<std::string, std::size_t> counts;
  for (const auto& obs : observations) {
    // Multihoming: a peer with addresses in several countries is counted
    // once per country (as in Figure 5).
    std::set<int> seen_countries;
    for (const auto& ip : obs.ip_addresses) {
      const auto* info = geodb.lookup(ip);
      if (info == nullptr) continue;
      if (!seen_countries.insert(info->country).second) continue;
      counts[std::string(world::countries()[info->country].code)]++;
    }
  }
  return to_country_shares(counts);
}

std::vector<CountryShare> country_distribution(
    const CrawlResult& crawl, const world::GeoDatabase& geodb) {
  return country_distribution_of(crawl.observations, geodb);
}

std::vector<std::size_t> peers_per_ip(const CrawlResult& crawl) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& obs : crawl.observations)
    for (const auto& ip : obs.ip_addresses) ++counts[ip];
  std::vector<std::size_t> out;
  out.reserve(counts.size());
  for (const auto& [ip, count] : counts) out.push_back(count);
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::vector<AsShare> as_distribution(const CrawlResult& crawl,
                                     const world::GeoDatabase& geodb) {
  // Unique IPs per AS.
  std::unordered_map<std::string, std::size_t> ip_to_as;
  for (const auto& obs : crawl.observations) {
    for (const auto& ip : obs.ip_addresses) {
      const auto* info = geodb.lookup(ip);
      if (info != nullptr) ip_to_as.emplace(ip, info->as_index);
    }
  }
  std::unordered_map<std::size_t, std::size_t> as_counts;
  for (const auto& [ip, as_index] : ip_to_as) ++as_counts[as_index];

  const auto& catalog = world::autonomous_systems();
  std::vector<AsShare> out;
  out.reserve(as_counts.size());
  const double total = static_cast<double>(ip_to_as.size());
  for (const auto& [as_index, count] : as_counts) {
    const auto& spec = catalog[as_index];
    out.push_back({spec.asn, spec.name, spec.caida_rank, count,
                   static_cast<double>(count) / total});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.ip_count > b.ip_count;
  });
  return out;
}

std::vector<CloudShare> cloud_distribution(const CrawlResult& crawl,
                                           const world::GeoDatabase& geodb) {
  std::unordered_map<std::string, int> ip_to_cloud;
  for (const auto& obs : crawl.observations) {
    for (const auto& ip : obs.ip_addresses) {
      const auto* info = geodb.lookup(ip);
      if (info != nullptr) ip_to_cloud.emplace(ip, info->cloud_provider);
    }
  }
  std::map<int, std::size_t> counts;  // -1 = non-cloud
  for (const auto& [ip, cloud] : ip_to_cloud) ++counts[cloud];

  const auto& clouds = world::cloud_providers();
  const double total = static_cast<double>(ip_to_cloud.size());
  std::vector<CloudShare> out;
  for (const auto& [cloud, count] : counts) {
    CloudShare share;
    share.provider = cloud < 0 ? "Non-Cloud" : clouds[cloud].name;
    share.ip_count = count;
    share.share = static_cast<double>(count) / total;
    out.push_back(std::move(share));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    // Non-Cloud row last, clouds by size.
    if ((a.provider == "Non-Cloud") != (b.provider == "Non-Cloud"))
      return b.provider == "Non-Cloud";
    return a.ip_count > b.ip_count;
  });
  return out;
}

std::map<std::string, std::vector<double>> session_lengths_by_country(
    const std::vector<SessionRecord>& sessions,
    const world::GeoDatabase& geodb, sim::Time window_start,
    sim::Time window_end) {
  const sim::Time half = window_start + (window_end - window_start) / 2;
  std::map<std::string, std::vector<double>> out;
  for (const auto& session : sessions) {
    if (session.start < window_start || session.start > half) continue;
    const auto ips = extract_ips(session.peer);
    if (ips.empty()) continue;
    const auto* info = geodb.lookup(ips.front());
    if (info == nullptr) continue;
    const auto code = std::string(world::countries()[info->country].code);
    out[code].push_back(sim::to_seconds(session.length()) / 3600.0);  // hours
  }
  return out;
}

std::vector<PeerObservation> reliable_peers(
    const CrawlResult& crawl, const std::vector<SessionRecord>& sessions,
    sim::Time window_start, sim::Time window_end, double threshold) {
  // Total online time per peer across the window.
  std::map<std::vector<std::uint8_t>, sim::Duration> online_time;
  for (const auto& session : sessions) {
    const sim::Time start = std::max(session.start, window_start);
    const sim::Time end = std::min(session.end, window_end);
    if (end <= start) continue;
    online_time[session.peer.id.encode()] += end - start;
  }
  const auto window = static_cast<double>(window_end - window_start);
  std::vector<PeerObservation> out;
  for (const auto& obs : crawl.observations) {
    const auto it = online_time.find(obs.peer.id.encode());
    if (it == online_time.end()) continue;
    if (static_cast<double>(it->second) / window >= threshold)
      out.push_back(obs);
  }
  return out;
}

}  // namespace ipfs::crawler
