#include "crawler/crawler.h"

#include <deque>
#include <memory>

#include "dht/messages.h"

namespace ipfs::crawler {

std::vector<std::string> extract_ips(const dht::PeerRef& peer) {
  std::vector<std::string> out;
  for (const auto& address : peer.addresses) {
    const auto ip = address.value_for(multiformats::MultiaddrProtocol::kIp4);
    if (!ip || ip->size() != 4) continue;
    out.push_back(std::to_string((*ip)[0]) + "." + std::to_string((*ip)[1]) +
                  "." + std::to_string((*ip)[2]) + "." +
                  std::to_string((*ip)[3]));
  }
  return out;
}

std::size_t CrawlResult::dialable() const {
  std::size_t count = 0;
  for (const auto& obs : observations)
    if (obs.reached) ++count;
  return count;
}

std::size_t CrawlResult::unique_ip_count() const {
  std::unordered_set<std::string> ips;
  for (const auto& obs : observations)
    for (const auto& ip : obs.ip_addresses) ips.insert(ip);
  return ips.size();
}

std::size_t CrawlResult::multiaddress_count() const {
  std::size_t count = 0;
  for (const auto& obs : observations) count += obs.peer.addresses.size();
  return count;
}

// Shared state of one crawl round.
struct Crawler::Run : std::enable_shared_from_this<Crawler::Run> {
  sim::Network* network = nullptr;
  sim::NodeId self = sim::kInvalidNode;
  int concurrency = 16;
  std::function<void(CrawlResult)> done;

  std::deque<dht::PeerRef> frontier;
  // Visited set keyed by the dense sim NodeId (unique per peer), as a
  // bitmap over the id space. The crawl graph hands us every peer ~64
  // times (once per routing table listing it), so this dedup runs
  // millions of times per census — encoding PeerIDs into a string set
  // here used to dominate the whole event phase.
  std::vector<std::uint8_t> seen;
  CrawlResult result;
  int in_flight = 0;
  bool finished = false;

  void enqueue(const dht::PeerRef& peer) {
    if (peer.node == self) return;
    if (peer.node >= seen.size()) seen.resize(peer.node + 1, 0);
    if (seen[peer.node] != 0) return;
    seen[peer.node] = 1;
    frontier.push_back(peer);
  }

  void pump() {
    if (finished) return;
    while (in_flight < concurrency && !frontier.empty()) {
      dht::PeerRef next = frontier.front();
      frontier.pop_front();
      visit(std::move(next));
    }
    if (in_flight == 0 && frontier.empty()) {
      finished = true;
      result.finished_at = network->now();
      done(std::move(result));
    }
  }

  void visit(dht::PeerRef peer) {
    ++in_flight;
    auto self_ptr = shared_from_this();
    const sim::Time connect_start = network->now();
    network->connect(
        self, peer.node,
        [self_ptr, peer, connect_start](bool ok, sim::Duration elapsed) {
          if (!ok) {
            PeerObservation obs;
            obs.peer = peer;
            obs.reached = false;
            obs.connect_duration = elapsed;
            obs.ip_addresses = extract_ips(peer);
            self_ptr->result.observations.push_back(std::move(obs));
            --self_ptr->in_flight;
            self_ptr->pump();
            return;
          }
          const sim::Time rpc_start = self_ptr->network->now();
          self_ptr->network->request(
              self_ptr->self, peer.node,
              std::make_shared<dht::ListBucketsRequest>(),
              dht::kRequestBaseBytes, sim::seconds(10),
              [self_ptr, peer, connect_start, rpc_start](
                  sim::RpcStatus status, const sim::MessagePtr& message) {
                PeerObservation obs;
                obs.peer = peer;
                obs.connect_duration =
                    rpc_start - connect_start;
                obs.crawl_duration =
                    self_ptr->network->now() - rpc_start;
                obs.ip_addresses = extract_ips(peer);
                if (status == sim::RpcStatus::kOk) {
                  obs.reached = true;
                  if (const auto* buckets =
                          dynamic_cast<const dht::ListBucketsResponse*>(
                              message.get())) {
                    for (const auto& entry : buckets->peers)
                      self_ptr->enqueue(entry);
                  }
                }
                self_ptr->result.observations.push_back(std::move(obs));
                // Keep the crawler's connection count bounded.
                self_ptr->network->disconnect(self_ptr->self, peer.node);
                --self_ptr->in_flight;
                self_ptr->pump();
              });
        });
  }
};

Crawler::Crawler(sim::Network& network, sim::NodeId self,
                 std::vector<dht::PeerRef> bootstrap, int concurrency)
    : network_(network),
      self_(self),
      bootstrap_(std::move(bootstrap)),
      concurrency_(concurrency) {}

void Crawler::crawl(std::function<void(CrawlResult)> done) {
  auto run = std::make_shared<Run>();
  run->network = &network_;
  run->self = self_;
  run->concurrency = concurrency_;
  run->done = std::move(done);
  run->result.started_at = network_.now();
  for (const auto& peer : bootstrap_) run->enqueue(peer);
  run->pump();
}

}  // namespace ipfs::crawler
