// Uptime prober (paper Section 4.1): periodically revisits discovered
// peers and records their sessions (distinct, continuous periods online).
// The probe interval adapts to 0.5x the currently observed uptime,
// clamped to [30 s, 15 min] — peers observed online for a long time are
// probed less often.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "dht/messages.h"
#include "sim/network.h"

namespace ipfs::crawler {

constexpr sim::Duration kMinProbeInterval = sim::seconds(30);
constexpr sim::Duration kMaxProbeInterval = sim::minutes(15);

struct SessionRecord {
  dht::PeerRef peer;
  sim::Time start = 0;
  sim::Time end = 0;
  bool censored = false;  // still online when probing stopped

  sim::Duration length() const { return end - start; }
};

class UptimeProber {
 public:
  UptimeProber(sim::Network& network, sim::NodeId self);

  // Starts probing `peer` (idempotent per PeerID).
  void track(const dht::PeerRef& peer);

  // Ends the measurement: closes censored sessions at `now` and stops
  // all probe timers.
  void finish();

  const std::vector<SessionRecord>& sessions() const { return sessions_; }
  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  struct Tracked {
    dht::PeerRef peer;
    bool online = false;
    sim::Time session_start = 0;
    sim::Timer timer;
  };

  void schedule_probe(std::size_t index);
  void probe(std::size_t index);
  void on_probe_result(std::size_t index, bool reachable);

  sim::Network& network_;
  sim::NodeId self_;
  bool finished_ = false;
  std::vector<Tracked> tracked_;
  std::map<std::vector<std::uint8_t>, std::size_t> index_by_peer_;
  std::vector<SessionRecord> sessions_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace ipfs::crawler
