#include "transport/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "transport/codec.h"

namespace ipfs::transport {
namespace {

constexpr std::uint32_t kMagic = 0x53465049;  // "IPFS" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 22;
// Largest UDP payload over IPv4 minus our header.
constexpr std::size_t kMaxPayload = 65507 - kHeaderBytes;
constexpr sim::Duration kDialTimeout = sim::seconds(5);

enum Kind : std::uint8_t {
  kDatagram = 0,
  kRequest = 1,
  kResponse = 2,
  kConnect = 3,
  kConnectAck = 4,
  kDisconnect = 5,
};

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// One clock epoch per process so several transports in one process (the
// parity test) agree on `now`.
sim::Time wall_now() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace

SocketTransport::SocketTransport(PeerAddr local, const std::string& bind_ip,
                                 std::uint16_t port)
    : local_(local), metrics_([] { return wall_now(); }) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("SocketTransport: socket() failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("SocketTransport: bad bind address " + bind_ip);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    throw std::runtime_error("SocketTransport: bind() failed on " + bind_ip +
                             ":" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketTransport::add_peer(PeerAddr peer, const std::string& ip,
                               std::uint16_t port) {
  Endpoint ep;
  in_addr parsed{};
  if (::inet_pton(AF_INET, ip.c_str(), &parsed) != 1) {
    throw std::runtime_error("SocketTransport: bad peer address " + ip);
  }
  ep.ip = parsed.s_addr;
  ep.port = htons(port);
  peers_[peer] = ep;
}

sim::Time SocketTransport::now() const { return wall_now(); }

// --- Timers ----------------------------------------------------------------

namespace detail {
// Timer handle bridging a heap TimerState to the backend-agnostic Timer.
// Holds the state alive via shared_ptr<void> (TimerState is private to
// SocketTransport) and pokes its flags through raw pointers into it.
struct TimerHandle final : Timer::Impl {
  explicit TimerHandle(std::shared_ptr<void> s) : state(std::move(s)) {}
  std::shared_ptr<void> state;
  std::function<void()>* fn = nullptr;
  bool* cancelled = nullptr;
  bool* fired = nullptr;
  void cancel() override {
    if (cancelled != nullptr && !*fired) {
      *cancelled = true;
      if (fn != nullptr) *fn = nullptr;
    }
  }
  bool active() const override {
    return cancelled != nullptr && !*cancelled && !*fired;
  }
};
}  // namespace detail

Timer SocketTransport::arm(sim::Time when, std::function<void()> fn,
                           bool daemon) {
  auto state = std::make_shared<TimerState>();
  state->when = std::max(when, now());
  state->seq = next_timer_seq_++;
  state->fn = std::move(fn);
  state->daemon = daemon;
  timers_.push_back(state);
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const std::shared_ptr<TimerState>& a,
                    const std::shared_ptr<TimerState>& b) {
                   return std::tie(a->when, a->seq) > std::tie(b->when, b->seq);
                 });
  auto handle = std::make_shared<detail::TimerHandle>(state);
  handle->fn = &state->fn;
  handle->cancelled = &state->cancelled;
  handle->fired = &state->fired;
  return Timer(handle);
}

Timer SocketTransport::schedule_after(sim::Duration delay,
                                      std::function<void()> fn) {
  return arm(now() + std::max<sim::Duration>(delay, 0), std::move(fn), false);
}

Timer SocketTransport::schedule_daemon_after(sim::Duration delay,
                                             std::function<void()> fn) {
  return arm(now() + std::max<sim::Duration>(delay, 0), std::move(fn), true);
}

Timer SocketTransport::schedule_daemon_at(sim::Time when,
                                          std::function<void()> fn) {
  return arm(when, std::move(fn), true);
}

// --- Connections -----------------------------------------------------------

void SocketTransport::connect(PeerAddr peer, sim::DialCallback cb) {
  if (connected(peer)) {
    schedule_after(0, [cb = std::move(cb)] { cb(true, 0); });
    return;
  }
  if (peers_.find(peer) == peers_.end()) {
    schedule_after(0, [cb = std::move(cb)] { cb(false, 0); });
    return;
  }
  const sim::Time started = now();
  dials_[peer].push_back(
      PendingDial{std::move(cb), started, started + kDialTimeout});
  send_frame(kConnect, peer, 0, {});
}

void SocketTransport::disconnect(PeerAddr peer) {
  auto it = connected_.find(peer);
  if (it == connected_.end()) return;
  connected_.erase(it);
  if (peers_.find(peer) != peers_.end()) send_frame(kDisconnect, peer, 0, {});
}

bool SocketTransport::connected(PeerAddr peer) const {
  return connected_.find(peer) != connected_.end();
}

std::vector<PeerAddr> SocketTransport::connections() const {
  std::vector<PeerAddr> out;
  out.reserve(connected_.size());
  for (const auto& [peer, _] : connected_) out.push_back(peer);
  return out;
}

bool SocketTransport::peer_dialable(PeerAddr peer) const {
  return peers_.find(peer) != peers_.end();
}

int SocketTransport::handshake_round_trips(PeerAddr) const {
  // One round trip: connect / connect-ack.
  return 1;
}

void SocketTransport::complete_dials(PeerAddr peer, bool ok) {
  auto it = dials_.find(peer);
  if (it == dials_.end()) return;
  std::vector<PendingDial> pending = std::move(it->second);
  dials_.erase(it);
  const sim::Time now_us = now();
  for (auto& dial : pending) {
    if (dial.cb) dial.cb(ok, now_us - dial.started);
  }
}

// --- Messaging -------------------------------------------------------------

void SocketTransport::send_frame(std::uint8_t kind, PeerAddr to,
                                 std::uint64_t request_id,
                                 const std::vector<std::uint8_t>& payload) {
  auto it = peers_.find(to);
  if (it == peers_.end() || payload.size() > kMaxPayload) {
    metrics_.counter("transport.tx.dropped").inc();
    return;
  }
  std::vector<std::uint8_t> frame(kHeaderBytes + payload.size());
  put_u32(frame.data(), kMagic);
  frame[4] = kVersion;
  frame[5] = kind;
  put_u32(frame.data() + 6, static_cast<std::uint32_t>(local_));
  put_u64(frame.data() + 10, request_id);
  put_u32(frame.data() + 18, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = it->second.ip;
  addr.sin_port = it->second.port;
  ::sendto(fd_, frame.data(), frame.size(), 0,
           reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (kind == kDatagram || kind == kRequest || kind == kResponse) {
    metrics_.counter("transport.tx.messages").inc();
    metrics_.counter("transport.tx.bytes").inc(frame.size());
  }
}

void SocketTransport::send(PeerAddr to, sim::MessagePtr message,
                           std::size_t /*bytes*/) {
  auto payload = encode_message(*message);
  if (!payload) {
    metrics_.counter("transport.tx.dropped").inc();
    return;
  }
  send_frame(kDatagram, to, 0, *payload);
}

void SocketTransport::request(PeerAddr to, sim::MessagePtr request,
                              std::size_t /*request_bytes*/,
                              sim::Duration timeout, sim::ResponseCallback cb) {
  if (peers_.find(to) == peers_.end()) {
    schedule_after(0, [cb = std::move(cb)] {
      cb(sim::RpcStatus::kUnreachable, nullptr);
    });
    return;
  }
  auto payload = encode_message(*request);
  if (!payload) {
    schedule_after(
        0, [cb = std::move(cb)] { cb(sim::RpcStatus::kReset, nullptr); });
    return;
  }
  const std::uint64_t id = next_request_id_++;
  requests_[id] = PendingRequest{std::move(cb), now() + timeout};
  send_frame(kRequest, to, id, *payload);
}

void SocketTransport::set_request_handler(sim::RequestHandler handler) {
  request_handler_ = std::move(handler);
}

void SocketTransport::set_message_handler(sim::MessageHandler handler) {
  message_handler_ = std::move(handler);
}

// --- Event loop ------------------------------------------------------------

void SocketTransport::dispatch(const std::uint8_t* data, std::size_t len,
                               const Endpoint& source) {
  if (len < kHeaderBytes) return;
  if (get_u32(data) != kMagic || data[4] != kVersion) return;
  const std::uint8_t kind = data[5];
  const PeerAddr from = static_cast<PeerAddr>(get_u32(data + 6));
  const std::uint64_t request_id = get_u64(data + 10);
  const std::size_t payload_len = get_u32(data + 18);
  if (payload_len != len - kHeaderBytes) return;
  const std::span<const std::uint8_t> payload(data + kHeaderBytes,
                                              payload_len);

  // Learn the sender's endpoint so replies and later dials work without
  // pre-registration (a daemon only needs bootstrap entries).
  if (peers_.find(from) == peers_.end()) peers_[from] = source;

  switch (kind) {
    case kConnect:
      connected_[from] = true;
      send_frame(kConnectAck, from, 0, {});
      break;
    case kConnectAck:
      connected_[from] = true;
      complete_dials(from, true);
      break;
    case kDisconnect:
      connected_.erase(from);
      break;
    case kDatagram: {
      if (!message_handler_) break;
      sim::MessagePtr message = decode_message(payload);
      if (!message) break;
      metrics_.counter("transport.rx.messages").inc();
      metrics_.counter("transport.rx.bytes").inc(len);
      message_handler_(from, message);
      break;
    }
    case kRequest: {
      if (!request_handler_) break;
      sim::MessagePtr message = decode_message(payload);
      if (!message) break;
      metrics_.counter("transport.rx.messages").inc();
      metrics_.counter("transport.rx.bytes").inc(len);
      request_handler_(
          from, message,
          [this, from, request_id](sim::MessagePtr response,
                                   std::size_t /*bytes*/) {
            auto encoded = encode_message(*response);
            if (!encoded) {
              metrics_.counter("transport.tx.dropped").inc();
              return;
            }
            send_frame(kResponse, from, request_id, *encoded);
          });
      break;
    }
    case kResponse: {
      auto it = requests_.find(request_id);
      if (it == requests_.end()) break;  // late: timeout already fired
      sim::ResponseCallback cb = std::move(it->second.cb);
      requests_.erase(it);
      sim::MessagePtr message = decode_message(payload);
      if (!message) {
        cb(sim::RpcStatus::kReset, nullptr);
        break;
      }
      metrics_.counter("transport.rx.messages").inc();
      metrics_.counter("transport.rx.bytes").inc(len);
      cb(sim::RpcStatus::kOk, message);
      break;
    }
    default:
      break;
  }
}

sim::Time SocketTransport::next_deadline() const {
  sim::Time next = -1;
  auto consider = [&next](sim::Time t) {
    if (next < 0 || t < next) next = t;
  };
  if (!timers_.empty()) consider(timers_.front()->when);
  for (const auto& [_, req] : requests_) consider(req.deadline);
  for (const auto& [_, pending] : dials_) {
    for (const auto& dial : pending) consider(dial.deadline);
  }
  return next;
}

void SocketTransport::fire_due(sim::Time now_us) {
  // Timers. Entries armed by callbacks for a time <= now_us wait for the
  // next poll_once pass, bounding this loop.
  const std::size_t armed_before = next_timer_seq_;
  auto cmp = [](const std::shared_ptr<TimerState>& a,
                const std::shared_ptr<TimerState>& b) {
    return std::tie(a->when, a->seq) > std::tie(b->when, b->seq);
  };
  while (!timers_.empty() && timers_.front()->when <= now_us &&
         timers_.front()->seq < armed_before) {
    std::pop_heap(timers_.begin(), timers_.end(), cmp);
    auto state = std::move(timers_.back());
    timers_.pop_back();
    if (state->cancelled) continue;
    state->fired = true;
    if (state->fn) state->fn();
  }

  // Request timeouts.
  std::vector<std::uint64_t> timed_out;
  for (const auto& [id, req] : requests_) {
    if (req.deadline <= now_us) timed_out.push_back(id);
  }
  for (std::uint64_t id : timed_out) {
    auto it = requests_.find(id);
    if (it == requests_.end()) continue;
    sim::ResponseCallback cb = std::move(it->second.cb);
    requests_.erase(it);
    cb(sim::RpcStatus::kTimeout, nullptr);
  }

  // Dial timeouts.
  std::vector<PeerAddr> dial_expired;
  for (auto& [peer, pending] : dials_) {
    if (!pending.empty() && pending.front().deadline <= now_us) {
      dial_expired.push_back(peer);
    }
  }
  for (PeerAddr peer : dial_expired) complete_dials(peer, false);
}

bool SocketTransport::poll_once(sim::Duration max_wait) {
  sim::Time wake = now() + std::max<sim::Duration>(max_wait, 0);
  const sim::Time deadline = next_deadline();
  if (deadline >= 0 && deadline < wake) wake = deadline;

  const sim::Time wait_us = std::max<sim::Time>(wake - now(), 0);
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>((wait_us + 999) / 1000);
  const int ready = ::poll(&pfd, 1, timeout_ms);

  bool did_work = false;
  if (ready > 0 && (pfd.revents & POLLIN) != 0) {
    std::uint8_t buffer[65536];
    for (;;) {
      sockaddr_in src{};
      socklen_t src_len = sizeof(src);
      const ssize_t n =
          ::recvfrom(fd_, buffer, sizeof(buffer), 0,
                     reinterpret_cast<sockaddr*>(&src), &src_len);
      if (n < 0) break;  // EWOULDBLOCK: drained
      Endpoint source{src.sin_addr.s_addr, src.sin_port};
      dispatch(buffer, static_cast<std::size_t>(n), source);
      did_work = true;
    }
  }

  const std::size_t timers_before = timers_.size();
  const std::size_t requests_before = requests_.size();
  fire_due(now());
  did_work = did_work || timers_.size() != timers_before ||
             requests_.size() != requests_before;
  return did_work;
}

void SocketTransport::run_for(sim::Duration duration) {
  const sim::Time end = now() + duration;
  while (now() < end) poll_once(end - now());
}

bool SocketTransport::idle() const {
  if (!requests_.empty()) return false;
  for (const auto& [_, pending] : dials_) {
    if (!pending.empty()) return false;
  }
  for (const auto& timer : timers_) {
    if (!timer->daemon && !timer->cancelled) return false;
  }
  return true;
}

}  // namespace ipfs::transport
