// Real-socket Transport backend: UDP datagrams on a poll(2) event loop.
//
// Where SimTransport delegates to the discrete-event fabric, this backend
// moves the same protocol messages between actual processes: each message
// is serialized with transport/codec.h and shipped as one UDP datagram
// with a fixed 22-byte frame header. A static peer table (add_peer) maps
// PeerAddr values to UDP endpoints — the multi-process examples/ipfsd
// cluster assigns node index i the address i, so the sim-era NodeId keeps
// working as the peer identity on the wire.
//
// Frame layout (little-endian):
//
//   [magic u32 "IPFS"][version u8][kind u8][from u32]
//   [request_id u64][payload_len u32][payload...]
//
// Kinds: datagram (send), request / response (request), and the
// connect / connect-ack / disconnect control frames backing the
// Transport connection surface. Payloads are codec encodings; control
// frames carry none. One message per datagram caps payloads at ~64 KiB,
// comfortably above every protocol message this codebase emits (blocks
// are ≤ 256 KiB chunks only in theory; the repo's scenarios move blocks
// well under the limit — oversized sends are dropped and counted).
//
// Threading model: none. The owner drives the loop explicitly via
// poll_once()/run_for() from a single thread; timers, RPC timeouts and
// dial timeouts all fire inside poll_once. This keeps the backend
// steppable from tests (tests/transport_parity_test.cpp runs two
// instances in one process and round-robins their loops).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/transport.h"

namespace ipfs::transport {

class SocketTransport final : public Transport {
 public:
  // Binds a UDP socket on bind_ip:port (port 0 picks an ephemeral port;
  // read it back with port()). Throws std::runtime_error when the socket
  // cannot be created or bound.
  SocketTransport(PeerAddr local, const std::string& bind_ip,
                  std::uint16_t port);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Registers `peer`'s UDP endpoint. Dials and sends to unregistered
  // peers fail (kUnreachable / dropped); inbound frames from unknown
  // peers auto-register the sender's source endpoint, so a cluster only
  // needs bootstrap entries to converge.
  void add_peer(PeerAddr peer, const std::string& ip, std::uint16_t port);

  // --- Event loop ---------------------------------------------------------

  // Waits up to `max_wait` for a readable socket or a due timer, then
  // drains every pending datagram and fires everything due. Returns true
  // when any datagram, timer, timeout or dial completion was processed.
  bool poll_once(sim::Duration max_wait);
  // Drives poll_once until `duration` wall time has elapsed.
  void run_for(sim::Duration duration);
  // True when nothing foreground is outstanding: no pending requests, no
  // in-flight dials, no non-daemon timers. (Daemon timers — periodic
  // maintenance — intentionally do not count, mirroring the simulator's
  // run-until-idle semantics.)
  bool idle() const;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  // --- Transport interface ------------------------------------------------

  PeerAddr local() const override { return local_; }
  bool online() const override { return true; }
  sim::Time now() const override;
  Timer schedule_after(sim::Duration delay, std::function<void()> fn) override;
  Timer schedule_daemon_after(sim::Duration delay,
                              std::function<void()> fn) override;
  Timer schedule_daemon_at(sim::Time when, std::function<void()> fn) override;
  void connect(PeerAddr peer, sim::DialCallback cb) override;
  void disconnect(PeerAddr peer) override;
  bool connected(PeerAddr peer) const override;
  std::vector<PeerAddr> connections() const override;
  bool peer_dialable(PeerAddr peer) const override;
  int handshake_round_trips(PeerAddr peer) const override;
  void send(PeerAddr to, sim::MessagePtr message, std::size_t bytes) override;
  void request(PeerAddr to, sim::MessagePtr request, std::size_t request_bytes,
               sim::Duration timeout, sim::ResponseCallback cb) override;
  void set_request_handler(sim::RequestHandler handler) override;
  void set_message_handler(sim::MessageHandler handler) override;
  metrics::Registry& metrics() override { return metrics_; }

 private:
  struct Endpoint {
    std::uint32_t ip = 0;    // network byte order
    std::uint16_t port = 0;  // network byte order
  };
  struct TimerState {
    sim::Time when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool daemon = false;
    bool cancelled = false;
    bool fired = false;
  };
  struct PendingRequest {
    sim::ResponseCallback cb;
    sim::Time deadline = 0;
  };
  struct PendingDial {
    sim::DialCallback cb;
    sim::Time started = 0;
    sim::Time deadline = 0;
  };

  Timer arm(sim::Time when, std::function<void()> fn, bool daemon);
  void send_frame(std::uint8_t kind, PeerAddr to, std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);
  void dispatch(const std::uint8_t* data, std::size_t len,
                const Endpoint& source);
  void fire_due(sim::Time now_us);
  sim::Time next_deadline() const;
  void complete_dials(PeerAddr peer, bool ok);

  PeerAddr local_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  metrics::Registry metrics_;

  std::map<PeerAddr, Endpoint> peers_;
  std::map<PeerAddr, bool> connected_;
  std::map<PeerAddr, std::vector<PendingDial>> dials_;
  std::map<std::uint64_t, PendingRequest> requests_;
  std::uint64_t next_request_id_ = 1;

  // Min-heap by (when, seq); seq breaks ties in creation order so equal
  // deadlines fire deterministically.
  std::vector<std::shared_ptr<TimerState>> timers_;
  std::uint64_t next_timer_seq_ = 0;

  sim::RequestHandler request_handler_;
  sim::MessageHandler message_handler_;
};

}  // namespace ipfs::transport
