#include "transport/codec.h"

#include <array>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "bitswap/bitswap.h"
#include "dht/messages.h"
#include "indexer/messages.h"
#include "pubsub/pubsub.h"

namespace ipfs::transport {
namespace {

// Wire tags are sim::MessageKind values (sim/message_kind.h): the same
// constant a message reports via kind() is what goes on the wire, so
// encode dispatch is a switch instead of a dynamic_cast chain and the
// two layers cannot drift apart.
using Tag = sim::MessageKind;

// Upper bound on any single length prefix. Untrusted input can claim any
// u32; rejecting early keeps a hostile 4 GB claim from turning into an
// allocation, without constraining real traffic (blocks are ≤ 256 KiB).
constexpr std::uint32_t kMaxFieldBytes = 64u * 1024 * 1024;

class Writer {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void str(const std::string& text) {
    bytes({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  }

  void key(const dht::Key& k) {
    out_.insert(out_.end(), k.bytes().begin(), k.bytes().end());
  }
  void peer_id(const multiformats::PeerId& id) { bytes(id.encode()); }
  void multiaddr(const multiformats::Multiaddr& addr) { bytes(addr.encode()); }
  void cid(const multiformats::Cid& c) { bytes(c.encode()); }

  void peer_ref(const dht::PeerRef& ref) {
    peer_id(ref.id);
    u32(ref.node);
    u32(static_cast<std::uint32_t>(ref.addresses.size()));
    for (const auto& addr : ref.addresses) multiaddr(addr);
  }
  void provider_record(const dht::ProviderRecord& record) {
    peer_ref(record.provider);
    i64(record.received_at);
  }
  void value_record(const dht::ValueRecord& record) {
    bytes(record.value);
    u64(record.sequence);
    i64(record.received_at);
  }
  void requester(const dht::LookupRequestBase& base) {
    peer_ref(base.requester);
    boolean(base.requester_is_server);
  }
  void message_id(const pubsub::MessageId& id) {
    u32(id.origin);
    u64(id.seqno);
  }

 private:
  std::vector<std::uint8_t> out_;
};

// Bounds-checked reader: every accessor sets fail() and returns a
// default instead of walking past the buffer, so a decode of hostile
// bytes degrades to nullptr, never UB.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool fail() const { return fail_; }
  bool exhausted() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(fixed(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail_ = true;
    return v == 1;
  }

  std::span<const std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (fail_ || n > kMaxFieldBytes || !need(n)) return {};
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  std::string str() {
    const auto view = bytes();
    return {reinterpret_cast<const char*>(view.data()), view.size()};
  }

  // Length prefix of a repeated field. Each element occupies at least
  // `min_element_bytes` on the wire, so a claimed count larger than the
  // remaining buffer could ever hold is rejected before any allocation.
  std::uint32_t count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (fail_) return 0;
    if (min_element_bytes > 0 &&
        n > (data_.size() - pos_) / min_element_bytes) {
      fail_ = true;
      return 0;
    }
    return n;
  }

  dht::Key key() {
    std::array<std::uint8_t, 32> raw{};
    if (!need(raw.size())) return dht::Key{};
    std::memcpy(raw.data(), data_.data() + pos_, raw.size());
    pos_ += raw.size();
    return dht::Key(raw);
  }
  multiformats::PeerId peer_id() {
    const auto view = bytes();
    auto hash = multiformats::Multihash::decode(view);
    if (!hash) {
      fail_ = true;
      return {};
    }
    return multiformats::PeerId(std::move(*hash));
  }
  multiformats::Multiaddr multiaddr() {
    const auto view = bytes();
    auto addr = multiformats::Multiaddr::decode(view);
    if (!addr) {
      fail_ = true;
      return {};
    }
    return std::move(*addr);
  }
  multiformats::Cid cid() {
    const auto view = bytes();
    auto parsed = multiformats::Cid::decode(view);
    if (!parsed) {
      fail_ = true;
      return {};
    }
    return std::move(*parsed);
  }

  dht::PeerRef peer_ref() {
    dht::PeerRef ref;
    ref.id = peer_id();
    ref.node = u32();
    const std::uint32_t n = count(4);
    for (std::uint32_t i = 0; i < n && !fail_; ++i)
      ref.addresses.push_back(multiaddr());
    return ref;
  }
  dht::ProviderRecord provider_record() {
    dht::ProviderRecord record;
    record.provider = peer_ref();
    record.received_at = i64();
    return record;
  }
  dht::ValueRecord value_record() {
    dht::ValueRecord record;
    const auto view = bytes();
    record.value.assign(view.begin(), view.end());
    record.sequence = u64();
    record.received_at = i64();
    return record;
  }
  void requester(dht::LookupRequestBase& base) {
    base.requester = peer_ref();
    base.requester_is_server = boolean();
  }
  pubsub::MessageId message_id() {
    pubsub::MessageId id;
    id.origin = u32();
    id.seqno = u64();
    return id;
  }

 private:
  bool need(std::size_t n) {
    if (fail_ || data_.size() - pos_ < n) {
      fail_ = true;
      return false;
    }
    return true;
  }
  std::uint64_t fixed(int width) {
    if (!need(static_cast<std::size_t>(width))) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i)
      v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

void encode_gossip_rpc(Writer& w, const pubsub::GossipRpc& rpc) {
  w.u32(static_cast<std::uint32_t>(rpc.subscriptions.size()));
  for (const auto& sub : rpc.subscriptions) {
    w.str(sub.topic);
    w.boolean(sub.subscribe);
  }
  w.boolean(rpc.announce_reply);
  w.u32(static_cast<std::uint32_t>(rpc.publish.size()));
  for (const auto& message : rpc.publish) {
    w.message_id(message.id);
    w.str(message.topic);
    w.bytes(message.data);
  }
  w.u32(static_cast<std::uint32_t>(rpc.ihave.size()));
  for (const auto& ihave : rpc.ihave) {
    w.str(ihave.topic);
    w.u32(static_cast<std::uint32_t>(ihave.ids.size()));
    for (const auto& id : ihave.ids) w.message_id(id);
  }
  w.u32(static_cast<std::uint32_t>(rpc.iwant.size()));
  for (const auto& iwant : rpc.iwant) {
    w.u32(static_cast<std::uint32_t>(iwant.ids.size()));
    for (const auto& id : iwant.ids) w.message_id(id);
  }
  w.u32(static_cast<std::uint32_t>(rpc.graft.size()));
  for (const auto& graft : rpc.graft) w.str(graft.topic);
  w.u32(static_cast<std::uint32_t>(rpc.prune.size()));
  for (const auto& prune : rpc.prune) {
    w.str(prune.topic);
    w.u32(static_cast<std::uint32_t>(prune.px.size()));
    for (const sim::NodeId peer : prune.px) w.u32(peer);
  }
}

sim::MessagePtr decode_gossip_rpc(Reader& r) {
  auto rpc = std::make_shared<pubsub::GossipRpc>();
  std::uint32_t n = r.count(5);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::SubOpts sub;
    sub.topic = r.str();
    sub.subscribe = r.boolean();
    rpc->subscriptions.push_back(std::move(sub));
  }
  rpc->announce_reply = r.boolean();
  n = r.count(20);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::PubsubMessage message;
    message.id = r.message_id();
    message.topic = r.str();
    const auto view = r.bytes();
    message.data.assign(view.begin(), view.end());
    rpc->publish.push_back(std::move(message));
  }
  n = r.count(8);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::ControlIHave ihave;
    ihave.topic = r.str();
    const std::uint32_t ids = r.count(12);
    for (std::uint32_t j = 0; j < ids && !r.fail(); ++j)
      ihave.ids.push_back(r.message_id());
    rpc->ihave.push_back(std::move(ihave));
  }
  n = r.count(4);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::ControlIWant iwant;
    const std::uint32_t ids = r.count(12);
    for (std::uint32_t j = 0; j < ids && !r.fail(); ++j)
      iwant.ids.push_back(r.message_id());
    rpc->iwant.push_back(std::move(iwant));
  }
  n = r.count(4);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::ControlGraft graft;
    graft.topic = r.str();
    rpc->graft.push_back(std::move(graft));
  }
  n = r.count(8);
  for (std::uint32_t i = 0; i < n && !r.fail(); ++i) {
    pubsub::ControlPrune prune;
    prune.topic = r.str();
    const std::uint32_t px = r.count(4);
    for (std::uint32_t j = 0; j < px && !r.fail(); ++j)
      prune.px.push_back(r.u32());
    rpc->prune.push_back(std::move(prune));
  }
  return rpc;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode_message(
    const sim::Message& message) {
  Writer w;
  const Tag tag = message.kind();
  w.u16(static_cast<std::uint16_t>(tag));
  switch (tag) {
    case Tag::kFindNodeRequest: {
      const auto& m = static_cast<const dht::FindNodeRequest&>(message);
      w.requester(m);
      w.key(m.target);
      break;
    }
    case Tag::kFindNodeResponse: {
      const auto& m = static_cast<const dht::FindNodeResponse&>(message);
      w.u32(static_cast<std::uint32_t>(m.closer.size()));
      for (const auto& ref : m.closer) w.peer_ref(ref);
      break;
    }
    case Tag::kGetProvidersRequest: {
      const auto& m = static_cast<const dht::GetProvidersRequest&>(message);
      w.requester(m);
      w.key(m.key);
      break;
    }
    case Tag::kGetProvidersResponse: {
      const auto& m = static_cast<const dht::GetProvidersResponse&>(message);
      w.u32(static_cast<std::uint32_t>(m.providers.size()));
      for (const auto& record : m.providers) w.provider_record(record);
      w.u32(static_cast<std::uint32_t>(m.closer.size()));
      for (const auto& ref : m.closer) w.peer_ref(ref);
      break;
    }
    case Tag::kAddProviderRequest: {
      const auto& m = static_cast<const dht::AddProviderRequest&>(message);
      w.key(m.key);
      w.peer_ref(m.provider);
      break;
    }
    case Tag::kPutValueRequest: {
      const auto& m = static_cast<const dht::PutValueRequest&>(message);
      w.key(m.key);
      w.value_record(m.record);
      break;
    }
    case Tag::kGetValueRequest: {
      const auto& m = static_cast<const dht::GetValueRequest&>(message);
      w.requester(m);
      w.key(m.key);
      break;
    }
    case Tag::kGetValueResponse: {
      const auto& m = static_cast<const dht::GetValueResponse&>(message);
      w.boolean(m.record.has_value());
      if (m.record) w.value_record(*m.record);
      w.u32(static_cast<std::uint32_t>(m.closer.size()));
      for (const auto& ref : m.closer) w.peer_ref(ref);
      break;
    }
    case Tag::kListBucketsRequest:
      break;
    case Tag::kListBucketsResponse: {
      const auto& m = static_cast<const dht::ListBucketsResponse&>(message);
      w.u32(static_cast<std::uint32_t>(m.peers.size()));
      for (const auto& ref : m.peers) w.peer_ref(ref);
      break;
    }
    case Tag::kDialBackRequest:
      break;
    case Tag::kDialBackResponse: {
      const auto& m = static_cast<const dht::DialBackResponse&>(message);
      w.boolean(m.reachable);
      break;
    }
    case Tag::kWantHaveRequest: {
      const auto& m = static_cast<const bitswap::WantHaveRequest&>(message);
      w.cid(m.cid);
      break;
    }
    case Tag::kHaveResponse: {
      const auto& m = static_cast<const bitswap::HaveResponse&>(message);
      w.boolean(m.have);
      break;
    }
    case Tag::kWantBlockRequest: {
      const auto& m = static_cast<const bitswap::WantBlockRequest&>(message);
      w.cid(m.cid);
      w.boolean(m.send_dont_have);
      break;
    }
    case Tag::kBlockResponse: {
      const auto& m = static_cast<const bitswap::BlockResponse&>(message);
      w.cid(m.cid);
      w.boolean(m.data != nullptr);
      if (m.data) w.bytes(*m.data);
      w.boolean(m.dont_have);
      break;
    }
    case Tag::kGossipRpc: {
      const auto& m = static_cast<const pubsub::GossipRpc&>(message);
      encode_gossip_rpc(w, m);
      break;
    }
    case Tag::kAdvertiseMessage: {
      const auto& m = static_cast<const indexer::AdvertiseMessage&>(message);
      w.key(m.key);
      w.peer_ref(m.provider);
      break;
    }
    case Tag::kQueryRequest: {
      const auto& m = static_cast<const indexer::QueryRequest&>(message);
      w.key(m.key);
      break;
    }
    case Tag::kQueryResponse: {
      const auto& m = static_cast<const indexer::QueryResponse&>(message);
      w.u32(static_cast<std::uint32_t>(m.providers.size()));
      for (const auto& record : m.providers) w.provider_record(record);
      break;
    }
    default:
      return std::nullopt;  // kUnknown or an unregistered message type
  }
  return w.take();
}

sim::MessagePtr decode_message(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const auto tag = static_cast<Tag>(r.u16());
  if (r.fail()) return nullptr;
  sim::MessagePtr out;
  switch (tag) {
    case Tag::kFindNodeRequest: {
      auto m = std::make_shared<dht::FindNodeRequest>();
      r.requester(*m);
      m->target = r.key();
      out = std::move(m);
      break;
    }
    case Tag::kFindNodeResponse: {
      auto m = std::make_shared<dht::FindNodeResponse>();
      const std::uint32_t n = r.count(9);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->closer.push_back(r.peer_ref());
      out = std::move(m);
      break;
    }
    case Tag::kGetProvidersRequest: {
      auto m = std::make_shared<dht::GetProvidersRequest>();
      r.requester(*m);
      m->key = r.key();
      out = std::move(m);
      break;
    }
    case Tag::kGetProvidersResponse: {
      auto m = std::make_shared<dht::GetProvidersResponse>();
      std::uint32_t n = r.count(17);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->providers.push_back(r.provider_record());
      n = r.count(9);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->closer.push_back(r.peer_ref());
      out = std::move(m);
      break;
    }
    case Tag::kAddProviderRequest: {
      auto m = std::make_shared<dht::AddProviderRequest>();
      m->key = r.key();
      m->provider = r.peer_ref();
      out = std::move(m);
      break;
    }
    case Tag::kPutValueRequest: {
      auto m = std::make_shared<dht::PutValueRequest>();
      m->key = r.key();
      m->record = r.value_record();
      out = std::move(m);
      break;
    }
    case Tag::kGetValueRequest: {
      auto m = std::make_shared<dht::GetValueRequest>();
      r.requester(*m);
      m->key = r.key();
      out = std::move(m);
      break;
    }
    case Tag::kGetValueResponse: {
      auto m = std::make_shared<dht::GetValueResponse>();
      if (r.boolean()) m->record = r.value_record();
      const std::uint32_t n = r.count(9);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->closer.push_back(r.peer_ref());
      out = std::move(m);
      break;
    }
    case Tag::kListBucketsRequest:
      out = std::make_shared<dht::ListBucketsRequest>();
      break;
    case Tag::kListBucketsResponse: {
      auto m = std::make_shared<dht::ListBucketsResponse>();
      const std::uint32_t n = r.count(9);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->peers.push_back(r.peer_ref());
      out = std::move(m);
      break;
    }
    case Tag::kDialBackRequest:
      out = std::make_shared<dht::DialBackRequest>();
      break;
    case Tag::kDialBackResponse: {
      auto m = std::make_shared<dht::DialBackResponse>();
      m->reachable = r.boolean();
      out = std::move(m);
      break;
    }
    case Tag::kWantHaveRequest: {
      auto m = std::make_shared<bitswap::WantHaveRequest>();
      m->cid = r.cid();
      out = std::move(m);
      break;
    }
    case Tag::kHaveResponse: {
      auto m = std::make_shared<bitswap::HaveResponse>();
      m->have = r.boolean();
      out = std::move(m);
      break;
    }
    case Tag::kWantBlockRequest: {
      auto m = std::make_shared<bitswap::WantBlockRequest>();
      m->cid = r.cid();
      m->send_dont_have = r.boolean();
      out = std::move(m);
      break;
    }
    case Tag::kBlockResponse: {
      auto m = std::make_shared<bitswap::BlockResponse>();
      m->cid = r.cid();
      if (r.boolean()) {
        const auto view = r.bytes();
        m->data = std::make_shared<const std::vector<std::uint8_t>>(
            view.begin(), view.end());
      }
      m->dont_have = r.boolean();
      out = std::move(m);
      break;
    }
    case Tag::kGossipRpc:
      out = decode_gossip_rpc(r);
      break;
    case Tag::kAdvertiseMessage: {
      auto m = std::make_shared<indexer::AdvertiseMessage>();
      m->key = r.key();
      m->provider = r.peer_ref();
      out = std::move(m);
      break;
    }
    case Tag::kQueryRequest: {
      auto m = std::make_shared<indexer::QueryRequest>();
      m->key = r.key();
      out = std::move(m);
      break;
    }
    case Tag::kQueryResponse: {
      auto m = std::make_shared<indexer::QueryResponse>();
      const std::uint32_t n = r.count(17);
      for (std::uint32_t i = 0; i < n && !r.fail(); ++i)
        m->providers.push_back(r.provider_record());
      out = std::move(m);
      break;
    }
    default:
      return nullptr;
  }
  // Reject partial parses and trailing garbage alike: an encoded message
  // occupies the payload exactly.
  if (r.fail() || !r.exhausted()) return nullptr;
  return out;
}

}  // namespace ipfs::transport
