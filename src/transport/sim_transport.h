// Simulator backend for the transport interface: a view of one fabric
// node. Pure delegation — no extra scheduled events, no rng draws, no
// trace records beyond what sim::Network itself emits — so traces stay
// byte-identical to the pre-transport code paths.
#pragma once

#include "transport/transport.h"

namespace ipfs::transport {

class SimTransport final : public Transport {
 public:
  // Wraps an existing fabric node.
  SimTransport(sim::Network& network, sim::NodeId node)
      : network_(network), node_(node) {}
  // Adds a fresh node to the fabric and wraps it.
  SimTransport(sim::Network& network, const sim::NodeConfig& config)
      : network_(network), node_(network.add_node(config)) {}

  // Harness escape hatch (crash/restart orchestration, fault plans).
  // Only code under src/transport and the sim harness may name the
  // fabric type; protocol subsystems stay on the Transport interface.
  sim::Network& network() { return network_; }

  PeerAddr local() const override { return node_; }
  bool online() const override { return network_.online(node_); }

  sim::Time now() const override { return network_.now(); }
  Timer schedule_after(sim::Duration delay, std::function<void()> fn) override;
  Timer schedule_daemon_after(sim::Duration delay,
                              std::function<void()> fn) override;
  Timer schedule_daemon_at(sim::Time when, std::function<void()> fn) override;

  void connect(PeerAddr peer, sim::DialCallback cb) override {
    network_.connect(node_, peer, std::move(cb));
  }
  void disconnect(PeerAddr peer) override { network_.disconnect(node_, peer); }
  bool connected(PeerAddr peer) const override {
    return network_.connected(node_, peer);
  }
  std::vector<PeerAddr> connections() const override {
    return network_.connections_of(node_);
  }
  bool peer_dialable(PeerAddr peer) const override {
    return network_.config(peer).dialable;
  }
  int handshake_round_trips(PeerAddr peer) const override {
    return sim::handshake_round_trips(network_.config(peer).transport);
  }

  void send(PeerAddr to, sim::MessagePtr message, std::size_t bytes) override {
    network_.send(node_, to, std::move(message), bytes);
  }
  void request(PeerAddr to, sim::MessagePtr request, std::size_t request_bytes,
               sim::Duration timeout, sim::ResponseCallback cb) override {
    network_.request(node_, to, std::move(request), request_bytes, timeout,
                     std::move(cb));
  }
  void set_request_handler(sim::RequestHandler handler) override {
    network_.set_request_handler(node_, std::move(handler));
  }
  void set_message_handler(sim::MessageHandler handler) override {
    network_.set_message_handler(node_, std::move(handler));
  }

  metrics::Registry& metrics() override { return network_.metrics(); }

 private:
  sim::Network& network_;
  sim::NodeId node_;
};

}  // namespace ipfs::transport
