// Wire codec for the protocol message structs, used by SocketTransport
// to move the simulator's in-memory messages between real processes.
//
// In the simulator, messages travel as shared_ptr<sim::Message> with an
// *approximate* byte count for transfer-delay modelling; nothing is ever
// serialized. A real socket backend needs actual bytes, so this codec
// defines a concrete encoding:
//
//   frame payload := [tag u16][body]
//
// with little-endian fixed-width integers, u32 length prefixes on all
// variable-length fields, and nested multiformats objects (PeerId,
// Multiaddr, Cid) embedded as length-prefixed copies of their canonical
// binary encodings. Every message type in the DHT, Bitswap, GossipSub
// and indexer protocols has a tag; encode/decode round-trip exactly
// (tests/codec_fuzz_test.cpp drives randomized identity checks and
// garbage-rejection under ASan).
//
// decode_message() is safe on untrusted input: any truncated, oversized
// or otherwise malformed buffer yields nullptr, never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/network.h"

namespace ipfs::transport {

// Serializes `message`. Returns nullopt when the concrete type is not a
// known wire message (e.g. a test-local struct), which a socket backend
// reports as a send failure.
std::optional<std::vector<std::uint8_t>> encode_message(
    const sim::Message& message);

// Parses one encoded message. Returns nullptr on unknown tag, trailing
// garbage, truncation, or any length field that walks out of bounds.
sim::MessagePtr decode_message(std::span<const std::uint8_t> bytes);

}  // namespace ipfs::transport
