#include "transport/sim_transport.h"

namespace ipfs::transport {

namespace {

// Adapts the scheduler's native handle to the backend-agnostic one.
struct SimTimerImpl final : Timer::Impl {
  explicit SimTimerImpl(sim::Timer timer) : timer(std::move(timer)) {}
  void cancel() override { timer.cancel(); }
  bool active() const override { return timer.active(); }
  sim::Timer timer;
};

Timer wrap(sim::Timer timer) {
  return Timer(std::make_shared<SimTimerImpl>(std::move(timer)));
}

}  // namespace

Timer SimTransport::schedule_after(sim::Duration delay,
                                   std::function<void()> fn) {
  return wrap(network_.schedule_for(node_, delay, std::move(fn)));
}

Timer SimTransport::schedule_daemon_after(sim::Duration delay,
                                          std::function<void()> fn) {
  return wrap(network_.schedule_daemon_for(node_, delay, std::move(fn)));
}

Timer SimTransport::schedule_daemon_at(sim::Time when,
                                       std::function<void()> fn) {
  return wrap(network_.schedule_daemon_at_for(node_, when, std::move(fn)));
}

}  // namespace ipfs::transport
