// Pluggable messaging transport: the seam between protocol code and the
// wire (ISSUE 8, ROADMAP "same node code on real sockets").
//
// Every protocol subsystem (dht, bitswap, pubsub, ipns, indexer, routing,
// node, gateway) holds a Transport& and speaks only this interface: send a
// message, issue a request, register handlers, read the clock, arm timers.
// Two backends implement it:
//
//   SimTransport    — thin adapter over sim::Network; pure delegation, so
//                     a simulation driven through it produces the exact
//                     event/rng/trace stream the raw fabric produced
//                     before this API existed.
//   SocketTransport — real UDP datagrams on a poll(2) event loop with
//                     length-prefixed frames and wire codecs
//                     (transport/codec.h) for the protocol messages.
//
// The vocabulary types (Message, MessagePtr, RpcStatus, the handler
// signatures) are shared with the simulator so protocol structs need no
// changes; the sim-only surface (sim::Network itself, NodeConfig, fault
// injection, latency models) stays behind this interface and is only
// named by harness code (scenario, world, benches) and by the backends
// in this directory.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "metrics/metrics.h"
#include "sim/network.h"

namespace ipfs::transport {

// A peer's address as protocol code sees it. Under SimTransport this is
// the sim::NodeId; under SocketTransport it indexes a static peer table
// mapping addresses to UDP endpoints.
using PeerAddr = sim::NodeId;
inline constexpr PeerAddr kInvalidPeer = sim::kInvalidNode;

// Backend-agnostic cancellation handle, mirroring sim::Timer semantics:
//   - cancel() before the callback fires guarantees it never runs;
//   - cancel() after it fired (or on a default-constructed handle) is a
//     no-op; active() is false in both cases.
// sim::Timer cannot be constructed outside the scheduler, so each backend
// wraps its native handle in an Impl.
class Timer {
 public:
  struct Impl {
    virtual ~Impl() = default;
    virtual void cancel() = 0;
    virtual bool active() const = 0;
  };

  Timer() = default;
  explicit Timer(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  void cancel() {
    if (impl_) impl_->cancel();
  }
  bool active() const { return impl_ != nullptr && impl_->active(); }

 private:
  std::shared_ptr<Impl> impl_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // --- Identity & liveness ------------------------------------------------

  virtual PeerAddr local() const = 0;
  // Whether the local endpoint is up. Protocol maintenance loops check
  // this to go quiet across a crash (the restart re-arms them).
  virtual bool online() const = 0;

  // --- Clock & timers -----------------------------------------------------

  // Microseconds on the backend's clock: virtual time in the simulator,
  // monotonic wall time since start under sockets. Only differences and
  // ordering are meaningful to protocol code.
  virtual sim::Time now() const = 0;
  virtual Timer schedule_after(sim::Duration delay,
                               std::function<void()> fn) = 0;
  // Daemon timers (periodic maintenance) must not keep the backend's
  // event loop alive on their own.
  virtual Timer schedule_daemon_after(sim::Duration delay,
                                      std::function<void()> fn) = 0;
  virtual Timer schedule_daemon_at(sim::Time when, std::function<void()> fn) = 0;

  // --- Connections --------------------------------------------------------

  // Dials `peer`; the callback reports success and elapsed handshake
  // time. Dialing an already-connected peer succeeds immediately with
  // zero elapsed time.
  virtual void connect(PeerAddr peer, sim::DialCallback cb) = 0;
  virtual void disconnect(PeerAddr peer) = 0;
  virtual bool connected(PeerAddr peer) const = 0;
  // Snapshot of the connected-peer set (by value: callers iterate while
  // mutating the live set, e.g. ConnectionManager pruning).
  virtual std::vector<PeerAddr> connections() const = 0;
  // Reachability hint for AutoNAT-style logic: whether the backend
  // believes `peer` accepts inbound dials. Sockets report true (the peer
  // table only lists reachable endpoints).
  virtual bool peer_dialable(PeerAddr peer) const = 0;
  // Round trips a fresh handshake to `peer` costs (paper Section 6.1);
  // the node layer uses it to estimate dial-time shares.
  virtual int handshake_round_trips(PeerAddr peer) const = 0;

  // --- Messaging ----------------------------------------------------------

  // Fire-and-forget message of `bytes` wire size to a connected peer.
  virtual void send(PeerAddr to, sim::MessagePtr message,
                    std::size_t bytes) = 0;
  // Request/response with timeout. The callback fires exactly once with
  // kOk and the response, or a failure status and nullptr.
  virtual void request(PeerAddr to, sim::MessagePtr request,
                       std::size_t request_bytes, sim::Duration timeout,
                       sim::ResponseCallback cb) = 0;
  // Inbound dispatch. The `from` argument of both handlers is the remote
  // PeerAddr. At most one handler of each kind; nodes multiplex protocols
  // inside their handler (see node::IpfsNode).
  virtual void set_request_handler(sim::RequestHandler handler) = 0;
  virtual void set_message_handler(sim::MessageHandler handler) = 0;

  // --- Observability ------------------------------------------------------

  // Metrics registry this endpoint reports into. SimTransport returns the
  // shared per-simulation registry; SocketTransport owns a per-process
  // one. Both maintain transport.{tx,rx}.{messages,bytes} counters (see
  // docs/OBSERVABILITY.md).
  virtual metrics::Registry& metrics() = 0;
};

}  // namespace ipfs::transport
