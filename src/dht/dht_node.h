// A Kademlia DHT participant (paper Sections 2.3, 3.1, 3.2).
//
// DHT *servers* store provider/value records and answer queries; DHT
// *clients* (NAT'ed peers) only issue queries. New peers start as clients
// and upgrade to servers when AutoNAT dial-backs show them reachable.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "dht/key.h"
#include "dht/lookup.h"
#include "dht/messages.h"
#include "dht/record_store.h"
#include "dht/routing_table.h"
#include "transport/transport.h"

namespace ipfs::dht {

// AutoNAT upgrade threshold: "if more than three peers can connect...
// the new peer upgrades its participation to act as a server node".
constexpr int kAutonatThreshold = 3;
constexpr int kAutonatProbes = 5;

// Periodic sweep for expired provider records.
constexpr sim::Duration kExpirySweepInterval = sim::hours(1);

class DhtNode {
 public:
  enum class Mode { kClient, kServer };

  // `shared_store`: optional external record store. Hydra boosters run
  // many DHT "heads" (distinct PeerIDs) over one common record database
  // so a record stored with any head is served by all of them.
  DhtNode(transport::Transport& transport, multiformats::PeerId id,
          std::vector<multiformats::Multiaddr> addresses,
          RecordStore* shared_store = nullptr);
  // Simulator convenience: wraps fabric node `node` in an owned
  // SimTransport. Harness code (scenario, world, tests) constructs DHT
  // nodes this way; the protocol logic itself never names the fabric.
  DhtNode(sim::Network& network, sim::NodeId node, multiformats::PeerId id,
          std::vector<multiformats::Multiaddr> addresses,
          RecordStore* shared_store = nullptr);
  ~DhtNode();

  DhtNode(const DhtNode&) = delete;
  DhtNode& operator=(const DhtNode&) = delete;

  // Installs this node's request/message handlers directly on the network
  // fabric. Full IPFS nodes use an external dispatcher instead and route
  // into handle_request()/handle_message().
  void attach_to_network();

  // Dispatches a DHT request; returns false if the message type is not a
  // DHT message (so a multiplexer can try other protocols).
  bool handle_request(
      sim::NodeId from, const sim::MessagePtr& message,
      const std::function<void(sim::MessagePtr, std::size_t)>& respond);
  bool handle_message(sim::NodeId from, const sim::MessagePtr& message);

  // Joins the network: connects to `seeds`, runs AutoNAT, performs the
  // self-lookup that populates the routing table, then reports success.
  void bootstrap(std::vector<PeerRef> seeds, std::function<void(bool)> done);

  // --- Crash/restart (sim/faults.h) ---------------------------------------

  // Applies a process crash: in-flight lookups are aborted without their
  // callbacks firing, the routing table (soft state) is dropped, and the
  // maintenance timers stop. Stored records and the reprovide set survive
  // (they live in the datastore in the real stack). Call after
  // Network::set_online(node, false).
  void handle_crash();

  // Re-arms maintenance after a crash, running an immediate expiry sweep
  // first (under repeated crashes the hourly sweep may otherwise never
  // fire). The caller re-joins the network via bootstrap().
  void handle_restart();

  // --- Publication (Section 3.1) -----------------------------------------

  struct ProvideResult {
    bool ok = false;
    sim::Duration walk = 0;       // DHT walk to find the k closest peers
    sim::Duration rpc_batch = 0;  // fire-and-forget ADD_PROVIDER batch
    sim::Duration total = 0;
    int stores_attempted = 0;
    int stores_sent = 0;  // dials that succeeded and got the record pushed
    LookupResult walk_result;
  };

  void provide(const Key& key, std::function<void(ProvideResult)> done);

  struct StoreBatchResult {
    sim::Duration elapsed = 0;
    int attempted = 0;
    int sent = 0;
  };

  // The fire-and-forget ADD_PROVIDER batch on its own: dials every target
  // and pushes the record where the dial succeeds. Exposed separately so
  // the node layer can run its connection manager between the walk and
  // the batch (the sequence Figure 9a/9b/9c decomposes).
  void store_provider_records(const Key& key, std::vector<PeerRef> targets,
                              std::function<void(StoreBatchResult)> done);

  // Registers `key` for republication every kRepublishInterval (12 h).
  void start_reproviding(const Key& key);
  void stop_reproviding(const Key& key);

  // --- Retrieval support (Section 3.2) ------------------------------------

  // `parent_span` parents the walk's trace span under the caller's phase
  // (e.g. a retrieval's provider_walk) — purely observational.
  void find_providers(const Key& key, Lookup::Callback done,
                      metrics::SpanId parent_span = 0);

  // Cancellable variant for the routing layer (routing::DhtRouter): the
  // returned handle identifies the walk for cancel_lookup(). Valid until
  // the callback fires; a raced RaceRouter holds it to put down the
  // losing walk.
  const Lookup* find_providers_cancellable(const Key& key,
                                           Lookup::Callback done,
                                           metrics::SpanId parent_span = 0);

  // Aborts the identified walk WITHOUT invoking its callback and cancels
  // its deadline timer (no dangling foreground events). No-op for
  // handles whose walk already finished or was never started here.
  void cancel_lookup(const Lookup* handle);

  // Invoked once per reprovided key each time the 12 h republish timer
  // fires. The node layer uses it to re-advertise to network indexers,
  // so indexer state (wiped by indexer crashes) is rebuilt on the same
  // cadence as DHT provider records.
  using RepublishHook = std::function<void(const Key&)>;
  void set_republish_hook(RepublishHook hook) {
    republish_hook_ = std::move(hook);
  }
  void find_peer(const multiformats::PeerId& peer,
                 std::function<void(std::optional<PeerRef>, LookupResult)> done,
                 metrics::SpanId parent_span = 0);
  void lookup_closest(const Key& key, Lookup::Callback done,
                      metrics::SpanId parent_span = 0);

  // --- Mutable records (IPNS substrate, Section 3.3) ----------------------

  void put_value(const Key& key, ValueRecord record,
                 std::function<void(bool ok, int stored_on)> done);
  void get_value(const Key& key,
                 std::function<void(std::optional<ValueRecord>)> done);
  // Quorum variant: every record the walk gathered (up to kValueQuorum),
  // in discovery order. Callers resolve conflicts — e.g. ipns::resolve
  // picks the highest *valid* sequence, which plain get_value cannot do
  // because validity needs the application-level signature check.
  void get_values(const Key& key,
                  std::function<void(std::vector<ValueRecord>)> done);

  // --- Defense knobs (adversarial scenario pack) ---------------------------

  // Distinct provider records a GetProviders walk gathers before it stops
  // (LookupHost::provider_quorum). Default 1 = classic first-record
  // termination.
  void set_provider_quorum(std::size_t quorum) { provider_quorum_ = quorum; }
  std::size_t provider_quorum() const { return provider_quorum_; }

  // Per-bucket /16-prefix diversity cap (RoutingTable constructor knob).
  // Applies to the live table and to every table rebuilt after a crash.
  // 0 disables the check.
  void set_bucket_diversity_cap(std::size_t cap);
  std::size_t bucket_diversity_cap() const { return bucket_diversity_cap_; }

  // --- Introspection -------------------------------------------------------

  Mode mode() const { return mode_; }
  void force_mode(Mode mode);
  // Pins the mode across AutoNAT: force_mode() sets the current mode but
  // a later bootstrap's dial-back verdict overwrites it (> 3 reachable
  // probes required). A pinned mode survives the verdict — the socket
  // daemon uses this, since a small localhost cluster can never muster
  // enough probes even though every endpoint is dialable by construction.
  void fix_mode(Mode mode);
  const PeerRef& self() const { return self_; }
  RoutingTable& routing_table() { return routing_table_; }
  const RoutingTable& routing_table() const { return routing_table_; }
  RecordStore& record_store() { return *records_; }
  sim::NodeId node() const { return self_.node; }
  transport::Transport& transport() { return transport_; }

  // Peers the crawler can enumerate (Section 4.1): the full k-bucket
  // contents, as the crawler's per-bucket FIND_NODE sweep would recover.
  std::vector<PeerRef> crawlable_peers() const {
    return routing_table_.all_peers();
  }

 private:
  // Bridge for the sim convenience constructor: the owned backend is
  // parked in owned_transport_ after the primary constructor ran against
  // the reference.
  DhtNode(std::unique_ptr<transport::Transport> transport,
          multiformats::PeerId id,
          std::vector<multiformats::Multiaddr> addresses,
          RecordStore* shared_store);

  const Lookup* start_lookup(LookupType type, const Key& target,
                             std::vector<PeerRef> seeds, Lookup::Callback cb,
                             std::optional<multiformats::PeerId> target_peer =
                                 std::nullopt,
                             metrics::SpanId parent_span = 0);
  LookupHost make_lookup_host();
  void run_autonat(std::vector<PeerRef> probes, std::function<void()> done);
  void schedule_republish();
  void schedule_expiry_sweep();
  void answer_closer_peers(const Key& target, std::vector<PeerRef>& out) const;

  // Declared first so an owned backend outlives every member that holds
  // the transport_ reference; null when the transport is external.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  PeerRef self_;
  Mode mode_ = Mode::kClient;
  std::optional<Mode> fixed_mode_;
  RoutingTable routing_table_;
  RecordStore own_records_;
  RecordStore* records_;  // &own_records_ unless a shared store is used
  std::unordered_set<Key, KeyHasher> reprovide_keys_;
  RepublishHook republish_hook_;
  transport::Timer republish_timer_;
  transport::Timer expiry_timer_;
  std::size_t provider_quorum_ = 1;
  std::size_t bucket_diversity_cap_ = 0;
  // Keeps in-flight lookups alive.
  std::unordered_map<const Lookup*, std::shared_ptr<Lookup>> active_lookups_;
};

}  // namespace ipfs::dht
