#include "dht/key.h"

#include <bit>

#include "crypto/sha256.h"

namespace ipfs::dht {

Key Key::for_cid(const multiformats::Cid& cid) {
  return hash_of(cid.encode());
}

Key Key::for_peer(const multiformats::PeerId& peer) {
  return hash_of(peer.encode());
}

Key Key::hash_of(std::span<const std::uint8_t> data) {
  return Key(crypto::sha256(data));
}

std::array<std::uint8_t, 32> Key::distance_to(const Key& other) const {
  std::array<std::uint8_t, 32> out;
  for (std::size_t i = 0; i < 32; ++i) out[i] = bytes_[i] ^ other.bytes_[i];
  return out;
}

int Key::common_prefix_len(const Key& other) const {
  const auto distance = distance_to(other);
  int bits = 0;
  for (const std::uint8_t byte : distance) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    bits += std::countl_zero(byte);
    break;
  }
  return bits;
}

bool Key::closer_to(const Key& target, const Key& other) const {
  return distance_to(target) < other.distance_to(target);
}

std::string Key::to_hex() const { return crypto::to_hex(bytes_); }

}  // namespace ipfs::dht
