// DHT wire messages. Sizes are approximations of the real protobuf
// encodings; they only influence simulated transfer delays.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/key.h"
#include "multiformats/multiaddr.h"
#include "multiformats/peerid.h"
#include "sim/network.h"
#include "sim/time.h"

namespace ipfs::dht {

// A peer reference handed around in DHT responses: identity plus the
// addresses needed to dial it. `node` is the simulator handle the
// multiaddr resolves to.
struct PeerRef {
  multiformats::PeerId id;
  sim::NodeId node = sim::kInvalidNode;
  // All advertised Multiaddresses (multihomed peers have several; the
  // crawler counts them, Section 5.1).
  std::vector<multiformats::Multiaddr> addresses;

  bool operator==(const PeerRef& other) const { return id == other.id; }
};

// Provider record (paper Section 3.1): maps a CID key to a peer claiming
// to hold the content.
struct ProviderRecord {
  PeerRef provider;
  sim::Time received_at = 0;  // set by the storing peer
};

// Signed mutable record stored under a key (peer records, IPNS).
struct ValueRecord {
  std::vector<std::uint8_t> value;
  std::uint64_t sequence = 0;
  sim::Time received_at = 0;
};

// Approximate wire sizes in bytes, for transfer-delay modelling.
constexpr std::size_t kPeerRefBytes = 96;
constexpr std::size_t kRequestBaseBytes = 64;

// Common header of lookup RPCs: the requester's identity, as the secure
// channel plus identify-protocol exchange provides it in libp2p. Servers
// add server-mode requesters to their routing tables — this is how newly
// joined peers become routable.
struct LookupRequestBase : sim::Message {
  PeerRef requester;
  bool requester_is_server = false;
};

struct FindNodeRequest : LookupRequestBase {
  Key target;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kFindNodeRequest;
  }
};

struct FindNodeResponse : sim::Message {
  std::vector<PeerRef> closer;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kFindNodeResponse;
  }
};

struct GetProvidersRequest : LookupRequestBase {
  Key key;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kGetProvidersRequest;
  }
};

struct GetProvidersResponse : sim::Message {
  std::vector<ProviderRecord> providers;
  std::vector<PeerRef> closer;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kGetProvidersResponse;
  }
};

// "Fire and forget": the publisher does not wait for this to be answered
// (paper Section 3.1), though the protocol does define an ack.
struct AddProviderRequest : sim::Message {
  Key key;
  PeerRef provider;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kAddProviderRequest;
  }
};

struct PutValueRequest : sim::Message {
  Key key;
  ValueRecord record;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kPutValueRequest;
  }
};

struct GetValueRequest : LookupRequestBase {
  Key key;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kGetValueRequest;
  }
};

struct GetValueResponse : sim::Message {
  std::optional<ValueRecord> record;
  std::vector<PeerRef> closer;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kGetValueResponse;
  }
};

// Crawler RPC (paper Section 4.1): the crawler asks a peer for all
// entries in its k-buckets. The real crawler recovers this with a sweep
// of per-bucket FIND_NODE queries; one RPC stands in for that sweep.
struct ListBucketsRequest : sim::Message {
  sim::MessageKind kind() const override {
    return sim::MessageKind::kListBucketsRequest;
  }
};

struct ListBucketsResponse : sim::Message {
  std::vector<PeerRef> peers;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kListBucketsResponse;
  }
};

// AutoNAT (paper Section 2.3): a joining peer asks others to dial back.
struct DialBackRequest : sim::Message {
  sim::MessageKind kind() const override {
    return sim::MessageKind::kDialBackRequest;
  }
};

struct DialBackResponse : sim::Message {
  bool reachable = false;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kDialBackResponse;
  }
};

inline std::size_t response_size_for(std::size_t peer_refs,
                                     std::size_t payload = 0) {
  return kRequestBaseBytes + peer_refs * kPeerRefBytes + payload;
}

}  // namespace ipfs::dht
