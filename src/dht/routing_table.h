// Kademlia routing table with the paper's parameters: i = 256 buckets of
// k = 20 peers, bucket index chosen by the common prefix length between
// the local key and the peer's key (Section 2.3).
//
// Storage is built for 100k-node worlds: buckets are kept sparsely (only
// ~log2(n) of the 256 possible prefix lengths are ever occupied, so empty
// buckets cost nothing), each bucket is a contiguous vector rather than a
// linked list, and closest() reuses a scratch buffer so steady-state
// lookups allocate only their result vector.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"

namespace ipfs::dht {

constexpr std::size_t kBucketSize = 20;   // k
constexpr std::size_t kBucketCount = 256; // i

class RoutingTable {
 public:
  // `diversity_cap` bounds how many entries of any one bucket may share a
  // /16 IPv4 prefix (Henningsen et al.'s Sybil defense: one operator's
  // address block cannot monopolize a bucket). 0 disables the check and
  // keeps the table bit-identical to the uncapped behavior.
  explicit RoutingTable(Key local_key, std::size_t diversity_cap = 0);

  // Inserts or refreshes a peer. Full buckets reject newcomers (original
  // Kademlia bias towards long-lived peers, which the paper's churn data
  // justifies). Returns true if the peer is (now) in the table.
  bool upsert(const PeerRef& peer);

  // Same, with the peer's DHT key precomputed by the caller — skips one
  // SHA-256 per insert on bulk paths (world construction, crawls).
  bool upsert(const PeerRef& peer, const Key& key);

  void remove(const multiformats::PeerId& peer);
  bool contains(const multiformats::PeerId& peer) const;

  // Up to `count` peers closest to `target` by XOR distance.
  std::vector<PeerRef> closest(const Key& target, std::size_t count) const;

  // All peers across all buckets (crawler surface: the paper's crawler
  // asks peers for all entries in their k-buckets, Section 4.1).
  std::vector<PeerRef> all_peers() const;

  std::size_t size() const { return size_; }
  std::size_t bucket_size(std::size_t index) const;

  const Key& local_key() const { return local_key_; }

  std::size_t diversity_cap() const { return diversity_cap_; }

  // Newcomers rejected because their /16 prefix already held `cap`
  // entries in the target bucket. Observability for the Sybil defense.
  std::uint64_t diversity_rejections() const { return diversity_rejections_; }

  // The /16 IPv4 prefix used as the diversity class, if the peer carries
  // an ip4 address. Address-less peers are exempt from the cap (they
  // cannot be classified, and the simulator's synthetic peers always
  // carry one).
  static std::optional<std::uint16_t> diversity_class(const PeerRef& peer);

 private:
  struct Entry {
    PeerRef peer;
    Key key;  // cached SHA-256 of the PeerID
  };

  // One occupied bucket; buckets_ holds them sorted by index, so lookup
  // is a binary search over the handful of occupied prefix lengths.
  struct Bucket {
    std::uint16_t index;
    std::vector<Entry> entries;
  };

  std::size_t bucket_index(const Key& key) const;
  const Bucket* find_bucket(std::size_t index) const;
  Bucket& ensure_bucket(std::size_t index);

  Key local_key_;
  std::vector<Bucket> buckets_;  // sorted by Bucket::index
  std::size_t size_ = 0;
  std::size_t diversity_cap_ = 0;
  std::uint64_t diversity_rejections_ = 0;

  struct Candidate {
    std::array<std::uint8_t, 32> distance;
    const PeerRef* peer;
  };
  mutable std::vector<Candidate> scratch_;  // closest() workspace
};

}  // namespace ipfs::dht
