// Kademlia routing table with the paper's parameters: i = 256 buckets of
// k = 20 peers, bucket index chosen by the common prefix length between
// the local key and the peer's key (Section 2.3).
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"

namespace ipfs::dht {

constexpr std::size_t kBucketSize = 20;   // k
constexpr std::size_t kBucketCount = 256; // i

class RoutingTable {
 public:
  explicit RoutingTable(Key local_key);

  // Inserts or refreshes a peer. Full buckets reject newcomers (original
  // Kademlia bias towards long-lived peers, which the paper's churn data
  // justifies). Returns true if the peer is (now) in the table.
  bool upsert(const PeerRef& peer);

  void remove(const multiformats::PeerId& peer);
  bool contains(const multiformats::PeerId& peer) const;

  // Up to `count` peers closest to `target` by XOR distance.
  std::vector<PeerRef> closest(const Key& target, std::size_t count) const;

  // All peers across all buckets (crawler surface: the paper's crawler
  // asks peers for all entries in their k-buckets, Section 4.1).
  std::vector<PeerRef> all_peers() const;

  std::size_t size() const { return size_; }
  std::size_t bucket_size(std::size_t index) const {
    return buckets_[index].size();
  }

  const Key& local_key() const { return local_key_; }

 private:
  struct Entry {
    PeerRef peer;
    Key key;  // cached SHA-256 of the PeerID
  };

  std::size_t bucket_index(const Key& key) const;

  Key local_key_;
  std::vector<std::list<Entry>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace ipfs::dht
