// Server-side storage for provider records and mutable value records,
// with the paper's expiry semantics (Section 3.1): provider records
// expire after 24 h unless republished (publishers republish every 12 h).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"
#include "sim/time.h"

namespace ipfs::dht {

constexpr sim::Duration kProviderExpiry = sim::hours(24);
constexpr sim::Duration kRepublishInterval = sim::hours(12);

class RecordStore {
 public:
  explicit RecordStore(sim::Duration provider_expiry = kProviderExpiry)
      : provider_expiry_(provider_expiry) {}

  // Adds or refreshes a provider record (keyed by provider PeerID).
  void add_provider(const Key& key, ProviderRecord record);

  // Unexpired provider records for `key` as of `now`; expired entries are
  // pruned as a side effect.
  std::vector<ProviderRecord> providers(const Key& key, sim::Time now);

  // Stores `record` unless an entry with a newer sequence exists.
  // Returns true if stored.
  bool put_value(const Key& key, ValueRecord record);
  std::optional<ValueRecord> get_value(const Key& key) const;

  // Drops every provider record older than the expiry (periodic sweep).
  std::size_t expire_providers(sim::Time now);

  // Records past their expiry by more than `slack`, without pruning.
  // Diagnostic: the fuzz harness asserts the periodic sweeps keep
  // staleness bounded even across crash/restart cycles.
  std::size_t stale_provider_count(sim::Time now, sim::Duration slack) const;

  std::size_t provider_key_count() const { return providers_.size(); }
  std::size_t value_count() const { return values_.size(); }

 private:
  sim::Duration provider_expiry_;
  std::unordered_map<Key, std::vector<ProviderRecord>, KeyHasher> providers_;
  std::unordered_map<Key, ValueRecord, KeyHasher> values_;
};

}  // namespace ipfs::dht
