#include "dht/routing_table.h"

#include <algorithm>

namespace ipfs::dht {

RoutingTable::RoutingTable(Key local_key)
    : local_key_(std::move(local_key)), buckets_(kBucketCount) {}

std::size_t RoutingTable::bucket_index(const Key& key) const {
  const int cpl = local_key_.common_prefix_len(key);
  // cpl == 256 means key == local key; it never enters the table.
  return std::min<std::size_t>(cpl, kBucketCount - 1);
}

bool RoutingTable::upsert(const PeerRef& peer) {
  const Key key = Key::for_peer(peer.id);
  if (key == local_key_) return false;
  auto& bucket = buckets_[bucket_index(key)];

  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const Entry& entry) {
                                 return entry.peer.id == peer.id;
                               });
  if (it != bucket.end()) {
    // Refresh: move to the tail (most recently seen) and update addresses.
    Entry refreshed = *it;
    refreshed.peer = peer;
    bucket.erase(it);
    bucket.push_back(std::move(refreshed));
    return true;
  }

  if (bucket.size() >= kBucketSize) return false;
  bucket.push_back(Entry{peer, key});
  ++size_;
  return true;
}

void RoutingTable::remove(const multiformats::PeerId& peer) {
  const Key key = Key::for_peer(peer);
  auto& bucket = buckets_[bucket_index(key)];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const Entry& entry) {
                                 return entry.peer.id == peer;
                               });
  if (it != bucket.end()) {
    bucket.erase(it);
    --size_;
  }
}

bool RoutingTable::contains(const multiformats::PeerId& peer) const {
  const Key key = Key::for_peer(peer);
  const auto& bucket = buckets_[bucket_index(key)];
  return std::any_of(bucket.begin(), bucket.end(), [&](const Entry& entry) {
    return entry.peer.id == peer;
  });
}

std::vector<PeerRef> RoutingTable::closest(const Key& target,
                                           std::size_t count) const {
  struct Candidate {
    std::array<std::uint8_t, 32> distance;
    const PeerRef* peer;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(size_);
  for (const auto& bucket : buckets_)
    for (const auto& entry : bucket)
      candidates.push_back({entry.key.distance_to(target), &entry.peer});

  const std::size_t take = std::min(count, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.distance < b.distance;
                    });
  std::vector<PeerRef> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(*candidates[i].peer);
  return out;
}

std::vector<PeerRef> RoutingTable::all_peers() const {
  std::vector<PeerRef> out;
  out.reserve(size_);
  for (const auto& bucket : buckets_)
    for (const auto& entry : bucket) out.push_back(entry.peer);
  return out;
}

}  // namespace ipfs::dht
