#include "dht/routing_table.h"

#include <algorithm>

namespace ipfs::dht {

RoutingTable::RoutingTable(Key local_key, std::size_t diversity_cap)
    : local_key_(std::move(local_key)), diversity_cap_(diversity_cap) {}

std::optional<std::uint16_t> RoutingTable::diversity_class(
    const PeerRef& peer) {
  for (const auto& address : peer.addresses) {
    const auto ip4 =
        address.value_for(multiformats::MultiaddrProtocol::kIp4);
    if (ip4 && ip4->size() == 4)
      return static_cast<std::uint16_t>(((*ip4)[0] << 8) | (*ip4)[1]);
  }
  return std::nullopt;
}

std::size_t RoutingTable::bucket_index(const Key& key) const {
  const int cpl = local_key_.common_prefix_len(key);
  // cpl == 256 means key == local key; it never enters the table.
  return std::min<std::size_t>(cpl, kBucketCount - 1);
}

const RoutingTable::Bucket* RoutingTable::find_bucket(
    std::size_t index) const {
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const Bucket& bucket, std::size_t i) { return bucket.index < i; });
  if (it == buckets_.end() || it->index != index) return nullptr;
  return &*it;
}

RoutingTable::Bucket& RoutingTable::ensure_bucket(std::size_t index) {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const Bucket& bucket, std::size_t i) { return bucket.index < i; });
  if (it == buckets_.end() || it->index != index)
    it = buckets_.insert(it, Bucket{static_cast<std::uint16_t>(index), {}});
  return *it;
}

bool RoutingTable::upsert(const PeerRef& peer) {
  return upsert(peer, Key::for_peer(peer.id));
}

bool RoutingTable::upsert(const PeerRef& peer, const Key& key) {
  if (key == local_key_) return false;
  Bucket& bucket = ensure_bucket(bucket_index(key));
  auto& entries = bucket.entries;

  // Dedup on the cached key (SHA-256 of the PeerID, injective over ids):
  // an inline 32-byte compare instead of chasing the id's digest buffer.
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const Entry& entry) {
                                 return entry.key == key;
                               });
  if (it != entries.end()) {
    // Refresh: move to the tail (most recently seen) and update addresses.
    it->peer = peer;
    std::rotate(it, it + 1, entries.end());
    return true;
  }

  if (entries.size() >= kBucketSize) return false;
  if (diversity_cap_ > 0) {
    if (const auto prefix = diversity_class(peer)) {
      std::size_t shared = 0;
      for (const Entry& entry : entries)
        if (diversity_class(entry.peer) == prefix) ++shared;
      if (shared >= diversity_cap_) {
        ++diversity_rejections_;
        return false;
      }
    }
  }
  entries.push_back(Entry{peer, key});
  ++size_;
  return true;
}

void RoutingTable::remove(const multiformats::PeerId& peer) {
  const Key key = Key::for_peer(peer);
  const std::size_t index = bucket_index(key);
  const auto bucket_it = std::lower_bound(
      buckets_.begin(), buckets_.end(), index,
      [](const Bucket& bucket, std::size_t i) { return bucket.index < i; });
  if (bucket_it == buckets_.end() || bucket_it->index != index) return;
  auto& entries = bucket_it->entries;
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const Entry& entry) {
                                 return entry.peer.id == peer;
                               });
  if (it != entries.end()) {
    entries.erase(it);
    --size_;
    if (entries.empty()) buckets_.erase(bucket_it);
  }
}

bool RoutingTable::contains(const multiformats::PeerId& peer) const {
  const Key key = Key::for_peer(peer);
  const Bucket* bucket = find_bucket(bucket_index(key));
  if (bucket == nullptr) return false;
  return std::any_of(bucket->entries.begin(), bucket->entries.end(),
                     [&](const Entry& entry) { return entry.peer.id == peer; });
}

std::size_t RoutingTable::bucket_size(std::size_t index) const {
  const Bucket* bucket = find_bucket(index);
  return bucket == nullptr ? 0 : bucket->entries.size();
}

std::vector<PeerRef> RoutingTable::closest(const Key& target,
                                           std::size_t count) const {
  scratch_.clear();
  scratch_.reserve(size_);
  for (const auto& bucket : buckets_)
    for (const auto& entry : bucket.entries)
      scratch_.push_back({entry.key.distance_to(target), &entry.peer});

  const std::size_t take = std::min(count, scratch_.size());
  std::partial_sort(scratch_.begin(), scratch_.begin() + take,
                    scratch_.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.distance < b.distance;
                    });
  std::vector<PeerRef> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(*scratch_[i].peer);
  return out;
}

std::vector<PeerRef> RoutingTable::all_peers() const {
  std::vector<PeerRef> out;
  out.reserve(size_);
  for (const auto& bucket : buckets_)
    for (const auto& entry : bucket.entries) out.push_back(entry.peer);
  return out;
}

}  // namespace ipfs::dht
